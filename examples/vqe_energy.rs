//! Energy-error evaluation: how compilation noise corrupts a VQE-style
//! energy estimate of the Heisenberg chain, per technique.
//!
//! Observables are the real figure of merit for variational workloads
//! — a small TVD can still mean a useless energy. This example
//! measures `⟨H⟩` of the Trotter-evolved state on the ideal machine
//! and under noisy execution of each compiled circuit.
//!
//! Run with: `cargo run --release --example vqe_energy`

use geyser::{compile, PipelineConfig, Technique};
use geyser_sim::{NoiseModel, Observable, StateVector};
use geyser_workloads::heisenberg;

/// Noisy estimate of ⟨H⟩: averages the expectation over stochastic
/// Pauli trajectories of the compiled circuit.
fn noisy_energy(
    compiled: &geyser::CompiledCircuit,
    ham: &Observable,
    noise: &NoiseModel,
    trajectories: usize,
) -> f64 {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let circuit = compiled.mapped().circuit();
    let n_nodes = circuit.num_qubits();
    let mut rng = StdRng::seed_from_u64(23);
    let mut acc = 0.0;
    for _ in 0..trajectories {
        let mut sv = StateVector::zero_state(n_nodes);
        for op in circuit.iter() {
            sv.apply_operation(op);
            let (xs, zs) = noise.sample_errors(op, &mut rng);
            for q in xs {
                sv.apply_x(q);
            }
            for q in zs {
                sv.apply_z(q);
            }
        }
        // Observable indices are logical: remap through the final
        // layout onto physical nodes.
        let remapped = remap_observable(ham, compiled);
        acc += remapped.expectation(&sv);
    }
    acc / trajectories as f64
}

fn remap_observable(ham: &Observable, compiled: &geyser::CompiledCircuit) -> Observable {
    let layout = compiled.mapped().final_layout();
    Observable::new(
        ham.terms()
            .iter()
            .map(|t| {
                geyser_sim::PauliString::new(
                    t.coefficient(),
                    t.factors()
                        .iter()
                        .map(|&(q, p)| (layout.node_of(q), p))
                        .collect(),
                )
            })
            .collect(),
    )
}

fn main() {
    let n = 6;
    let program = heisenberg(n, 3, 0.15);
    let ham = Observable::heisenberg_chain(n, 1.0, 0.5);
    let noise = NoiseModel::symmetric(0.001);
    let cfg = PipelineConfig::paper();

    // Ideal energy of the evolved state.
    let ideal_energy = {
        let mut sv = StateVector::zero_state(n);
        sv.apply_circuit(&program);
        ham.expectation(&sv)
    };
    println!("heisenberg-{n}, 3 Trotter steps");
    println!("ideal ⟨H⟩ = {ideal_energy:+.4}\n");
    println!(
        "{:<14} {:>8} {:>12} {:>12}",
        "technique", "pulses", "noisy ⟨H⟩", "|error|"
    );
    for technique in [Technique::Baseline, Technique::OptiMap, Technique::Geyser] {
        let compiled = compile(&program, technique, &cfg);
        let e = noisy_energy(&compiled, &ham, &noise, 150);
        println!(
            "{:<14} {:>8} {:>+12.4} {:>12.4}",
            technique.label(),
            compiled.total_pulses(),
            e,
            (e - ideal_energy).abs()
        );
    }
    println!("\nPulse reduction carries straight through to energy accuracy —");
    println!("the quantity a variational algorithm actually optimizes.");
}
