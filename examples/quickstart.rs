//! Quickstart: compile a small program with every technique and
//! compare the paper's headline metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use geyser::{compile, evaluate_tvd, PipelineConfig, Technique};
use geyser_circuit::Circuit;
use geyser_sim::NoiseModel;

fn main() {
    // A 4-qubit entangled program: GHZ preparation plus a few
    // arithmetic-style Toffolis to give the compiler real work.
    let mut program = Circuit::new(4);
    program.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
    program.ccx(0, 1, 2).t(3).ccx(1, 2, 3);

    println!(
        "program: {} qubits, {} gates\n",
        program.num_qubits(),
        program.len()
    );

    let cfg = PipelineConfig::paper();
    let noise = NoiseModel::symmetric(0.001); // the paper's 0.1%

    println!(
        "{:<16} {:>8} {:>8} {:>6} {:>6} {:>6} {:>9}",
        "technique", "pulses", "depth", "u3", "cz", "ccz", "tvd"
    );
    for technique in Technique::ALL {
        let compiled = compile(&program, technique, &cfg);
        let counts = compiled.gate_counts();
        let report = evaluate_tvd(&compiled, &program, &noise, 300, 7);
        println!(
            "{:<16} {:>8} {:>8} {:>6} {:>6} {:>6} {:>9.4}",
            technique.label(),
            compiled.total_pulses(),
            compiled.depth_pulses(),
            counts.u3,
            counts.cz,
            counts.ccz,
            report.tvd_to_ideal
        );
    }
    println!("\nGeyser composes CCZ gates no other technique can express,");
    println!("cutting pulses and therefore accumulated noise (lower TVD).");
}
