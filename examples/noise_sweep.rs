//! Noise sensitivity study: TVD of each technique across error rates
//! on the 5-qubit QAOA workload (the paper's Fig. 17 style analysis,
//! as an interactive example).
//!
//! Run with: `cargo run --release --example noise_sweep`

use geyser::{compile, evaluate_tvd, PipelineConfig, Technique};
use geyser_sim::NoiseModel;
use geyser_workloads::qaoa;

fn main() {
    let program = qaoa(5, 3, 5);
    let cfg = PipelineConfig::paper();
    let rates = [0.0005, 0.001, 0.002, 0.005];
    let trajectories = 400;

    println!("workload: qaoa-5 ({} gates)\n", program.len());
    println!("compiling with all techniques (composition may take ~a minute)…");
    let compiled: Vec<_> = Technique::ALL
        .iter()
        .map(|&t| (t, compile(&program, t, &cfg)))
        .collect();

    print!("{:<16}", "noise");
    for (t, _) in &compiled {
        print!(" {:>12}", t.label());
    }
    println!();
    for rate in rates {
        let noise = NoiseModel::symmetric(rate);
        print!("{:<16}", format!("{:.2}%", rate * 100.0));
        for (_, c) in &compiled {
            let report = evaluate_tvd(c, &program, &noise, trajectories, 11);
            print!(" {:>12.4}", report.tvd_to_ideal);
        }
        println!();
    }

    println!("\npulse counts:");
    for (t, c) in &compiled {
        println!("  {:<16} {:>6} pulses", t.label(), c.total_pulses());
    }
    println!("\nFewer pulses -> less accumulated channel noise -> lower TVD,");
    println!("and the gap widens as the per-pulse error rate grows.");
}
