//! Composition deep-dive: recreate the paper's Fig. 11 scenario — a
//! CCZ that was decomposed into six CZ and a pile of single-qubit
//! gates gets *re-composed* back into a five-pulse native CCZ by
//! Algorithm 2.
//!
//! Run with: `cargo run --release --example compose_demo`

use geyser_circuit::Circuit;
use geyser_compose::{compose_block, CompositionConfig};
use geyser_num::hilbert_schmidt_distance;
use geyser_sim::circuit_unitary;

/// The standard 6-CNOT Toffoli-style decomposition of CCZ.
fn decomposed_ccz() -> Circuit {
    let mut c = Circuit::new(3);
    let cx = |c: &mut Circuit, a: usize, b: usize| {
        c.h(b);
        c.cz(a, b);
        c.h(b);
    };
    cx(&mut c, 1, 2);
    c.tdg(2);
    cx(&mut c, 0, 2);
    c.t(2);
    cx(&mut c, 1, 2);
    c.tdg(2);
    cx(&mut c, 0, 2);
    c.t(1);
    c.t(2);
    cx(&mut c, 0, 1);
    c.t(0);
    c.tdg(1);
    cx(&mut c, 0, 1);
    c
}

fn main() {
    let block = decomposed_ccz();
    println!("original block (decomposed CCZ):");
    println!(
        "  {} gates, {} pulses (paper Fig. 11: the decomposition costs 26 pulses once 1q runs are fused)",
        block.len(),
        block.total_pulses()
    );

    // Sanity: the block really is a CCZ.
    let d = hilbert_schmidt_distance(
        &circuit_unitary(&block),
        &geyser_circuit::Gate::CCZ.matrix(),
    );
    println!("  HSD to an ideal CCZ: {d:.2e}\n");

    println!("running Algorithm 2 (dual annealing over the layered ansatz)…");
    let cfg = CompositionConfig {
        epsilon: 1e-3,
        max_layers: 2,
        anneal_iters: 400,
        restarts: 4,
        seed: 11,
        threads: 1,
        ..CompositionConfig::default()
    };
    let result = compose_block(&block, &cfg);

    if result.composed {
        println!(
            "composed with {} layer(s), HSD = {:.2e}",
            result.layers, result.hsd
        );
        println!(
            "composed block: {} gates, {} pulses ({} CCZ)",
            result.circuit.len(),
            result.circuit.total_pulses(),
            result.circuit.gate_counts().ccz
        );
        println!(
            "\npulse reduction: {} -> {} ({:.0}%)",
            block.total_pulses(),
            result.circuit.total_pulses(),
            100.0 * (1.0 - result.circuit.total_pulses() as f64 / block.total_pulses() as f64)
        );
        for op in result.circuit.iter() {
            println!("  {op}");
        }
    } else {
        println!("composition did not beat the original (try a larger budget)");
    }
}
