//! A complete VQE loop built from this workspace's own parts: the
//! Nelder–Mead optimizer trains a hardware-efficient ansatz to the
//! ground state of a 4-site Heisenberg chain, and the converged
//! circuit is then compiled with every technique.
//!
//! Everything is in-repo: ansatz construction (`geyser-circuit`),
//! energy evaluation (`geyser-sim` observables), classical
//! optimization (`geyser-optimize`), compilation (`geyser`).
//!
//! Run with: `cargo run --release --example vqe_training`

use geyser::{compile, PipelineConfig, Technique};
use geyser_circuit::Circuit;
use geyser_optimize::{nelder_mead, Bounds, NelderMeadConfig};
use geyser_sim::{Observable, StateVector};

const N: usize = 4;
const LAYERS: usize = 3;

/// Hardware-efficient ansatz: RY/RZ rotations + CZ chain per layer.
fn ansatz(params: &[f64]) -> Circuit {
    let mut c = Circuit::new(N);
    let mut k = 0;
    for layer in 0..=LAYERS {
        for q in 0..N {
            c.ry(params[k], q);
            c.rz(params[k + 1], q);
            k += 2;
        }
        if layer < LAYERS {
            for q in 0..N - 1 {
                c.cz(q, q + 1);
            }
        }
    }
    c
}

fn energy(ham: &Observable, params: &[f64]) -> f64 {
    let mut sv = StateVector::zero_state(N);
    sv.apply_circuit(&ansatz(params));
    ham.expectation(&sv)
}

fn main() {
    let ham = Observable::heisenberg_chain(N, 1.0, 0.0);
    let num_params = 2 * N * (LAYERS + 1);
    let bounds = Bounds::uniform(num_params, 0.0, std::f64::consts::TAU);

    // The open 4-site XXX chain (J = 1, h = 0) has exact ground
    // energy E₀ = −(3 + 2√3) ≈ −6.4641; a converged run reaches it.
    println!("training {num_params}-parameter ansatz (Nelder–Mead)…");
    let cfg = NelderMeadConfig {
        max_evaluations: 60_000,
        ..NelderMeadConfig::default()
    };
    // Multi-start: best of a few deterministic seeds.
    let mut best: Option<(f64, Vec<f64>)> = None;
    for seed in 0..4u64 {
        let x0: Vec<f64> = (0..num_params)
            .map(|i| ((i as u64 * 2654435761 + seed * 97) % 628) as f64 / 100.0)
            .collect();
        let res = nelder_mead(&|x: &[f64]| energy(&ham, x), &bounds, &x0, &cfg);
        println!("  start {seed}: E = {:+.6}", res.fx);
        if best.as_ref().is_none_or(|(f, _)| res.fx < *f) {
            best = Some((res.fx, res.x));
        }
    }
    let (e_opt, params) = best.expect("at least one start ran");
    println!("\nconverged variational energy: {e_opt:+.6}");

    let trained = ansatz(&params);
    println!(
        "trained circuit: {} gates, {} pulses naive\n",
        trained.len(),
        trained.total_pulses()
    );
    println!(
        "{:<16} {:>8} {:>8} {:>6}",
        "technique", "pulses", "depth", "ccz"
    );
    for technique in Technique::ALL {
        let compiled = compile(&trained, technique, &PipelineConfig::fast());
        println!(
            "{:<16} {:>8} {:>8} {:>6}",
            technique.label(),
            compiled.total_pulses(),
            compiled.depth_pulses(),
            compiled.gate_counts().ccz
        );
    }
    println!("\nThe trained state is what a real VQE would ship to hardware —");
    println!("and Geyser is how a neutral-atom machine would run it cheapest.");
}
