//! Topology explorer: renders the lattices the paper compares
//! (Fig. 7) and quantifies their restriction-zone pressure —
//! why Geyser picks the triangular arrangement.
//!
//! Run with: `cargo run --release --example topology_explorer`

use geyser_topology::{Lattice, PathMatrix};

fn describe(name: &str, lattice: &Lattice) {
    println!("=== {name} ({} nodes) ===", lattice.num_nodes());

    // ASCII sketch of atom positions.
    for r in 0..lattice.rows() {
        let indent = {
            let (x0, _) = lattice.position(r * lattice.cols());
            " ".repeat((x0 * 2.0).round() as usize)
        };
        let row: Vec<String> = (0..lattice.cols())
            .map(|c| format!("{:>2}", r * lattice.cols() + c))
            .collect();
        println!("  {indent}{}", row.join("  "));
    }

    let degrees: Vec<usize> = (0..lattice.num_nodes())
        .map(|v| lattice.neighbors(v).len())
        .collect();
    println!(
        "  degree: min {} / max {}",
        degrees.iter().min().unwrap(),
        degrees.iter().max().unwrap()
    );
    println!("  triangles (CCZ sites): {}", lattice.triangles().len());

    // Worst-case restriction zones (paper Fig. 4 / Fig. 7 numbers).
    let worst_2q = lattice
        .edges()
        .iter()
        .map(|e| lattice.restriction_zone(e).len())
        .max()
        .unwrap_or(0);
    println!("  2q gate restricts up to {worst_2q} atoms");
    if let Some(worst_3q) = lattice
        .triangles()
        .iter()
        .map(|t| lattice.restriction_zone(t).len())
        .max()
    {
        println!("  3q gate restricts up to {worst_3q} atoms");
    }

    let pm = PathMatrix::new(lattice);
    let diameter = (0..lattice.num_nodes())
        .flat_map(|a| (0..lattice.num_nodes()).map(move |b| (a, b)))
        .map(|(a, b)| pm.hops(a, b))
        .max()
        .unwrap();
    println!("  routing diameter: {diameter} hops\n");
}

fn main() {
    describe(
        "triangular 4x4 (Geyser's choice)",
        &Lattice::triangular(4, 4),
    );
    describe(
        "square 4x4 (superconducting layout)",
        &Lattice::square(4, 4),
    );
    describe(
        "square 4x4 with diagonal radius (paper Fig. 7b)",
        &Lattice::square_diagonal(4, 4),
    );
    println!("The triangular grid hosts many 3-qubit triangles with the");
    println!("smallest restriction zones — the geometric argument behind");
    println!("Geyser's topology choice (paper Sec. 3.2).\n");

    // Recreate the paper's Fig. 4 snapshot: concurrent one-, two-, and
    // three-qubit operations with their restriction zones.
    let lat = Lattice::triangular(6, 6);
    let tri = *lat
        .triangles()
        .iter()
        .find(|t| t.iter().all(|&q| (14..22).contains(&q)))
        .expect("interior triangle exists");
    println!("=== paper Fig. 4 snapshot ===");
    println!("● engaged   ■ restricted   · free\n");
    print!(
        "{}",
        geyser_topology::render_occupancy(&lat, &[&[0, 1], &tri, &[30], &[35]])
    );
    println!("\nA 2q gate freezes up to 8 neighbours, a 3q gate up to 9;");
    println!("1q gates cast no zone (Raman transitions are atom-internal).");
}
