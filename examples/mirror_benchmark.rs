//! Mirror (Loschmidt-echo) benchmarking: run a circuit followed by its
//! inverse under noise and measure the survival probability of
//! |0…0⟩. An ideal machine always returns to the start state, so the
//! survival deficit isolates accumulated hardware error — and shows
//! how Geyser's pulse reduction translates directly into fidelity.
//!
//! Run with: `cargo run --release --example mirror_benchmark`

use geyser::{compile, PipelineConfig, Technique};
use geyser_circuit::Circuit;
use geyser_sim::{sample_noisy_distribution, NoiseModel};
use geyser_workloads::{ghz, w_state};

/// Builds the mirror circuit `C · C⁻¹`.
fn mirror(program: &Circuit) -> Circuit {
    let mut m = program.clone();
    m.extend_from(&program.inverted());
    m
}

fn survival(compiled: &geyser::CompiledCircuit, noise: &NoiseModel) -> f64 {
    let node_dist = sample_noisy_distribution(compiled.mapped().circuit(), noise, 400, 17);
    let logical = compiled.mapped().logical_distribution(&node_dist);
    logical[0]
}

fn main() {
    let cfg = PipelineConfig::paper();
    let noise = NoiseModel::symmetric(0.002);

    println!(
        "{:<14} {:>10} {:>12} {:>12}",
        "program", "technique", "pulses", "survival"
    );
    for (name, program) in [("ghz-5", ghz(5)), ("w-state-5", w_state(5))] {
        let echo = mirror(&program);
        for technique in [Technique::Baseline, Technique::OptiMap, Technique::Geyser] {
            let compiled = compile(&echo, technique, &cfg);
            let p0 = survival(&compiled, &noise);
            println!(
                "{:<14} {:>10} {:>12} {:>11.4}",
                name,
                technique.label(),
                compiled.total_pulses(),
                p0
            );
        }
    }
    println!("\nAn ideal machine shows survival = 1; every lost percentage");
    println!("point is accumulated pulse noise. Fewer pulses, higher echo.");
}
