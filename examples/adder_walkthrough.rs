//! Pipeline walkthrough on the Cuccaro adder: shows every intermediate
//! artifact of the three Geyser stages — mapping, blocking, and
//! composition — the way Fig. 6 of the paper presents the flow.
//!
//! Run with: `cargo run --release --example adder_walkthrough`

use geyser_blocking::{block_circuit, BlockingConfig};
use geyser_compose::{compose_blocked_circuit, CompositionConfig};
use geyser_map::{map_circuit, optimize_to_fixpoint, MappingOptions};
use geyser_topology::Lattice;
use geyser_workloads::adder_with_inputs;

fn main() {
    // 1-bit Cuccaro adder computing 1 + 1.
    let program = adder_with_inputs(4, 1, 1);
    println!("=== logical program (Cuccaro adder, 1 + 1) ===");
    println!(
        "{} qubits, {} gates, {} pulses if executed naively\n",
        program.num_qubits(),
        program.len(),
        program.total_pulses()
    );

    // --- Stage 1: mapping -----------------------------------------
    let lattice = Lattice::triangular_for(program.num_qubits());
    println!(
        "=== stage 1: mapping onto a {}x{} triangular lattice ===",
        lattice.rows(),
        lattice.cols()
    );
    let mapped = map_circuit(&program, &lattice, &MappingOptions::optimized());
    println!(
        "mapped: {} native ops ({} U3, {} CZ), {} pulses, {} SWAPs inserted\n",
        mapped.circuit().len(),
        mapped.gate_counts().u3,
        mapped.gate_counts().cz,
        mapped.total_pulses(),
        mapped.swaps_inserted()
    );

    // --- Stage 2: blocking ------------------------------------------
    println!("=== stage 2: blocking (Algorithm 1) ===");
    let blocked = block_circuit(mapped.circuit(), &lattice, &BlockingConfig::default());
    println!(
        "{} blocks in {} rounds (mean {:.1} ops/block)",
        blocked.num_blocks(),
        blocked.rounds().len(),
        blocked.mean_block_size()
    );
    for (r, round) in blocked.rounds().iter().enumerate() {
        let desc: Vec<String> = round
            .blocks()
            .iter()
            .map(|b| format!("{:?}×{}ops", b.qubits(), b.num_ops()))
            .collect();
        println!("  round {r}: {}", desc.join("  "));
    }
    println!();

    // --- Stage 3: composition ---------------------------------------
    println!("=== stage 3: composition (Algorithm 2) ===");
    let composed = compose_blocked_circuit(&blocked, &CompositionConfig::default());
    println!(
        "{} of {} eligible blocks composed; pulses {} -> {}",
        composed.stats.blocks_composed,
        composed.stats.blocks_eligible,
        composed.stats.pulses_before,
        composed.stats.pulses_after,
    );
    let final_circuit = optimize_to_fixpoint(&composed.circuit);
    println!(
        "final circuit: {} ops, {} pulses ({} CCZ gates introduced)",
        final_circuit.len(),
        final_circuit.total_pulses(),
        final_circuit.gate_counts().ccz
    );
    println!(
        "\npulse reduction vs mapped: {:.1}%",
        100.0 * (1.0 - final_circuit.total_pulses() as f64 / mapped.total_pulses() as f64)
    );
}
