use geyser::{compile, PipelineConfig, Technique};
use geyser_workloads::suite;
use std::time::Instant;

fn main() {
    let cfg = PipelineConfig::paper();
    for spec in suite() {
        if !["adder-4", "qft-5", "multiplier-5", "adder-9"].contains(&spec.name) {
            continue;
        }
        let program = spec.build();
        for t in [Technique::Baseline, Technique::OptiMap, Technique::Geyser] {
            let t0 = Instant::now();
            let c = compile(&program, t, &cfg);
            println!(
                "{:<14} {:<9} pulses={:<6} depth={:<6} u3={} cz={} ccz={} ({:.2?})",
                spec.name,
                t.label(),
                c.total_pulses(),
                c.depth_pulses(),
                c.gate_counts().u3,
                c.gate_counts().cz,
                c.gate_counts().ccz,
                t0.elapsed()
            );
        }
    }
}
