//! Restriction-zone scheduling visualized: a Gantt chart of the same
//! physical circuit scheduled with and without Rydberg restriction
//! zones — the paper's Fig. 4 phenomenon made concrete.
//!
//! Run with: `cargo run --release --example schedule_gantt`

use geyser_map::{map_circuit, zone_aware_schedule, MappingOptions};
use geyser_topology::Lattice;
use geyser_workloads::qaoa;

fn main() {
    let program = qaoa(5, 1, 3);
    let lattice = Lattice::triangular_for(5);
    let mapped = map_circuit(&program, &lattice, &MappingOptions::optimized());

    println!(
        "qaoa-5 mapped onto a {}x{} triangular lattice: {} native ops\n",
        lattice.rows(),
        lattice.cols(),
        mapped.circuit().len()
    );

    let schedule = zone_aware_schedule(mapped.circuit(), &lattice);
    println!("=== zone-aware schedule (time in pulses →) ===");
    print!("{}", schedule.render_gantt(mapped.circuit()));

    println!("\npeak concurrency: {} ops", schedule.peak_concurrency());
    println!(
        "zone-aware makespan: {} pulses vs {} ignoring zones",
        schedule.makespan(),
        mapped.circuit().depth_pulses()
    );
    println!("\nThe gap between the two is execution time lost to Rydberg");
    println!("restriction zones freezing neighbouring atoms (paper Fig. 4).");
}
