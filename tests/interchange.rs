//! Interchange tests: QASM round-trips for every workload generator,
//! and parsed circuits flowing through the compilation pipeline.

use geyser::{compile, PipelineConfig, Technique};
use geyser_circuit::{from_qasm, to_qasm};
use geyser_sim::{ideal_distribution, total_variation_distance};
use geyser_workloads::{
    adder, advantage, bernstein_vazirani, ghz, grover, heisenberg, multiplier, qaoa, qft, suite,
    vqe, w_state,
};

#[test]
fn every_generator_round_trips_through_qasm() {
    let circuits = vec![
        ("adder", adder(5)),
        ("multiplier", multiplier(5)),
        ("qft", qft(5)),
        ("qaoa", qaoa(5, 2, 1)),
        ("vqe", vqe(4, 3, 2)),
        ("advantage", advantage(5, 4, 3)),
        ("heisenberg", heisenberg(4, 2, 0.1)),
        ("ghz", ghz(5)),
        ("w", w_state(4)),
        ("bv", bernstein_vazirani(4, 0b1010)),
        ("grover", grover(3, 0b110, None)),
    ];
    for (name, c) in circuits {
        let text = to_qasm(&c);
        let parsed = from_qasm(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(parsed.num_qubits(), c.num_qubits(), "{name}");
        assert_eq!(parsed.ops(), c.ops(), "{name} ops diverged");
    }
}

#[test]
fn whole_suite_round_trips() {
    for spec in suite() {
        if spec.num_qubits > 10 {
            continue; // keep CI time sane; covered by the 4-qubit case above
        }
        let c = spec.build();
        let parsed = from_qasm(&to_qasm(&c)).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(parsed.ops(), c.ops(), "{}", spec.name);
    }
}

#[test]
fn parsed_circuit_compiles_identically() {
    // A circuit imported from QASM must compile to the same result as
    // the in-memory original (the pipeline is deterministic).
    let original = qft(5);
    let parsed = from_qasm(&to_qasm(&original)).expect("parses");
    let cfg = PipelineConfig::fast();
    let a = compile(&original, Technique::OptiMap, &cfg);
    let b = compile(&parsed, Technique::OptiMap, &cfg);
    assert_eq!(a.total_pulses(), b.total_pulses());
    assert_eq!(a.gate_counts(), b.gate_counts());
}

#[test]
fn emitted_qasm_preserves_semantics() {
    let original = grover(3, 0b011, None);
    let parsed = from_qasm(&to_qasm(&original)).expect("parses");
    let tvd =
        total_variation_distance(&ideal_distribution(&original), &ideal_distribution(&parsed));
    assert!(tvd < 1e-12);
}
