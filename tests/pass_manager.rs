//! Pass-manager pipeline tests: the declarative pass lists must
//! reproduce the legacy hand-rolled pipelines exactly, misordered
//! lists must fail with typed errors, and debug-mode invariant checks
//! must catch semantics-breaking passes.

use geyser::passes::{AllocateLatticePass, BlockPass, ComposePass, MapPass, SeamCleanupPass};
use geyser::{
    compile, try_compile, CompileContext, CompileError, CompileReport, Pass, PassManager,
    PipelineConfig, Technique,
};
use geyser_blocking::block_circuit;
use geyser_circuit::Circuit;
use geyser_compose::compose_blocked_circuit;
use geyser_map::{map_circuit, optimize_to_fixpoint, MappingOptions};
use geyser_topology::Lattice;
use geyser_workloads::{ghz, qaoa};

/// The Geyser pipeline spelled out as direct stage calls — the shape
/// `compile()` had before the pass manager. The pass list must stay
/// bit-identical to this.
fn legacy_geyser(
    program: &Circuit,
    config: &PipelineConfig,
) -> (u64, geyser_compose::CompositionStats) {
    let lattice = Lattice::triangular_for(program.num_qubits());
    let mapped = map_circuit(program, &lattice, &MappingOptions::optimized());
    let blocked = block_circuit(mapped.circuit(), &lattice, &config.blocking);
    let composed = compose_blocked_circuit(&blocked, &config.composition);
    let cleaned = optimize_to_fixpoint(&composed.circuit);
    let final_mapped = mapped.with_circuit(cleaned);
    (final_mapped.total_pulses(), composed.stats)
}

#[test]
fn geyser_pass_list_matches_legacy_pipeline() {
    let cfg = PipelineConfig::fast();
    for program in [ghz(4), qaoa(4, 1, 1)] {
        let (legacy_pulses, legacy_stats) = legacy_geyser(&program, &cfg);
        let compiled = compile(&program, Technique::Geyser, &cfg);
        assert_eq!(compiled.total_pulses(), legacy_pulses);
        let stats = compiled.composition_stats().expect("geyser records stats");
        assert_eq!(stats, &legacy_stats);
    }
}

#[test]
fn mapping_pass_lists_match_legacy_pipeline() {
    let cfg = PipelineConfig::fast();
    let cases = [
        (Technique::Baseline, MappingOptions::baseline(), false),
        (Technique::OptiMap, MappingOptions::optimized(), false),
        (
            Technique::Superconducting,
            MappingOptions::optimized(),
            true,
        ),
    ];
    for program in [ghz(5), qaoa(5, 2, 1)] {
        for (technique, options, square) in cases {
            let lattice = if square {
                Lattice::square_for(program.num_qubits())
            } else {
                Lattice::triangular_for(program.num_qubits())
            };
            let legacy = map_circuit(&program, &lattice, &options);
            let compiled = compile(&program, technique, &cfg);
            assert_eq!(
                compiled.total_pulses(),
                legacy.total_pulses(),
                "{technique} diverged from the legacy pipeline"
            );
            assert_eq!(compiled.gate_counts(), legacy.gate_counts());
            assert!(compiled.composition_stats().is_none());
        }
    }
}

#[test]
fn explicit_pass_manager_matches_compile() {
    let program = ghz(4);
    let cfg = PipelineConfig::fast();
    let via_compile = compile(&program, Technique::Geyser, &cfg);
    let via_manager = PassManager::for_technique(Technique::Geyser)
        .run(&program, &cfg)
        .expect("pipeline succeeds");
    assert_eq!(via_manager.total_pulses(), via_compile.total_pulses());
    assert_eq!(
        via_manager.composition_stats(),
        via_compile.composition_stats()
    );
}

#[test]
fn report_has_one_entry_per_pass_with_nonzero_timings() {
    let program = ghz(4);
    let compiled = compile(&program, Technique::Geyser, &PipelineConfig::fast());
    let report = compiled.report().expect("compile attaches a report");
    let names: Vec<&str> = report.passes.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "allocate-lattice",
            "map",
            "block",
            "compose",
            "seam-cleanup"
        ]
    );
    assert!(report.total_seconds() > 0.0);
    let compose = &report.passes[3];
    assert!(compose.seconds > 0.0, "composition took measurable time");
    assert!(compose.blocks_composed.is_some());
    // The pipeline ends at or below the pulse count it mapped to.
    assert!(report.passes[4].pulses_after <= report.passes[1].pulses_after);
}

#[test]
fn report_serializes_to_json_and_back() {
    let program = ghz(3);
    let compiled = compile(&program, Technique::OptiMap, &PipelineConfig::fast());
    let report = compiled.report().expect("report present");
    let json = report.to_json();
    assert!(json.contains("\"name\": \"map\""));
    let back: CompileReport = serde_json::from_str(&json).expect("report roundtrips");
    assert_eq!(&back, report);
}

#[test]
fn misordered_pass_list_fails_with_missing_stage() {
    // Blocking before mapping: no mapped circuit exists yet.
    let pm = PassManager::new(
        Technique::Geyser,
        vec![
            Box::new(AllocateLatticePass::triangular()),
            Box::new(BlockPass),
            Box::new(MapPass::optimized()),
            Box::new(ComposePass),
            Box::new(SeamCleanupPass),
        ],
    )
    .with_debug_invariants(true);
    let err = pm.run(&ghz(4), &PipelineConfig::fast()).unwrap_err();
    assert_eq!(
        err,
        CompileError::MissingStage {
            pass: "block",
            requires: "map",
        }
    );
}

#[test]
fn pass_list_without_mapping_cannot_finalize() {
    let pm = PassManager::new(
        Technique::Baseline,
        vec![Box::new(AllocateLatticePass::triangular())],
    );
    let err = pm.run(&ghz(3), &PipelineConfig::fast()).unwrap_err();
    assert_eq!(
        err,
        CompileError::MissingStage {
            pass: "finalize",
            requires: "map",
        }
    );
}

#[test]
fn empty_program_is_a_typed_error() {
    let err = try_compile(
        &Circuit::new(0),
        Technique::Baseline,
        &PipelineConfig::fast(),
    )
    .unwrap_err();
    assert_eq!(err, CompileError::EmptyProgram);
}

/// A deliberately broken pass: appends a Hadamard, leaving the native
/// {U3, CZ, CCZ} basis and changing the circuit's semantics.
struct InjectHadamard;

impl Pass for InjectHadamard {
    fn name(&self) -> &'static str {
        "inject-hadamard"
    }

    fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
        let mapped = ctx.mapped().expect("runs after map");
        let mut circuit = mapped.circuit().clone();
        circuit.h(0);
        let broken = mapped.with_circuit(circuit);
        ctx.set_mapped(broken);
        Ok(())
    }
}

#[test]
fn debug_invariants_catch_a_non_native_pass() {
    let mut pm = PassManager::new(
        Technique::OptiMap,
        vec![
            Box::new(AllocateLatticePass::triangular()),
            Box::new(MapPass::optimized()),
        ],
    )
    .with_debug_invariants(true);
    pm.push(Box::new(InjectHadamard));
    let err = pm.run(&ghz(3), &PipelineConfig::fast()).map(|_| ());
    match err {
        Err(CompileError::InvariantViolation { pass, detail }) => {
            assert_eq!(pass, "inject-hadamard");
            assert!(detail.contains("native"), "unexpected detail: {detail}");
        }
        other => panic!("expected invariant violation, got {other:?}"),
    }
}

#[test]
fn debug_invariants_pass_on_correct_pipelines() {
    let cfg = PipelineConfig::fast();
    for technique in Technique::ALL {
        let compiled = PassManager::for_technique(technique)
            .with_debug_invariants(true)
            .run(&ghz(4), &cfg)
            .unwrap_or_else(|e| panic!("{technique}: {e}"));
        assert!(compiled.mapped().circuit().is_native_basis());
    }
}

#[test]
fn pass_names_expose_the_pipeline_shape() {
    assert_eq!(
        PassManager::for_technique(Technique::Geyser).pass_names(),
        [
            "allocate-lattice",
            "map",
            "block",
            "compose",
            "seam-cleanup"
        ]
    );
    assert_eq!(
        PassManager::for_technique(Technique::Superconducting).pass_names(),
        ["allocate-lattice", "map"]
    );
}
