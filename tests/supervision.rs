//! End-to-end supervision: admission control on the bounded queue,
//! retry classification, circuit breaking with half-open recovery,
//! graceful shutdown, prompt cancellation of hung work, watchdog
//! preemption of hung workers, and crash-safe checkpoint/resume of
//! killed sweeps.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use geyser::{CompileError, FaultInjector, PipelineConfig, Technique};
use geyser_circuit::Circuit;
use geyser_supervisor::{
    run_supervised_compile, BreakerConfig, BreakerState, JobSpec, JobState, RetryPolicy,
    ServiceConfig, SupervisedCompileOptions, Supervisor, SupervisorConfig, SupervisorError,
    WatchdogConfig,
};
use geyser_workloads::ghz;

fn fast() -> PipelineConfig {
    PipelineConfig::fast()
}

/// Fast retries so exhaustion tests don't sit out real backoffs.
fn quick_retry(max_retries: usize) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        base_backoff_ms: 1,
        max_backoff_ms: 4,
        seed: 7,
    }
}

fn job(workload: &str, technique: Technique, faults: &str) -> JobSpec {
    let mut spec = JobSpec::new(workload, technique, ghz(4), fast());
    if !faults.is_empty() {
        spec.faults = FaultInjector::parse(faults).unwrap();
    }
    spec
}

/// A program known to yield several eligible composition blocks under
/// the fast config (the same shape the supervisor crate's own
/// checkpoint tests use), so `kill-after-block:1` reliably fires
/// mid-sweep with work left over for the resume.
fn blocky() -> Circuit {
    let mut c = Circuit::new(4);
    c.h(0).cz(0, 1).h(1).cz(1, 2).h(2).cz(0, 2).h(0).cz(1, 2);
    c
}

fn temp_ckpt(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "geyser-supervision-e2e-{}-{tag}.json",
        std::process::id()
    ))
}

#[test]
fn full_queue_rejects_submissions_and_cancel_frees_hung_jobs() {
    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        queue_capacity: 1,
        ..SupervisorConfig::default()
    });
    // Job 1 hangs at its first pass and occupies the lone worker.
    let h1 = supervisor
        .submit(job("q", Technique::OptiMap, "hang-pass:allocate-lattice"))
        .unwrap();
    // Job 2 is accepted once the worker has dequeued job 1; until
    // then the capacity-1 queue rejects it.
    let h2 = loop {
        match supervisor.submit(job("q", Technique::OptiMap, "hang-pass:allocate-lattice")) {
            Ok(handle) => break handle,
            Err(SupervisorError::QueueFull { capacity }) => {
                assert_eq!(capacity, 1);
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    };
    // Queue full again (job 2 waiting, worker busy): deterministic
    // rejection.
    let err = supervisor
        .submit(job("q", Technique::OptiMap, ""))
        .unwrap_err();
    assert!(matches!(err, SupervisorError::QueueFull { capacity: 1 }));
    assert!(supervisor.metrics().rejected >= 1);

    h1.cancel.cancel();
    h2.cancel.cancel();
    let results = supervisor.shutdown();
    assert_eq!(results.len(), 2);
    for r in results {
        assert_eq!(r.state, JobState::Cancelled);
        assert!(matches!(r.error, Some(CompileError::Cancelled { .. })));
    }
}

#[test]
fn fatal_errors_fail_fast_without_retries() {
    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        retry: quick_retry(3),
        ..SupervisorConfig::default()
    });
    let mut spec = job("fatal", Technique::Baseline, "");
    spec.program = Circuit::new(0); // EmptyProgram is Fatal
    supervisor.submit(spec).unwrap();
    let results = supervisor.shutdown();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].state, JobState::Failed);
    assert_eq!(results[0].attempts, 1, "fatal errors must never retry");
    assert!(matches!(results[0].error, Some(CompileError::EmptyProgram)));
}

#[test]
fn retryable_failures_back_off_until_the_budget_is_exhausted() {
    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        retry: quick_retry(2),
        ..SupervisorConfig::default()
    });
    supervisor
        .submit(job("flappy", Technique::OptiMap, "pass-panic:map"))
        .unwrap();
    let results = supervisor.shutdown();
    assert_eq!(results[0].state, JobState::Failed);
    assert_eq!(results[0].attempts, 3, "1 try + 2 retries");
    assert!(matches!(
        results[0].error,
        Some(CompileError::PassPanicked { .. })
    ));
}

#[test]
fn transient_fault_succeeds_on_retry_with_stats_attached() {
    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        retry: quick_retry(1),
        ..SupervisorConfig::default()
    });
    supervisor
        .submit(job("transient", Technique::OptiMap, "pass-panic-once:map"))
        .unwrap();
    let results = supervisor.shutdown();
    assert_eq!(results[0].state, JobState::Done);
    assert_eq!(results[0].attempts, 2);
    let compiled = results[0].compiled.as_ref().unwrap();
    let stats = compiled
        .report()
        .and_then(|r| r.supervision.as_ref())
        .expect("supervision stats attached");
    assert_eq!(stats.attempts, 2);
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.breaker_state, "closed");
}

#[test]
fn open_breaker_fails_jobs_fast_without_running_them() {
    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        breaker: BreakerConfig {
            failure_threshold: 1,
            cooldown_ms: 60_000,
        },
        ..SupervisorConfig::default()
    });
    supervisor
        .submit(job("sick", Technique::OptiMap, "pass-panic:map"))
        .unwrap();
    supervisor.wait_idle();
    assert_eq!(supervisor.breaker_state("sick"), Some(BreakerState::Open));
    // Same workload: bounced without consuming an attempt. Another
    // workload: unaffected.
    supervisor
        .submit(job("sick", Technique::OptiMap, ""))
        .unwrap();
    supervisor
        .submit(job("healthy", Technique::OptiMap, ""))
        .unwrap();
    supervisor.wait_idle();
    let metrics = supervisor.metrics();
    assert_eq!(metrics.broken, 1);
    assert_eq!(metrics.breaker_trips, 1);
    let results = supervisor.shutdown();
    let bounced = results
        .iter()
        .find(|r| r.workload == "sick" && r.state == JobState::Broken)
        .expect("second sick job bounced");
    assert_eq!(bounced.attempts, 0, "broken jobs never run");
    assert!(results
        .iter()
        .any(|r| r.workload == "healthy" && r.state == JobState::Done));
}

#[test]
fn breaker_half_opens_after_cooldown_and_closes_on_probe_success() {
    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        breaker: BreakerConfig {
            failure_threshold: 1,
            cooldown_ms: 0,
        },
        ..SupervisorConfig::default()
    });
    supervisor
        .submit(job("recovering", Technique::OptiMap, "pass-panic:map"))
        .unwrap();
    supervisor.wait_idle();
    assert_eq!(
        supervisor.breaker_state("recovering"),
        Some(BreakerState::Open)
    );
    // Zero cooldown: the next job is the half-open probe; it succeeds
    // and closes the breaker.
    supervisor
        .submit(job("recovering", Technique::OptiMap, ""))
        .unwrap();
    supervisor.wait_idle();
    assert_eq!(
        supervisor.breaker_state("recovering"),
        Some(BreakerState::Closed)
    );
    let results = supervisor.shutdown();
    assert!(results
        .iter()
        .any(|r| r.state == JobState::Done && r.attempts == 1));
}

#[test]
fn half_open_probe_is_exclusive_under_concurrent_submitters() {
    // Once a breaker half-opens, exactly ONE probe may run; rivals
    // racing it on other workers must bounce with the breaker-open
    // fail-fast (Broken, zero attempts), and the probe's success must
    // fully close the breaker for everyone after it.
    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 4,
        retry: quick_retry(1),
        breaker: BreakerConfig {
            failure_threshold: 1,
            cooldown_ms: 0,
        },
        watchdog: Some(WatchdogConfig {
            hang_timeout_ms: 2_000,
            poll_interval_ms: 10,
        }),
        ..SupervisorConfig::default()
    });

    // Trip the breaker open.
    supervisor
        .submit(job("contended", Technique::OptiMap, "pass-panic:map"))
        .unwrap();
    supervisor.wait_idle();
    assert_eq!(
        supervisor.breaker_state("contended"),
        Some(BreakerState::Open)
    );

    // The probe: admitted through the zero cooldown, then hangs at its
    // first pass, pinning the breaker HalfOpen while the rivals below
    // race it. The watchdog later preempts the hang and the clean
    // retry succeeds — a successful probe, just a slow one.
    let probe = supervisor
        .submit(job("contended", Technique::OptiMap, "hang-pass:map"))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while supervisor.breaker_state("contended") != Some(BreakerState::HalfOpen) {
        assert!(
            Instant::now() < deadline,
            "probe never half-opened the breaker"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // Three rival submitters race the in-flight probe from their own
    // threads; three idle workers dequeue them against the HalfOpen
    // breaker.
    let rival_ids: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                s.spawn(|| {
                    supervisor
                        .submit(job("contended", Technique::OptiMap, ""))
                        .unwrap()
                        .id
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Every rival must bounce while the probe still holds the flight.
    let deadline = Instant::now() + Duration::from_secs(30);
    while supervisor.metrics().broken < 3 {
        assert!(Instant::now() < deadline, "rivals were not bounced");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        supervisor.breaker_state("contended"),
        Some(BreakerState::HalfOpen),
        "rivals must not perturb the in-flight probe"
    );

    // Probe completes (preempted hang + clean retry) and closes the
    // breaker; the next submission runs normally.
    supervisor.wait_idle();
    assert_eq!(
        supervisor.breaker_state("contended"),
        Some(BreakerState::Closed),
        "probe success must fully close the breaker"
    );
    let after = supervisor
        .submit(job("contended", Technique::OptiMap, ""))
        .unwrap();
    assert_eq!(
        supervisor.metrics().breaker_trips,
        1,
        "the probe's success must not re-trip"
    );
    let results = supervisor.shutdown();

    let metrics_broken = results
        .iter()
        .filter(|r| r.state == JobState::Broken)
        .collect::<Vec<_>>();
    assert_eq!(metrics_broken.len(), 3, "exactly the rivals bounced");
    for r in &metrics_broken {
        assert!(rival_ids.contains(&r.id));
        assert_eq!(r.attempts, 0, "bounced rivals must never run");
    }
    let probe_result = results.iter().find(|r| r.id == probe.id).unwrap();
    assert_eq!(probe_result.state, JobState::Done);
    assert_eq!(
        probe_result.attempts, 2,
        "one preempted hang + one clean retry"
    );
    let after_result = results.iter().find(|r| r.id == after.id).unwrap();
    assert_eq!(after_result.state, JobState::Done);
}

#[test]
fn graceful_shutdown_drains_every_queued_job() {
    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        ..SupervisorConfig::default()
    });
    let ids: Vec<u64> = (0..3)
        .map(|i| {
            supervisor
                .submit(job(&format!("drain-{i}"), Technique::Baseline, ""))
                .unwrap()
                .id
        })
        .collect();
    // Shut down immediately: queued jobs must still run to completion.
    let results = supervisor.shutdown();
    assert_eq!(results.len(), 3);
    for id in ids {
        let r = results.iter().find(|r| r.id == id).unwrap();
        assert_eq!(r.state, JobState::Done);
    }
}

#[test]
fn cancelled_dedup_follower_resolves_cancelled_and_skips_promotion() {
    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        retry: quick_retry(0),
        service: Some(ServiceConfig::default()),
        ..SupervisorConfig::default()
    });
    // The leader hangs at its first pass, holding its flight open so
    // the two identical submissions below deterministically attach.
    let leader = supervisor
        .submit(job("dup", Technique::OptiMap, "hang-pass:allocate-lattice").with_dedup(true))
        .unwrap();
    let follower_a = supervisor
        .submit(job("dup", Technique::OptiMap, "").with_dedup(true))
        .unwrap();
    let follower_b = supervisor
        .submit(job("dup", Technique::OptiMap, "").with_dedup(true))
        .unwrap();
    // Cancel one follower, then the hung leader. The flight must
    // detach the cancelled follower (Cancelled, no broadcast, no
    // promotion) and re-elect the live one, which compiles normally.
    follower_a.cancel.cancel();
    leader.cancel.cancel();
    supervisor.wait_idle();
    let results = supervisor.shutdown();
    assert_eq!(results.len(), 3);
    let by_id = |id: u64| results.iter().find(|r| r.id == id).unwrap();
    assert_eq!(by_id(leader.id).state, JobState::Cancelled);
    let detached = by_id(follower_a.id);
    assert_eq!(detached.state, JobState::Cancelled);
    assert!(matches!(
        detached.error,
        Some(CompileError::Cancelled { .. })
    ));
    assert!(!detached.deduped, "a detached follower was never served");
    let promoted = by_id(follower_b.id);
    assert_eq!(promoted.state, JobState::Done);
    assert!(
        !promoted.deduped,
        "the promoted follower compiled for itself"
    );
}

#[test]
fn hung_pass_is_freed_promptly_by_cancellation() {
    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        ..SupervisorConfig::default()
    });
    let handle = supervisor
        .submit(job("stuck", Technique::OptiMap, "hang-pass:map"))
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let fired = Instant::now();
    handle.cancel.cancel();
    supervisor.wait_idle();
    assert!(
        fired.elapsed() < Duration::from_secs(10),
        "cancellation must free the hung worker promptly"
    );
    let results = supervisor.shutdown();
    assert_eq!(results[0].state, JobState::Cancelled);
    match results[0].error.as_ref().unwrap() {
        CompileError::Cancelled { pass } => assert_eq!(pass, "map"),
        other => panic!("expected Cancelled at the hung pass, got {other}"),
    }
}

#[test]
fn watchdog_preempts_hung_worker_and_retry_is_bit_identical() {
    // Reference: the same compile with no faults and no supervisor.
    let reference = run_supervised_compile(
        &ghz(4),
        &fast(),
        &SupervisedCompileOptions::new(Technique::OptiMap),
    )
    .unwrap();

    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        retry: quick_retry(1),
        watchdog: Some(WatchdogConfig {
            hang_timeout_ms: 100,
            poll_interval_ms: 10,
        }),
        ..SupervisorConfig::default()
    });
    let submitted = Instant::now();
    supervisor
        .submit(job("hung-once", Technique::OptiMap, "hang-pass:map"))
        .unwrap();
    supervisor.wait_idle();
    // The injected hang never returns on its own: finishing at all
    // proves the watchdog preempted it, and finishing quickly proves
    // detection latency is timeout + poll, not shutdown.
    assert!(
        submitted.elapsed() < Duration::from_secs(30),
        "watchdog must preempt the hung attempt promptly"
    );
    let results = supervisor.shutdown();
    assert_eq!(results[0].state, JobState::Done);
    assert_eq!(
        results[0].attempts, 2,
        "one preempted attempt + one clean retry"
    );
    let compiled = results[0].compiled.as_ref().unwrap();
    assert_eq!(
        compiled.mapped().circuit().ops(),
        reference.mapped().circuit().ops(),
        "the retried compile must be bit-identical to the uninjected run"
    );
    let stats = compiled
        .report()
        .and_then(|r| r.supervision.as_ref())
        .expect("supervision stats attached");
    assert_eq!(stats.hang_preemptions, 1);
    assert_eq!(stats.retries, 1);
}

#[test]
fn watchdog_exhaustion_surfaces_a_typed_worker_hung_error() {
    // With the retry budget at zero, the preempted attempt is
    // terminal and must carry the typed WorkerHung error (not a
    // generic cancellation).
    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        retry: quick_retry(0),
        watchdog: Some(WatchdogConfig {
            hang_timeout_ms: 100,
            poll_interval_ms: 10,
        }),
        ..SupervisorConfig::default()
    });
    supervisor
        .submit(job("hung-forever", Technique::OptiMap, "hang-pass:map"))
        .unwrap();
    let results = supervisor.shutdown();
    assert_eq!(results[0].state, JobState::Failed);
    assert_eq!(results[0].attempts, 1);
    match results[0].error.as_ref().unwrap() {
        CompileError::WorkerHung { pass, stalled_ms } => {
            assert_eq!(pass, "map");
            assert!(*stalled_ms >= 100, "stall must cover the timeout");
        }
        other => panic!("expected WorkerHung, got {other}"),
    }
}

#[test]
fn user_cancellation_wins_over_hang_preemption() {
    // A job the user cancels while it happens to be hung must report
    // Cancelled, not WorkerHung: the user's intent is the outer truth.
    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        retry: quick_retry(3),
        watchdog: Some(WatchdogConfig {
            hang_timeout_ms: 50_000,
            poll_interval_ms: 10,
        }),
        ..SupervisorConfig::default()
    });
    let handle = supervisor
        .submit(job("user-stop", Technique::OptiMap, "hang-pass:map"))
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    handle.cancel.cancel();
    let results = supervisor.shutdown();
    assert_eq!(results[0].state, JobState::Cancelled);
    assert!(
        matches!(results[0].error, Some(CompileError::Cancelled { .. })),
        "user cancellation must not be re-typed as a hang"
    );
}

#[test]
fn killed_sweep_resumes_bit_identical_through_the_supervisor() {
    let path = temp_ckpt("kill-resume");
    let _ = std::fs::remove_file(&path);

    // Reference: one uninterrupted supervised run.
    let reference = run_supervised_compile(
        &blocky(),
        &fast(),
        &SupervisedCompileOptions::new(Technique::Geyser),
    )
    .unwrap();

    // Sweep 1: the injected kill fires after the first fresh block.
    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        ..SupervisorConfig::default()
    });
    let mut killed = job("sweep", Technique::Geyser, "kill-after-block:1");
    killed.program = blocky();
    killed.checkpoint = Some(path.clone());
    supervisor.submit(killed).unwrap();
    let results = supervisor.shutdown();
    assert_eq!(results[0].state, JobState::Cancelled);
    assert!(path.exists(), "partial checkpoint survives the kill");

    // Sweep 2: resume picks the checkpoint up and finishes the rest.
    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        ..SupervisorConfig::default()
    });
    let mut resumed = job("sweep", Technique::Geyser, "");
    resumed.program = blocky();
    resumed.checkpoint = Some(path.clone());
    resumed.resume = true;
    supervisor.submit(resumed).unwrap();
    let results = supervisor.shutdown();
    assert_eq!(results[0].state, JobState::Done);
    let recovered = results[0].compiled.as_ref().unwrap();
    assert_eq!(
        recovered.mapped().circuit().ops(),
        reference.mapped().circuit().ops(),
        "resumed sweep must be bit-identical to the uninterrupted run"
    );
    let stats = recovered
        .report()
        .and_then(|r| r.supervision.as_ref())
        .unwrap();
    assert!(
        stats.blocks_resumed >= 1,
        "restored blocks must be reported"
    );
    assert!(stats.resumed_from_checkpoint);
    assert!(!path.exists(), "finished jobs clean their checkpoint up");
}

#[test]
fn checkpoint_from_a_different_hardware_spec_restores_nothing() {
    // A checkpoint written while compiling for one machine must never
    // splice its blocks into a compilation for another: the binding
    // carries the HardwareSpec digest, so a cross-spec resume degrades
    // to a fresh start (and still finishes cleanly).
    let path = temp_ckpt("cross-spec");
    let _ = std::fs::remove_file(&path);

    // Killed sweep under the paper machine leaves a partial checkpoint.
    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        ..SupervisorConfig::default()
    });
    let mut killed = job("cross-spec", Technique::Geyser, "kill-after-block:1");
    killed.program = blocky();
    killed.checkpoint = Some(path.clone());
    supervisor.submit(killed).unwrap();
    let results = supervisor.shutdown();
    assert_eq!(results[0].state, JobState::Cancelled);
    assert!(path.exists(), "partial checkpoint survives the kill");

    // Resume the same workload compiled for a different machine.
    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        ..SupervisorConfig::default()
    });
    let mut resumed = JobSpec::new(
        "cross-spec",
        Technique::Geyser,
        blocky(),
        fast().with_hardware(geyser::HardwareSpec::near_term()),
    );
    resumed.checkpoint = Some(path.clone());
    resumed.resume = true;
    supervisor.submit(resumed).unwrap();
    let results = supervisor.shutdown();
    assert_eq!(results[0].state, JobState::Done);
    let stats = results[0]
        .compiled
        .as_ref()
        .unwrap()
        .report()
        .and_then(|r| r.supervision.as_ref())
        .unwrap();
    assert_eq!(
        stats.blocks_resumed, 0,
        "foreign-machine checkpoints must be rejected wholesale"
    );
    assert!(!stats.resumed_from_checkpoint);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_checkpoint_degrades_to_a_fresh_start() {
    let path = temp_ckpt("corrupt");
    std::fs::write(&path, "definitely-not-json{{{").unwrap();
    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        ..SupervisorConfig::default()
    });
    let mut spec = job("garbled", Technique::Geyser, "");
    spec.checkpoint = Some(path.clone());
    spec.resume = true;
    supervisor.submit(spec).unwrap();
    let results = supervisor.shutdown();
    assert_eq!(results[0].state, JobState::Done);
    let stats = results[0]
        .compiled
        .as_ref()
        .unwrap()
        .report()
        .and_then(|r| r.supervision.as_ref())
        .unwrap();
    assert_eq!(stats.blocks_resumed, 0, "garbage restores nothing");
    assert!(!stats.resumed_from_checkpoint);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn injected_checkpoint_corruption_still_lets_the_job_finish() {
    // checkpoint-corrupt truncates the file after every write: the
    // current run must be unaffected (it composes from memory), and a
    // later resume just degrades to a fresh start.
    let path = temp_ckpt("self-corrupting");
    let _ = std::fs::remove_file(&path);
    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        ..SupervisorConfig::default()
    });
    let mut spec = job("torn-writes", Technique::Geyser, "checkpoint-corrupt");
    spec.program = blocky();
    spec.checkpoint = Some(path.clone());
    supervisor.submit(spec).unwrap();
    let results = supervisor.shutdown();
    assert_eq!(results[0].state, JobState::Done);
    let _ = std::fs::remove_file(&path);
}
