//! Serde round-trips for the workspace's public data types — circuits,
//! lattices, noise models, and observables all persist losslessly as
//! JSON (the interchange format the result cache and experiment logs
//! rely on).

use geyser_circuit::Circuit;
use geyser_sim::{NoiseModel, Observable, Pauli, PauliString};
use geyser_topology::Lattice;
use geyser_workloads::{qaoa, qft_readout};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let body = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&body).expect("deserializes")
}

#[test]
fn circuits_roundtrip() {
    for c in [qaoa(5, 2, 3), qft_readout(4, 9)] {
        let back: Circuit = roundtrip(&c);
        assert_eq!(back, c);
        assert_eq!(back.total_pulses(), c.total_pulses());
    }
}

#[test]
fn parameterized_gates_keep_exact_angles() {
    let mut c = Circuit::new(2);
    c.u3(0.123456789012345, -std::f64::consts::PI, 1e-14, 0)
        .cp(std::f64::consts::E, 0, 1);
    let back: Circuit = roundtrip(&c);
    assert_eq!(back.ops(), c.ops());
}

#[test]
fn lattices_roundtrip_with_adjacency() {
    for lat in [
        Lattice::triangular(3, 4),
        Lattice::square(2, 5),
        Lattice::square_diagonal(3, 3),
    ] {
        let back: Lattice = roundtrip(&lat);
        assert_eq!(back, lat);
        assert_eq!(back.triangles(), lat.triangles());
        assert_eq!(back.edges(), lat.edges());
    }
}

#[test]
fn noise_models_roundtrip() {
    let nm = NoiseModel::symmetric(0.0035).with_per_operation_granularity();
    let back: NoiseModel = roundtrip(&nm);
    assert_eq!(back, nm);
}

#[test]
fn observables_roundtrip() {
    let obs = Observable::new(vec![
        PauliString::identity(1.5),
        PauliString::new(-0.5, vec![(0, Pauli::X), (2, Pauli::Z)]),
        PauliString::new(0.25, vec![(1, Pauli::Y)]),
    ]);
    let back: Observable = roundtrip(&obs);
    assert_eq!(back, obs);
}
