//! Serde round-trips for the workspace's public data types — circuits,
//! lattices, noise models, and observables all persist losslessly as
//! JSON (the interchange format the result cache and experiment logs
//! rely on).

use geyser_circuit::Circuit;
use geyser_sim::{NoiseModel, Observable, Pauli, PauliString};
use geyser_topology::Lattice;
use geyser_workloads::{qaoa, qft_readout};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let body = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&body).expect("deserializes")
}

#[test]
fn circuits_roundtrip() {
    for c in [qaoa(5, 2, 3), qft_readout(4, 9)] {
        let back: Circuit = roundtrip(&c);
        assert_eq!(back, c);
        assert_eq!(back.total_pulses(), c.total_pulses());
    }
}

#[test]
fn parameterized_gates_keep_exact_angles() {
    let mut c = Circuit::new(2);
    c.u3(0.123456789012345, -std::f64::consts::PI, 1e-14, 0)
        .cp(std::f64::consts::E, 0, 1);
    let back: Circuit = roundtrip(&c);
    assert_eq!(back.ops(), c.ops());
}

#[test]
fn lattices_roundtrip_with_adjacency() {
    for lat in [
        Lattice::triangular(3, 4),
        Lattice::square(2, 5),
        Lattice::square_diagonal(3, 3),
    ] {
        let back: Lattice = roundtrip(&lat);
        assert_eq!(back, lat);
        assert_eq!(back.triangles(), lat.triangles());
        assert_eq!(back.edges(), lat.edges());
    }
}

#[test]
fn noise_models_roundtrip() {
    let nm = NoiseModel::symmetric(0.0035).with_per_operation_granularity();
    let back: NoiseModel = roundtrip(&nm);
    assert_eq!(back, nm);
}

#[test]
fn observables_roundtrip() {
    let obs = Observable::new(vec![
        PauliString::identity(1.5),
        PauliString::new(-0.5, vec![(0, Pauli::X), (2, Pauli::Z)]),
        PauliString::new(0.25, vec![(1, Pauli::Y)]),
    ]);
    let back: Observable = roundtrip(&obs);
    assert_eq!(back, obs);
}

#[test]
fn hardware_specs_roundtrip_preserving_digests() {
    for spec in [
        geyser::HardwareSpec::paper(),
        geyser::HardwareSpec::square_diagonal(),
        geyser::HardwareSpec::near_term(),
    ] {
        let back: geyser::HardwareSpec = roundtrip(&spec);
        assert_eq!(back, spec);
        assert_eq!(back.digest(), spec.digest());
    }
}

#[test]
fn golden_hardware_spec_json_stays_parseable() {
    // A scenario file as shipped in examples/hardware/. This literal
    // is the on-disk contract: it must keep parsing to the paper
    // machine (same pinned digest) across releases, or every saved
    // spec file in the wild silently changes meaning.
    let golden = r#"{
        "name": "paper",
        "lattice": {
            "kind": "Triangular",
            "rows": 0,
            "cols": 0,
            "spacing": 1.0,
            "radius_factor": 1.01
        },
        "max_parallel_blocks": 0,
        "noise": {
            "bit_flip": 0.001,
            "phase_flip": 0.001,
            "granularity": "PerPulse"
        },
        "atom_loss": 0.0
    }"#;
    let spec = geyser::HardwareSpec::from_json(golden).expect("golden spec parses");
    assert_eq!(spec, geyser::HardwareSpec::paper());
    assert_eq!(spec.digest(), 0x7925_376e_27ff_4848);
    assert!(spec.is_paper());
    // And the emitter round-trips its own output.
    let re: geyser::HardwareSpec =
        geyser::HardwareSpec::from_json(&spec.to_json_pretty()).expect("emitted JSON parses");
    assert_eq!(re.digest(), spec.digest());
}

#[test]
fn shipped_example_scenarios_load_and_validate() {
    // The scenario files under examples/hardware/ are user-facing
    // documentation; they must keep loading as the schema evolves.
    let near = geyser::HardwareSpec::load(std::path::Path::new("examples/hardware/near-term.json"))
        .expect("near-term example loads");
    assert_eq!(near.digest(), geyser::HardwareSpec::near_term().digest());
    let wide =
        geyser::HardwareSpec::load(std::path::Path::new("examples/hardware/wide-square.json"))
            .expect("wide-square example loads");
    assert!(!wide.is_paper());
    assert_ne!(wide.digest(), near.digest());
}
