//! Workspace-level property tests spanning multiple crates: random
//! programs flow through the full pipeline and must come out
//! semantically intact.

use geyser::{compile, ideal_logical_distribution, PipelineConfig, Technique};
use geyser_blocking::{block_circuit, BlockingConfig};
use geyser_circuit::{Circuit, Gate, Operation};
use geyser_map::{map_circuit, optimize_to_fixpoint, to_native_basis, MappingOptions};
use geyser_num::hilbert_schmidt_distance;
use geyser_sim::{circuit_unitary, ideal_distribution, total_variation_distance};
use geyser_topology::Lattice;
use proptest::prelude::*;

/// Strategy: a random logical circuit on `n` qubits.
fn random_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    let gate = prop_oneof![
        (0..n).prop_map(|q| (Gate::H, vec![q])),
        (0..n, 0.0..std::f64::consts::TAU).prop_map(|(q, t)| (Gate::RZ(t), vec![q])),
        (0..n, 0.0..std::f64::consts::TAU).prop_map(|(q, t)| (Gate::RY(t), vec![q])),
        (0..n).prop_map(|q| (Gate::T, vec![q])),
        (0..n, 0..n).prop_filter_map("distinct", move |(a, b)| {
            (a != b).then_some((Gate::CX, vec![a, b]))
        }),
        (0..n, 0..n).prop_filter_map("distinct", move |(a, b)| {
            (a != b).then_some((Gate::CZ, vec![a, b]))
        }),
    ];
    proptest::collection::vec(gate, 1..max_len).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for (g, qs) in gates {
            c.push(Operation::new(g, qs));
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn optimization_passes_preserve_unitary(c in random_circuit(4, 30)) {
        let native = to_native_basis(&c);
        let optimized = optimize_to_fixpoint(&native);
        let d = hilbert_schmidt_distance(&circuit_unitary(&native), &circuit_unitary(&optimized));
        prop_assert!(d < 1e-8, "passes changed semantics: HSD = {d}");
        prop_assert!(optimized.total_pulses() <= native.total_pulses());
    }

    #[test]
    fn blocking_covers_each_op_once(c in random_circuit(6, 40)) {
        let lat = Lattice::triangular_for(6);
        let mapped = map_circuit(&c, &lat, &MappingOptions::optimized());
        let blocked = block_circuit(mapped.circuit(), &lat, &BlockingConfig::default());
        let mut seen = vec![false; mapped.circuit().len()];
        for block in blocked.blocks() {
            for &i in block.op_indices() {
                prop_assert!(!seen[i], "op {i} in two blocks");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "op missing from blocks");
    }

    #[test]
    fn blocking_reassembly_preserves_unitary(c in random_circuit(5, 25)) {
        let lat = Lattice::triangular_for(5);
        let mapped = map_circuit(&c, &lat, &MappingOptions::optimized());
        let blocked = block_circuit(mapped.circuit(), &lat, &BlockingConfig::default());
        let d = hilbert_schmidt_distance(
            &circuit_unitary(mapped.circuit()),
            &circuit_unitary(&blocked.reassemble()),
        );
        prop_assert!(d < 1e-8, "reassembly changed semantics: HSD = {d}");
    }

    #[test]
    fn exact_pipeline_preserves_distributions(c in random_circuit(4, 20)) {
        for t in [Technique::Baseline, Technique::OptiMap, Technique::Superconducting] {
            let compiled = compile(&c, t, &PipelineConfig::fast());
            let tvd = total_variation_distance(
                &ideal_distribution(&c),
                &ideal_logical_distribution(&compiled),
            );
            prop_assert!(tvd < 1e-8, "{t}: TVD = {tvd}");
        }
    }

    #[test]
    fn mapped_two_qubit_gates_are_always_adjacent(c in random_circuit(5, 25)) {
        let lat = Lattice::triangular_for(5);
        let mapped = map_circuit(&c, &lat, &MappingOptions::optimized());
        for op in mapped.circuit().iter() {
            if op.arity() == 2 {
                prop_assert!(lat.are_adjacent(op.qubits()[0], op.qubits()[1]));
            }
        }
    }
}
