//! Workspace-level property tests spanning multiple crates: random
//! programs flow through the full pipeline and must come out
//! semantically intact.
//!
//! Uses a seeded random-circuit generator in place of proptest (not
//! available offline): each property runs over a fixed set of seeds,
//! so failures are exactly reproducible by seed.

use geyser::{compile, ideal_logical_distribution, PipelineConfig, Technique};
use geyser_blocking::{block_circuit, BlockingConfig};
use geyser_circuit::{Circuit, Gate, Operation};
use geyser_map::{map_circuit, optimize_to_fixpoint, to_native_basis, MappingOptions};
use geyser_num::hilbert_schmidt_distance;
use geyser_sim::{circuit_unitary, ideal_distribution, total_variation_distance};
use geyser_topology::Lattice;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 24;

/// A random logical circuit on `n` qubits with `1..max_len` gates.
fn random_circuit(n: usize, max_len: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(n as u64));
    let len = 1 + rng.gen_range(0..max_len - 1);
    let mut c = Circuit::new(n);
    for _ in 0..len {
        let q = rng.gen_range(0..n);
        match rng.gen_range(0..6u8) {
            0 => {
                c.push(Operation::new(Gate::H, vec![q]));
            }
            1 => {
                let t = rng.gen_range(0.0..std::f64::consts::TAU);
                c.push(Operation::new(Gate::RZ(t), vec![q]));
            }
            2 => {
                let t = rng.gen_range(0.0..std::f64::consts::TAU);
                c.push(Operation::new(Gate::RY(t), vec![q]));
            }
            3 => {
                c.push(Operation::new(Gate::T, vec![q]));
            }
            kind => {
                let mut p = rng.gen_range(0..n);
                if p == q {
                    p = (p + 1) % n;
                }
                let gate = if kind == 4 { Gate::CX } else { Gate::CZ };
                c.push(Operation::new(gate, vec![q, p]));
            }
        }
    }
    c
}

#[test]
fn optimization_passes_preserve_unitary() {
    for seed in 0..CASES {
        let c = random_circuit(4, 30, seed);
        let native = to_native_basis(&c);
        let optimized = optimize_to_fixpoint(&native);
        let d = hilbert_schmidt_distance(&circuit_unitary(&native), &circuit_unitary(&optimized));
        assert!(d < 1e-8, "seed {seed}: passes changed semantics, HSD = {d}");
        assert!(
            optimized.total_pulses() <= native.total_pulses(),
            "seed {seed}"
        );
    }
}

#[test]
fn blocking_covers_each_op_once() {
    for seed in 0..CASES {
        let c = random_circuit(6, 40, seed);
        let lat = Lattice::triangular_for(6);
        let mapped = map_circuit(&c, &lat, &MappingOptions::optimized());
        let blocked = block_circuit(mapped.circuit(), &lat, &BlockingConfig::default());
        let mut seen = vec![false; mapped.circuit().len()];
        for block in blocked.blocks() {
            for &i in block.op_indices() {
                assert!(!seen[i], "seed {seed}: op {i} in two blocks");
                seen[i] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "seed {seed}: op missing from blocks"
        );
    }
}

#[test]
fn blocking_reassembly_preserves_unitary() {
    for seed in 0..CASES {
        let c = random_circuit(5, 25, seed);
        let lat = Lattice::triangular_for(5);
        let mapped = map_circuit(&c, &lat, &MappingOptions::optimized());
        let blocked = block_circuit(mapped.circuit(), &lat, &BlockingConfig::default());
        let d = hilbert_schmidt_distance(
            &circuit_unitary(mapped.circuit()),
            &circuit_unitary(&blocked.reassemble()),
        );
        assert!(
            d < 1e-8,
            "seed {seed}: reassembly changed semantics, HSD = {d}"
        );
    }
}

#[test]
fn exact_pipeline_preserves_distributions() {
    for seed in 0..CASES {
        let c = random_circuit(4, 20, seed);
        for t in [
            Technique::Baseline,
            Technique::OptiMap,
            Technique::Superconducting,
        ] {
            let compiled = compile(&c, t, &PipelineConfig::fast());
            let tvd = total_variation_distance(
                &ideal_distribution(&c),
                &ideal_logical_distribution(&compiled),
            );
            assert!(tvd < 1e-8, "seed {seed}, {t}: TVD = {tvd}");
        }
    }
}

#[test]
fn mapped_two_qubit_gates_are_always_adjacent() {
    for seed in 0..CASES {
        let c = random_circuit(5, 25, seed);
        let lat = Lattice::triangular_for(5);
        let mapped = map_circuit(&c, &lat, &MappingOptions::optimized());
        for op in mapped.circuit().iter() {
            if op.arity() == 2 {
                assert!(
                    lat.are_adjacent(op.qubits()[0], op.qubits()[1]),
                    "seed {seed}: non-adjacent 2q op"
                );
            }
        }
    }
}
