//! Echo invariants: every generator followed by its inverse returns
//! the register to `|0…0⟩`, before and after compilation — a strong
//! whole-pipeline semantic check that exercises `Circuit::inverted`
//! and every gate's `inverse()` simultaneously.

use geyser::{compile, ideal_logical_distribution, PipelineConfig, Technique};
use geyser_circuit::Circuit;
use geyser_sim::ideal_distribution;
use geyser_workloads::{advantage, ghz, qaoa, qft, vqe, w_state};

fn mirror(program: &Circuit) -> Circuit {
    let mut m = program.clone();
    m.extend_from(&program.inverted());
    m
}

fn assert_echo_returns_to_zero(program: &Circuit, label: &str) {
    let echo = mirror(program);
    let dist = ideal_distribution(&echo);
    assert!(
        (dist[0] - 1.0).abs() < 1e-9,
        "{label}: echo survival = {}",
        dist[0]
    );
}

#[test]
fn generators_echo_to_zero_state() {
    assert_echo_returns_to_zero(&ghz(5), "ghz");
    assert_echo_returns_to_zero(&w_state(4), "w-state");
    assert_echo_returns_to_zero(&qft(4), "qft");
    assert_echo_returns_to_zero(&qaoa(4, 2, 7), "qaoa");
    assert_echo_returns_to_zero(&vqe(4, 3, 9), "vqe");
    assert_echo_returns_to_zero(&advantage(4, 4, 2), "advantage");
}

#[test]
fn compiled_echo_preserves_survival() {
    // The exact techniques must keep the echo's certainty; Geyser
    // within its composition budget.
    let echo = mirror(&ghz(4));
    for (technique, tol) in [
        (Technique::Baseline, 1e-9),
        (Technique::OptiMap, 1e-9),
        (Technique::Superconducting, 1e-9),
        (Technique::Geyser, 1e-2),
    ] {
        let compiled = compile(&echo, technique, &PipelineConfig::fast());
        let dist = ideal_logical_distribution(&compiled);
        assert!(
            (dist[0] - 1.0).abs() < tol,
            "{technique}: survival = {}",
            dist[0]
        );
    }
}

#[test]
fn double_inversion_is_identity() {
    let c = qaoa(5, 2, 3);
    assert_eq!(c.inverted().inverted().ops(), c.ops());
}
