//! End-to-end fault tolerance: every injectable fault must either
//! degrade gracefully (the circuit still compiles, falls back, and
//! stays equivalent) or surface as the matching typed error — never
//! an abort, a poisoned pool, or a hang.

use std::time::Duration;

use geyser::passes::{AllocateLatticePass, BlockPass, ComposePass, MapPass, SeamCleanupPass};
use geyser::{
    evaluate_tvd, try_evaluate_tvd_with_faults, CancelToken, CompileContext, CompileError,
    ErrorClass, FaultInjector, Pass, PassManager, PipelineConfig, Technique,
};
use geyser_sim::{NoiseModel, SimError, SimFaults, MAX_TRAJECTORY_RETRIES};
use geyser_workloads::{ghz, qaoa};

fn fast() -> PipelineConfig {
    PipelineConfig::fast()
}

/// All eligible block indices are well inside 0..64 for these tiny
/// workloads, so "fault every block" plans can just list the range.
fn all_blocks() -> Vec<usize> {
    (0..64).collect()
}

#[test]
fn injected_pass_panic_becomes_typed_error() {
    let plan = FaultInjector::parse("pass-panic:map").unwrap();
    let err = PassManager::for_technique(Technique::Geyser)
        .with_faults(plan)
        .run(&ghz(4), &fast())
        .expect_err("panicking pass must fail the run");
    match err {
        CompileError::PassPanicked { pass, detail } => {
            assert_eq!(pass, "map");
            assert!(detail.contains("injected fault"), "{detail}");
        }
        other => panic!("expected PassPanicked, got {other}"),
    }
}

#[test]
fn forced_compose_timeout_degrades_every_block() {
    let program = qaoa(4, 1, 1);
    let plan = FaultInjector::parse("compose-timeout").unwrap();
    let compiled = PassManager::for_technique(Technique::Geyser)
        .with_faults(plan)
        .run(&program, &fast())
        .expect("timeout must degrade, not fail");
    let stats = compiled.composition_stats().expect("stats recorded");
    assert_eq!(stats.blocks_composed, 0);
    assert_eq!(stats.blocks_fell_back, stats.blocks_eligible);
    assert!(stats.blocks_eligible > 0, "workload must have blocks");
    let report = compiled.report().expect("report attached");
    assert_eq!(report.blocks_fell_back, stats.blocks_fell_back as u64);
    // The degraded circuit is still runnable and equivalent: with
    // every block keeping its original pulses the compilation floor
    // is numerically zero.
    let tvd = evaluate_tvd(&compiled, &program, &NoiseModel::noiseless(), 1, 0);
    assert!(
        tvd.compilation_tvd < 1e-9,
        "floor = {}",
        tvd.compilation_tvd
    );
}

#[test]
fn corrupted_blocks_never_reach_the_output() {
    let program = qaoa(4, 1, 1);
    let plan = FaultInjector {
        compose: geyser_compose::ComposeFaults {
            corrupt_blocks: all_blocks(),
            panic_blocks: Vec::new(),
        },
        ..FaultInjector::none()
    };
    let compiled = PassManager::for_technique(Technique::Geyser)
        .with_faults(plan)
        .run(&program, &fast())
        .expect("corruption must degrade, not fail");
    let stats = compiled.composition_stats().expect("stats recorded");
    assert_eq!(stats.blocks_composed, 0, "no corrupted candidate accepted");
    let tvd = evaluate_tvd(&compiled, &program, &NoiseModel::noiseless(), 1, 0);
    assert!(
        tvd.compilation_tvd < 1e-9,
        "floor = {}",
        tvd.compilation_tvd
    );
}

#[test]
fn panicking_workers_are_isolated_per_block() {
    let program = qaoa(4, 1, 1);
    let plan = FaultInjector {
        compose: geyser_compose::ComposeFaults {
            corrupt_blocks: Vec::new(),
            panic_blocks: all_blocks(),
        },
        ..FaultInjector::none()
    };
    let compiled = PassManager::for_technique(Technique::Geyser)
        .with_faults(plan)
        .run(&program, &fast())
        .expect("per-block panics must be contained");
    let stats = compiled.composition_stats().expect("stats recorded");
    assert_eq!(stats.blocks_failed, stats.blocks_eligible);
    assert!(stats.blocks_failed > 0);
    let report = compiled.report().expect("report attached");
    assert_eq!(report.blocks_failed, stats.blocks_failed as u64);
    let tvd = evaluate_tvd(&compiled, &program, &NoiseModel::noiseless(), 1, 0);
    assert!(tvd.compilation_tvd < 1e-9);
}

#[test]
fn transient_sim_fault_recovers_persistent_fault_errors() {
    let program = ghz(3);
    let compiled = geyser::compile(&program, Technique::OptiMap, &fast());
    let noise = NoiseModel::symmetric(0.005);

    let transient = SimFaults {
        nan_trajectories: vec![0, 5],
        ..SimFaults::none()
    };
    let report = try_evaluate_tvd_with_faults(&compiled, &program, &noise, 30, 1, &transient)
        .expect("transient NaN trajectories must be resampled");
    assert!(report.tvd_to_ideal.is_finite());

    let persistent = SimFaults {
        persistent_nan_trajectories: vec![4],
        ..SimFaults::none()
    };
    let err = try_evaluate_tvd_with_faults(&compiled, &program, &noise, 30, 1, &persistent)
        .expect_err("persistent corruption must surface");
    assert_eq!(
        err,
        CompileError::Sim(SimError::TrajectoryRejected {
            trajectory: 4,
            retries: MAX_TRAJECTORY_RETRIES
        })
    );
}

#[test]
fn zero_budget_fails_before_mapping_with_typed_error() {
    let cfg = fast().with_budget_ms(0);
    let err = PassManager::for_technique(Technique::Geyser)
        .run(&ghz(4), &cfg)
        .expect_err("no mapped circuit exists to degrade to");
    match err {
        CompileError::BudgetExceeded { pass } => assert_eq!(pass, "allocate-lattice"),
        other => panic!("expected BudgetExceeded, got {other}"),
    }
}

/// A stage that burns wall-clock time, standing in for any slow pass.
struct StallPass;

impl Pass for StallPass {
    fn name(&self) -> &'static str {
        "stall"
    }

    fn run(&self, _ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
        std::thread::sleep(Duration::from_millis(60));
        Ok(())
    }
}

#[test]
fn mid_pipeline_budget_expiry_degrades_to_mapped_circuit() {
    let passes: Vec<Box<dyn Pass>> = vec![
        Box::new(AllocateLatticePass::triangular()),
        Box::new(MapPass::optimized()),
        Box::new(StallPass),
        Box::new(BlockPass),
        Box::new(ComposePass),
        Box::new(SeamCleanupPass),
    ];
    let program = ghz(4);
    let cfg = fast().with_budget_ms(40);
    let compiled = PassManager::new(Technique::Geyser, passes)
        .run(&program, &cfg)
        .expect("mapped circuit exists, so the run must degrade");
    let report = compiled.report().expect("report attached");
    assert!(report.budget_exhausted);
    assert_eq!(
        report.skipped_passes,
        vec!["block", "compose", "seam-cleanup"]
    );
    // The degraded result is the mapped circuit: runnable, equivalent.
    assert!(compiled.total_pulses() > 0);
    let tvd = evaluate_tvd(&compiled, &program, &NoiseModel::noiseless(), 1, 0);
    assert!(tvd.compilation_tvd < 1e-9);
}

/// A stage that fires the run's cancel token mid-pipeline, standing
/// in for an operator cancelling while a later stage is queued.
struct CancelNowPass;

impl Pass for CancelNowPass {
    fn name(&self) -> &'static str {
        "cancel-now"
    }

    fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
        ctx.cancel().cancel();
        Ok(())
    }
}

#[test]
fn pre_cancelled_run_fails_typed_before_any_pass() {
    let token = CancelToken::new();
    token.cancel();
    let err = PassManager::for_technique(Technique::Geyser)
        .with_cancel(token)
        .run(&ghz(4), &fast())
        .expect_err("a cancelled job must not compile");
    match err {
        CompileError::Cancelled { ref pass } => assert_eq!(pass, "allocate-lattice"),
        ref other => panic!("expected Cancelled at the first pass, got {other}"),
    }
    assert_eq!(err.class(), ErrorClass::Cancelled);
}

#[test]
fn cancellation_mid_pipeline_stops_before_the_next_pass() {
    // Cancel lands after mapping: the pipeline must stop at the next
    // pass boundary with a typed error, not finalize the mapped
    // circuit the way budget expiry would.
    let passes: Vec<Box<dyn Pass>> = vec![
        Box::new(AllocateLatticePass::triangular()),
        Box::new(MapPass::optimized()),
        Box::new(CancelNowPass),
        Box::new(BlockPass),
        Box::new(ComposePass),
        Box::new(SeamCleanupPass),
    ];
    let err = PassManager::new(Technique::Geyser, passes)
        .with_cancel(CancelToken::new())
        .run(&ghz(4), &fast())
        .expect_err("cancelled mid-pipeline");
    match err {
        CompileError::Cancelled { pass } => assert_eq!(pass, "block"),
        other => panic!("expected Cancelled at 'block', got {other}"),
    }
}

#[test]
fn cancellation_wins_over_budget_degradation() {
    // With a mapped circuit in hand an expired budget would degrade
    // gracefully — but if the job was also cancelled, cancellation
    // must win: no partial output for a job nobody wants any more.
    let passes: Vec<Box<dyn Pass>> = vec![
        Box::new(AllocateLatticePass::triangular()),
        Box::new(MapPass::optimized()),
        Box::new(CancelNowPass),
        Box::new(StallPass),
        Box::new(BlockPass),
        Box::new(ComposePass),
        Box::new(SeamCleanupPass),
    ];
    let cfg = fast().with_budget_ms(40);
    let err = PassManager::new(Technique::Geyser, passes)
        .with_cancel(CancelToken::new())
        .run(&ghz(4), &cfg)
        .expect_err("cancelled and over budget");
    assert!(
        matches!(err, CompileError::Cancelled { .. }),
        "cancellation must beat budget degradation, got {err:?}"
    );
}

#[test]
fn cancel_mid_compose_is_typed_and_leaves_no_poison() {
    // The compose workers observe the token between blocks; a token
    // fired from another thread mid-run either lands (typed Cancelled)
    // or the run beats it — both must leave the process healthy.
    let program = qaoa(4, 1, 1);
    let token = CancelToken::new();
    let trigger = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            token.cancel();
        })
    };
    let outcome = PassManager::for_technique(Technique::Geyser)
        .with_cancel(token.clone())
        .run(&program, &fast());
    trigger.join().unwrap();
    if let Err(err) = outcome {
        assert_eq!(err.class(), ErrorClass::Cancelled, "got {err:?}");
    }
    // The fired token is reused: a fresh run over the same shared
    // machinery must fail typed, proving no lock was poisoned.
    let err = PassManager::for_technique(Technique::Geyser)
        .with_cancel(token)
        .run(&program, &fast())
        .expect_err("token is still cancelled");
    assert_eq!(err.class(), ErrorClass::Cancelled);
}

#[test]
fn cancel_frees_a_hung_pass_within_bounded_time() {
    // hang-pass spins until cancelled; the cancel below is the only
    // thing that can end this run.
    let plan = FaultInjector::parse("hang-pass:block").unwrap();
    let token = CancelToken::new();
    let trigger = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            token.cancel();
        })
    };
    let err = PassManager::for_technique(Technique::Geyser)
        .with_faults(plan)
        .with_cancel(token)
        .run(&ghz(4), &fast())
        .expect_err("a hung pass can only end cancelled");
    trigger.join().unwrap();
    match err {
        CompileError::Cancelled { pass } => assert_eq!(pass, "block"),
        other => panic!("expected Cancelled at the hung pass, got {other}"),
    }
}

#[test]
fn every_fault_spec_ends_gracefully_or_typed() {
    // The acceptance sweep: each injectable scenario must finish with
    // either a compiled circuit or a typed CompileError — the process
    // must never abort or hang.
    let program = ghz(4);
    let specs = [
        "pass-panic:allocate-lattice",
        "pass-panic:block",
        "pass-panic:compose",
        "compose-timeout",
        "compose-corrupt:0,compose-corrupt:1",
        "compose-panic:0,compose-corrupt:1",
        "compose-timeout,compose-panic:0",
    ];
    for spec in specs {
        let plan = FaultInjector::parse(spec).unwrap();
        let outcome = PassManager::for_technique(Technique::Geyser)
            .with_faults(plan)
            .run(&program, &fast());
        match (spec.contains("pass-panic"), outcome) {
            (true, Err(CompileError::PassPanicked { .. })) => {}
            (false, Ok(compiled)) => {
                // Graceful paths must still produce an equivalent circuit.
                let tvd = evaluate_tvd(&compiled, &program, &NoiseModel::noiseless(), 1, 0);
                assert!(tvd.compilation_tvd < 1e-2, "spec '{spec}' diverged");
            }
            (expected_panic, other) => {
                panic!("spec '{spec}' (panic={expected_panic}) ended with {other:?}")
            }
        }
    }
}

#[test]
fn seeded_fault_plans_are_reproducible_end_to_end() {
    let program = qaoa(4, 1, 1);
    let plan = FaultInjector::sampled(42, 8, 16);
    let run = |plan: FaultInjector| {
        PassManager::for_technique(Technique::Geyser)
            .with_faults(plan)
            .run(&program, &fast())
            .expect("sampled plan degrades gracefully")
    };
    let a = run(plan.clone());
    let b = run(plan);
    assert_eq!(a.total_pulses(), b.total_pulses());
    assert_eq!(a.composition_stats(), b.composition_stats());
}
