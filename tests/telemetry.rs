//! Cross-crate telemetry properties: span-tree well-formedness under
//! pass panics, bounded-buffer overflow accounting, histogram bucket
//! boundaries, and the determinism contract (telemetry observes the
//! pipeline, never steers it).

use geyser::{compile, FaultInjector, PassManager, PipelineConfig, Technique, Telemetry};
use geyser_circuit::Circuit;
use geyser_telemetry::{histogram_bucket_index, histogram_bucket_lo, validate_chrome_trace};

fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for i in 1..n {
        c.cx(i - 1, i);
    }
    c
}

#[test]
fn trace_spans_all_pipeline_crates() {
    let telemetry = Telemetry::enabled();
    let compiled = PassManager::for_technique(Technique::Geyser)
        .with_telemetry(telemetry.clone())
        .run(&ghz(4), &PipelineConfig::fast())
        .expect("compiles");
    assert!(compiled.composition_stats().is_some());

    let json = telemetry.chrome_trace_json().expect("enabled handle");
    let summary = validate_chrome_trace(&json).expect("balanced trace");
    assert!(summary.complete_spans > 0);
    for cat in ["core", "map", "blocking", "compose"] {
        assert!(
            summary.categories.iter().any(|c| c == cat),
            "no `{cat}` spans in {:?}",
            summary.categories
        );
    }
}

#[test]
fn panicking_pass_leaves_no_orphaned_open_spans() {
    // `pass-panic:compose` makes the compose pass panic inside the
    // pass manager's catch_unwind isolation. The unwind must still
    // drop every open span guard, so the exported trace stays
    // balanced and the pass span records the panic.
    let telemetry = Telemetry::enabled();
    let faults = FaultInjector::parse("pass-panic:compose").unwrap();
    let result = PassManager::for_technique(Technique::Geyser)
        .with_faults(faults)
        .with_telemetry(telemetry.clone())
        .run(&ghz(4), &PipelineConfig::fast());
    assert!(result.is_err(), "injected pass panic surfaces as an error");

    let json = telemetry.chrome_trace_json().expect("enabled handle");
    let summary =
        validate_chrome_trace(&json).expect("trace stays balanced across a caught pass panic");
    assert!(summary.complete_spans > 0);

    let records = telemetry.span_records().expect("enabled handle");
    let panicked: Vec<_> = records
        .iter()
        .filter(|r| r.attrs.iter().any(|(k, _)| *k == "panicked"))
        .collect();
    assert_eq!(panicked.len(), 1, "exactly the compose pass panicked");
    assert_eq!(panicked[0].cat, "core");
}

#[test]
fn ring_buffer_overflow_drops_without_blocking() {
    // Tiny per-shard capacity: most spans must be dropped, the drop
    // counter must account for them, and what *is* recorded must
    // still form a well-formed trace.
    let telemetry = Telemetry::with_span_capacity(4);
    for _ in 0..256 {
        let _span = telemetry.span("test", "overflow");
    }
    assert!(telemetry.spans_dropped() > 0, "overflow must be counted");
    assert_eq!(
        telemetry.spans_recorded() + telemetry.spans_dropped(),
        256,
        "every span is either recorded or counted as dropped"
    );
    let json = telemetry.chrome_trace_json().expect("enabled handle");
    validate_chrome_trace(&json).expect("surviving spans stay balanced");
}

#[test]
fn histogram_buckets_are_log2_with_exact_boundaries() {
    // Bucket 0 holds only value 0; bucket k >= 1 starts at 2^(k-1).
    assert_eq!(histogram_bucket_index(0), 0);
    assert_eq!(histogram_bucket_index(1), 1);
    assert_eq!(histogram_bucket_index(2), 2);
    assert_eq!(histogram_bucket_index(3), 2);
    assert_eq!(histogram_bucket_index(4), 3);
    assert_eq!(histogram_bucket_index(u64::MAX), 64);
    for k in 1..64 {
        let lo = histogram_bucket_lo(k);
        assert_eq!(histogram_bucket_index(lo), k, "lower edge of bucket {k}");
        if lo > 1 {
            assert_eq!(
                histogram_bucket_index(lo - 1),
                k - 1,
                "value below bucket {k} belongs to bucket {}",
                k - 1
            );
        }
    }

    let telemetry = Telemetry::enabled();
    for v in [0, 1, 2, 3, 4, 1023, 1024] {
        telemetry.histogram_record("test.h", v);
    }
    let snapshot = telemetry.metrics_snapshot().expect("enabled handle");
    let hist = snapshot
        .histograms
        .iter()
        .find(|h| h.name == "test.h")
        .expect("histogram registered");
    assert_eq!(hist.count, 7);
    let count_at = |lo: u64| {
        hist.buckets
            .iter()
            .find(|b| b.lo == lo)
            .map_or(0, |b| b.count)
    };
    assert_eq!(count_at(0), 1); // 0
    assert_eq!(count_at(1), 1); // 1
    assert_eq!(count_at(2), 2); // 2, 3
    assert_eq!(count_at(4), 1); // 4
    assert_eq!(count_at(512), 1); // 1023
    assert_eq!(count_at(1024), 1); // 1024
}

#[test]
fn compiled_output_is_bit_identical_with_telemetry_on_or_off() {
    // The overhead/determinism contract: telemetry observes the
    // pipeline but never feeds back into it, so a seeded run produces
    // the same circuit whether spans are recorded or not.
    let program = ghz(5);
    let cfg = PipelineConfig::fast().with_seed(11);
    for technique in [Technique::Baseline, Technique::Geyser] {
        let telemetry = Telemetry::enabled();
        let traced = PassManager::for_technique(technique)
            .with_telemetry(telemetry.clone())
            .run(&program, &cfg)
            .expect("compiles traced");
        let plain = compile(&program, technique, &cfg);
        assert_eq!(
            traced.mapped().circuit(),
            plain.mapped().circuit(),
            "{technique:?}: telemetry must not perturb the output circuit"
        );
        assert_eq!(traced.total_pulses(), plain.total_pulses());
        assert_eq!(traced.depth_pulses(), plain.depth_pulses());
        assert!(telemetry.spans_recorded() > 0, "the traced run did record");
    }
}
