//! Reproduction of the paper's qualitative claims as assertions — the
//! "shape" of the evaluation (who wins, in which direction) rather
//! than absolute numbers.

use geyser::{compile, evaluate_tvd, PipelineConfig, Technique};
use geyser_sim::NoiseModel;
use geyser_workloads::{adder, multiplier, qft_with_input};

fn cfg() -> PipelineConfig {
    // The paper-scale search budget: composition needs its full
    // annealing depth to win on the long-block workloads these tests
    // assert about (a compile takes ~20 s in release).
    PipelineConfig::paper()
}

#[test]
fn pulse_ordering_baseline_ge_optimap_ge_geyser() {
    // Fig. 12's ordering on every tested workload.
    for program in [adder(4), qft_with_input(5, 0b10110), multiplier(5)] {
        let base = compile(&program, Technique::Baseline, &cfg());
        let opti = compile(&program, Technique::OptiMap, &cfg());
        let geyser = compile(&program, Technique::Geyser, &cfg());
        assert!(opti.total_pulses() <= base.total_pulses());
        assert!(geyser.total_pulses() <= opti.total_pulses());
    }
}

#[test]
fn optimap_reduces_baseline_pulses_substantially() {
    // The paper reports 25–90% total reduction (OptiMap + Geyser);
    // assert at least a 15% OptiMap cut on the arithmetic workloads.
    for program in [adder(4), multiplier(5)] {
        let base = compile(&program, Technique::Baseline, &cfg()).total_pulses() as f64;
        let opti = compile(&program, Technique::OptiMap, &cfg()).total_pulses() as f64;
        assert!(
            opti <= 0.85 * base,
            "OptiMap only reached {opti} vs baseline {base}"
        );
    }
}

#[test]
fn geyser_introduces_ccz_on_long_block_workloads() {
    // Fig. 14c: the multiplier gains CCZ gates (the paper observes
    // exactly two on multiplier-5); Baseline and OptiMap never do.
    let program = multiplier(5);
    let geyser = compile(&program, Technique::Geyser, &cfg());
    assert!(
        geyser.gate_counts().ccz >= 1,
        "expected composed CCZ gates, got none"
    );
    for t in [Technique::Baseline, Technique::OptiMap] {
        assert_eq!(compile(&program, t, &cfg()).gate_counts().ccz, 0);
    }
}

#[test]
fn geyser_cuts_multiplier_pulses_beyond_optimap() {
    let program = multiplier(5);
    let opti = compile(&program, Technique::OptiMap, &cfg());
    let geyser = compile(&program, Technique::Geyser, &cfg());
    assert!(
        geyser.total_pulses() < opti.total_pulses(),
        "Geyser {} !< OptiMap {}",
        geyser.total_pulses(),
        opti.total_pulses()
    );
}

#[test]
fn tvd_ordering_matches_pulse_ordering_under_noise() {
    // Fig. 15's mechanism: fewer pulses → lower TVD, checked on the
    // multiplier where Geyser's pulse win is material.
    let program = multiplier(5);
    let noise = NoiseModel::symmetric(0.002);
    let base = compile(&program, Technique::Baseline, &cfg());
    let geyser = compile(&program, Technique::Geyser, &cfg());
    let tvd_base = evaluate_tvd(&base, &program, &noise, 300, 5).tvd_to_ideal;
    let tvd_geyser = evaluate_tvd(&geyser, &program, &noise, 300, 5).tvd_to_ideal;
    assert!(
        tvd_geyser < tvd_base,
        "Geyser TVD {tvd_geyser} !< Baseline TVD {tvd_base}"
    );
}

#[test]
fn composition_stats_expose_the_win() {
    let program = multiplier(5);
    let geyser = compile(&program, Technique::Geyser, &cfg());
    let stats = geyser.composition_stats().expect("stats exist");
    assert!(stats.blocks_composed > 0, "no blocks composed");
    assert!(stats.pulses_after < stats.pulses_before);
    assert!(stats.max_accepted_hsd <= 1e-3 + 1e-12);
}
