//! End-to-end semantic equivalence: every compilation technique must
//! preserve each program's ideal output distribution (exactly for
//! Baseline/OptiMap/Superconducting, within the composition HSD budget
//! for Geyser).

use geyser::{compile, ideal_logical_distribution, PipelineConfig, Technique};
use geyser_circuit::Circuit;
use geyser_sim::{ideal_distribution, total_variation_distance};
use geyser_workloads::{adder_with_inputs, multiplier_with_inputs, qaoa, qft_with_input, vqe};

fn assert_equivalent(program: &Circuit, technique: Technique, tol: f64) {
    let compiled = compile(program, technique, &PipelineConfig::fast());
    let want = ideal_distribution(program);
    let got = ideal_logical_distribution(&compiled);
    let tvd = total_variation_distance(&want, &got);
    assert!(
        tvd <= tol,
        "{technique} corrupted the program: TVD = {tvd:.3e} (tol {tol:.1e})"
    );
}

#[test]
fn exact_techniques_preserve_adder_output() {
    let program = adder_with_inputs(5, 2, 3);
    for t in [
        Technique::Baseline,
        Technique::OptiMap,
        Technique::Superconducting,
    ] {
        assert_equivalent(&program, t, 1e-9);
    }
}

#[test]
fn geyser_preserves_adder_output_within_budget() {
    // The paper's Sec. 6 bound: ideal-output TVD < 1e-2.
    assert_equivalent(&adder_with_inputs(5, 2, 3), Technique::Geyser, 1e-2);
}

#[test]
fn exact_techniques_preserve_qft_output() {
    let program = qft_with_input(5, 0b10110);
    for t in [
        Technique::Baseline,
        Technique::OptiMap,
        Technique::Superconducting,
    ] {
        assert_equivalent(&program, t, 1e-9);
    }
}

#[test]
fn geyser_preserves_qft_output_within_budget() {
    assert_equivalent(&qft_with_input(5, 0b10110), Technique::Geyser, 1e-2);
}

#[test]
fn geyser_preserves_qaoa_output_within_budget() {
    assert_equivalent(&qaoa(5, 2, 3), Technique::Geyser, 1e-2);
}

#[test]
fn geyser_preserves_vqe_output_within_budget() {
    assert_equivalent(&vqe(4, 6, 1), Technique::Geyser, 1e-2);
}

#[test]
fn geyser_preserves_multiplier_output_within_budget() {
    assert_equivalent(&multiplier_with_inputs(5, 1, 1), Technique::Geyser, 1e-2);
}

#[test]
fn explicit_paper_spec_is_bit_identical_to_the_default_pipeline() {
    // The refactor's core promise: threading HardwareSpec::paper()
    // through every layer reproduces the historical hard-coded
    // behavior exactly — same ops, pulses, and depth per technique.
    let program = adder_with_inputs(5, 2, 3);
    let implicit = PipelineConfig::fast();
    let explicit = PipelineConfig::fast().with_hardware(geyser::HardwareSpec::paper());
    for t in [
        Technique::Baseline,
        Technique::OptiMap,
        Technique::Geyser,
        Technique::Superconducting,
    ] {
        let a = compile(&program, t, &implicit);
        let b = compile(&program, t, &explicit);
        assert_eq!(
            a.mapped().circuit().ops(),
            b.mapped().circuit().ops(),
            "{t}: explicit paper spec diverged from the default"
        );
        assert_eq!(a.total_pulses(), b.total_pulses(), "{t}");
        assert_eq!(a.depth_pulses(), b.depth_pulses(), "{t}");
    }
}

#[test]
fn non_default_specs_still_compile_equivalent_circuits() {
    // Scenario files change the machine, not the math: compilation on
    // a square-diagonal lattice or the noisy near-term preset must
    // still preserve program semantics for the exact techniques.
    let program = qft_with_input(4, 0b1011);
    for spec in [
        geyser::HardwareSpec::square_diagonal(),
        geyser::HardwareSpec::near_term(),
    ] {
        let cfg = PipelineConfig::fast().with_hardware(spec.clone());
        for t in [Technique::Baseline, Technique::OptiMap] {
            let compiled = compile(&program, t, &cfg);
            let want = ideal_distribution(&program);
            let got = ideal_logical_distribution(&compiled);
            let tvd = total_variation_distance(&want, &got);
            assert!(
                tvd <= 1e-9,
                "{t} on '{}' corrupted the program: TVD = {tvd:.3e}",
                spec.name
            );
        }
    }
}

#[test]
fn adder_still_adds_after_geyser_compilation() {
    // Functional check: the most probable output of the compiled
    // noiseless circuit is the correct sum.
    let program = adder_with_inputs(4, 1, 1); // 1 + 1 = 10₂
    let compiled = compile(&program, Technique::Geyser, &PipelineConfig::fast());
    let dist = ideal_logical_distribution(&compiled);
    let best = dist
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    // Register: cin a0 b0 cout. Cuccaro restores the a operand, so
    // 1 + 1 ends as a0 = 1, b0 (sum bit) = 0, cout = 1 → |0101⟩.
    assert_eq!(best, 0b0101, "dist = {dist:?}");
    assert!(dist[best] > 0.95);
}
