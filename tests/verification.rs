//! End-to-end tests of the differential verification harness: oracle
//! edge cases around global phase, whole-pipeline equivalence for
//! every technique, and the fuzz → minimize loop catching an injected
//! silent miscompile.

use geyser::{verify_compiled, FaultInjector, PassManager, PipelineConfig, Technique};
use geyser_circuit::{Circuit, Gate, Operation};
use geyser_verify::{generate_cases, minimize, verify_circuits, FuzzOptions, VerifyConfig};

fn program() -> Circuit {
    let mut c = Circuit::new(4);
    c.h(0).cz(0, 1).h(1).cz(1, 2).h(2).cz(0, 2).h(0).cz(1, 3);
    c
}

/// `RZ(π) = -i·Z`: identical physics, different global phase. The
/// oracle compares isometries up to one global phase, so this must
/// pass at the strictest tolerance.
#[test]
fn global_phase_difference_is_equivalent() {
    let mut a = Circuit::new(2);
    a.h(0).cz(0, 1);
    a.push(Operation::new(Gate::Z, vec![1]));
    let mut b = Circuit::new(2);
    b.h(0).cz(0, 1);
    b.push(Operation::new(Gate::RZ(std::f64::consts::PI), vec![1]));
    let report = verify_circuits(&a, &b, &VerifyConfig::default());
    assert!(report.equivalent, "{report:?}");
    assert!(report.worst_fidelity >= 1.0 - 1e-9);
}

/// A circuit of self-cancelling gates is the identity and must verify
/// against the empty circuit exactly.
#[test]
fn all_identity_circuit_is_equivalent_to_empty() {
    let empty = Circuit::new(2);
    let mut id = Circuit::new(2);
    id.x(0).x(0).h(1).h(1);
    id.push(Operation::new(Gate::S, vec![0]));
    id.push(Operation::new(Gate::Sdg, vec![0]));
    let report = verify_circuits(&empty, &id, &VerifyConfig::default());
    assert!(report.equivalent, "{report:?}");
    assert!(report.worst_fidelity >= 1.0 - 1e-12);
}

/// A single corrupted rotation angle — a *relative* phase error, not a
/// global one — must be rejected.
#[test]
fn corrupted_gate_angle_is_inequivalent() {
    let mut a = Circuit::new(2);
    a.h(0).cz(0, 1);
    a.push(Operation::new(Gate::RZ(0.7), vec![1]));
    let mut b = Circuit::new(2);
    b.h(0).cz(0, 1);
    b.push(Operation::new(Gate::RZ(0.7 + 0.01), vec![1]));
    let report = verify_circuits(&a, &b, &VerifyConfig::default());
    assert!(!report.equivalent, "{report:?}");
    assert!(report.worst_fidelity < 1.0 - 1e-9);
}

/// Every technique's full pipeline preserves semantics on a real
/// program: exact pipelines at strict tolerance, the composing
/// pipeline within its composition allowance.
#[test]
fn every_technique_pipeline_verifies_end_to_end() {
    let cfg = PipelineConfig::fast();
    for technique in Technique::ALL {
        let compiled = geyser::try_compile(&program(), technique, &cfg).unwrap();
        let stats = verify_compiled(&program(), &compiled, &VerifyConfig::default());
        assert!(stats.equivalent, "{technique:?}: {stats:?}");
    }
}

/// The harness premise end to end: a silent miscompile injected after
/// every internal check passes the whole pipeline, is caught only by
/// the standalone oracle, and delta-debugging shrinks the reproducer
/// to well under a quarter of the original circuit.
#[test]
fn injected_miscompile_is_caught_and_minimized() {
    let cfg = PipelineConfig::fast();
    let vcfg = VerifyConfig::default();
    let faults = FaultInjector::parse("miscompile:0").unwrap();
    let source = program();

    let still_miscompiles = |circuit: &Circuit| {
        let compiled = match PassManager::for_technique(Technique::Baseline)
            .with_faults(faults.clone())
            .run(circuit, &cfg)
        {
            Ok(c) => c,
            Err(_) => return false,
        };
        !verify_compiled(circuit, &compiled, &vcfg).equivalent
    };

    assert!(
        still_miscompiles(&source),
        "the injected miscompile must slip past every internal check"
    );
    let (minimized, stats) = minimize(&source, still_miscompiles);
    assert!(still_miscompiles(&minimized), "reproducer must still fail");
    assert!(
        stats.minimized_ops * 4 <= stats.original_ops,
        "expected <=25% of {} ops, got {}",
        stats.original_ops,
        stats.minimized_ops
    );
}

/// Fuzz cases are a pure function of the seed, so a corpus can be
/// regenerated from its recorded metadata alone.
#[test]
fn fuzz_cases_are_reproducible_from_the_seed() {
    let opts = FuzzOptions {
        seed: 0xfee1,
        cases: 6,
        ..FuzzOptions::default()
    };
    let a = generate_cases(&opts);
    let b = generate_cases(&opts);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.circuit.ops(), y.circuit.ops());
    }
}
