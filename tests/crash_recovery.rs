//! Crash tolerance of the persistent stores: committed records that
//! are later torn (truncated mid-write) or bit-flipped must be caught
//! by the frame check, surface as *typed* errors, quarantine to a
//! `.corrupt-<digest>` sidecar, and never panic or silently replay
//! corrupt data into a compilation.

use std::path::{Path, PathBuf};

use geyser::store::{
    read_record_file, read_record_file_quarantining, truncate_torn_tail, write_record_atomic,
    StoreReadError, STORE_CORRUPT_COUNTER,
};
use geyser::{Technique, Telemetry};
use geyser_bench::{classify_cache_payload, CachePayloadStatus};
use geyser_circuit::Circuit;
use geyser_supervisor::{
    load_checkpoint, load_checkpoint_quarantining, load_journal_events, run_supervised_compile,
    write_checkpoint_atomic, Checkpoint, CheckpointError, JobSpec, JobState, Journal, JournalError,
    JournalEvent, ServiceConfig, ServiceCore, SupervisedCompileOptions, Supervisor,
    SupervisorConfig,
};

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "geyser-crash-recovery-{}-{tag}.json",
        std::process::id()
    ))
}

/// Writes a committed (frame-valid, loadable) checkpoint and returns
/// its path.
fn committed_checkpoint(tag: &str) -> PathBuf {
    let path = temp(tag);
    let _ = std::fs::remove_file(&path);
    write_checkpoint_atomic(&path, &Checkpoint::new(0xfeed, 42, 5, 0xc0de, 0xdead)).unwrap();
    assert!(
        load_checkpoint(&path).is_ok(),
        "the committed record must load before we corrupt it"
    );
    path
}

/// The quarantine sidecar written next to `path`, if any.
fn sidecar_of(path: &Path) -> Option<PathBuf> {
    let name = path.file_name().unwrap().to_string_lossy().into_owned();
    let dir = path.parent().unwrap();
    std::fs::read_dir(dir).ok().and_then(|entries| {
        entries.filter_map(|e| e.ok().map(|e| e.path())).find(|p| {
            p.file_name()
                .map(|n| {
                    let n = n.to_string_lossy();
                    n.starts_with(&name) && n.contains(".corrupt-")
                })
                .unwrap_or(false)
        })
    })
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    if let Some(sidecar) = sidecar_of(path) {
        let _ = std::fs::remove_file(sidecar);
    }
}

#[test]
fn truncated_checkpoint_is_a_typed_error_then_quarantined() {
    let path = committed_checkpoint("truncate");
    let body = std::fs::read(&path).unwrap();
    std::fs::write(&path, &body[..body.len() / 2]).unwrap();

    // The scanner-grade loader reports corruption but leaves the file
    // in place (repair and the chaos audit need to observe it).
    match load_checkpoint(&path) {
        Err(CheckpointError::Corrupt { digest, reason }) => {
            assert_ne!(digest, 0);
            assert!(!reason.is_empty());
        }
        other => panic!("expected a typed Corrupt error, got {other:?}"),
    }
    assert!(path.exists(), "the plain loader must not move the file");

    // The pipeline-grade loader additionally quarantines and counts.
    let telemetry = Telemetry::enabled();
    match load_checkpoint_quarantining(&path, &telemetry) {
        Err(CheckpointError::Corrupt { .. }) => {}
        other => panic!("expected a typed Corrupt error, got {other:?}"),
    }
    assert!(!path.exists(), "the corrupt file must be moved aside");
    let sidecar = sidecar_of(&path).expect("a .corrupt-<digest> sidecar must exist");
    assert_eq!(telemetry.counter_value(STORE_CORRUPT_COUNTER), Some(1));
    let _ = std::fs::remove_file(sidecar);
}

#[test]
fn bit_flipped_checkpoint_fails_the_checksum_and_quarantines() {
    let path = committed_checkpoint("bitflip");
    let mut body = std::fs::read(&path).unwrap();
    let at = body.len() - 2; // inside the JSON payload, not the header
    body[at] ^= 0x01;
    std::fs::write(&path, &body).unwrap();

    match load_checkpoint(&path) {
        Err(CheckpointError::Corrupt { reason, .. }) => {
            assert!(
                reason.contains("checksum"),
                "a flipped payload byte must fail the frame checksum, got: {reason}"
            );
        }
        other => panic!("expected a checksum error, got {other:?}"),
    }

    let telemetry = Telemetry::enabled();
    assert!(load_checkpoint_quarantining(&path, &telemetry).is_err());
    assert!(!path.exists());
    assert!(sidecar_of(&path).is_some());
    assert_eq!(telemetry.counter_value(STORE_CORRUPT_COUNTER), Some(1));
    cleanup(&path);
}

#[test]
fn torn_cache_record_is_quarantined_with_a_typed_error() {
    let path = temp("cache-torn");
    let _ = std::fs::remove_file(&path);
    write_record_atomic(&path, "{\"payload\":\"fine\"}").unwrap();
    assert!(read_record_file(&path).is_ok());

    let body = std::fs::read(&path).unwrap();
    std::fs::write(&path, &body[..body.len() - 3]).unwrap();
    match read_record_file(&path) {
        Err(StoreReadError::Corrupt(c)) => {
            assert_eq!(c.path, path);
            assert_ne!(c.digest, 0);
        }
        other => panic!("expected a typed Corrupt error, got {other:?}"),
    }

    let telemetry = Telemetry::enabled();
    assert!(read_record_file_quarantining(&path, "cache", &telemetry).is_err());
    assert!(!path.exists(), "torn cache records must be moved aside");
    assert!(sidecar_of(&path).is_some());
    assert_eq!(telemetry.counter_value(STORE_CORRUPT_COUNTER), Some(1));
    cleanup(&path);
}

#[test]
fn frame_valid_garbage_is_not_a_cache_entry() {
    // A frame can verify while the payload is still not a cache
    // entry (e.g. a different tool wrote the file): schema
    // classification must reject it rather than replay garbage.
    assert_eq!(
        classify_cache_payload("{\"not\":\"a cache entry\"}"),
        CachePayloadStatus::Malformed
    );
    assert_eq!(
        classify_cache_payload("[1,2,3]"),
        CachePayloadStatus::Malformed
    );
}

/// Builds a committed (clean-tailed, loadable) journal with four
/// settled jobs and one pending admission, and returns its path plus
/// the full event count.
fn committed_journal(tag: &str) -> (PathBuf, usize) {
    let path = std::env::temp_dir().join(format!(
        "geyser-crash-recovery-{}-{tag}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let telemetry = Telemetry::disabled();
    let mut journal = Journal::open(&path, &telemetry).unwrap();
    for id in 0..4u64 {
        journal
            .append(&JournalEvent::admitted(
                id,
                "tenant-0",
                "geyser",
                None,
                7,
                10 + id,
            ))
            .unwrap();
        journal
            .append(&JournalEvent::completed(
                id,
                "tenant-0",
                "geyser",
                0xabc0 + id,
                5,
                20 + id,
            ))
            .unwrap();
    }
    journal
        .append(&JournalEvent::admitted(
            9, "tenant-1", "baseline", None, 7, 40,
        ))
        .unwrap();
    drop(journal);
    let (events, torn) = load_journal_events(&path).unwrap();
    assert_eq!(torn, 0, "the committed journal must have a clean tail");
    (path, events.len())
}

#[test]
fn every_offset_journal_mutation_is_typed_or_truncates_cleanly() {
    // Property sweep over the whole journal body: damage at *every*
    // byte offset must surface as a typed error or a clean torn-tail
    // truncation — never a panic, never a silent full replay.
    let (path, full) = committed_journal("journal-property");
    let body = std::fs::read(&path).unwrap();
    assert!(
        full >= 9,
        "the fixture journal must hold all appended events"
    );

    // Truncation at every offset models a kill -9 mid-append: the
    // committed prefix replays, the torn tail prunes away entirely.
    for cut in 0..body.len() {
        std::fs::write(&path, &body[..cut]).unwrap();
        let (events, torn) = load_journal_events(&path)
            .unwrap_or_else(|e| panic!("truncation at {cut} must stay loadable, got {e:?}"));
        assert!(
            events.len() < full,
            "truncation at {cut} of {} must lose at least the final event",
            body.len()
        );
        let reclaimed = truncate_torn_tail(&path).unwrap();
        assert_eq!(
            reclaimed, torn,
            "pruning must reclaim exactly the reported torn bytes (cut {cut})"
        );
        let (after, torn_after) = load_journal_events(&path).unwrap();
        assert_eq!(
            torn_after, 0,
            "a pruned journal has a clean tail (cut {cut})"
        );
        assert_eq!(
            after.len(),
            events.len(),
            "pruning must not drop committed events (cut {cut})"
        );
    }

    // A bit-flip at every offset models rot under the committed tail:
    // the frame checksum must catch it (typed Corrupt), or the damage
    // must read as a shorter/torn log — never all events, clean tail.
    for at in 0..body.len() {
        let mut flipped = body.clone();
        flipped[at] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        match load_journal_events(&path) {
            Err(JournalError::Corrupt { digest, reason }) => {
                assert_ne!(digest, 0, "corrupt report at {at} must carry a digest");
                assert!(
                    !reason.is_empty(),
                    "corrupt report at {at} must carry a reason"
                );
            }
            Err(JournalError::Io(e)) => {
                panic!("bit-flip at {at} must not surface as an IO error: {e}")
            }
            Ok((events, torn)) => assert!(
                events.len() < full || torn > 0,
                "bit-flip at {at} silently replayed all {full} events with a clean tail"
            ),
        }
    }
    let _ = std::fs::remove_file(&path);
}

/// The same blocky program the supervision tests use: several
/// eligible composition blocks, so `kill-after-block:1` fires
/// mid-sweep with work left over.
fn blocky() -> Circuit {
    let mut c = Circuit::new(4);
    c.h(0).cz(0, 1).h(1).cz(1, 2).h(2).cz(0, 2).h(0).cz(1, 2);
    c
}

#[test]
fn resume_from_a_bit_flipped_checkpoint_starts_fresh_and_matches() {
    // The full crash story end to end: a killed sweep commits a
    // partial checkpoint, the file is bit-flipped on disk (torn
    // write, bit rot), and the resume must detect it, quarantine it,
    // and recompile from scratch to the bit-identical result — never
    // splice corrupt blocks in, never panic.
    let cfg = geyser::PipelineConfig::fast();
    let path = temp("kill-flip-resume");
    cleanup(&path);

    let reference = run_supervised_compile(
        &blocky(),
        &cfg,
        &SupervisedCompileOptions::new(Technique::Geyser),
    )
    .unwrap();

    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        ..SupervisorConfig::default()
    });
    let mut killed = JobSpec::new("crash", Technique::Geyser, blocky(), cfg.clone());
    killed.faults = geyser::FaultInjector::parse("kill-after-block:1").unwrap();
    killed.checkpoint = Some(path.clone());
    supervisor.submit(killed).unwrap();
    let results = supervisor.shutdown();
    assert_eq!(results[0].state, JobState::Cancelled);
    assert!(path.exists(), "partial checkpoint survives the kill");

    let mut body = std::fs::read(&path).unwrap();
    let at = body.len() / 2;
    body[at] ^= 0x20;
    std::fs::write(&path, &body).unwrap();

    let supervisor = Supervisor::start(SupervisorConfig {
        workers: 1,
        ..SupervisorConfig::default()
    });
    let mut resumed = JobSpec::new("crash", Technique::Geyser, blocky(), cfg);
    resumed.checkpoint = Some(path.clone());
    resumed.resume = true;
    supervisor.submit(resumed).unwrap();
    let results = supervisor.shutdown();
    assert_eq!(results[0].state, JobState::Done);
    let recovered = results[0].compiled.as_ref().unwrap();
    assert_eq!(
        recovered.mapped().circuit().ops(),
        reference.mapped().circuit().ops(),
        "a rejected checkpoint must degrade to a fresh, bit-identical compile"
    );
    let stats = recovered
        .report()
        .and_then(|r| r.supervision.as_ref())
        .unwrap();
    assert_eq!(stats.blocks_resumed, 0, "corrupt blocks must never replay");
    assert!(!stats.resumed_from_checkpoint);
    assert!(
        sidecar_of(&path).is_some(),
        "the corrupt checkpoint must be quarantined, not overwritten in silence"
    );
    cleanup(&path);
}

#[test]
fn supervised_journal_compacts_then_recovers_through_a_torn_tail() {
    // The journal end to end at the supervisor layer: a journaled
    // run settles two jobs and compacts on graceful shutdown; a torn
    // half-frame (kill -9 mid-append) is then truncated on reopen and
    // both settlements replay into a fresh service core with nothing
    // left to re-admit.
    let path = std::env::temp_dir().join(format!(
        "geyser-crash-recovery-{}-supervised.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let telemetry = Telemetry::disabled();
    let cfg = geyser::PipelineConfig::fast();

    let journal = Journal::open(&path, &telemetry).unwrap();
    let supervisor = Supervisor::start_with_journal(
        SupervisorConfig {
            workers: 1,
            service: Some(ServiceConfig::default()),
            ..SupervisorConfig::default()
        },
        telemetry.clone(),
        journal,
    );
    supervisor
        .submit(JobSpec::new(
            "journal-a",
            Technique::Geyser,
            blocky(),
            cfg.clone(),
        ))
        .unwrap();
    supervisor
        .submit(JobSpec::new(
            "journal-b",
            Technique::Baseline,
            blocky(),
            cfg,
        ))
        .unwrap();
    let results = supervisor.shutdown();
    assert!(
        results.iter().all(|r| r.state == JobState::Done),
        "both journaled jobs must settle: {results:?}"
    );

    let (events, torn) = load_journal_events(&path).unwrap();
    assert_eq!(torn, 0, "graceful shutdown leaves a clean tail");
    assert_eq!(
        events.iter().filter(|e| e.kind == "completed").count(),
        2,
        "the compacted journal must retain both settlements"
    );

    // Tear the tail the way a mid-append kill would.
    {
        let mut wounded = Journal::open(&path, &telemetry).unwrap();
        wounded
            .append_torn(&JournalEvent::admitted(
                99, "tenant-0", "geyser", None, 3, 50,
            ))
            .unwrap();
    }

    let recovered = Journal::open(&path, &telemetry).unwrap();
    assert!(
        recovered.open_stats().torn_bytes_truncated > 0,
        "reopening must truncate the torn half-frame"
    );
    let mut core = ServiceCore::new(ServiceConfig::default());
    let report = core.recover(recovered.replay(), 0);
    assert_eq!(report.completed.len(), 2, "both settlements must replay");
    assert!(
        report.to_readmit.is_empty(),
        "nothing acknowledged was left incomplete"
    );
    let _ = std::fs::remove_file(&path);
}
