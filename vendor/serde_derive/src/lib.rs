//! Derive macros for the vendored `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the shapes this workspace uses — structs with named fields and
//! enums mixing unit, tuple, and struct variants — by hand-parsing the
//! item's token stream (no `syn`/`quote`; the build environment has no
//! registry access). Generics and `#[serde(...)]` attributes are not
//! supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => serialize_struct(&item.name, fields),
        Shape::Enum(variants) => serialize_enum(&item.name, variants),
    };
    body.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => deserialize_struct(&item.name, fields),
        Shape::Enum(variants) => deserialize_enum(&item.name, variants),
    };
    body.parse().expect("generated Deserialize impl parses")
}

// ---- item model ------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// Named fields.
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---- parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde derive does not support generic types ({name})");
    }
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("vendored serde derive needs a braced {keyword} body, found {other:?}"),
    };
    let shape = match keyword.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body)),
        "enum" => Shape::Enum(parse_variants(body)),
        other => panic!("cannot derive serde impls for `{other}` items"),
    };
    Item { name, shape }
}

type Peekable = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips any number of outer attributes and an optional visibility.
fn skip_attrs_and_vis(tokens: &mut Peekable) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("malformed attribute, found {other:?}"),
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    tokens.next(); // pub(crate) / pub(super) scope
                }
            }
            _ => return,
        }
    }
}

/// Consumes a type (or any token run) up to a top-level comma,
/// tracking `<...>` nesting so commas inside generics don't split.
fn skip_until_comma(tokens: &mut Peekable) {
    let mut angle_depth = 0i32;
    while let Some(tt) = tokens.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                tokens.next();
                return;
            }
            _ => {}
        }
        tokens.next();
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_until_comma(&mut tokens);
        fields.push(name);
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_items(g.stream());
                tokens.next();
                VariantFields::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream());
                tokens.next();
                VariantFields::Named(named)
            }
            _ => VariantFields::Unit,
        };
        match tokens.next() {
            None => {
                variants.push(Variant { name, fields });
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(Variant { name, fields });
            }
            other => panic!("expected `,` after variant, found {other:?}"),
        }
    }
    variants
}

/// Counts comma-separated items at the top level of a token stream
/// (angle-bracket aware), ignoring a trailing comma.
fn count_top_level_items(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0;
    while tokens.peek().is_some() {
        skip_until_comma(&mut tokens);
        count += 1;
    }
    count
}

// ---- code generation -------------------------------------------------

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value(&self.{f}))"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Map(::std::vec![{}])\n\
             }}\n\
         }}",
        entries.join(", ")
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value(value.get_field(\"{f}\")?)?"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let _ = value;\n\
                 ::std::result::Result::Ok({name} {{ {} }})\n\
             }}\n\
         }}",
        entries.join(", ")
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                VariantFields::Unit => format!(
                    "{name}::{vname} => \
                     ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                ),
                VariantFields::Tuple(1) => format!(
                    "{name}::{vname}(f0) => ::serde::Value::Map(::std::vec![(\
                     ::std::string::String::from(\"{vname}\"), \
                     ::serde::Serialize::to_value(f0))]),"
                ),
                VariantFields::Tuple(n) => {
                    let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                        .collect();
                    format!(
                        "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"), \
                         ::serde::Value::Seq(::std::vec![{}]))]),",
                        binders.join(", "),
                        items.join(", ")
                    )
                }
                VariantFields::Named(fields) => {
                    let binders = fields.join(", ");
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}))"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binders} }} => ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"), \
                         ::serde::Value::Map(::std::vec![{}]))]),",
                        entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{}\n}}\n\
             }}\n\
         }}",
        arms.join("\n")
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| {
            format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                vname = v.name
            )
        })
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.fields {
                VariantFields::Unit => None,
                VariantFields::Tuple(1) => Some(format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_value(payload)?)),"
                )),
                VariantFields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => match payload {{\n\
                             ::serde::Value::Seq(items) if items.len() == {n} => \
                                 ::std::result::Result::Ok({name}::{vname}({})),\n\
                             other => ::std::result::Result::Err(::serde::Error::new(\
                                 ::std::format!(\"variant {name}::{vname} expects a \
                                 {n}-element sequence, found {{}}\", other.kind()))),\n\
                         }},",
                        items.join(", ")
                    ))
                }
                VariantFields::Named(fields) => {
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 payload.get_field(\"{f}\")?)?"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                        entries.join(", ")
                    ))
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::new(\
                             ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = &entries[0];\n\
                         let _ = payload;\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::new(\
                                 ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::Error::new(\
                         ::std::format!(\"cannot read {name} from {{}}\", other.kind()))),\n\
                 }}\n\
             }}\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        tagged_arms = tagged_arms.join("\n"),
    )
}
