//! Offline vendored stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors a self-contained subset of serde's API surface: the
//! [`Serialize`]/[`Deserialize`] traits (routed through an in-memory
//! [`Value`] tree instead of serde's streaming data model), derive
//! macros for structs and enums, and the impls for the primitive and
//! container types this workspace serializes. `serde_json` (also
//! vendored) renders [`Value`] to and from JSON text.
//!
//! The wire format matches serde's externally-tagged JSON conventions
//! closely enough for this workspace's own round-trips: structs are
//! objects, unit enum variants are strings, data-carrying variants are
//! single-key objects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing serialized value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of a [`Value::Map`].
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected map with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Serialization-side namespace, mirroring `serde::ser`.
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// Deserialization-side namespace, mirroring `serde::de`.
pub mod de {
    pub use crate::{Deserialize, Error};

    /// Marker for types deserializable without borrowing the input —
    /// always true for this value-tree implementation.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::I64(i) => *i as i128,
                    Value::U64(u) => *u as i128,
                    other => {
                        return Err(Error::new(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::new(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if let Ok(narrow) = i64::try_from(wide) {
                    Value::I64(narrow)
                } else {
                    Value::U64(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: u64 = match value {
                    Value::I64(i) => u64::try_from(*i)
                        .map_err(|_| Error::new(format!("negative integer {i}")))?,
                    Value::U64(u) => *u,
                    other => {
                        return Err(Error::new(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::new(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(x) => Ok(*x as $t),
                    Value::I64(i) => Ok(*i as $t),
                    Value::U64(u) => Ok(*u as $t),
                    other => Err(Error::new(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::new(format!(
                "expected single-char string, found {}",
                other.kind()
            ))),
        }
    }
}

// ---- container impls -------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::new(format!(
                "expected 2-element sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::new(format!(
                "expected 3-element sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected map, found {}", other.kind()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_widen_and_narrow() {
        assert_eq!(usize::from_value(&Value::I64(7)).unwrap(), 7);
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert!(usize::from_value(&Value::I64(-1)).is_err());
        assert_eq!(u64::MAX.to_value(), Value::U64(u64::MAX));
    }

    #[test]
    fn options_use_null() {
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::I64(4)).unwrap(), Some(4));
    }

    #[test]
    fn pairs_roundtrip_as_sequences() {
        let v = (3usize, -1.5f64).to_value();
        let back: (usize, f64) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, (3, -1.5));
    }
}
