//! Offline vendored stand-in for `serde_json`.
//!
//! Renders the vendored `serde` [`Value`] tree to JSON text and parses
//! it back. Floats are printed with Rust's shortest-roundtrip
//! formatting (`{:?}`) and parsed with `str::parse::<f64>`, so every
//! finite `f64` survives a round-trip bit-exactly — the property the
//! workspace's result cache and interchange tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as human-readable JSON (2-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: DeserializeOwned>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    Ok(T::from_value(&value)?)
}

// ---- writer ----------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // {:?} is Rust's shortest representation that parses
                // back to the same bits.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_sequence(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            '[',
            ']',
            |o, v, d| write_value(o, v, indent, d),
        ),
        Value::Map(fields) => write_sequence(
            out,
            fields.iter(),
            fields.len(),
            indent,
            depth,
            '{',
            '}',
            |o, (k, v), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, v, indent, d);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_sequence<I, T>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, T, usize),
) where
    I: Iterator<Item = T>,
{
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.sequence(),
            Some(b'{') => self.map(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn sequence(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: runs of plain UTF-8 bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::I64(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::U64(u))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&-42i64).unwrap(), "-42");
        assert_eq!(from_str::<i64>(" -42 ").unwrap(), -42);
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for x in [
            0.123456789012345_f64,
            -std::f64::consts::PI,
            1e-14,
            6.02214076e23,
            -0.0,
            f64::MIN_POSITIVE,
        ] {
            let body = to_string(&x).unwrap();
            let back: f64 = from_str(&body).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} → {body} → {back}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line1\nline2\t\"quoted\" back\\slash é ∞".to_string();
        let body = to_string(&original).unwrap();
        let back: String = from_str(&body).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn unicode_escapes_parse() {
        let back: String = from_str("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "Aé😀");
    }

    #[test]
    fn nested_containers_roundtrip() {
        let data: Vec<(usize, f64)> = vec![(1, 0.5), (2, -3.25)];
        let body = to_string(&data).unwrap();
        let back: Vec<(usize, f64)> = from_str(&body).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let data = vec![vec![1u32, 2], vec![3]];
        let body = to_string_pretty(&data).unwrap();
        assert!(body.contains("\n  "));
        let back: Vec<Vec<u32>> = from_str(&body).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
