//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to the crates.io registry, so
//! this workspace vendors the *minimal deterministic subset* of the
//! rand 0.8 API its crates actually use: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! high-quality, and fully deterministic for a given seed. The stream
//! differs from upstream `StdRng` (ChaCha12), which is fine here: every
//! consumer in the workspace treats the seed as an opaque determinism
//! handle, never as a cross-library reproducibility contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// Types whose generators can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the "standard" distribution
/// (`rng.gen::<T>()`): `f64`/`f32` in `[0, 1)`, integers over their
/// full range, `bool` as a fair coin.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open `lo..hi` range.
pub trait SampleUniform: Sized {
    /// Draws one value in `[lo, hi)` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Multiply-shift bounded sampling (Lemire); the slight
                // bias at 2^64 scale is irrelevant for these workloads.
                let hi_word = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(hi_word as Self)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from the half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator
    /// (xoshiro256++, seeded via SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..3u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
