//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided — the one API this workspace
//! uses — implemented as a thin adapter over `std::thread::scope`
//! (stable since Rust 1.63), preserving crossbeam's closure and
//! `Result` signatures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped-thread API compatible with `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Result of a scope: `Err` carries a worker panic payload.
    ///
    /// With the std backend a worker panic propagates out of
    /// [`scope`] directly rather than surfacing as `Err`, which is
    /// strictly stricter than crossbeam's contract — callers that
    /// `.expect()` the result behave identically.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure receives the scope
        /// (crossbeam-style) so workers can spawn further workers.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads may borrow from
    /// the enclosing stack frame; all workers are joined before the
    /// call returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_share_borrowed_state() {
        let counter = AtomicUsize::new(0);
        let out = super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .expect("no worker panicked");
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .expect("no worker panicked");
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
