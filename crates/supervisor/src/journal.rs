//! Write-ahead job journal: the service core's durability story.
//!
//! Every job lifecycle decision the service layer makes — admitted,
//! attached to a dedup flight, dispatched to a worker, completed,
//! shed, cancelled, failed — is appended to an append-only journal
//! *before* the caller observes it. The journal is a sequence of
//! `GEYSREC1` frames (see [`geyser::store`]) appended over time; each
//! frame's payload is one JSON [`JournalEvent`].
//!
//! **Crash model.** A `kill -9` mid-append leaves a partial final
//! frame. That is not corruption: [`Journal::open`] truncates the
//! torn tail in place (reporting the bytes reclaimed) and resumes —
//! at most the single event being written at the instant of death is
//! lost, and that event's job simply replays as
//! acknowledged-but-incomplete. Anything else wrong with the file
//! (checksum mismatch, garbage at a frame boundary) is real
//! corruption and surfaces as a typed [`JournalError::Corrupt`];
//! opening a fresh journal over it is the *caller's* decision, never
//! a silent one.
//!
//! **Replay.** [`JournalReplay`] folds the event stream into the two
//! sets recovery cares about: jobs with a terminal outcome
//! (`settled`) and jobs that were acknowledged but never settled
//! (`pending`). On restart, [`crate::ServiceCore::recover`] consumes
//! the replay to seed its cost model and tenant budgets, and the host
//! re-admits every pending job **exactly once** — idempotent because
//! duplicate keys collapse in the single-flight layer and settled ids
//! are never re-submitted.
//!
//! **Compaction.** Replay cost is bounded: every
//! [`Journal::COMPACT_EVERY`] appended events the journal rewrites
//! itself (temp file + atomic rename) as one `snapshot` marker
//! followed by the folded per-job events — one terminal event per
//! settled job, one admitted (+ dispatched) event per pending job.
//! A crash during compaction leaves either the old journal or the new
//! one on disk, never a mix; the stray `.tmp` is swept at the next
//! open.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use geyser::store::{
    append_record, clean_stale_tmp, encode_record, fnv1a_bytes, read_segmented_file,
    truncate_torn_tail, StoreReadError,
};
use geyser::Telemetry;
use serde::{Deserialize, Serialize};

use crate::admission::RejectReason;
use crate::singleflight::JobKey;

/// On-disk journal format version, recorded on every event.
pub const JOURNAL_VERSION: u64 = 1;

/// One job lifecycle event. The vendored serde derive has no
/// attribute support, so the event kinds are flattened into a `kind`
/// discriminator plus a fixed field set (unused fields hold zero /
/// empty), the same idiom the checkpoint store uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEvent {
    /// Format version ([`JOURNAL_VERSION`]).
    pub version: u64,
    /// `admitted`, `attached`, `dispatched`, `completed`, `failed`,
    /// `shed`, `cancelled`, or `snapshot`.
    pub kind: String,
    /// The job id (for `snapshot`: settled jobs folded).
    pub id: u64,
    /// Tenant the job bills to (admitted/attached only).
    pub tenant: String,
    /// Technique label (admitted/completed; cost-model seeding).
    pub technique: String,
    /// Scheduler cost estimate (admitted) or measured compile cost
    /// (completed), in cost units.
    pub cost: u64,
    /// FNV-1a digest of the compiled circuit (completed only) or the
    /// leader's job id (attached only).
    pub digest: u64,
    /// [`RejectReason::label`] for shed events; empty otherwise.
    pub reason: String,
    /// Single-flight key: program fingerprint (0 when dedup off).
    pub key_fingerprint: u64,
    /// Single-flight key: hardware digest.
    pub key_hardware: u64,
    /// Single-flight key: pipeline seed.
    pub key_seed: u64,
    /// Host timestamp (ms domain of the owning runtime).
    pub now_ms: u64,
}

impl JournalEvent {
    fn base(kind: &str, id: u64, now_ms: u64) -> Self {
        JournalEvent {
            version: JOURNAL_VERSION,
            kind: kind.to_string(),
            id,
            tenant: String::new(),
            technique: String::new(),
            cost: 0,
            digest: 0,
            reason: String::new(),
            key_fingerprint: 0,
            key_hardware: 0,
            key_seed: 0,
            now_ms,
        }
    }

    /// The job was admitted into the queue as a flight leader.
    pub fn admitted(
        id: u64,
        tenant: &str,
        technique: &str,
        key: Option<&JobKey>,
        cost: u64,
        now_ms: u64,
    ) -> Self {
        let mut ev = JournalEvent::base("admitted", id, now_ms);
        ev.tenant = tenant.to_string();
        ev.technique = technique.to_string();
        ev.cost = cost;
        if let Some(key) = key {
            ev.key_fingerprint = key.fingerprint;
            ev.key_hardware = key.hardware_digest;
            ev.key_seed = key.seed;
        }
        ev
    }

    /// The job attached as a dedup follower of `leader`'s flight.
    pub fn attached(id: u64, tenant: &str, technique: &str, leader: u64, now_ms: u64) -> Self {
        let mut ev = JournalEvent::base("attached", id, now_ms);
        ev.tenant = tenant.to_string();
        ev.technique = technique.to_string();
        ev.digest = leader;
        ev
    }

    /// The job was handed to a worker.
    pub fn dispatched(id: u64, now_ms: u64) -> Self {
        JournalEvent::base("dispatched", id, now_ms)
    }

    /// The job completed successfully; `digest` fingerprints the
    /// compiled circuit and `cost` is the measured compile cost.
    /// Carries the tenant so recovery can re-charge token buckets
    /// even after compaction folds the admitted event away.
    pub fn completed(
        id: u64,
        tenant: &str,
        technique: &str,
        digest: u64,
        cost: u64,
        now_ms: u64,
    ) -> Self {
        let mut ev = JournalEvent::base("completed", id, now_ms);
        ev.tenant = tenant.to_string();
        ev.technique = technique.to_string();
        ev.digest = digest;
        ev.cost = cost;
        ev
    }

    /// The job terminated with a typed failure.
    pub fn failed(id: u64, now_ms: u64) -> Self {
        JournalEvent::base("failed", id, now_ms)
    }

    /// The job was shed with a typed rejection.
    pub fn shed(id: u64, reason: &RejectReason, now_ms: u64) -> Self {
        let mut ev = JournalEvent::base("shed", id, now_ms);
        ev.reason = reason.label().to_string();
        ev
    }

    /// The job was cancelled.
    pub fn cancelled(id: u64, now_ms: u64) -> Self {
        JournalEvent::base("cancelled", id, now_ms)
    }

    /// Compaction marker: `id` counts the settled jobs folded behind
    /// it, `cost` the raw events the rewrite absorbed.
    fn snapshot(settled: u64, folded_events: u64, now_ms: u64) -> Self {
        let mut ev = JournalEvent::base("snapshot", settled, now_ms);
        ev.cost = folded_events;
        ev
    }

    /// Whether this event is a terminal outcome for its job.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self.kind.as_str(),
            "completed" | "failed" | "shed" | "cancelled"
        )
    }
}

/// Why a journal could not be loaded.
#[derive(Debug)]
pub enum JournalError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file holds something other than a journal: a mid-file
    /// frame failed its checksum, a frame boundary holds garbage, or
    /// a frame payload is not a journal event. (A torn *tail* is not
    /// corruption — it is truncated on open.)
    Corrupt {
        /// FNV-1a digest of the offending bytes.
        digest: u64,
        /// What exactly was wrong.
        reason: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal unreadable: {e}"),
            JournalError::Corrupt { digest, reason } => {
                write!(f, "journal corrupt (digest {digest:016x}): {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<StoreReadError> for JournalError {
    fn from(e: StoreReadError) -> Self {
        match e {
            StoreReadError::Io(e) => JournalError::Io(e),
            StoreReadError::Corrupt(c) => JournalError::Corrupt {
                digest: c.digest,
                reason: c.reason,
            },
        }
    }
}

/// The folded state of a journal: what recovery needs to know.
#[derive(Debug, Clone, Default)]
pub struct JournalReplay {
    settled: BTreeMap<u64, JournalEvent>,
    pending: BTreeMap<u64, JournalEvent>,
    dispatched: BTreeSet<u64>,
    /// Snapshot markers seen (compactions this journal survived).
    pub snapshots: u64,
    /// Raw events folded into this state.
    pub events_applied: u64,
}

impl JournalReplay {
    /// Folds one event into the state.
    pub fn apply(&mut self, event: &JournalEvent) {
        self.events_applied += 1;
        match event.kind.as_str() {
            "admitted" | "attached" if !self.settled.contains_key(&event.id) => {
                self.pending.insert(event.id, event.clone());
            }
            "admitted" | "attached" => {}
            "dispatched" => {
                self.dispatched.insert(event.id);
            }
            "completed" | "failed" | "shed" | "cancelled" => {
                self.pending.remove(&event.id);
                self.dispatched.remove(&event.id);
                self.settled.insert(event.id, event.clone());
            }
            "snapshot" => self.snapshots += 1,
            // Unknown kinds from a future version are skipped, not
            // fatal: old binaries must still recover what they can.
            _ => {}
        }
    }

    /// Terminal outcomes by job id.
    pub fn settled(&self) -> &BTreeMap<u64, JournalEvent> {
        &self.settled
    }

    /// Acknowledged-but-incomplete jobs by id (their admitted /
    /// attached event).
    pub fn pending(&self) -> &BTreeMap<u64, JournalEvent> {
        &self.pending
    }

    /// Whether `id` reached a terminal outcome.
    pub fn is_settled(&self, id: u64) -> bool {
        self.settled.contains_key(&id)
    }

    /// Whether `id` had been handed to a worker before the crash.
    pub fn was_dispatched(&self, id: u64) -> bool {
        self.dispatched.contains(&id)
    }

    /// Ids the host must re-admit, ascending.
    pub fn to_readmit(&self) -> Vec<u64> {
        self.pending.keys().copied().collect()
    }
}

/// What [`Journal::open`] found on disk.
#[derive(Debug, Clone, Copy, Default)]
pub struct JournalOpenStats {
    /// Bytes of torn tail truncated (0 for a clean or fresh file).
    pub torn_bytes_truncated: u64,
    /// Events replayed from the existing file.
    pub events_replayed: u64,
    /// Stale `.tmp` files swept from the journal's directory.
    pub stale_tmp_cleaned: usize,
}

/// An open write-ahead journal. See the module docs for the format
/// and crash model.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    replay: JournalReplay,
    open_stats: JournalOpenStats,
    events_since_compaction: usize,
    /// Injected crash: the next compaction writes its temp file and
    /// stops before the commit rename (chaos `kill-mid-compaction`).
    crash_next_compaction: bool,
}

impl Journal {
    /// Appends between automatic snapshot compactions.
    pub const COMPACT_EVERY: usize = 256;

    /// Opens (or creates) the journal at `path`: sweeps stale `.tmp`
    /// files from its directory, truncates any torn tail left by a
    /// crash mid-append, and replays the surviving events. A corrupt
    /// journal (not merely torn) is refused with
    /// [`JournalError::Corrupt`] — the caller decides whether to
    /// quarantine and start fresh.
    pub fn open(path: &Path, telemetry: &Telemetry) -> Result<Journal, JournalError> {
        let stale_tmp_cleaned = match path.parent() {
            Some(dir) if !dir.as_os_str().is_empty() => clean_stale_tmp(dir, telemetry),
            _ => 0,
        };
        let mut replay = JournalReplay::default();
        let mut open_stats = JournalOpenStats {
            stale_tmp_cleaned,
            ..JournalOpenStats::default()
        };
        match read_segmented_file(path) {
            Ok(decoded) => {
                if decoded.torn_bytes > 0 {
                    open_stats.torn_bytes_truncated =
                        truncate_torn_tail(path).map_err(JournalError::from)?;
                }
                for payload in &decoded.records {
                    let event = parse_event(payload)?;
                    replay.apply(&event);
                }
                open_stats.events_replayed = decoded.records.len() as u64;
            }
            Err(StoreReadError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        Ok(Journal {
            path: path.to_path_buf(),
            replay,
            open_stats,
            events_since_compaction: 0,
            crash_next_compaction: false,
        })
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// What opening found on disk.
    pub fn open_stats(&self) -> JournalOpenStats {
        self.open_stats
    }

    /// The folded state, kept current as events append.
    pub fn replay(&self) -> &JournalReplay {
        &self.replay
    }

    /// Appends one event durably and folds it into the replay state.
    /// Every [`Journal::COMPACT_EVERY`] appends, the journal compacts
    /// itself so replay cost stays bounded.
    pub fn append(&mut self, event: &JournalEvent) -> std::io::Result<()> {
        let payload = serde_json::to_string(event)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        append_record(&self.path, &payload)?;
        self.replay.apply(event);
        self.events_since_compaction += 1;
        if self.events_since_compaction >= Journal::COMPACT_EVERY {
            self.compact()?;
        }
        Ok(())
    }

    /// Simulates a `kill -9` mid-append: writes only the first half
    /// of the event's frame, leaving the torn tail a real crash
    /// would. The event is **not** folded into the replay state — the
    /// process is considered dead. Chaos-only
    /// (`kill-mid-journal-append`).
    pub fn append_torn(&mut self, event: &JournalEvent) -> std::io::Result<()> {
        let payload = serde_json::to_string(event)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let frame = encode_record(&payload);
        let half = &frame.as_bytes()[..frame.len() / 2];
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(half)
    }

    /// Arms the injected compaction crash (chaos
    /// `kill-mid-compaction`): the next [`Journal::compact`] writes
    /// its temp file and returns `false` without committing.
    pub fn inject_compaction_crash(&mut self) {
        self.crash_next_compaction = true;
    }

    /// Rewrites the journal as a snapshot: one marker frame, then the
    /// folded per-job events. Written to a temp file and committed by
    /// atomic rename, so a crash leaves the old journal fully intact.
    /// Returns whether the rewrite committed (`false` only under the
    /// injected compaction crash).
    pub fn compact(&mut self) -> std::io::Result<bool> {
        let mut body = String::new();
        let marker = JournalEvent::snapshot(
            self.replay.settled.len() as u64,
            self.replay.events_applied,
            0,
        );
        let encode = |event: &JournalEvent| -> std::io::Result<String> {
            let payload = serde_json::to_string(event)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            Ok(encode_record(&payload))
        };
        body.push_str(&encode(&marker)?);
        for event in self.replay.settled.values() {
            body.push_str(&encode(event)?);
        }
        for (id, event) in &self.replay.pending {
            body.push_str(&encode(event)?);
            if self.replay.dispatched.contains(id) {
                body.push_str(&encode(&JournalEvent::dispatched(*id, event.now_ms))?);
            }
        }
        let tmp = self.path.with_extension("journal.tmp");
        std::fs::write(&tmp, &body)?;
        if self.crash_next_compaction {
            self.crash_next_compaction = false;
            return Ok(false);
        }
        std::fs::rename(&tmp, &self.path)?;
        self.events_since_compaction = 0;
        Ok(true)
    }
}

fn parse_event(payload: &str) -> Result<JournalEvent, JournalError> {
    serde_json::from_str(payload).map_err(|_| JournalError::Corrupt {
        digest: fnv1a_bytes(payload.as_bytes()),
        reason: "frame payload is not a journal event".to_string(),
    })
}

/// Loads a journal's events without truncating or mutating anything —
/// the scanner-grade loader `repair` and the chaos audit use. Returns
/// the events plus the torn-tail byte count (0 when clean).
pub fn load_journal_events(path: &Path) -> Result<(Vec<JournalEvent>, u64), JournalError> {
    let decoded = read_segmented_file(path).map_err(JournalError::from)?;
    let mut events = Vec::with_capacity(decoded.records.len());
    for payload in &decoded.records {
        events.push(parse_event(payload)?);
    }
    Ok((events, decoded.torn_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use geyser::{PipelineConfig, Technique};
    use geyser_circuit::Circuit;

    fn temp_journal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "geyser-journal-test-{}-{tag}.journal",
            std::process::id()
        ))
    }

    fn spec(tenant: &str) -> JobSpec {
        let mut program = Circuit::new(2);
        program.h(0).cx(0, 1);
        JobSpec::new("wl", Technique::OptiMap, program, PipelineConfig::fast()).with_tenant(tenant)
    }

    fn telemetry() -> Telemetry {
        Telemetry::enabled()
    }

    #[test]
    fn events_roundtrip_through_the_journal() {
        let path = temp_journal("roundtrip");
        let _ = std::fs::remove_file(&path);
        let t = telemetry();
        let mut journal = Journal::open(&path, &t).unwrap();
        let s = spec("acme");
        let key = JobKey::derive(&s.program, &s.config.hardware, s.technique, s.config.seed);
        journal
            .append(&JournalEvent::admitted(
                7,
                "acme",
                "OptiMap",
                Some(&key),
                120,
                5,
            ))
            .unwrap();
        journal.append(&JournalEvent::dispatched(7, 6)).unwrap();
        journal
            .append(&JournalEvent::completed(
                7, "acme", "OptiMap", 0xbeef, 117, 30,
            ))
            .unwrap();
        drop(journal);

        let reopened = Journal::open(&path, &t).unwrap();
        assert_eq!(reopened.open_stats().events_replayed, 3);
        assert_eq!(reopened.open_stats().torn_bytes_truncated, 0);
        let replay = reopened.replay();
        assert!(replay.is_settled(7));
        assert!(replay.pending().is_empty());
        let done = &replay.settled()[&7];
        assert_eq!(done.kind, "completed");
        assert_eq!(done.digest, 0xbeef);
        assert_eq!(done.cost, 117);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_the_event_replays_pending() {
        let path = temp_journal("torn-tail");
        let _ = std::fs::remove_file(&path);
        let t = telemetry();
        let mut journal = Journal::open(&path, &t).unwrap();
        journal
            .append(&JournalEvent::admitted(1, "acme", "OptiMap", None, 100, 0))
            .unwrap();
        journal.append(&JournalEvent::dispatched(1, 1)).unwrap();
        // The completion is torn mid-append: the crash model's worst
        // case. After recovery the job must be pending, not lost and
        // not spuriously completed.
        journal
            .append_torn(&JournalEvent::completed(1, "acme", "OptiMap", 0xd1d, 90, 9))
            .unwrap();
        drop(journal);

        let reopened = Journal::open(&path, &t).unwrap();
        assert!(reopened.open_stats().torn_bytes_truncated > 0);
        assert_eq!(reopened.open_stats().events_replayed, 2);
        let replay = reopened.replay();
        assert!(!replay.is_settled(1));
        assert_eq!(replay.to_readmit(), vec![1]);
        assert!(replay.was_dispatched(1));
        // The journal is appendable again after truncation.
        let mut journal = reopened;
        journal
            .append(&JournalEvent::completed(
                1, "acme", "OptiMap", 0xd1d, 90, 12,
            ))
            .unwrap();
        assert!(journal.replay().is_settled(1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_folds_events_and_preserves_state() {
        let path = temp_journal("compaction");
        let _ = std::fs::remove_file(&path);
        let t = telemetry();
        let mut journal = Journal::open(&path, &t).unwrap();
        for id in 0..6u64 {
            journal
                .append(&JournalEvent::admitted(
                    id, "acme", "OptiMap", None, 100, id,
                ))
                .unwrap();
            journal.append(&JournalEvent::dispatched(id, id)).unwrap();
            if id < 4 {
                journal
                    .append(&JournalEvent::completed(
                        id,
                        "acme",
                        "OptiMap",
                        id * 11,
                        100,
                        id + 1,
                    ))
                    .unwrap();
            }
        }
        assert!(journal.compact().unwrap());
        drop(journal);

        let reopened = Journal::open(&path, &t).unwrap();
        let replay = reopened.replay();
        assert_eq!(replay.snapshots, 1);
        assert_eq!(replay.settled().len(), 4);
        assert_eq!(replay.to_readmit(), vec![4, 5]);
        assert!(replay.was_dispatched(4) && replay.was_dispatched(5));
        assert_eq!(replay.settled()[&2].digest, 22);
        // Compacted size: marker + 4 terminal + 2 admitted + 2
        // dispatched = 9 frames instead of 16 raw events.
        assert_eq!(reopened.open_stats().events_replayed, 9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crashed_compaction_leaves_the_old_journal_intact() {
        let path = temp_journal("compaction-crash");
        let _ = std::fs::remove_file(&path);
        let t = telemetry();
        let mut journal = Journal::open(&path, &t).unwrap();
        journal
            .append(&JournalEvent::admitted(3, "acme", "OptiMap", None, 100, 0))
            .unwrap();
        journal
            .append(&JournalEvent::completed(3, "acme", "OptiMap", 0xabc, 95, 4))
            .unwrap();
        journal.inject_compaction_crash();
        assert!(!journal.compact().unwrap(), "injected crash aborts commit");
        drop(journal);
        // The stray .tmp is on disk; the journal itself is the
        // pre-compaction generation, fully replayable.
        assert!(path.with_extension("journal.tmp").exists());
        let reopened = Journal::open(&path, &t).unwrap();
        assert!(
            reopened.open_stats().stale_tmp_cleaned >= 1,
            "open sweeps the stray compaction tmp"
        );
        assert!(reopened.replay().is_settled(3));
        assert_eq!(reopened.replay().settled()[&3].digest, 0xabc);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn auto_compaction_bounds_replay_cost() {
        let path = temp_journal("auto-compact");
        let _ = std::fs::remove_file(&path);
        let t = telemetry();
        let mut journal = Journal::open(&path, &t).unwrap();
        // 3 events per job; well past COMPACT_EVERY raw events in
        // total, but every job settles, so the folded journal stays
        // tiny no matter how many raw events flowed through.
        let jobs = (Journal::COMPACT_EVERY * 2) as u64;
        for id in 0..jobs {
            journal
                .append(&JournalEvent::admitted(
                    id, "acme", "OptiMap", None, 100, id,
                ))
                .unwrap();
            journal.append(&JournalEvent::dispatched(id, id)).unwrap();
            journal
                .append(&JournalEvent::completed(
                    id,
                    "acme",
                    "OptiMap",
                    id,
                    90,
                    id + 1,
                ))
                .unwrap();
        }
        drop(journal);
        let reopened = Journal::open(&path, &t).unwrap();
        let replayed = reopened.open_stats().events_replayed;
        assert!(
            replayed < (jobs * 3) / 2,
            "auto-compaction must fold the stream, replayed {replayed} of {}",
            jobs * 3
        );
        assert_eq!(reopened.replay().settled().len() as u64, jobs);
        assert!(reopened.replay().snapshots >= 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_journal_is_a_typed_error_not_a_fresh_start() {
        let path = temp_journal("corrupt");
        let _ = std::fs::remove_file(&path);
        let t = telemetry();
        let mut journal = Journal::open(&path, &t).unwrap();
        journal
            .append(&JournalEvent::admitted(0, "acme", "OptiMap", None, 100, 0))
            .unwrap();
        journal
            .append(&JournalEvent::completed(0, "acme", "OptiMap", 1, 90, 2))
            .unwrap();
        drop(journal);
        // Flip a payload byte in the *first* frame: mid-file
        // corruption, not a torn tail.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = 40; // inside the first frame's payload
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match Journal::open(&path, &t) {
            Err(JournalError::Corrupt { reason, .. }) => {
                assert!(reason.contains("checksum"), "reason: {reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scanner_loader_reports_torn_bytes_without_mutating() {
        let path = temp_journal("scanner");
        let _ = std::fs::remove_file(&path);
        let t = telemetry();
        let mut journal = Journal::open(&path, &t).unwrap();
        journal
            .append(&JournalEvent::admitted(0, "acme", "OptiMap", None, 100, 0))
            .unwrap();
        journal
            .append_torn(&JournalEvent::dispatched(0, 1))
            .unwrap();
        drop(journal);
        let len_before = std::fs::metadata(&path).unwrap().len();
        let (events, torn) = load_journal_events(&path).unwrap();
        assert_eq!(events.len(), 1);
        assert!(torn > 0);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            len_before,
            "the scanner must not truncate"
        );
        let _ = std::fs::remove_file(&path);
    }
}
