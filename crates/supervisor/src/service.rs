//! The overload-resilience service core: admission, fairness, dedup,
//! shedding, and degradation in one synchronous state machine.
//!
//! [`ServiceCore`] is deliberately *passive*: it owns no threads and
//! reads no clocks. Every entry point takes an explicit `now_ms`, so
//! the same logic runs in two very different hosts:
//!
//! * the threaded [`crate::Supervisor`] calls it under its queue lock
//!   with wall-clock milliseconds — the production shape;
//! * the `serve` bench harness calls it from a discrete-event loop
//!   with *virtual* milliseconds, which makes whole overload storms a
//!   pure function of the seed (byte-identical scorecards, CI-diffable).
//!
//! The admission path, in order:
//!
//! 1. **shutdown** — a draining service sheds with
//!    [`RejectReason::ShuttingDown`];
//! 2. **single-flight dedup** — an identical in-flight compile absorbs
//!    the job as a follower (no queue slot, no compile);
//! 3. **capacity** — a full queue sheds with
//!    [`RejectReason::QueueFull`];
//! 4. **deadline feasibility** — if the EWMA-estimated queue delay
//!    already exceeds the job's deadline, it is shed *now*
//!    ([`RejectReason::DeadlineUnmeetable`]) instead of dying in the
//!    queue — and before the tenant budget is touched, so a doomed
//!    job never burns its tenant's tokens;
//! 5. **tenant budget** — a backlogged system sheds jobs whose tenant
//!    has drained its token bucket
//!    ([`RejectReason::TenantThrottled`]);
//! 6. **degradation** — when the estimated delay crosses the overload
//!    threshold, the job is admitted but downgraded to the cheaper
//!    degraded configuration ([`degrade_config`]) and its report is
//!    marked `degraded`.
//!
//! Dequeue applies CoDel-style aging: a job whose deadline expired
//! while queued is shed with [`RejectReason::StaleInQueue`] rather
//! than wasting a worker on already-dead work. Every shed is a typed,
//! terminal outcome — the service never drops a submission silently.

use std::collections::BTreeMap;

use geyser::{CancelToken, PipelineConfig};

use crate::admission::{CostModel, RejectReason};
use crate::job::JobSpec;
use crate::journal::JournalReplay;
use crate::singleflight::{FlightResolution, FlightRole, JobKey, SingleFlight};
use crate::tenant::{DrrQueue, TenantId, TokenBucket};

/// Policy knobs for the service layer.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Queued jobs beyond this are shed (`queue-full`). Followers
    /// attached by dedup consume no slots.
    pub queue_capacity: usize,
    /// Worker lanes assumed by the queue-delay estimate (match the
    /// supervisor's worker count).
    pub workers: usize,
    /// Cost-model prior: estimated cost of a technique never observed,
    /// in cost units (≈ ms).
    pub default_cost: u64,
    /// Token-bucket burst per tenant, in cost units.
    pub tenant_burst: u64,
    /// Token-bucket refill per tenant, in cost units per second.
    pub tenant_rate_per_sec: u64,
    /// Deficit-round-robin quantum, in cost units per tenant per
    /// scheduling round.
    pub drr_quantum: u64,
    /// Estimated queue delay (ms) beyond which admitted jobs are
    /// downgraded to the degraded configuration; `0` disables
    /// degradation.
    pub degrade_wait_ms: u64,
    /// Whether single-flight deduplication is enabled (jobs must also
    /// opt in via [`JobSpec::dedup`]).
    pub dedup: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 256,
            workers: 2,
            default_cost: 200,
            tenant_burst: 4_000,
            tenant_rate_per_sec: 1_000,
            drr_quantum: 400,
            degrade_wait_ms: 2_000,
            dedup: true,
        }
    }
}

/// Counters describing everything the service layer has decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceMetrics {
    /// Jobs admitted into the queue (leaders; followers not counted).
    pub admitted: u64,
    /// Jobs shed with a typed rejection, all reasons combined.
    pub shed: u64,
    /// Sheds for a full queue.
    pub shed_queue_full: u64,
    /// Sheds for an exhausted tenant budget.
    pub shed_throttled: u64,
    /// Sheds for an unmeetable deadline at admission.
    pub shed_deadline: u64,
    /// Sheds for a deadline that expired while queued.
    pub shed_stale: u64,
    /// Jobs admitted in the degraded tier.
    pub degraded: u64,
    /// Jobs absorbed as dedup followers.
    pub dedup_attached: u64,
    /// Flights resolved by broadcasting a leader's result.
    pub dedup_broadcasts: u64,
    /// Leader re-elections after a leader failure.
    pub dedup_reelections: u64,
}

/// One admitted job waiting for (or holding) a worker.
#[derive(Debug)]
pub struct PendingJob {
    /// Supervisor job id.
    pub id: u64,
    /// The submitted spec (config already reflects any degradation
    /// decided at admission — see [`PendingJob::degraded`]).
    pub spec: JobSpec,
    /// The job's cancellation token.
    pub cancel: CancelToken,
    /// Dedup key when this job leads a flight; `None` when dedup was
    /// off for it.
    pub key: Option<JobKey>,
    /// Admission timestamp (the host's ms domain).
    pub enqueued_ms: u64,
    /// Scheduler cost estimate charged for this job.
    pub cost: u64,
    /// Whether admission downgraded this job to the degraded tier.
    pub degraded: bool,
    /// Jobs already queued when this one was admitted.
    pub queue_depth: u64,
}

impl PendingJob {
    /// The completion ticket the worker must hand back to
    /// [`ServiceCore::complete`] after running this job.
    pub fn ticket(&self) -> FlightTicket {
        FlightTicket {
            id: self.id,
            key: self.key.clone(),
            cost: self.cost,
            technique: self.spec.technique.label(),
        }
    }
}

/// What a worker retains about a dispatched job so the service can
/// settle accounting and flights when it completes.
#[derive(Debug, Clone)]
pub struct FlightTicket {
    /// The job's id.
    pub id: u64,
    /// The job's dedup key, if it led a flight.
    pub key: Option<JobKey>,
    /// The cost the scheduler charged at dispatch.
    pub cost: u64,
    /// Technique label for cost-model feedback.
    pub technique: &'static str,
}

/// One dedup follower awaiting its flight's result.
#[derive(Debug)]
struct AttachedJob {
    spec: JobSpec,
    cancel: CancelToken,
    enqueued_ms: u64,
    /// The flight this follower attached to, so a fired cancel token
    /// can detach it without scanning every flight.
    key: JobKey,
}

/// Identity of a follower receiving a broadcast result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttachedInfo {
    /// The follower's job id.
    pub id: u64,
    /// The follower's workload label.
    pub workload: String,
    /// The tenant the follower is billed to.
    pub tenant: TenantId,
}

/// Outcome of one admission attempt.
#[derive(Debug)]
pub enum Admission {
    /// The job was queued; `degraded` reflects the overload tier.
    Queued {
        /// Whether the job was downgraded at admission.
        degraded: bool,
    },
    /// The job attached to an identical in-flight compile and will be
    /// served by its broadcast — no compile of its own.
    Attached {
        /// Job id of the flight's current leader.
        leader: u64,
    },
    /// The job was shed; the spec is handed back so the caller can
    /// record a typed terminal result. Boxed so the rare shed path
    /// does not inflate every admission result.
    Shed {
        /// The rejected submission.
        spec: Box<JobSpec>,
        /// Why it was shed.
        reason: RejectReason,
    },
}

/// What [`ServiceCore::next`] handed the worker.
#[derive(Debug)]
pub enum Dispatch {
    /// Run this job now.
    Run(PendingJob),
    /// This job went stale in the queue; record the typed rejection
    /// and call [`ServiceCore::next`] again. Any flight it led has
    /// already been re-elected internally.
    Shed {
        /// The shed job.
        job: PendingJob,
        /// Always [`RejectReason::StaleInQueue`] today.
        reason: RejectReason,
        /// Followers of the shed job's flight whose own cancel token
        /// fired while attached; they were detached instead of being
        /// promoted and must resolve as cancelled.
        cancelled: Vec<AttachedInfo>,
    },
}

/// Flight fallout of one completed job.
#[derive(Debug, Default)]
pub struct Completion {
    /// Followers to receive a clone of the (successful) result.
    pub broadcast: Vec<AttachedInfo>,
    /// Id of the follower promoted to leader after a failure; its job
    /// was re-enqueued internally and will come back out of
    /// [`ServiceCore::next`].
    pub reelected: Option<u64>,
    /// Followers whose own cancel token fired while attached: they
    /// were detached from the flight (never broadcast to, never
    /// promoted) and must resolve as cancelled terminal results.
    pub cancelled: Vec<AttachedInfo>,
}

/// What [`ServiceCore::recover`] reconstructed from a journal replay.
/// Terminal outcomes are the host's to re-record (they are settled —
/// recovery never re-runs them); `to_readmit` lists the
/// acknowledged-but-incomplete jobs the host must submit again,
/// exactly once each.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Settled completions as `(id, result digest)`.
    pub completed: Vec<(u64, u64)>,
    /// Settled sheds as `(id, reject-reason label)`.
    pub shed: Vec<(u64, String)>,
    /// Settled cancellations.
    pub cancelled: Vec<u64>,
    /// Settled failures.
    pub failed: Vec<u64>,
    /// Jobs admitted (or attached) before the crash with no terminal
    /// outcome, ascending by id. The host re-submits these through the
    /// normal [`ServiceCore::submit`] path; identical specs collapse
    /// back into single flights via their dedup keys.
    pub to_readmit: Vec<u64>,
    /// Raw journal events folded into the replayed state.
    pub events_applied: u64,
}

/// The synchronous service state machine. See the module docs for the
/// decision pipeline; hosts drive it via [`ServiceCore::submit`],
/// [`ServiceCore::next`], and [`ServiceCore::complete`].
#[derive(Debug)]
pub struct ServiceCore {
    config: ServiceConfig,
    cost_model: CostModel,
    queue: DrrQueue<PendingJob>,
    /// Sum of cost estimates currently queued.
    queued_cost: u64,
    /// Sum of cost estimates currently running.
    running_cost: u64,
    running: usize,
    buckets: BTreeMap<TenantId, TokenBucket>,
    flights: SingleFlight,
    attached: BTreeMap<u64, AttachedJob>,
    shutting_down: bool,
    metrics: ServiceMetrics,
}

impl ServiceCore {
    /// An empty service with the given policy.
    pub fn new(config: ServiceConfig) -> Self {
        ServiceCore {
            cost_model: CostModel::new(config.default_cost),
            queue: DrrQueue::new(config.drr_quantum),
            queued_cost: 0,
            running_cost: 0,
            running: 0,
            buckets: BTreeMap::new(),
            flights: SingleFlight::new(),
            attached: BTreeMap::new(),
            shutting_down: false,
            metrics: ServiceMetrics::default(),
            config,
        }
    }

    /// The policy this service runs.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Point-in-time counters.
    pub fn metrics(&self) -> ServiceMetrics {
        let mut m = self.metrics;
        m.dedup_broadcasts = self.flights.broadcasts();
        m.dedup_reelections = self.flights.reelections();
        m
    }

    /// Estimated ms a job admitted now would wait for a worker.
    pub fn estimated_wait_ms(&self) -> u64 {
        self.cost_model
            .estimated_wait_ms(self.queued_cost + self.running_cost, self.config.workers)
    }

    /// Jobs currently queued (followers not included).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is queued, running, or awaiting a broadcast.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty() && self.running == 0 && self.attached.is_empty()
    }

    /// Stops admitting; subsequent submissions shed `shutting-down`.
    pub fn begin_shutdown(&mut self) {
        self.shutting_down = true;
    }

    /// Rebuilds service state from a journal replay after a crash.
    /// Call on a **fresh** core before any submissions.
    ///
    /// Settled completions re-seed the per-technique EWMA cost model
    /// (in completion-time order, so the estimates converge to the
    /// same values the dead process had) and re-charge their tenants'
    /// token buckets at the original timestamps (so a tenant that
    /// spent its budget before the crash does not restart with a full
    /// one). Settled outcomes are returned for the host to re-record —
    /// they are **never** re-run. Acknowledged-but-incomplete jobs
    /// come back in [`RecoveryReport::to_readmit`]; the host submits
    /// each exactly once through the normal admission path, where
    /// identical specs deduplicate via their single-flight keys.
    pub fn recover(&mut self, replay: &JournalReplay, now_ms: u64) -> RecoveryReport {
        let mut report = RecoveryReport {
            to_readmit: replay.to_readmit(),
            events_applied: replay.events_applied,
            ..RecoveryReport::default()
        };
        // Completion-time order (ties by id) mirrors the order the
        // dead process observed costs in, so the EWMA lands on the
        // same state.
        let mut completions: Vec<_> = replay
            .settled()
            .values()
            .filter(|ev| ev.kind == "completed")
            .collect();
        completions.sort_by_key(|ev| (ev.now_ms, ev.id));
        for ev in completions {
            if ev.cost > 0 && !ev.technique.is_empty() {
                self.cost_model.observe(&ev.technique, ev.cost);
            }
            if !ev.tenant.is_empty() && ev.cost > 0 {
                let tenant = TenantId::from(ev.tenant.as_str());
                let bucket = self.buckets.entry(tenant).or_insert_with(|| {
                    TokenBucket::new(
                        self.config.tenant_burst,
                        self.config.tenant_rate_per_sec,
                        ev.now_ms,
                    )
                });
                // Best-effort charge at the original timestamp; an
                // unpayable charge means the bucket was already dry.
                let _ = bucket.try_take(ev.cost, ev.now_ms.min(now_ms));
            }
        }
        for (id, ev) in replay.settled() {
            match ev.kind.as_str() {
                "completed" => report.completed.push((*id, ev.digest)),
                "shed" => report.shed.push((*id, ev.reason.clone())),
                "cancelled" => report.cancelled.push(*id),
                "failed" => report.failed.push(*id),
                _ => {}
            }
        }
        report
    }

    /// Runs the admission pipeline for one submission.
    pub fn submit(
        &mut self,
        id: u64,
        spec: JobSpec,
        cancel: CancelToken,
        now_ms: u64,
    ) -> Admission {
        if self.shutting_down {
            return Admission::Shed {
                spec: Box::new(spec),
                reason: RejectReason::ShuttingDown,
            };
        }

        // Dedup first: followers cost nothing, so they attach even
        // when every other control would shed.
        let key = if self.config.dedup && spec.dedup {
            let key = JobKey::derive(
                &spec.program,
                &spec.config.hardware,
                spec.technique,
                spec.config.seed,
            );
            match self.flights.join(key.clone(), id) {
                FlightRole::Follower { leader } => {
                    self.metrics.dedup_attached += 1;
                    self.attached.insert(
                        id,
                        AttachedJob {
                            spec,
                            cancel,
                            enqueued_ms: now_ms,
                            key,
                        },
                    );
                    return Admission::Attached { leader };
                }
                FlightRole::Leader => Some(key),
            }
        } else {
            None
        };

        // A leader shed below must also close the flight it just
        // opened, or later duplicates would attach to a ghost.
        let shed = |this: &mut Self, spec: JobSpec, reason: RejectReason| {
            if let Some(k) = &key {
                this.flights.resolve(k, id, false);
            }
            this.metrics.shed += 1;
            match &reason {
                RejectReason::QueueFull { .. } => this.metrics.shed_queue_full += 1,
                RejectReason::TenantThrottled { .. } => this.metrics.shed_throttled += 1,
                RejectReason::DeadlineUnmeetable { .. } => this.metrics.shed_deadline += 1,
                RejectReason::StaleInQueue { .. } => this.metrics.shed_stale += 1,
                RejectReason::ShuttingDown => {}
            }
            Admission::Shed {
                spec: Box::new(spec),
                reason,
            }
        };

        if self.queue.len() >= self.config.queue_capacity {
            let capacity = self.config.queue_capacity;
            return shed(self, spec, RejectReason::QueueFull { capacity });
        }

        let cost = self.cost_model.estimate(spec.technique.label());

        // Deadline feasibility before the tenant budget: a job shed
        // as unmeetable never runs, so it must not burn its tenant's
        // tokens — under backlog a tight-deadline submitter would
        // otherwise be throttled sooner than its fair share.
        let estimated_wait_ms = self.estimated_wait_ms();
        if let Some(deadline_ms) = spec.deadline_ms {
            if estimated_wait_ms > deadline_ms {
                return shed(
                    self,
                    spec,
                    RejectReason::DeadlineUnmeetable {
                        estimated_wait_ms,
                        deadline_ms,
                    },
                );
            }
        }

        // Tenant budget: the bucket is always charged when it can pay;
        // an empty bucket only sheds when there is an actual backlog —
        // an idle system serves everyone.
        let backlogged = !self.queue.is_empty();
        let bucket = self.buckets.entry(spec.tenant.clone()).or_insert_with(|| {
            TokenBucket::new(
                self.config.tenant_burst,
                self.config.tenant_rate_per_sec,
                now_ms,
            )
        });
        let paid = bucket.try_take(cost, now_ms);
        if !paid && backlogged {
            let tenant = spec.tenant.to_string();
            return shed(self, spec, RejectReason::TenantThrottled { tenant });
        }

        let degraded =
            self.config.degrade_wait_ms > 0 && estimated_wait_ms >= self.config.degrade_wait_ms;
        if degraded {
            self.metrics.degraded += 1;
        }
        self.metrics.admitted += 1;
        let queue_depth = self.queue.len() as u64;
        let tenant = spec.tenant.clone();
        self.queue.enqueue(
            &tenant,
            PendingJob {
                id,
                spec,
                cancel,
                key,
                enqueued_ms: now_ms,
                cost,
                degraded,
                queue_depth,
            },
            cost,
        );
        self.queued_cost += cost;
        Admission::Queued { degraded }
    }

    /// Picks the next job under deficit round robin. A stale job
    /// (deadline expired while queued) comes back as
    /// [`Dispatch::Shed`]; the caller records the rejection and calls
    /// again. `None` when the queue is empty.
    pub fn next(&mut self, now_ms: u64) -> Option<Dispatch> {
        let (_tenant, job) = self.queue.dequeue()?;
        self.queued_cost = self.queued_cost.saturating_sub(job.cost);
        let waited_ms = now_ms.saturating_sub(job.enqueued_ms);
        if let Some(deadline_ms) = job.spec.deadline_ms {
            if waited_ms > deadline_ms {
                // CoDel-style aging: dead work never reaches a worker.
                // A flight led by the shed job re-elects internally;
                // followers cancelled in the meantime detach instead.
                let cancelled = match &job.key {
                    Some(key) => self.settle_flight_failure(key, job.id, now_ms).1,
                    None => Vec::new(),
                };
                self.metrics.shed += 1;
                self.metrics.shed_stale += 1;
                return Some(Dispatch::Shed {
                    job,
                    reason: RejectReason::StaleInQueue { waited_ms },
                    cancelled,
                });
            }
        }
        self.running += 1;
        self.running_cost += job.cost;
        Some(Dispatch::Run(job))
    }

    /// Settles accounting and flight state for a finished job. Feeds
    /// the measured cost back into the EWMA (when nonzero), broadcasts
    /// a success to the flight's followers, and re-elects a follower
    /// after a failure.
    pub fn complete(
        &mut self,
        ticket: &FlightTicket,
        succeeded: bool,
        measured_cost: u64,
        now_ms: u64,
    ) -> Completion {
        self.running = self.running.saturating_sub(1);
        self.running_cost = self.running_cost.saturating_sub(ticket.cost);
        if measured_cost > 0 {
            self.cost_model.observe(ticket.technique, measured_cost);
        }
        let Some(key) = &ticket.key else {
            return Completion::default();
        };
        if succeeded {
            // Followers whose own token fired must not be handed the
            // broadcast result as Done: detach them first so they
            // resolve Cancelled like any other cancelled job.
            let cancelled = self.detach_cancelled_followers(key);
            match self.flights.resolve(key, ticket.id, true) {
                FlightResolution::Broadcast { followers } => Completion {
                    broadcast: followers
                        .into_iter()
                        .filter_map(|fid| self.take_attached_info(fid))
                        .collect(),
                    reelected: None,
                    cancelled,
                },
                _ => Completion {
                    cancelled,
                    ..Completion::default()
                },
            }
        } else {
            let (reelected, cancelled) = self.settle_flight_failure(key, ticket.id, now_ms);
            Completion {
                broadcast: Vec::new(),
                reelected,
                cancelled,
            }
        }
    }

    /// Detaches every follower of `key` whose own cancel token has
    /// fired, returning their identities so the host can record
    /// cancelled terminal results. Detached followers leave the flight
    /// entirely: they receive no broadcast and cannot be promoted.
    fn detach_cancelled_followers(&mut self, key: &JobKey) -> Vec<AttachedInfo> {
        let fired: Vec<u64> = self
            .attached
            .iter()
            .filter(|(_, a)| &a.key == key && a.cancel.is_cancelled())
            .map(|(id, _)| *id)
            .collect();
        fired
            .into_iter()
            .map(|id| {
                self.flights.detach(key, id);
                self.take_attached_info(id)
                    .expect("fired follower is attached")
            })
            .collect()
    }

    /// Handles a leader failure: detaches cancelled followers, then
    /// promotes the first live one (its job re-enters the queue).
    /// Returns the promoted id and the detached followers.
    fn settle_flight_failure(
        &mut self,
        key: &JobKey,
        id: u64,
        now_ms: u64,
    ) -> (Option<u64>, Vec<AttachedInfo>) {
        let cancelled = self.detach_cancelled_followers(key);
        let reelected = match self.flights.resolve(key, id, false) {
            FlightResolution::Reelected { new_leader, .. } => {
                let attached = self
                    .attached
                    .remove(&new_leader)
                    .expect("promoted follower is attached");
                let cost = self.cost_model.estimate(attached.spec.technique.label());
                let tenant = attached.spec.tenant.clone();
                let queue_depth = self.queue.len() as u64;
                self.queue.enqueue(
                    &tenant,
                    PendingJob {
                        id: new_leader,
                        spec: attached.spec,
                        cancel: attached.cancel,
                        key: Some(key.clone()),
                        enqueued_ms: attached.enqueued_ms.min(now_ms),
                        cost,
                        degraded: false,
                        queue_depth,
                    },
                    cost,
                );
                self.queued_cost += cost;
                Some(new_leader)
            }
            _ => None,
        };
        (reelected, cancelled)
    }

    fn take_attached_info(&mut self, id: u64) -> Option<AttachedInfo> {
        self.attached.remove(&id).map(|a| AttachedInfo {
            id,
            workload: a.spec.workload.clone(),
            tenant: a.spec.tenant.clone(),
        })
    }
}

/// The degraded-tier configuration: the same pipeline with the
/// composition search budget clamped hard (shallower ansatz search,
/// quartered annealing, single restart, no reseeded retries). The
/// clamp is on *iteration* budgets, not wall clocks, so a degraded
/// compile is still a pure function of its seed.
pub fn degrade_config(config: &PipelineConfig) -> PipelineConfig {
    let mut cfg = config.clone();
    cfg.composition.max_layers = cfg.composition.max_layers.clamp(1, 2);
    cfg.composition.anneal_iters = (cfg.composition.anneal_iters / 4).max(8);
    cfg.composition.restarts = 1;
    cfg.composition.retry_attempts = 0;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser::Technique;
    use geyser_circuit::Circuit;

    fn spec(workload: &str, tenant: &str) -> JobSpec {
        let mut program = Circuit::new(2);
        program.h(0).cx(0, 1);
        JobSpec::new(
            workload,
            Technique::OptiMap,
            program,
            PipelineConfig::fast(),
        )
        .with_tenant(tenant)
    }

    fn core(capacity: usize) -> ServiceCore {
        ServiceCore::new(ServiceConfig {
            queue_capacity: capacity,
            workers: 1,
            default_cost: 100,
            tenant_burst: 1_000,
            tenant_rate_per_sec: 100,
            drr_quantum: 200,
            degrade_wait_ms: 0,
            dedup: true,
        })
    }

    #[test]
    fn full_queue_sheds_with_queue_full() {
        let mut c = core(1);
        assert!(matches!(
            c.submit(0, spec("a", "t"), CancelToken::new(), 0),
            Admission::Queued { .. }
        ));
        match c.submit(1, spec("b", "t"), CancelToken::new(), 0) {
            Admission::Shed { reason, spec } => {
                assert_eq!(reason.label(), "queue-full");
                assert_eq!(spec.workload, "b");
            }
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(c.metrics().shed_queue_full, 1);
    }

    #[test]
    fn backlogged_tenant_out_of_tokens_is_throttled() {
        let mut c = ServiceCore::new(ServiceConfig {
            queue_capacity: 100,
            workers: 1,
            default_cost: 100,
            tenant_burst: 150, // one job's worth
            tenant_rate_per_sec: 0,
            drr_quantum: 200,
            degrade_wait_ms: 0,
            dedup: false,
        });
        assert!(matches!(
            c.submit(0, spec("a", "hog"), CancelToken::new(), 0),
            Admission::Queued { .. }
        ));
        // Backlog exists, bucket drained → throttled.
        match c.submit(1, spec("b", "hog"), CancelToken::new(), 0) {
            Admission::Shed { reason, .. } => assert_eq!(reason.label(), "tenant-throttled"),
            other => panic!("expected throttle, got {other:?}"),
        }
        // A different tenant still gets in.
        assert!(matches!(
            c.submit(2, spec("c", "quiet"), CancelToken::new(), 0),
            Admission::Queued { .. }
        ));
    }

    #[test]
    fn idle_system_never_throttles() {
        let mut c = ServiceCore::new(ServiceConfig {
            tenant_burst: 0,
            tenant_rate_per_sec: 0,
            ..core(10).config
        });
        // Bucket can never pay, but the queue is empty → admit.
        assert!(matches!(
            c.submit(0, spec("a", "t"), CancelToken::new(), 0),
            Admission::Queued { .. }
        ));
    }

    #[test]
    fn unmeetable_deadline_sheds_at_admission() {
        let mut c = core(100);
        // Fill the queue with enough estimated work that the wait
        // estimate exceeds a tight deadline.
        for i in 0..5 {
            assert!(matches!(
                c.submit(i, spec("w", "t"), CancelToken::new(), 0),
                Admission::Queued { .. }
            ));
        }
        let tight = spec("late", "t").with_deadline_ms(1);
        match c.submit(99, tight, CancelToken::new(), 0) {
            Admission::Shed { reason, .. } => {
                assert_eq!(reason.label(), "deadline-unmeetable");
            }
            other => panic!("expected deadline shed, got {other:?}"),
        }
    }

    #[test]
    fn stale_job_is_shed_at_dequeue_not_run() {
        let mut c = core(100);
        let d = spec("stale", "t").with_deadline_ms(50);
        assert!(matches!(
            c.submit(0, d, CancelToken::new(), 0),
            Admission::Queued { .. }
        ));
        // Virtual time jumps past the deadline before a worker frees.
        match c.next(1_000) {
            Some(Dispatch::Shed { job, reason, .. }) => {
                assert_eq!(job.id, 0);
                assert_eq!(reason.label(), "stale-in-queue");
            }
            other => panic!("expected stale shed, got {other:?}"),
        }
        assert!(c.next(1_000).is_none());
        assert_eq!(c.metrics().shed_stale, 1);
    }

    #[test]
    fn deadline_shed_does_not_charge_the_tenant_bucket() {
        let mut c = ServiceCore::new(ServiceConfig {
            queue_capacity: 100,
            workers: 1,
            default_cost: 100,
            tenant_burst: 250,
            tenant_rate_per_sec: 0,
            drr_quantum: 200,
            degrade_wait_ms: 0,
            dedup: false,
        });
        assert!(matches!(
            c.submit(0, spec("a", "t"), CancelToken::new(), 0),
            Admission::Queued { .. }
        ));
        // A backlog makes the 1ms deadline unmeetable; the shed must
        // leave the remaining 150 millitokens untouched.
        match c.submit(1, spec("b", "t").with_deadline_ms(1), CancelToken::new(), 0) {
            Admission::Shed { reason, .. } => {
                assert_eq!(reason.label(), "deadline-unmeetable")
            }
            other => panic!("expected deadline shed, got {other:?}"),
        }
        assert!(matches!(
            c.submit(2, spec("c", "t"), CancelToken::new(), 0),
            Admission::Queued { .. }
        ));
    }

    #[test]
    fn cancelled_follower_resolves_cancelled_not_done() {
        let mut c = core(100);
        let mk = || spec("dup", "t").with_dedup(true);
        let follower_token = CancelToken::new();
        c.submit(0, mk(), CancelToken::new(), 0);
        c.submit(1, mk(), follower_token.clone(), 0);
        c.submit(2, mk(), CancelToken::new(), 0);
        follower_token.cancel();
        let Some(Dispatch::Run(job)) = c.next(0) else {
            panic!("leader dispatches")
        };
        let done = c.complete(&job.ticket(), true, 120, 10);
        assert_eq!(done.broadcast.len(), 1);
        assert_eq!(done.broadcast[0].id, 2);
        assert_eq!(done.cancelled.len(), 1);
        assert_eq!(done.cancelled[0].id, 1);
        assert!(done.reelected.is_none());
        assert!(c.is_quiescent());
    }

    #[test]
    fn cancelled_follower_is_never_promoted_to_leader() {
        let mut c = core(100);
        let mk = || spec("dup", "t").with_dedup(true);
        let follower_token = CancelToken::new();
        c.submit(0, mk(), CancelToken::new(), 0);
        c.submit(1, mk(), follower_token.clone(), 0);
        c.submit(2, mk(), CancelToken::new(), 0);
        follower_token.cancel();
        let Some(Dispatch::Run(job)) = c.next(0) else {
            panic!("leader dispatches")
        };
        // The leader fails: promotion must skip the cancelled
        // follower and pick the live one.
        let done = c.complete(&job.ticket(), false, 0, 5);
        assert_eq!(done.reelected, Some(2));
        assert_eq!(done.cancelled.len(), 1);
        assert_eq!(done.cancelled[0].id, 1);
        let Some(Dispatch::Run(promoted)) = c.next(5) else {
            panic!("promoted follower dispatches")
        };
        assert_eq!(promoted.id, 2);
        let done = c.complete(&promoted.ticket(), true, 100, 20);
        assert!(done.broadcast.is_empty());
        assert!(done.cancelled.is_empty());
        assert!(c.is_quiescent());
    }

    #[test]
    fn duplicates_attach_and_broadcast_on_success() {
        let mut c = core(100);
        let mk = || spec("dup", "t").with_dedup(true);
        assert!(matches!(
            c.submit(0, mk(), CancelToken::new(), 0),
            Admission::Queued { .. }
        ));
        match c.submit(1, mk(), CancelToken::new(), 0) {
            Admission::Attached { leader } => assert_eq!(leader, 0),
            other => panic!("expected attach, got {other:?}"),
        }
        let Some(Dispatch::Run(job)) = c.next(0) else {
            panic!("leader should dispatch")
        };
        let done = c.complete(&job.ticket(), true, 120, 10);
        assert_eq!(done.broadcast.len(), 1);
        assert_eq!(done.broadcast[0].id, 1);
        assert!(done.reelected.is_none());
        assert!(c.is_quiescent());
        assert_eq!(c.metrics().dedup_attached, 1);
    }

    #[test]
    fn failed_leader_promotes_follower_into_the_queue() {
        let mut c = core(100);
        let mk = || spec("dup", "t").with_dedup(true);
        c.submit(0, mk(), CancelToken::new(), 0);
        c.submit(1, mk(), CancelToken::new(), 0);
        c.submit(2, mk(), CancelToken::new(), 0);
        let Some(Dispatch::Run(job)) = c.next(0) else {
            panic!("leader dispatches")
        };
        let done = c.complete(&job.ticket(), false, 0, 5);
        assert_eq!(done.reelected, Some(1));
        assert!(done.broadcast.is_empty());
        // The promoted follower compiles and serves the last one.
        let Some(Dispatch::Run(promoted)) = c.next(5) else {
            panic!("promoted follower dispatches")
        };
        assert_eq!(promoted.id, 1);
        let done = c.complete(&promoted.ticket(), true, 100, 20);
        assert_eq!(done.broadcast.len(), 1);
        assert_eq!(done.broadcast[0].id, 2);
        assert!(c.is_quiescent());
        assert_eq!(c.metrics().dedup_reelections, 1);
    }

    #[test]
    fn shed_leader_closes_its_flight() {
        let mut c = core(1);
        let mk = |w: &str| spec(w, "t").with_dedup(true);
        // Occupy the only slot with a *different* key so the next
        // leader is shed by capacity.
        c.submit(0, spec("filler", "t"), CancelToken::new(), 0);
        match c.submit(1, mk("dup"), CancelToken::new(), 0) {
            Admission::Shed { reason, .. } => assert_eq!(reason.label(), "queue-full"),
            other => panic!("expected shed, got {other:?}"),
        }
        // Had the flight leaked, this would attach to a ghost leader;
        // it must instead shed on capacity as a fresh leader.
        match c.submit(2, mk("dup"), CancelToken::new(), 0) {
            Admission::Shed { reason, .. } => assert_eq!(reason.label(), "queue-full"),
            other => panic!("expected shed, got {other:?}"),
        }
    }

    #[test]
    fn overload_degrades_admitted_jobs() {
        let mut c = ServiceCore::new(ServiceConfig {
            queue_capacity: 100,
            workers: 1,
            default_cost: 100,
            tenant_burst: 100_000,
            tenant_rate_per_sec: 100_000,
            drr_quantum: 200,
            degrade_wait_ms: 300,
            dedup: false,
        });
        let mut saw_degraded = false;
        for i in 0..6 {
            match c.submit(i, spec("w", "t"), CancelToken::new(), 0) {
                Admission::Queued { degraded } => saw_degraded |= degraded,
                other => panic!("expected queued, got {other:?}"),
            }
        }
        assert!(
            saw_degraded,
            "estimated wait crosses 300ms by the fourth job"
        );
        assert!(c.metrics().degraded > 0);
    }

    #[test]
    fn degrade_config_clamps_composition_only() {
        let cfg = PipelineConfig::paper();
        let d = degrade_config(&cfg);
        assert!(d.composition.anneal_iters < cfg.composition.anneal_iters);
        assert!(d.composition.max_layers <= 2);
        assert_eq!(d.composition.restarts, 1);
        assert_eq!(d.composition.retry_attempts, 0);
        assert_eq!(d.seed, cfg.seed);
        assert_eq!(d.hardware, cfg.hardware);
        assert!(d.composition.anneal_iters >= 8);
    }

    #[test]
    fn recover_rebuilds_state_and_readmits_exactly_once() {
        use crate::journal::{JournalEvent, JournalReplay};
        let mut replay = JournalReplay::default();
        replay.apply(&JournalEvent::admitted(0, "acme", "OptiMap", None, 100, 0));
        replay.apply(&JournalEvent::dispatched(0, 1));
        replay.apply(&JournalEvent::completed(
            0, "acme", "OptiMap", 0xfeed, 900, 10,
        ));
        replay.apply(&JournalEvent::admitted(1, "acme", "OptiMap", None, 100, 12));
        replay.apply(&JournalEvent::dispatched(1, 13));
        replay.apply(&JournalEvent::shed(
            2,
            &RejectReason::QueueFull { capacity: 4 },
            14,
        ));

        let mut c = core(100);
        let before = c.estimated_wait_ms();
        let report = c.recover(&replay, 20);
        assert_eq!(report.completed, vec![(0, 0xfeed)]);
        assert_eq!(report.shed, vec![(2, "queue-full".to_string())]);
        assert_eq!(report.to_readmit, vec![1]);
        assert_eq!(report.events_applied, 6);
        // The 900-cost completion moved the OptiMap EWMA, so a
        // recovered core estimates queue delay like the dead one did.
        c.submit(1, spec("incomplete", "acme"), CancelToken::new(), 20);
        assert!(
            c.estimated_wait_ms() > before,
            "recovered cost model reflects observed costs"
        );
        // Re-admitting the pending job exactly once leaves exactly one
        // job queued; settled ids were never re-submitted.
        assert_eq!(c.queue_len(), 1);
        let Some(Dispatch::Run(job)) = c.next(20) else {
            panic!("readmitted job dispatches")
        };
        assert_eq!(job.id, 1);
    }

    #[test]
    fn recover_recharges_tenant_buckets() {
        use crate::journal::{JournalEvent, JournalReplay};
        let mut replay = JournalReplay::default();
        // The dead process had charged "hog" 150 of its 150-token
        // burst; after recovery, a backlogged "hog" must throttle
        // rather than restart with a fresh budget.
        replay.apply(&JournalEvent::completed(0, "hog", "OptiMap", 1, 150, 5));
        let mut c = ServiceCore::new(ServiceConfig {
            queue_capacity: 100,
            workers: 1,
            default_cost: 100,
            tenant_burst: 150,
            tenant_rate_per_sec: 0,
            drr_quantum: 200,
            degrade_wait_ms: 0,
            dedup: false,
        });
        c.recover(&replay, 5);
        assert!(matches!(
            c.submit(1, spec("a", "other"), CancelToken::new(), 6),
            Admission::Queued { .. }
        ));
        match c.submit(2, spec("b", "hog"), CancelToken::new(), 6) {
            Admission::Shed { reason, .. } => assert_eq!(reason.label(), "tenant-throttled"),
            other => panic!("expected throttle, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_sheds_new_submissions() {
        let mut c = core(10);
        c.begin_shutdown();
        match c.submit(0, spec("a", "t"), CancelToken::new(), 0) {
            Admission::Shed { reason, .. } => assert_eq!(reason.label(), "shutting-down"),
            other => panic!("expected shed, got {other:?}"),
        }
    }
}
