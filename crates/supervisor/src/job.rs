//! Job specifications, handles, and terminal results.

use std::path::PathBuf;

use geyser::{
    CancelToken, CompileError, CompiledCircuit, FaultInjector, PipelineConfig, Technique,
};
use geyser_circuit::Circuit;

/// One compile job submitted to the [`crate::Supervisor`].
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Workload name — the circuit-breaker key and checkpoint label.
    pub workload: String,
    /// Technique to compile with.
    pub technique: Technique,
    /// The logical program.
    pub program: Circuit,
    /// Pipeline configuration (budget, seeds, composition settings).
    pub config: PipelineConfig,
    /// Fault plan for this job (empty in production).
    pub faults: FaultInjector,
    /// Where to persist the crash-safe composition checkpoint; `None`
    /// disables checkpointing for this job.
    pub checkpoint: Option<PathBuf>,
    /// Whether to restore a matching checkpoint before composing.
    pub resume: bool,
}

impl JobSpec {
    /// A plain job: no faults, no checkpointing.
    pub fn new(
        workload: impl Into<String>,
        technique: Technique,
        program: Circuit,
        config: PipelineConfig,
    ) -> Self {
        JobSpec {
            workload: workload.into(),
            technique,
            program,
            config,
            faults: FaultInjector::none(),
            checkpoint: None,
            resume: false,
        }
    }
}

/// Where a job is in its lifecycle.
///
/// `Queued → Running → {Done, Cancelled, Retrying, Failed}`, with
/// `Retrying → Running` on each backoff expiry, and `Queued → Broken`
/// when the workload's breaker is open at dequeue time. The terminal
/// states are `Done`, `Cancelled`, `Failed`, and `Broken`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the bounded queue.
    Queued,
    /// An attempt is executing on a worker.
    Running,
    /// A retryable attempt failed; the job is sleeping out its
    /// backoff before the next attempt.
    Retrying,
    /// Terminal: compiled successfully.
    Done,
    /// Terminal: the job's [`CancelToken`] fired.
    Cancelled,
    /// Terminal: a fatal error, or retries exhausted.
    Failed,
    /// Terminal: rejected without running because the workload's
    /// circuit breaker was open.
    Broken,
}

impl JobState {
    /// Stable lowercase label (telemetry span attributes and logs).
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Retrying => "retrying",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
            JobState::Broken => "broken",
        }
    }

    /// Whether this state ends the job.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed | JobState::Broken
        )
    }
}

/// Handle returned by [`crate::Supervisor::submit`].
#[derive(Debug, Clone)]
pub struct JobHandle {
    /// Supervisor-assigned job id (unique per supervisor).
    pub id: u64,
    /// The job's cancellation token; firing it cancels the job
    /// whether queued or mid-pass.
    pub cancel: CancelToken,
}

/// Terminal record of one supervised job.
#[derive(Debug)]
pub struct JobResult {
    /// The id from the [`JobHandle`].
    pub id: u64,
    /// The workload the job belonged to.
    pub workload: String,
    /// Terminal state ([`JobState::is_terminal`] always holds).
    pub state: JobState,
    /// The compiled circuit when `state == Done` (with
    /// [`geyser::SupervisionStats`] attached to its report).
    pub compiled: Option<CompiledCircuit>,
    /// The final error for `Failed` / `Cancelled` terminals.
    pub error: Option<CompileError>,
    /// Attempts consumed (0 for `Broken` jobs, which never ran).
    pub attempts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states_are_exactly_the_four() {
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Broken.is_terminal());
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(!JobState::Retrying.is_terminal());
    }
}
