//! Job specifications, handles, and terminal results.

use std::path::PathBuf;

use geyser::{
    CancelToken, CompileError, CompiledCircuit, FaultInjector, PipelineConfig, Technique,
};
use geyser_circuit::Circuit;

use crate::admission::RejectReason;
use crate::tenant::TenantId;

/// One compile job submitted to the [`crate::Supervisor`].
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Workload name — the circuit-breaker key and checkpoint label.
    pub workload: String,
    /// Technique to compile with.
    pub technique: Technique,
    /// The logical program.
    pub program: Circuit,
    /// Pipeline configuration (budget, seeds, composition settings).
    pub config: PipelineConfig,
    /// Fault plan for this job (empty in production).
    pub faults: FaultInjector,
    /// Where to persist the crash-safe composition checkpoint; `None`
    /// disables checkpointing for this job.
    pub checkpoint: Option<PathBuf>,
    /// Whether to restore a matching checkpoint before composing.
    pub resume: bool,
    /// Tenant this job is billed to and scheduled under (service-layer
    /// fairness); defaults to the `"default"` tenant.
    pub tenant: TenantId,
    /// Optional deadline in milliseconds from submission. The service
    /// layer sheds the job (typed, never silent) when admission
    /// estimates the deadline cannot be met or when it expires in the
    /// queue. `None` means the job waits however long it takes.
    pub deadline_ms: Option<u64>,
    /// Whether this job may be deduplicated against an identical
    /// in-flight compile (same circuit fingerprint, hardware digest,
    /// technique, and seed) instead of compiling again.
    pub dedup: bool,
}

impl JobSpec {
    /// A plain job: no faults, no checkpointing, default tenant, no
    /// deadline, dedup off.
    pub fn new(
        workload: impl Into<String>,
        technique: Technique,
        program: Circuit,
        config: PipelineConfig,
    ) -> Self {
        JobSpec {
            workload: workload.into(),
            technique,
            program,
            config,
            faults: FaultInjector::none(),
            checkpoint: None,
            resume: false,
            tenant: TenantId::default(),
            deadline_ms: None,
            dedup: false,
        }
    }

    /// Returns the spec billed to the given tenant.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = TenantId::new(tenant);
        self
    }

    /// Returns the spec with a deadline, in ms from submission.
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Returns the spec with single-flight deduplication opted in or
    /// out.
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }
}

/// Where a job is in its lifecycle.
///
/// `Queued → Running → {Done, Cancelled, Retrying, Failed}`, with
/// `Retrying → Running` on each backoff expiry, `Queued → Broken`
/// when the workload's breaker is open at dequeue time, and
/// `→ Rejected` when the service layer sheds the job with a typed
/// [`RejectReason`] (at admission or when it goes stale in the
/// queue). The terminal states are `Done`, `Cancelled`, `Failed`,
/// `Broken`, and `Rejected`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the bounded queue.
    Queued,
    /// An attempt is executing on a worker.
    Running,
    /// A retryable attempt failed; the job is sleeping out its
    /// backoff before the next attempt.
    Retrying,
    /// Terminal: compiled successfully.
    Done,
    /// Terminal: the job's [`CancelToken`] fired.
    Cancelled,
    /// Terminal: a fatal error, or retries exhausted.
    Failed,
    /// Terminal: rejected without running because the workload's
    /// circuit breaker was open.
    Broken,
    /// Terminal: shed by the service layer with a typed
    /// [`RejectReason`] carried in [`JobResult::rejection`].
    Rejected,
}

impl JobState {
    /// Stable lowercase label (telemetry span attributes and logs).
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Retrying => "retrying",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
            JobState::Broken => "broken",
            JobState::Rejected => "rejected",
        }
    }

    /// Whether this state ends the job.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done
                | JobState::Cancelled
                | JobState::Failed
                | JobState::Broken
                | JobState::Rejected
        )
    }
}

/// Handle returned by [`crate::Supervisor::submit`].
#[derive(Debug, Clone)]
pub struct JobHandle {
    /// Supervisor-assigned job id (unique per supervisor).
    pub id: u64,
    /// The job's cancellation token; firing it cancels the job
    /// whether queued or mid-pass.
    pub cancel: CancelToken,
}

/// Terminal record of one supervised job.
#[derive(Debug)]
pub struct JobResult {
    /// The id from the [`JobHandle`].
    pub id: u64,
    /// The workload the job belonged to.
    pub workload: String,
    /// Terminal state ([`JobState::is_terminal`] always holds).
    pub state: JobState,
    /// The compiled circuit when `state == Done` (with
    /// [`geyser::SupervisionStats`] attached to its report).
    pub compiled: Option<CompiledCircuit>,
    /// The final error for `Failed` / `Cancelled` terminals.
    pub error: Option<CompileError>,
    /// Attempts consumed (0 for `Broken` and `Rejected` jobs, which
    /// never ran).
    pub attempts: u64,
    /// Why the service layer shed this job; present exactly when
    /// `state == Rejected`.
    pub rejection: Option<RejectReason>,
    /// Whether this result was served by single-flight deduplication
    /// (a clone of the flight leader's compile).
    pub deduped: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states_are_exactly_the_five() {
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Broken.is_terminal());
        assert!(JobState::Rejected.is_terminal());
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(!JobState::Retrying.is_terminal());
    }

    #[test]
    fn spec_builders_set_service_fields() {
        let mut program = Circuit::new(1);
        program.h(0);
        let spec = JobSpec::new("w", Technique::Baseline, program, PipelineConfig::fast())
            .with_tenant("acme")
            .with_deadline_ms(250)
            .with_dedup(true);
        assert_eq!(spec.tenant.as_str(), "acme");
        assert_eq!(spec.deadline_ms, Some(250));
        assert!(spec.dedup);
        assert_eq!(JobState::Rejected.label(), "rejected");
    }
}
