//! One supervised pipeline attempt: the stock pass list with the
//! composition stage swapped for a checkpoint-aware twin.

use std::path::PathBuf;

use geyser::{
    CancelToken, CompileContext, CompileError, CompiledCircuit, Deadline, FaultInjector, Pass,
    PassManager, PipelineConfig, Technique, Telemetry,
};
use geyser_circuit::Circuit;
use geyser_compose::{try_compose_blocked_circuit_reusing, try_compose_blocked_circuit_supervised};
use geyser_reuse::{load_reuse_dir, reuse_config_hash, save_reuse_dir, ReuseSession};

use crate::checkpoint::{
    checkpoint_fingerprint, composition_config_hash, load_checkpoint_quarantining, Checkpoint,
    CheckpointWriter,
};
use crate::watchdog::Heartbeat;

/// How one supervised attempt should run.
#[derive(Debug, Clone)]
pub struct SupervisedCompileOptions {
    /// Technique whose pass list to run.
    pub technique: Technique,
    /// Fault plan for this attempt (the supervisor strips transient
    /// faults after attempt 0).
    pub faults: FaultInjector,
    /// The job's cancellation token.
    pub cancel: CancelToken,
    /// Composition checkpoint file; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Whether to restore a matching checkpoint before composing.
    pub resume: bool,
    /// Telemetry handle threaded through the pass manager (disabled by
    /// default; observational only).
    pub telemetry: Telemetry,
    /// Liveness beacon for the watchdog: beaten at every pass boundary
    /// and after every composed block. `None` when the attempt is not
    /// under watch.
    pub heartbeat: Option<Heartbeat>,
}

impl SupervisedCompileOptions {
    /// Plain supervised options: no faults, no checkpoint.
    pub fn new(technique: Technique) -> Self {
        SupervisedCompileOptions {
            technique,
            faults: FaultInjector::none(),
            cancel: CancelToken::none(),
            checkpoint: None,
            resume: false,
            telemetry: Telemetry::disabled(),
            heartbeat: None,
        }
    }
}

/// Decorates a pass with heartbeat reporting: beats on entry and exit
/// under the inner pass's name, so the watchdog sees staleness only
/// when a pass is genuinely stuck *inside* its body (injected hangs
/// trigger before entry, which is exactly a stuck worker).
struct HeartbeatPass {
    inner: Box<dyn Pass>,
    heartbeat: Heartbeat,
}

impl Pass for HeartbeatPass {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
        self.heartbeat.beat(self.inner.name());
        let result = self.inner.run(ctx);
        self.heartbeat.beat(self.inner.name());
        result
    }
}

/// Drop-in replacement for the stock `compose` pass that persists
/// per-block results to a crash-safe checkpoint as they land and, on
/// resume, restores a matching checkpoint's blocks instead of
/// recomposing them.
///
/// Registered under the same pass name (`compose`) so reports,
/// invariant checks, and skip accounting are unchanged.
#[derive(Debug, Clone)]
pub struct CheckpointedComposePass {
    path: PathBuf,
    resume: bool,
    heartbeat: Option<Heartbeat>,
}

impl CheckpointedComposePass {
    /// A checkpointing compose pass writing to (and, if `resume`,
    /// restoring from) `path`.
    pub fn new(path: PathBuf, resume: bool) -> Self {
        CheckpointedComposePass {
            path,
            resume,
            heartbeat: None,
        }
    }

    /// Beats `heartbeat` after every composed block, keeping a long
    /// composition visibly alive to the watchdog.
    pub fn with_heartbeat(mut self, heartbeat: Heartbeat) -> Self {
        self.heartbeat = Some(heartbeat);
        self
    }
}

impl Pass for CheckpointedComposePass {
    fn name(&self) -> &'static str {
        "compose"
    }

    fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
        let blocked = ctx.blocked().ok_or(CompileError::MissingStage {
            pass: "compose",
            requires: "block",
        })?;
        // Same budget threading as the stock compose pass.
        let mut cfg = ctx.config().composition;
        if ctx.faults().force_compose_timeout {
            cfg = cfg.with_deadline(Deadline::already_expired());
        } else if ctx.deadline().is_bounded() {
            cfg = cfg.with_deadline(ctx.deadline());
        }

        let fingerprint = checkpoint_fingerprint(blocked.source());
        let num_blocks = blocked.num_blocks();
        let config_hash = composition_config_hash(&cfg);
        let hardware_digest = ctx.config().hardware.digest();
        // A checkpoint binds to (source circuit, composition seed,
        // block count, composition-config hash, hardware digest);
        // anything else is someone else's run and must not be spliced
        // in. Corrupt files are quarantined to a `.corrupt-<digest>`
        // sidecar and the run starts fresh — resume is an
        // optimization, never a correctness requirement.
        let (initial, prior) = match load_checkpoint_quarantining(&self.path, ctx.telemetry()) {
            Ok(ckpt)
                if self.resume
                    && ckpt.matches(
                        fingerprint,
                        cfg.seed,
                        num_blocks,
                        config_hash,
                        hardware_digest,
                    ) =>
            {
                let prior = ckpt.to_prior();
                (ckpt, prior)
            }
            _ => (
                Checkpoint::new(
                    fingerprint,
                    cfg.seed,
                    num_blocks,
                    config_hash,
                    hardware_digest,
                ),
                Vec::new(),
            ),
        };
        let writer = CheckpointWriter::new(
            self.path.clone(),
            initial,
            ctx.faults().corrupt_checkpoint,
            ctx.faults().kill_after_block,
            ctx.cancel().clone(),
            self.heartbeat.clone(),
        );
        // Reuse composes with checkpoint-resume: restored blocks are
        // never fingerprinted (they did no work to cache), fresh ones
        // consult the session index as usual.
        let reuse = ctx.config().reuse.clone();
        let mut composed = if reuse.enabled {
            let mut session = ReuseSession::new(
                hardware_digest,
                reuse_config_hash(
                    cfg.epsilon,
                    cfg.max_layers,
                    cfg.anneal_iters,
                    cfg.restarts,
                    cfg.retry_attempts,
                ),
            )
            .with_warm_start(reuse.warm_start)
            .with_skip_verify_fault(ctx.faults().reuse_skip_verify);
            if let Some(dir) = &reuse.store {
                load_reuse_dir(dir, &mut session, ctx.telemetry()).map_err(|e| {
                    CompileError::ReuseStore {
                        detail: format!("loading {}: {e}", dir.display()),
                    }
                })?;
            }
            if ctx.faults().reuse_poison {
                session.poison_entries();
            }
            let composed = try_compose_blocked_circuit_reusing(
                blocked,
                &cfg,
                &ctx.faults().compose,
                ctx.cancel(),
                &prior,
                Some(&writer),
                ctx.telemetry(),
                Some(&mut session),
            )?;
            if let Some(dir) = &reuse.store {
                save_reuse_dir(dir, &mut session).map_err(|e| CompileError::ReuseStore {
                    detail: format!("saving {}: {e}", dir.display()),
                })?;
            }
            let stats = session.stats;
            (composed, Some(stats))
        } else {
            let composed = try_compose_blocked_circuit_supervised(
                blocked,
                &cfg,
                &ctx.faults().compose,
                ctx.cancel(),
                &prior,
                Some(&writer),
                ctx.telemetry(),
            )?;
            (composed, None)
        };
        if let Some(stats) = composed.1 {
            composed.0.stats.reuse = Some(stats);
        }
        ctx.set_composed(composed.0.circuit, composed.0.stats);
        if ctx.cancel().is_cancelled() {
            return Err(CompileError::Cancelled {
                pass: "compose".to_string(),
            });
        }
        Ok(())
    }
}

/// Runs one supervised pipeline attempt: the technique's stock pass
/// list, with the `compose` pass replaced by
/// [`CheckpointedComposePass`] when a checkpoint path is configured,
/// under the attempt's fault plan and cancellation token.
pub fn run_supervised_compile(
    program: &Circuit,
    config: &PipelineConfig,
    opts: &SupervisedCompileOptions,
) -> Result<CompiledCircuit, CompileError> {
    let passes: Vec<Box<dyn Pass>> = opts
        .technique
        .pass_list()
        .into_iter()
        .map(|pass| match (&opts.checkpoint, pass.name()) {
            (Some(path), "compose") => {
                let mut compose = CheckpointedComposePass::new(path.clone(), opts.resume);
                if let Some(hb) = &opts.heartbeat {
                    compose = compose.with_heartbeat(hb.clone());
                }
                Box::new(compose) as Box<dyn Pass>
            }
            _ => pass,
        })
        .map(|pass| match &opts.heartbeat {
            Some(hb) => Box::new(HeartbeatPass {
                inner: pass,
                heartbeat: hb.clone(),
            }) as Box<dyn Pass>,
            None => pass,
        })
        .collect();
    PassManager::new(opts.technique, passes)
        .with_faults(opts.faults.clone())
        .with_cancel(opts.cancel.clone())
        .with_telemetry(opts.telemetry.clone())
        .run(program, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::load_checkpoint;

    fn program() -> Circuit {
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 1).h(1).cz(1, 2).h(2).cz(0, 2).h(0).cz(1, 2);
        c
    }

    fn temp_ckpt(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "geyser-supervised-compile-{}-{tag}.json",
            std::process::id()
        ))
    }

    #[test]
    fn plain_supervised_compile_matches_unsupervised() {
        let cfg = PipelineConfig::fast();
        let direct = geyser::try_compile(&program(), Technique::Geyser, &cfg).unwrap();
        let supervised = run_supervised_compile(
            &program(),
            &cfg,
            &SupervisedCompileOptions::new(Technique::Geyser),
        )
        .unwrap();
        assert_eq!(
            supervised.mapped().circuit().ops(),
            direct.mapped().circuit().ops()
        );
    }

    #[test]
    fn kill_after_block_cancels_typed_and_leaves_partial_checkpoint() {
        let path = temp_ckpt("kill");
        let _ = std::fs::remove_file(&path);
        let cfg = PipelineConfig::fast();
        let mut opts = SupervisedCompileOptions::new(Technique::Geyser);
        opts.faults = geyser::FaultInjector::parse("kill-after-block:1").unwrap();
        opts.cancel = CancelToken::new();
        opts.checkpoint = Some(path.clone());
        let err = run_supervised_compile(&program(), &cfg, &opts).unwrap_err();
        assert!(
            matches!(err, CompileError::Cancelled { .. }),
            "expected typed Cancelled, got {err:?}"
        );
        let ckpt = load_checkpoint(&path).expect("partial checkpoint persisted");
        assert!(ckpt.num_recorded() >= 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_after_kill_is_bit_identical_to_uninterrupted_run() {
        let path = temp_ckpt("resume");
        let _ = std::fs::remove_file(&path);
        let cfg = PipelineConfig::fast();

        // Reference: one uninterrupted run.
        let full = run_supervised_compile(
            &program(),
            &cfg,
            &SupervisedCompileOptions::new(Technique::Geyser),
        )
        .unwrap();

        // Run 1: killed after the first fresh block.
        let mut killed = SupervisedCompileOptions::new(Technique::Geyser);
        killed.faults = geyser::FaultInjector::parse("kill-after-block:1").unwrap();
        killed.cancel = CancelToken::new();
        killed.checkpoint = Some(path.clone());
        run_supervised_compile(&program(), &cfg, &killed).unwrap_err();

        // Run 2: resume from the partial checkpoint, no faults.
        let mut resumed = SupervisedCompileOptions::new(Technique::Geyser);
        resumed.cancel = CancelToken::new();
        resumed.checkpoint = Some(path.clone());
        resumed.resume = true;
        let recovered = run_supervised_compile(&program(), &cfg, &resumed).unwrap();

        assert_eq!(
            recovered.mapped().circuit().ops(),
            full.mapped().circuit().ops(),
            "resumed run must be bit-identical to the uninterrupted run"
        );
        let stats = recovered.composition_stats().unwrap();
        assert!(
            stats.blocks_resumed >= 1,
            "at least the checkpointed block must be restored"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_from_different_pipeline_config_is_rejected() {
        let path = temp_ckpt("config-skew");
        let _ = std::fs::remove_file(&path);
        let cfg = PipelineConfig::fast();

        // Run 1: killed mid-composition, leaves a partial checkpoint.
        let mut killed = SupervisedCompileOptions::new(Technique::Geyser);
        killed.faults = geyser::FaultInjector::parse("kill-after-block:1").unwrap();
        killed.cancel = CancelToken::new();
        killed.checkpoint = Some(path.clone());
        run_supervised_compile(&program(), &cfg, &killed).unwrap_err();
        assert!(load_checkpoint(&path).unwrap().num_recorded() >= 1);

        // Run 2: same circuit, same seed, same block count — but a
        // different composition ε. The checkpoint's blocks were
        // accepted under the old ε, so splicing them in would bypass
        // the new acceptance rule; the resume must start fresh.
        let mut skewed_cfg = cfg.clone();
        skewed_cfg.composition.epsilon = cfg.composition.epsilon / 10.0;
        let mut resumed = SupervisedCompileOptions::new(Technique::Geyser);
        resumed.cancel = CancelToken::new();
        resumed.checkpoint = Some(path.clone());
        resumed.resume = true;
        let compiled = run_supervised_compile(&program(), &skewed_cfg, &resumed).unwrap();
        let stats = compiled.composition_stats().unwrap();
        assert_eq!(
            stats.blocks_resumed, 0,
            "stale-config checkpoint must be rejected, not spliced in"
        );

        // Run 3: matching config resumes normally.
        let _ = std::fs::remove_file(&path);
        let mut killed = SupervisedCompileOptions::new(Technique::Geyser);
        killed.faults = geyser::FaultInjector::parse("kill-after-block:1").unwrap();
        killed.cancel = CancelToken::new();
        killed.checkpoint = Some(path.clone());
        run_supervised_compile(&program(), &cfg, &killed).unwrap_err();
        let mut resumed = SupervisedCompileOptions::new(Technique::Geyser);
        resumed.cancel = CancelToken::new();
        resumed.checkpoint = Some(path.clone());
        resumed.resume = true;
        let compiled = run_supervised_compile(&program(), &cfg, &resumed).unwrap();
        assert!(compiled.composition_stats().unwrap().blocks_resumed >= 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_from_different_hardware_spec_is_rejected() {
        let path = temp_ckpt("hardware-skew");
        let _ = std::fs::remove_file(&path);
        let cfg = PipelineConfig::fast();

        // Run 1: compiled for the paper machine, killed mid-composition.
        let mut killed = SupervisedCompileOptions::new(Technique::Geyser);
        killed.faults = geyser::FaultInjector::parse("kill-after-block:1").unwrap();
        killed.cancel = CancelToken::new();
        killed.checkpoint = Some(path.clone());
        run_supervised_compile(&program(), &cfg, &killed).unwrap_err();
        assert!(load_checkpoint(&path).unwrap().num_recorded() >= 1);

        // Run 2: identical pipeline knobs but a different hardware
        // scenario. Same circuit, seed, and composition config — only
        // the spec digest differs, and that alone must force a fresh
        // start.
        let skewed_cfg = cfg.clone().with_hardware(geyser::HardwareSpec::near_term());
        let mut resumed = SupervisedCompileOptions::new(Technique::Geyser);
        resumed.cancel = CancelToken::new();
        resumed.checkpoint = Some(path.clone());
        resumed.resume = true;
        let compiled = run_supervised_compile(&program(), &skewed_cfg, &resumed).unwrap();
        let stats = compiled.composition_stats().unwrap();
        assert_eq!(
            stats.blocks_resumed, 0,
            "cross-hardware checkpoint must be rejected, not spliced in"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checkpoint_degrades_to_fresh_start() {
        let path = temp_ckpt("corrupt");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, "{ not a checkpoint").unwrap();
        let cfg = PipelineConfig::fast();
        let mut opts = SupervisedCompileOptions::new(Technique::Geyser);
        opts.checkpoint = Some(path.clone());
        opts.resume = true;
        let compiled = run_supervised_compile(&program(), &cfg, &opts).unwrap();
        let stats = compiled.composition_stats().unwrap();
        assert_eq!(stats.blocks_resumed, 0, "nothing restorable from garbage");
        let _ = std::fs::remove_file(&path);
    }
}
