//! Crash-safe checkpointing of per-block composition results.
//!
//! Composition dominates compile time, and its per-block results are
//! independent (each block derives its seed from `(config.seed,
//! block index)`), so they are the natural checkpoint grain: every
//! freshly composed block is appended to a JSON checkpoint written
//! with the classic temp-file + atomic-rename dance. A run killed at
//! any instant leaves either the previous complete checkpoint or the
//! new complete checkpoint on disk — never a torn file — and a
//! `--resume` run restores the recorded blocks verbatim, finishing
//! bit-identical to an uninterrupted run.
//!
//! A checkpoint is bound to its run by a fingerprint of the blocked
//! circuit's source and the composition seed; a stale or corrupt file
//! is detected at load time and the run starts fresh.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use geyser::store::{
    fnv1a_bytes, quarantine_corrupt, read_record_file, read_record_file_quarantining,
    write_record_atomic, StoreReadError,
};
use geyser::{CancelToken, Telemetry};
use geyser_circuit::Circuit;
use geyser_compose::{
    BlockObserver, BlockOutcome, CompositionConfig, CompositionResult, FallbackReason,
};
use serde::{Deserialize, Serialize};

/// On-disk format version; bumped on incompatible layout changes.
/// v2 added the composition-config hash to the run binding; v3 added
/// the hardware-spec digest, so checkpoints written under one hardware
/// scenario can never resume a run compiling for another (pre-v3
/// files also fail deserialization — the field is required — and are
/// treated as absent, never silently replayed).
const CHECKPOINT_VERSION: u64 = 3;

/// One checkpointed block result — a serializable mirror of
/// [`CompositionResult`] (the vendored serde derive has no attribute
/// support, so enums are flattened into a `kind` + optional fields,
/// the same idiom the bench cache uses).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CheckpointBlock {
    index: usize,
    circuit: Circuit,
    hsd: f64,
    composed: bool,
    layers: usize,
    /// `composed`, `fell-back`, or `failed`.
    outcome_kind: String,
    outcome_layers: usize,
    outcome_hsd: f64,
    /// [`FallbackReason::label`] when `outcome_kind == "fell-back"`.
    outcome_reason: Option<String>,
    /// Panic payload when `outcome_kind == "failed"`.
    outcome_detail: Option<String>,
}

impl CheckpointBlock {
    fn from_result(index: usize, res: &CompositionResult) -> Option<Self> {
        let (kind, layers, hsd, reason, detail) = match &res.outcome {
            BlockOutcome::Composed { layers, hsd } => ("composed", *layers, *hsd, None, None),
            BlockOutcome::FellBack { reason } => {
                ("fell-back", 0, 0.0, Some(reason.label().to_string()), None)
            }
            // Failed and Skipped blocks are not checkpointed: a resume
            // should retry a panicked block, and skipped blocks carry
            // no result at all.
            BlockOutcome::Failed { .. } | BlockOutcome::Skipped => return None,
        };
        Some(CheckpointBlock {
            index,
            circuit: res.circuit.clone(),
            hsd: res.hsd,
            composed: res.composed,
            layers: res.layers,
            outcome_kind: kind.to_string(),
            outcome_layers: layers,
            outcome_hsd: hsd,
            outcome_reason: reason,
            outcome_detail: detail,
        })
    }

    fn to_result(&self) -> Option<(usize, CompositionResult)> {
        let outcome = match self.outcome_kind.as_str() {
            "composed" => BlockOutcome::Composed {
                layers: self.outcome_layers,
                hsd: self.outcome_hsd,
            },
            "fell-back" => BlockOutcome::FellBack {
                reason: FallbackReason::from_label(self.outcome_reason.as_deref()?)?,
            },
            "failed" => BlockOutcome::Failed {
                detail: self.outcome_detail.clone()?,
            },
            _ => return None,
        };
        Some((
            self.index,
            CompositionResult {
                circuit: self.circuit.clone(),
                hsd: self.hsd,
                composed: self.composed,
                layers: self.layers,
                outcome,
            },
        ))
    }
}

/// A composition checkpoint: completed block results bound to one
/// `(source circuit, seed)` run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    version: u64,
    fingerprint: u64,
    seed: u64,
    num_blocks: usize,
    config_hash: u64,
    hardware_digest: u64,
    blocks: Vec<CheckpointBlock>,
}

impl Checkpoint {
    /// An empty checkpoint for a run over `num_blocks` blocks of a
    /// circuit with the given fingerprint, composition seed,
    /// composition-config hash (see [`composition_config_hash`]), and
    /// hardware-spec digest (`HardwareSpec::digest`).
    pub fn new(
        fingerprint: u64,
        seed: u64,
        num_blocks: usize,
        config_hash: u64,
        hardware_digest: u64,
    ) -> Self {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            fingerprint,
            seed,
            num_blocks,
            config_hash,
            hardware_digest,
            blocks: Vec::new(),
        }
    }

    /// Completed block results recorded so far.
    pub fn num_recorded(&self) -> usize {
        self.blocks.len()
    }

    /// Whether this checkpoint belongs to the `(fingerprint, seed,
    /// num_blocks, config_hash, hardware_digest)` run — resuming
    /// someone else's checkpoint, one composed under different search
    /// parameters (a different ε, layer cap, or annealing budget), or
    /// one compiled for different hardware would silently splice wrong
    /// or differently-converged circuits in.
    pub fn matches(
        &self,
        fingerprint: u64,
        seed: u64,
        num_blocks: usize,
        config_hash: u64,
        hardware_digest: u64,
    ) -> bool {
        self.version == CHECKPOINT_VERSION
            && self.fingerprint == fingerprint
            && self.seed == seed
            && self.num_blocks == num_blocks
            && self.config_hash == config_hash
            && self.hardware_digest == hardware_digest
    }

    /// Expands the recorded blocks into the `prior` slice shape that
    /// `try_compose_blocked_circuit_supervised` resumes from.
    pub fn to_prior(&self) -> Vec<Option<CompositionResult>> {
        let mut prior = vec![None; self.num_blocks];
        for block in &self.blocks {
            if let Some((index, result)) = block.to_result() {
                if index < prior.len() {
                    prior[index] = Some(result);
                }
            }
        }
        prior
    }
}

/// Why a checkpoint could not be loaded.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read (missing counts here too).
    Io(std::io::Error),
    /// The file was read but is not a valid checkpoint — torn by a
    /// crash, checksum-corrupted, injected corruption, or version
    /// skew.
    Corrupt {
        /// FNV-1a digest of the corrupt bytes (matches the quarantine
        /// sidecar suffix).
        digest: u64,
        /// What exactly was wrong (torn, checksum mismatch, JSON does
        /// not parse, ...).
        reason: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint unreadable: {e}"),
            CheckpointError::Corrupt { digest, reason } => {
                write!(f, "checkpoint corrupt (digest {digest:016x}): {reason}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a fingerprint of a circuit's debug form — the same scheme the
/// bench cache uses to bind artifacts to their exact input.
pub fn checkpoint_fingerprint(circuit: &Circuit) -> u64 {
    let text = format!("{circuit:?}");
    fnv1a(&text)
}

/// FNV-1a hash of the composition parameters that shape per-block
/// results: ε, the layer cap, and the annealing budget (iterations,
/// restarts, retries). The seed is bound separately; threads and the
/// wall-clock deadline are excluded because they change scheduling,
/// never a completed block's content.
pub fn composition_config_hash(cfg: &CompositionConfig) -> u64 {
    let text = format!(
        "eps={:?}|layers={}|iters={}|restarts={}|retries={}",
        cfg.epsilon, cfg.max_layers, cfg.anneal_iters, cfg.restarts, cfg.retry_attempts
    );
    fnv1a(&text)
}

fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Writes the checkpoint crash-safely as a framed record (length
/// prefix + FNV checksum, see [`geyser::store`]): serialize to
/// `<path>.tmp`, then atomically rename over `path`. A crash
/// mid-write leaves the previous checkpoint intact; a crash between
/// write and rename leaves a stray `.tmp` that the next write simply
/// overwrites; a torn rename target fails the frame check on load.
pub fn write_checkpoint_atomic(path: &Path, checkpoint: &Checkpoint) -> std::io::Result<()> {
    let body = serde_json::to_string(checkpoint)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    write_record_atomic(path, &body)
}

fn parse_checkpoint(payload: &str) -> Result<Checkpoint, CheckpointError> {
    serde_json::from_str(payload).map_err(|_| CheckpointError::Corrupt {
        digest: fnv1a_bytes(payload.as_bytes()),
        reason: "checkpoint JSON does not parse or has version skew".to_string(),
    })
}

/// Loads a checkpoint, distinguishing unreadable files from corrupt
/// ones; the frame's length and checksum are verified before any JSON
/// parsing. Unframed (pre-framing) files still parse as legacy JSON.
/// The file is left in place — see [`load_checkpoint_quarantining`]
/// for the variant the supervised pipeline uses.
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint, CheckpointError> {
    match read_record_file(path) {
        Ok(payload) => parse_checkpoint(payload.text()),
        Err(StoreReadError::Io(e)) => Err(CheckpointError::Io(e)),
        Err(StoreReadError::Corrupt(c)) => Err(CheckpointError::Corrupt {
            digest: c.digest,
            reason: c.reason,
        }),
    }
}

/// Loads a checkpoint like [`load_checkpoint`], but quarantines a
/// corrupt file to a `.corrupt-<digest>` sidecar (logging a structured
/// warning and bumping the `store_corrupt_total` counter) so the next
/// write starts clean and corruption is observable, never a silent
/// fresh start.
pub fn load_checkpoint_quarantining(
    path: &Path,
    telemetry: &Telemetry,
) -> Result<Checkpoint, CheckpointError> {
    match read_record_file_quarantining(path, "checkpoint", telemetry) {
        Ok(payload) => match parse_checkpoint(payload.text()) {
            Ok(ckpt) => Ok(ckpt),
            Err(CheckpointError::Corrupt { reason, .. }) => {
                // The frame verified (or the file predates framing) but
                // the payload is not a checkpoint: quarantine the file
                // bytes as-is.
                let bytes = std::fs::read(path).unwrap_or_default();
                let c = quarantine_corrupt(path, &bytes, &reason, "checkpoint", telemetry);
                Err(CheckpointError::Corrupt {
                    digest: c.digest,
                    reason: c.reason,
                })
            }
            Err(e) => Err(e),
        },
        Err(StoreReadError::Io(e)) => Err(CheckpointError::Io(e)),
        Err(StoreReadError::Corrupt(c)) => Err(CheckpointError::Corrupt {
            digest: c.digest,
            reason: c.reason,
        }),
    }
}

/// The live checkpoint writer: a [`BlockObserver`] that persists the
/// checkpoint after every fresh block and drives the injectable
/// mid-run faults (`checkpoint-corrupt`, `kill-after-block`).
pub(crate) struct CheckpointWriter {
    path: std::path::PathBuf,
    state: Mutex<Checkpoint>,
    /// Truncate the file after each write (injected corruption).
    corrupt: bool,
    /// Cancel `cancel` once this many fresh blocks have checkpointed
    /// (simulates the process dying mid-sweep).
    kill_after: Option<usize>,
    cancel: CancelToken,
    fresh: AtomicUsize,
    /// Beaten after every block so a long composition stays visibly
    /// alive to the watchdog.
    heartbeat: Option<crate::watchdog::Heartbeat>,
}

impl CheckpointWriter {
    pub(crate) fn new(
        path: std::path::PathBuf,
        initial: Checkpoint,
        corrupt: bool,
        kill_after: Option<usize>,
        cancel: CancelToken,
        heartbeat: Option<crate::watchdog::Heartbeat>,
    ) -> Self {
        CheckpointWriter {
            path,
            state: Mutex::new(initial),
            corrupt,
            kill_after,
            cancel,
            fresh: AtomicUsize::new(0),
            heartbeat,
        }
    }
}

impl BlockObserver for CheckpointWriter {
    fn block_finished(&self, index: usize, result: &CompositionResult) {
        if let Some(hb) = &self.heartbeat {
            hb.beat("compose");
        }
        // A cancelled fallback is not a completed block; persisting it
        // would make the resume skip real work.
        if matches!(
            result.outcome,
            BlockOutcome::FellBack {
                reason: FallbackReason::Cancelled
            }
        ) {
            return;
        }
        if let Some(block) = CheckpointBlock::from_result(index, result) {
            let mut state = self
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.blocks.push(block);
            // Checkpoint IO failures must never fail the compilation:
            // the checkpoint is an optimization for the next run.
            let _ = write_checkpoint_atomic(&self.path, &state);
            drop(state);
            if self.corrupt {
                if let Ok(body) = std::fs::read_to_string(&self.path) {
                    let _ = std::fs::write(&self.path, &body[..body.len() / 2]);
                }
            }
        }
        let fresh = self.fresh.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(kill_at) = self.kill_after {
            if fresh >= kill_at.max(1) {
                self.cancel.cancel();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result(composed: bool) -> CompositionResult {
        let mut c = Circuit::new(3);
        c.h(0).cz(0, 1);
        CompositionResult {
            circuit: c,
            hsd: 1e-4,
            composed,
            layers: 2,
            outcome: if composed {
                BlockOutcome::Composed {
                    layers: 2,
                    hsd: 1e-4,
                }
            } else {
                BlockOutcome::FellBack {
                    reason: FallbackReason::NotCheaper,
                }
            },
        }
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "geyser-ckpt-test-{}-{tag}.json",
            std::process::id()
        ))
    }

    #[test]
    fn roundtrips_through_disk() {
        let path = temp_path("roundtrip");
        let mut ckpt = Checkpoint::new(0xabcd, 7, 5, 0xc0f6, 0x11);
        ckpt.blocks
            .push(CheckpointBlock::from_result(2, &sample_result(true)).unwrap());
        ckpt.blocks
            .push(CheckpointBlock::from_result(4, &sample_result(false)).unwrap());
        write_checkpoint_atomic(&path, &ckpt).unwrap();
        let back = load_checkpoint(&path).unwrap();
        assert!(back.matches(0xabcd, 7, 5, 0xc0f6, 0x11));
        assert_eq!(back.num_recorded(), 2);
        let prior = back.to_prior();
        assert_eq!(prior.len(), 5);
        assert!(prior[0].is_none() && prior[1].is_none() && prior[3].is_none());
        let restored = prior[2].as_ref().unwrap();
        assert!(restored.composed);
        assert_eq!(restored.layers, 2);
        assert_eq!(
            prior[4].as_ref().unwrap().outcome,
            BlockOutcome::FellBack {
                reason: FallbackReason::NotCheaper
            }
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_run_is_rejected() {
        let ckpt = Checkpoint::new(1, 2, 3, 4, 5);
        assert!(!ckpt.matches(999, 2, 3, 4, 5), "wrong fingerprint");
        assert!(!ckpt.matches(1, 999, 3, 4, 5), "wrong seed");
        assert!(!ckpt.matches(1, 2, 999, 4, 5), "wrong block count");
        assert!(!ckpt.matches(1, 2, 3, 999, 5), "wrong config hash");
        assert!(!ckpt.matches(1, 2, 3, 4, 999), "wrong hardware digest");
        assert!(ckpt.matches(1, 2, 3, 4, 5));
    }

    #[test]
    fn truncated_file_loads_as_corrupt() {
        let path = temp_path("truncated");
        let ckpt = Checkpoint::new(1, 2, 3, 4, 5);
        write_checkpoint_atomic(&path, &ckpt).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &body[..body.len() / 2]).unwrap();
        let err = load_checkpoint(&path).unwrap_err();
        let CheckpointError::Corrupt { reason, .. } = err else {
            panic!("truncated checkpoint must load as Corrupt");
        };
        assert!(reason.contains("torn"), "reason was: {reason}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flipped_file_loads_as_checksum_corrupt() {
        let path = temp_path("bit-flip");
        write_checkpoint_atomic(&path, &Checkpoint::new(1, 2, 3, 4, 5)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x20;
        std::fs::write(&path, bytes).unwrap();
        let err = load_checkpoint(&path).unwrap_err();
        let CheckpointError::Corrupt { reason, .. } = err else {
            panic!("bit-flipped checkpoint must load as Corrupt");
        };
        assert!(reason.contains("checksum"), "reason was: {reason}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn quarantining_load_moves_corrupt_file_aside() {
        let path = temp_path("quarantine");
        write_checkpoint_atomic(&path, &Checkpoint::new(1, 2, 3, 4, 5)).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &body[..body.len() / 2]).unwrap();
        let telemetry = geyser::Telemetry::enabled();
        let err = load_checkpoint_quarantining(&path, &telemetry).unwrap_err();
        let CheckpointError::Corrupt { digest, .. } = err else {
            panic!("torn checkpoint must be Corrupt");
        };
        assert!(!path.exists(), "corrupt checkpoint must be quarantined");
        let sidecar = geyser::store::corrupt_sidecar_path(&path, digest);
        assert!(sidecar.exists(), "sidecar must hold the corrupt bytes");
        assert_eq!(
            telemetry.counter_value(geyser::store::STORE_CORRUPT_COUNTER),
            Some(1)
        );
        // The store is clean again: the next load is a plain miss.
        assert!(matches!(
            load_checkpoint_quarantining(&path, &telemetry),
            Err(CheckpointError::Io(_))
        ));
        let _ = std::fs::remove_file(&sidecar);
    }

    #[test]
    fn pre_v3_checkpoint_without_hardware_digest_is_invalidated() {
        // v2 files carry no hardware_digest; the field is required on
        // deserialize, so legacy checkpoints load as Corrupt and the
        // run starts fresh instead of silently replaying blocks
        // composed under an unknown hardware model.
        struct Raw(Value);
        impl serde::Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        use serde::Value;
        let path = temp_path("pre-v3");
        let ckpt = Checkpoint::new(1, 2, 3, 4, 5);
        let Value::Map(fields) = serde::Serialize::to_value(&ckpt) else {
            panic!("checkpoints serialize as maps");
        };
        let pruned: Vec<(String, Value)> = fields
            .into_iter()
            .filter(|(k, _)| k != "hardware_digest")
            .map(|(k, v)| {
                if k == "version" {
                    (k, Value::U64(2))
                } else {
                    (k, v)
                }
            })
            .collect();
        let body = serde_json::to_string(&Raw(Value::Map(pruned))).unwrap();
        std::fs::write(&path, body).unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::Corrupt { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_not_corrupt() {
        let path = temp_path("missing-never-written");
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::Io(_))
        ));
    }

    #[test]
    fn atomic_write_leaves_no_tmp_behind() {
        let path = temp_path("atomic");
        write_checkpoint_atomic(&path, &Checkpoint::new(5, 6, 7, 8, 9)).unwrap();
        assert!(path.exists());
        assert!(!path.with_extension("json.tmp").exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_distinguishes_circuits() {
        let mut a = Circuit::new(3);
        a.h(0);
        let mut b = Circuit::new(3);
        b.h(1);
        assert_ne!(checkpoint_fingerprint(&a), checkpoint_fingerprint(&b));
        let mut a2 = Circuit::new(3);
        a2.h(0);
        assert_eq!(checkpoint_fingerprint(&a), checkpoint_fingerprint(&a2));
    }

    #[test]
    fn config_hash_tracks_search_parameters_only() {
        let base = CompositionConfig::default();
        let mut eps = base;
        eps.epsilon = base.epsilon / 10.0;
        assert_ne!(
            composition_config_hash(&base),
            composition_config_hash(&eps)
        );
        let mut layers = base;
        layers.max_layers += 1;
        assert_ne!(
            composition_config_hash(&base),
            composition_config_hash(&layers)
        );
        let mut iters = base;
        iters.anneal_iters += 1;
        assert_ne!(
            composition_config_hash(&base),
            composition_config_hash(&iters)
        );
        // Seed is bound separately; threads and deadline affect
        // scheduling, not block content — none may change the hash.
        let mut sched = base;
        sched.seed = 99;
        sched.threads = 7;
        assert_eq!(
            composition_config_hash(&base),
            composition_config_hash(&sched)
        );
    }

    #[test]
    fn writer_records_fresh_blocks_and_fires_kill_switch() {
        let path = temp_path("writer");
        let token = CancelToken::new();
        let writer = CheckpointWriter::new(
            path.clone(),
            Checkpoint::new(1, 2, 4, 0, 0),
            false,
            Some(2),
            token.clone(),
            None,
        );
        writer.block_finished(0, &sample_result(true));
        assert!(!token.is_cancelled(), "kill fires after 2 blocks, not 1");
        writer.block_finished(1, &sample_result(true));
        assert!(token.is_cancelled());
        let back = load_checkpoint(&path).unwrap();
        assert_eq!(back.num_recorded(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn writer_skips_cancelled_fallbacks() {
        let path = temp_path("writer-cancelled");
        let writer = CheckpointWriter::new(
            path.clone(),
            Checkpoint::new(1, 2, 4, 0, 0),
            false,
            None,
            CancelToken::none(),
            None,
        );
        let mut res = sample_result(false);
        res.outcome = BlockOutcome::FellBack {
            reason: FallbackReason::Cancelled,
        };
        writer.block_finished(0, &res);
        assert!(!path.exists(), "cancelled fallback must not be persisted");
    }
}
