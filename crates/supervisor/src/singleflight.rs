//! Single-flight deduplication: identical in-flight compiles run once.
//!
//! Two jobs are *identical* when they would provably produce the same
//! compiled circuit: same circuit fingerprint, same hardware digest,
//! same technique, same seed (the pipeline is deterministic in those
//! four). When a job arrives while an identical one is already
//! admitted, it **attaches** to that flight as a follower instead of
//! queueing a redundant compile; when the flight's leader finishes,
//! the result is broadcast to every follower.
//!
//! The subtle case is a failing leader. A panicked, hung, or cancelled
//! leader must not take its followers down with it — they were real
//! submissions that never got their compile. On leader failure the
//! flight **re-elects**: the first follower is promoted to leader and
//! compiles for the remaining attachees, repeating until the flight
//! succeeds or runs out of members. Followers can also detach
//! individually (their own cancel token fired) without disturbing the
//! flight.
//!
//! This module tracks membership only — job ids in, job ids out. The
//! service layer owns the specs and results and performs the actual
//! re-dispatch and broadcast.

use std::collections::HashMap;

use geyser::{HardwareSpec, Technique};
use geyser_circuit::Circuit;

use crate::checkpoint::checkpoint_fingerprint;

/// Identity of a compile for dedup purposes: jobs with equal keys are
/// guaranteed to produce identical circuits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobKey {
    /// Fingerprint of the logical program
    /// ([`crate::checkpoint_fingerprint`]).
    pub fingerprint: u64,
    /// Digest of the hardware scenario compiled for.
    pub hardware_digest: u64,
    /// Technique label.
    pub technique: &'static str,
    /// Master seed of the pipeline configuration.
    pub seed: u64,
}

impl JobKey {
    /// Derives the key for one (program, hardware, technique, seed)
    /// combination.
    pub fn derive(
        program: &Circuit,
        hardware: &HardwareSpec,
        technique: Technique,
        seed: u64,
    ) -> Self {
        JobKey {
            fingerprint: checkpoint_fingerprint(program),
            hardware_digest: hardware.digest(),
            technique: technique.label(),
            seed,
        }
    }
}

/// What a job became when it joined the dedup layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightRole {
    /// First of its key: this job compiles.
    Leader,
    /// Attached to an in-flight compile led by `leader`.
    Follower {
        /// Job id of the current flight leader.
        leader: u64,
    },
}

/// How a flight resolved when its leader finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightResolution {
    /// The finishing job led no flight (dedup disabled or key never
    /// shared).
    Solo,
    /// Leader succeeded: broadcast its result to these follower ids
    /// (possibly empty). The flight is closed.
    Broadcast {
        /// Followers awaiting the shared result, attach order.
        followers: Vec<u64>,
    },
    /// Leader failed but followers remain: `new_leader` was promoted
    /// and must now compile for the rest of the flight.
    Reelected {
        /// The promoted follower's job id.
        new_leader: u64,
        /// Followers still attached after the promotion.
        remaining: Vec<u64>,
    },
    /// Leader failed and no followers remained; the flight is closed.
    Closed,
}

#[derive(Debug)]
struct Flight {
    leader: u64,
    followers: Vec<u64>,
}

/// The dedup table: one [`Flight`] per in-flight [`JobKey`].
#[derive(Debug, Default)]
pub struct SingleFlight {
    flights: HashMap<JobKey, Flight>,
    /// Flights completed by broadcast (metric).
    broadcasts: u64,
    /// Leader promotions after a leader failure (metric).
    reelections: u64,
}

impl SingleFlight {
    /// An empty dedup table.
    pub fn new() -> Self {
        SingleFlight::default()
    }

    /// Joins `id` to the flight for `key`, creating the flight (with
    /// `id` as leader) when none is in progress.
    pub fn join(&mut self, key: JobKey, id: u64) -> FlightRole {
        match self.flights.get_mut(&key) {
            Some(flight) => {
                flight.followers.push(id);
                FlightRole::Follower {
                    leader: flight.leader,
                }
            }
            None => {
                self.flights.insert(
                    key,
                    Flight {
                        leader: id,
                        followers: Vec::new(),
                    },
                );
                FlightRole::Leader
            }
        }
    }

    /// Resolves a finished leader. `succeeded` decides between
    /// broadcast and re-election; a non-leader or unknown key resolves
    /// [`FlightResolution::Solo`].
    pub fn resolve(&mut self, key: &JobKey, id: u64, succeeded: bool) -> FlightResolution {
        match self.flights.get_mut(key) {
            Some(flight) if flight.leader == id => {
                if succeeded {
                    let flight = self.flights.remove(key).expect("flight exists");
                    if !flight.followers.is_empty() {
                        self.broadcasts += 1;
                    }
                    FlightResolution::Broadcast {
                        followers: flight.followers,
                    }
                } else if flight.followers.is_empty() {
                    self.flights.remove(key);
                    FlightResolution::Closed
                } else {
                    let new_leader = flight.followers.remove(0);
                    flight.leader = new_leader;
                    self.reelections += 1;
                    FlightResolution::Reelected {
                        new_leader,
                        remaining: flight.followers.clone(),
                    }
                }
            }
            _ => FlightResolution::Solo,
        }
    }

    /// Detaches one follower (its own cancel fired) without touching
    /// the rest of the flight. Returns whether it was attached.
    pub fn detach(&mut self, key: &JobKey, id: u64) -> bool {
        if let Some(flight) = self.flights.get_mut(key) {
            if let Some(pos) = flight.followers.iter().position(|f| *f == id) {
                flight.followers.remove(pos);
                return true;
            }
        }
        false
    }

    /// Whether any flight is currently in progress.
    pub fn is_empty(&self) -> bool {
        self.flights.is_empty()
    }

    /// Flights resolved by broadcasting a leader's success.
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts
    }

    /// Leader promotions performed after leader failures.
    pub fn reelections(&self) -> u64 {
        self.reelections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> JobKey {
        JobKey {
            fingerprint: 0xfeed,
            hardware_digest: 0xbeef,
            technique: "Geyser",
            seed,
        }
    }

    #[test]
    fn identical_programs_share_a_key_and_seeds_split_it() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1);
        let mut b = Circuit::new(2);
        b.h(0).cx(0, 1);
        let hw = HardwareSpec::paper();
        let ka = JobKey::derive(&a, &hw, Technique::Geyser, 7);
        let kb = JobKey::derive(&b, &hw, Technique::Geyser, 7);
        assert_eq!(ka, kb);
        let kc = JobKey::derive(&a, &hw, Technique::Geyser, 8);
        assert_ne!(ka, kc);
        let kd = JobKey::derive(&a, &hw, Technique::OptiMap, 7);
        assert_ne!(ka, kd);
    }

    #[test]
    fn first_leads_rest_follow_success_broadcasts() {
        let mut sf = SingleFlight::new();
        assert_eq!(sf.join(key(0), 1), FlightRole::Leader);
        assert_eq!(sf.join(key(0), 2), FlightRole::Follower { leader: 1 });
        assert_eq!(sf.join(key(0), 3), FlightRole::Follower { leader: 1 });
        // A different key starts its own flight.
        assert_eq!(sf.join(key(9), 4), FlightRole::Leader);
        assert_eq!(
            sf.resolve(&key(0), 1, true),
            FlightResolution::Broadcast {
                followers: vec![2, 3]
            }
        );
        assert_eq!(sf.broadcasts(), 1);
        assert!(!sf.is_empty(), "the other flight is still open");
    }

    #[test]
    fn failed_leader_reelects_until_exhausted() {
        let mut sf = SingleFlight::new();
        sf.join(key(0), 1);
        sf.join(key(0), 2);
        sf.join(key(0), 3);
        assert_eq!(
            sf.resolve(&key(0), 1, false),
            FlightResolution::Reelected {
                new_leader: 2,
                remaining: vec![3]
            }
        );
        assert_eq!(sf.reelections(), 1);
        // The new leader succeeds for the survivor.
        assert_eq!(
            sf.resolve(&key(0), 2, true),
            FlightResolution::Broadcast { followers: vec![3] }
        );
        assert!(sf.is_empty());
    }

    #[test]
    fn lone_failed_leader_closes_the_flight() {
        let mut sf = SingleFlight::new();
        sf.join(key(0), 1);
        assert_eq!(sf.resolve(&key(0), 1, false), FlightResolution::Closed);
        assert!(sf.is_empty());
        // Next arrival starts fresh.
        assert_eq!(sf.join(key(0), 2), FlightRole::Leader);
    }

    #[test]
    fn detach_removes_only_that_follower() {
        let mut sf = SingleFlight::new();
        sf.join(key(0), 1);
        sf.join(key(0), 2);
        sf.join(key(0), 3);
        assert!(sf.detach(&key(0), 2));
        assert!(!sf.detach(&key(0), 2), "already detached");
        assert_eq!(
            sf.resolve(&key(0), 1, true),
            FlightResolution::Broadcast { followers: vec![3] }
        );
    }

    #[test]
    fn non_leader_resolution_is_solo() {
        let mut sf = SingleFlight::new();
        sf.join(key(0), 1);
        sf.join(key(0), 2);
        // A follower finishing (e.g. cancelled out-of-band) is Solo —
        // it never led the flight.
        assert_eq!(sf.resolve(&key(0), 2, false), FlightResolution::Solo);
        // An unknown key is Solo too.
        assert_eq!(sf.resolve(&key(5), 9, true), FlightResolution::Solo);
    }
}
