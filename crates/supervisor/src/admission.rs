//! Admission control: cost estimation, deadline feasibility, and
//! typed load shedding.
//!
//! The service layer never drops work silently. Every job that is not
//! admitted gets a typed [`RejectReason`] explaining exactly which
//! control shed it, and the rejection is surfaced as a terminal job
//! outcome so callers can distinguish "the system chose not to run
//! this" from "this ran and failed".
//!
//! Admission decisions need a forecast of how long a job will take and
//! how long it will wait. Both come from the [`CostModel`]: a rolling
//! exponentially-weighted moving average of per-technique compile cost
//! (in abstract cost units ≈ milliseconds), updated after every
//! completed compile. The estimate is deliberately cheap and coarse —
//! it exists to make *shedding* decisions, not billing-grade
//! accounting.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Why the service refused to run a job. Every variant is a terminal,
/// typed outcome — never a silent drop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The global queue was at capacity and the job had no deadline
    /// slack worth displacing anything for.
    QueueFull {
        /// Configured queue capacity at rejection time.
        capacity: usize,
    },
    /// The job's tenant exhausted its token-bucket compile budget
    /// while the system was backlogged.
    TenantThrottled {
        /// Tenant that ran out of budget.
        tenant: String,
    },
    /// The estimated queue delay already exceeded the job's deadline
    /// at admission time, so running it would waste a worker.
    DeadlineUnmeetable {
        /// Estimated milliseconds until a worker would start the job.
        estimated_wait_ms: u64,
        /// The job's declared deadline, ms from submission.
        deadline_ms: u64,
    },
    /// The job's deadline expired while it sat in the queue
    /// (CoDel-style aging shed it at dequeue instead of burning a
    /// worker on already-dead work).
    StaleInQueue {
        /// Milliseconds the job spent queued before being shed.
        waited_ms: u64,
    },
    /// The service was shutting down when the job arrived.
    ShuttingDown,
}

impl RejectReason {
    /// Stable machine-readable label for scorecards and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue-full",
            RejectReason::TenantThrottled { .. } => "tenant-throttled",
            RejectReason::DeadlineUnmeetable { .. } => "deadline-unmeetable",
            RejectReason::StaleInQueue { .. } => "stale-in-queue",
            RejectReason::ShuttingDown => "shutting-down",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            RejectReason::TenantThrottled { tenant } => {
                write!(f, "tenant '{tenant}' exhausted its compile budget")
            }
            RejectReason::DeadlineUnmeetable {
                estimated_wait_ms,
                deadline_ms,
            } => write!(
                f,
                "estimated wait {estimated_wait_ms}ms exceeds deadline {deadline_ms}ms"
            ),
            RejectReason::StaleInQueue { waited_ms } => {
                write!(f, "deadline expired after {waited_ms}ms in queue")
            }
            RejectReason::ShuttingDown => f.write_str("service shutting down"),
        }
    }
}

/// Rolling per-technique compile-cost estimator.
///
/// Keeps one EWMA per technique label with weight 1/8 (`avg ←
/// (7·avg + sample) / 8`), integer arithmetic throughout so estimates
/// are bit-deterministic across platforms. Before the first
/// observation of a technique the model answers with `default_cost`.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Estimate returned for techniques never observed.
    default_cost: u64,
    /// EWMA per technique, in cost units (BTreeMap for deterministic
    /// iteration in debug output).
    avg: BTreeMap<String, u64>,
}

impl CostModel {
    /// A model that answers `default_cost` until it has observations.
    pub fn new(default_cost: u64) -> Self {
        CostModel {
            default_cost: default_cost.max(1),
            avg: BTreeMap::new(),
        }
    }

    /// Records one completed compile's measured cost.
    pub fn observe(&mut self, technique: &str, cost: u64) {
        let cost = cost.max(1);
        match self.avg.get_mut(technique) {
            Some(avg) => *avg = (avg.saturating_mul(7).saturating_add(cost)) / 8,
            None => {
                self.avg.insert(technique.to_string(), cost);
            }
        }
    }

    /// Current cost estimate for one job of this technique.
    pub fn estimate(&self, technique: &str) -> u64 {
        self.avg
            .get(technique)
            .copied()
            .unwrap_or(self.default_cost)
            .max(1)
    }

    /// Estimated milliseconds until a newly-admitted job would start,
    /// given the work currently queued ahead of it and the worker
    /// count: total queued cost spread across `workers` lanes.
    pub fn estimated_wait_ms(&self, queued_cost: u64, workers: usize) -> u64 {
        queued_cost / workers.max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_reasons_have_stable_labels() {
        assert_eq!(
            RejectReason::QueueFull { capacity: 4 }.label(),
            "queue-full"
        );
        assert_eq!(
            RejectReason::TenantThrottled {
                tenant: "acme".into()
            }
            .label(),
            "tenant-throttled"
        );
        assert_eq!(
            RejectReason::DeadlineUnmeetable {
                estimated_wait_ms: 900,
                deadline_ms: 100
            }
            .label(),
            "deadline-unmeetable"
        );
        assert_eq!(
            RejectReason::StaleInQueue { waited_ms: 50 }.label(),
            "stale-in-queue"
        );
        assert_eq!(RejectReason::ShuttingDown.label(), "shutting-down");
    }

    #[test]
    fn reject_reasons_roundtrip_as_json() {
        let r = RejectReason::DeadlineUnmeetable {
            estimated_wait_ms: 700,
            deadline_ms: 250,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: RejectReason = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert!(r.to_string().contains("700ms"));
    }

    #[test]
    fn cost_model_defaults_then_tracks() {
        let mut m = CostModel::new(500);
        assert_eq!(m.estimate("Geyser"), 500);
        m.observe("Geyser", 800);
        // First sample seeds the average directly.
        assert_eq!(m.estimate("Geyser"), 800);
        m.observe("Geyser", 0); // clamped to 1
        assert_eq!(m.estimate("Geyser"), (800 * 7 + 1) / 8);
        // Other techniques stay on the default.
        assert_eq!(m.estimate("Baseline"), 500);
    }

    #[test]
    fn ewma_converges_toward_steady_state() {
        let mut m = CostModel::new(100);
        for _ in 0..64 {
            m.observe("Geyser", 1000);
        }
        let est = m.estimate("Geyser");
        assert!(
            (990..=1000).contains(&est),
            "EWMA should converge near 1000, got {est}"
        );
    }

    #[test]
    fn wait_estimate_divides_across_workers() {
        let m = CostModel::new(100);
        assert_eq!(m.estimated_wait_ms(1000, 4), 250);
        assert_eq!(m.estimated_wait_ms(1000, 0), 1000);
    }
}
