//! Seeded exponential backoff with deterministic jitter.

/// Retry budget and backoff schedule for retryable failures.
///
/// The schedule is exponential (`base_backoff_ms · 2^attempt`),
/// clamped to `max_backoff_ms`, plus a jitter term drawn from a
/// splitmix64 stream keyed on `(seed, job, attempt)` — so two
/// supervisors with the same seed replay byte-identical schedules,
/// while concurrent jobs still decorrelate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed beyond the first attempt (0 = never retry).
    pub max_retries: usize,
    /// Backoff before the first retry, in milliseconds.
    pub base_backoff_ms: u64,
    /// Ceiling on a single backoff sleep, in milliseconds.
    pub max_backoff_ms: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff_ms: 10,
            max_backoff_ms: 1_000,
            seed: 0,
        }
    }
}

/// One splitmix64 draw — the repo's standard dependency-free
/// generator (also used by `FaultInjector::sampled`).
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// A policy allowing `max_retries` retries with short test-scale
    /// backoffs.
    pub fn with_retries(max_retries: usize) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// The backoff to sleep before retry number `attempt` (0-based:
    /// the first retry is attempt 0) of job `job_id`.
    ///
    /// Deterministic in `(seed, job_id, attempt)`.
    pub fn backoff_ms(&self, job_id: u64, attempt: usize) -> u64 {
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_backoff_ms);
        // Jitter in [0, base_backoff_ms): enough to decorrelate
        // retries without dominating the schedule.
        let jitter_span = self.base_backoff_ms.max(1);
        let draw = splitmix64(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(job_id)
                .wrapping_add((attempt as u64) << 32),
        );
        exp.saturating_add(draw % jitter_span)
            .min(self.max_backoff_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let p = RetryPolicy {
            max_retries: 5,
            base_backoff_ms: 10,
            max_backoff_ms: 500,
            seed: 42,
        };
        for attempt in 0..5 {
            assert_eq!(p.backoff_ms(7, attempt), p.backoff_ms(7, attempt));
        }
        let q = RetryPolicy { seed: 43, ..p };
        // Different seeds must shift at least one jittered sleep.
        assert!((0..5).any(|a| p.backoff_ms(7, a) != q.backoff_ms(7, a)));
    }

    #[test]
    fn backoff_grows_exponentially_until_clamped() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff_ms: 10,
            max_backoff_ms: 100,
            seed: 1,
        };
        // Exponential part: 10, 20, 40, 80, then clamped to 100.
        assert!(p.backoff_ms(0, 0) >= 10 && p.backoff_ms(0, 0) < 20);
        assert!(p.backoff_ms(0, 1) >= 20 && p.backoff_ms(0, 1) < 30);
        assert!(p.backoff_ms(0, 2) >= 40 && p.backoff_ms(0, 2) < 50);
        assert_eq!(p.backoff_ms(0, 6), 100);
        // Huge attempt numbers must not overflow the shift.
        assert_eq!(p.backoff_ms(0, 1_000), 100);
    }

    #[test]
    fn jobs_decorrelate() {
        let p = RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 1_000,
            max_backoff_ms: 100_000,
            seed: 9,
        };
        // With a wide jitter span, distinct jobs should not all share
        // a schedule.
        assert!((1..20).any(|job| p.backoff_ms(job, 0) != p.backoff_ms(0, 0)));
    }
}
