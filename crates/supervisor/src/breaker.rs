//! Per-workload circuit breaker.
//!
//! A workload whose jobs keep failing (a generator bug, an unmappable
//! size, a poisoned cache entry) should stop consuming queue slots and
//! compile minutes. The breaker counts consecutive failures per
//! workload; at the threshold it *trips open* and jobs for that
//! workload fail fast as [`crate::JobState::Broken`] without running.
//! After a cooldown the breaker *half-opens*: exactly one probe job is
//! admitted, and its outcome decides between closing (recovered) and
//! re-opening (still broken).

use std::time::Instant;

/// Thresholds for one [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: usize,
    /// Milliseconds the breaker stays open before half-opening. Zero
    /// means the next admission check already half-opens (useful in
    /// tests and for breakers meant only to absorb bursts).
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 30_000,
        }
    }
}

/// The observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: jobs run normally.
    Closed,
    /// Tripped: jobs fail fast until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe job is in flight; its outcome
    /// closes or re-opens the breaker.
    HalfOpen,
}

impl BreakerState {
    /// Stable kebab-case label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Consecutive-failure circuit breaker for one workload.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: usize,
    opened_at: Option<Instant>,
    /// Closed → Open transitions over the breaker's lifetime.
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: None,
            trips: 0,
        }
    }

    /// Current state (advancing Open → HalfOpen if the cooldown has
    /// elapsed is done by [`CircuitBreaker::admit`], not here).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Lifetime count of trips (Closed/HalfOpen → Open transitions).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether a job may run now. Advances Open → HalfOpen once the
    /// cooldown has elapsed; in HalfOpen only the transitioning call
    /// (the probe) is admitted.
    pub fn admit(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let elapsed_ms = self
                    .opened_at
                    .map(|t| t.elapsed().as_millis() as u64)
                    .unwrap_or(u64::MAX);
                if elapsed_ms >= self.config.cooldown_ms {
                    self.state = BreakerState::HalfOpen;
                    true // this caller is the probe
                } else {
                    false
                }
            }
            // A probe is already in flight; everyone else waits.
            BreakerState::HalfOpen => false,
        }
    }

    /// Records a successful job: resets the failure streak and closes
    /// a half-open breaker.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
        self.opened_at = None;
    }

    /// Records a failed job: extends the streak, tripping the breaker
    /// at the threshold; a failed half-open probe re-opens
    /// immediately.
    pub fn record_failure(&mut self) {
        self.consecutive_failures += 1;
        let should_trip = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.config.failure_threshold,
            BreakerState::Open => false,
        };
        if should_trip {
            self.state = BreakerState::Open;
            self.opened_at = Some(Instant::now());
            self.trips += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 60_000,
        });
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit(), "long cooldown: still open");
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_ms: 60_000,
        });
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was reset");
    }

    #[test]
    fn zero_cooldown_half_opens_immediately_and_recovers_on_probe_success() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_ms: 0,
        });
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // First admission check is the probe…
        assert!(b.admit());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // …and nobody else gets in while it runs.
        assert!(!b.admit());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_ms: 0,
        });
        b.record_failure();
        assert!(b.admit()); // half-open probe
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
    }
}
