//! Typed errors of the supervision runtime itself.

use std::fmt;

/// Why the supervisor refused a request.
///
/// These are *runtime* errors — queue and lifecycle conditions — as
/// opposed to [`geyser::CompileError`], which reports what went wrong
/// inside a pipeline run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorError {
    /// The bounded job queue is at capacity; the caller must back off
    /// and resubmit (admission control, not silent buffering).
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The supervisor is draining for shutdown and accepts no new
    /// jobs.
    ShuttingDown,
}

impl fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupervisorError::QueueFull { capacity } => {
                write!(
                    f,
                    "job queue full (capacity {capacity}); back off and resubmit"
                )
            }
            SupervisorError::ShuttingDown => {
                f.write_str("supervisor is shutting down; no new jobs accepted")
            }
        }
    }
}

impl std::error::Error for SupervisorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_condition() {
        assert!(SupervisorError::QueueFull { capacity: 4 }
            .to_string()
            .contains("capacity 4"));
        assert!(SupervisorError::ShuttingDown
            .to_string()
            .contains("shutting down"));
    }
}
