//! Supervised compile-job runtime for the Geyser pipeline.
//!
//! The compiler crates are deliberately single-run: one program, one
//! technique, one `PassManager::run`. An evaluation harness, though,
//! compiles dozens of (workload × technique) jobs, some of which hang,
//! panic, exhaust budgets, or get killed halfway through a sweep. This
//! crate wraps the pipeline in a small supervision runtime:
//!
//! * a **bounded job queue** with admission control — submissions
//!   beyond capacity are rejected with
//!   [`SupervisorError::QueueFull`] instead of buffering unboundedly;
//! * **cooperative cancellation** — each job carries a
//!   [`CancelToken`] observed between passes, inside the annealer's
//!   chain moves, and before every composition block;
//! * **retry classification** — [`ErrorClass::Retryable`] failures
//!   (contained panics, exhausted budgets, NaN trajectories) are
//!   retried with seeded exponential backoff;
//!   [`ErrorClass::Fatal`] failures are not;
//! * a per-workload **circuit breaker** — repeated failures trip the
//!   workload open so further jobs fail fast, with a half-open probe
//!   after a cooldown;
//! * **crash-safe checkpointing** — per-block composition results are
//!   persisted with atomic temp-file + rename writes as they land, so
//!   a killed sweep resumes from its last completed block and, thanks
//!   to per-block seeding, finishes bit-identical to an uninterrupted
//!   run;
//! * **graceful shutdown** — in-flight and queued jobs drain before
//!   the workers exit;
//! * an optional **overload-resilience service layer**
//!   ([`ServiceCore`], enabled via [`SupervisorConfig::service`]) —
//!   per-tenant token-bucket admission and deficit-round-robin
//!   dispatch, single-flight deduplication of identical in-flight
//!   compiles (with leader re-election on failure), deadline-aware
//!   load shedding with typed [`RejectReason`]s, and a degraded
//!   compile tier under sustained overload;
//! * a **write-ahead job journal** ([`Journal`]) — every service-layer
//!   lifecycle decision is logged durably before the caller observes
//!   it, so [`ServiceCore::recover`] can rebuild state after a
//!   `kill -9` and re-admit acknowledged-but-incomplete jobs exactly
//!   once.
//!
//! The job state machine:
//!
//! ```text
//! Queued ──▶ Running ──▶ Done
//!               │  ▲
//!               │  └── Retrying (retryable error, backoff)
//!               ├────▶ Cancelled (token fired)
//!               ├────▶ Failed    (fatal, or retries exhausted)
//! Queued ─────────────▶ Broken   (workload breaker open)
//! submit ─────────────▶ Rejected (service layer shed, typed reason)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod breaker;
mod checkpoint;
mod compile;
mod error;
mod job;
mod journal;
mod retry;
mod service;
mod singleflight;
mod supervisor;
mod tenant;
mod watchdog;

pub use admission::{CostModel, RejectReason};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use checkpoint::{
    checkpoint_fingerprint, load_checkpoint, load_checkpoint_quarantining, write_checkpoint_atomic,
    Checkpoint, CheckpointError,
};
pub use compile::{run_supervised_compile, CheckpointedComposePass, SupervisedCompileOptions};
pub use error::SupervisorError;
pub use job::{JobHandle, JobResult, JobSpec, JobState};
pub use journal::{
    load_journal_events, Journal, JournalError, JournalEvent, JournalOpenStats, JournalReplay,
    JOURNAL_VERSION,
};
pub use retry::RetryPolicy;
pub use service::{
    degrade_config, Admission, AttachedInfo, Completion, Dispatch, FlightTicket, PendingJob,
    RecoveryReport, ServiceConfig, ServiceCore, ServiceMetrics,
};
pub use singleflight::{FlightResolution, FlightRole, JobKey, SingleFlight};
pub use supervisor::{Supervisor, SupervisorConfig, SupervisorMetrics};
pub use tenant::{DrrQueue, TenantId, TokenBucket};
pub use watchdog::{Heartbeat, WatchdogConfig};

pub use geyser::{CancelToken, ErrorClass};
