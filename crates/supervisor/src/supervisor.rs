//! The supervision runtime: bounded queue, worker pool, retry loop,
//! breakers, and graceful shutdown.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use geyser::{CancelToken, CompileError, ErrorClass, SupervisionStats, Telemetry};

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::checkpoint::checkpoint_fingerprint;
use crate::compile::{run_supervised_compile, SupervisedCompileOptions};
use crate::error::SupervisorError;
use crate::job::{JobHandle, JobResult, JobSpec, JobState};
use crate::journal::{Journal, JournalEvent};
use crate::retry::RetryPolicy;
use crate::service::{
    degrade_config, Admission, AttachedInfo, Dispatch, ServiceConfig, ServiceCore, ServiceMetrics,
};
use crate::singleflight::JobKey;
use crate::watchdog::{Heartbeat, Watchdog, WatchdogConfig};

/// Sizing and policy knobs for one [`Supervisor`].
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Worker threads executing jobs (clamped to at least 1).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected
    /// with [`SupervisorError::QueueFull`].
    pub queue_capacity: usize,
    /// Retry budget and backoff schedule for retryable failures.
    pub retry: RetryPolicy,
    /// Per-workload circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Hung-worker watchdog; `None` disables heartbeat monitoring and
    /// attempts run directly under the job's own token (the pre-
    /// watchdog behavior).
    pub watchdog: Option<WatchdogConfig>,
    /// Overload-resilience service layer (admission control, tenant
    /// fairness, single-flight dedup, deadline shedding, degradation).
    /// `None` keeps the classic bounded-queue behavior, where a full
    /// queue is a [`SupervisorError::QueueFull`] at `submit`. With a
    /// service, `submit` always accepts and shed jobs resolve as
    /// typed [`JobState::Rejected`] terminal results instead.
    pub service: Option<ServiceConfig>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            workers: 2,
            queue_capacity: 64,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            watchdog: None,
            service: None,
        }
    }
}

/// Counters describing everything a supervisor has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SupervisorMetrics {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Submissions bounced by admission control (queue full).
    pub rejected: u64,
    /// Jobs that reached a terminal state.
    pub completed: u64,
    /// Individual retry attempts across all jobs.
    pub retries: u64,
    /// Jobs that ended [`JobState::Cancelled`].
    pub cancelled: u64,
    /// Jobs that ended [`JobState::Failed`].
    pub failed: u64,
    /// Jobs bounced by an open circuit breaker.
    pub broken: u64,
    /// Jobs that restored at least one block from a checkpoint.
    pub resumed: u64,
    /// Attempts the watchdog preempted for a stale heartbeat.
    pub hung: u64,
    /// Deepest the queue ever got.
    pub queue_high_water: u64,
    /// Circuit-breaker trips across all workloads.
    pub breaker_trips: u64,
    /// Jobs shed by the service layer with a typed rejection.
    pub shed: u64,
    /// Results served by single-flight deduplication.
    pub deduped: u64,
    /// Jobs admitted in the degraded overload tier.
    pub degraded: u64,
}

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    cancel: CancelToken,
    queue_depth: u64,
    enqueued: std::time::Instant,
    /// Whether the service layer admitted this job in the degraded
    /// overload tier (always false without a service layer).
    degraded: bool,
}

struct QueueState {
    queue: VecDeque<QueuedJob>,
    shutting_down: bool,
    in_flight: usize,
}

struct Shared {
    config: SupervisorConfig,
    telemetry: Telemetry,
    watchdog: Option<Watchdog>,
    state: Mutex<QueueState>,
    job_available: Condvar,
    idle: Condvar,
    breakers: Mutex<HashMap<String, CircuitBreaker>>,
    results: Mutex<Vec<JobResult>>,
    /// The service layer, present when `config.service` is. Lock
    /// order: `state` before `service` before `results`.
    service: Option<Mutex<ServiceCore>>,
    /// Write-ahead job journal ([`Supervisor::start_with_journal`]).
    /// A *leaf* lock: last in the order (`state` → `service` →
    /// `results` → `journal`); nothing is ever acquired while it is
    /// held.
    journal: Option<Mutex<Journal>>,
    /// Wall-clock anchor for the service layer's ms domain.
    start: std::time::Instant,
    next_id: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    retries: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    broken: AtomicU64,
    resumed: AtomicU64,
    hung: AtomicU64,
    queue_high_water: AtomicU64,
    shed: AtomicU64,
    deduped: AtomicU64,
    degraded: AtomicU64,
}

impl Shared {
    /// Milliseconds since this supervisor started — the wall-clock
    /// `now_ms` domain fed to the service layer.
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Appends one lifecycle event to the write-ahead journal, if one
    /// is attached. Append failures are counted, not fatal: losing
    /// durability must not take down live compiles.
    fn journal_event(&self, event: &JournalEvent) {
        if let Some(journal) = &self.journal {
            if recover(journal.lock()).append(event).is_err() {
                self.telemetry
                    .counter_add("supervisor.journal_append_errors", 1);
            }
        }
    }
}

fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// A running supervision runtime over a pool of worker threads.
///
/// # Example
///
/// ```no_run
/// use geyser::{PipelineConfig, Technique};
/// use geyser_circuit::Circuit;
/// use geyser_supervisor::{JobSpec, Supervisor, SupervisorConfig};
///
/// let sup = Supervisor::start(SupervisorConfig::default());
/// let mut program = Circuit::new(2);
/// program.h(0).cx(0, 1);
/// let spec = JobSpec::new("bell", Technique::OptiMap, program, PipelineConfig::fast());
/// let handle = sup.submit(spec).expect("queue has room");
/// let results = sup.shutdown(); // drains in-flight and queued jobs
/// assert_eq!(results[0].id, handle.id);
/// ```
pub struct Supervisor {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Supervisor {
    /// Starts the worker pool.
    pub fn start(config: SupervisorConfig) -> Self {
        Self::start_with_telemetry(config, Telemetry::disabled())
    }

    /// Starts the worker pool with a write-ahead job journal: every
    /// service-layer lifecycle decision (admitted, attached,
    /// dispatched, completed, shed, cancelled, failed) is appended
    /// durably, so a killed process can be recovered by replaying the
    /// journal through [`ServiceCore::recover`] in its next
    /// incarnation. The journal only records service-layer decisions,
    /// so `config.service` should be `Some`; without a service layer
    /// it stays silent. The journal compacts on graceful shutdown.
    pub fn start_with_journal(
        config: SupervisorConfig,
        telemetry: Telemetry,
        journal: Journal,
    ) -> Self {
        Self::start_inner(config, telemetry, Some(journal))
    }

    /// Starts the worker pool with a telemetry handle: every job gets
    /// a `supervisor.job` span (queue wait, attempts, outcome), the
    /// compile attempts nest the pipeline's pass spans beneath it, and
    /// the queue depth is tracked as a gauge. Timings are
    /// observational only — results are identical with telemetry
    /// enabled or disabled.
    pub fn start_with_telemetry(config: SupervisorConfig, telemetry: Telemetry) -> Self {
        Self::start_inner(config, telemetry, None)
    }

    fn start_inner(
        config: SupervisorConfig,
        telemetry: Telemetry,
        journal: Option<Journal>,
    ) -> Self {
        let watchdog = config
            .watchdog
            .map(|wd| Watchdog::start(wd, telemetry.clone()));
        let service = config.service.map(|mut sc| {
            // The wait estimator must match the real worker count.
            sc.workers = config.workers.max(1);
            Mutex::new(ServiceCore::new(sc))
        });
        let shared = Arc::new(Shared {
            config,
            telemetry,
            watchdog,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutting_down: false,
                in_flight: 0,
            }),
            job_available: Condvar::new(),
            idle: Condvar::new(),
            breakers: Mutex::new(HashMap::new()),
            results: Mutex::new(Vec::new()),
            service,
            journal: journal.map(Mutex::new),
            start: std::time::Instant::now(),
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            broken: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
            hung: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("geyser-supervisor-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("worker thread spawns")
            })
            .collect();
        Supervisor { shared, workers }
    }

    /// Submits a job, applying admission control.
    ///
    /// Without a service layer, a full queue or a draining supervisor
    /// rejects with an `Err` instead of buffering. With one
    /// ([`SupervisorConfig::service`]), every submission is accepted
    /// and resolves to a terminal [`JobResult`] — jobs the service
    /// sheds come back as [`JobState::Rejected`] with a typed
    /// [`crate::RejectReason`], and duplicates of an in-flight compile
    /// attach to it instead of compiling again.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SupervisorError> {
        let mut state = recover(self.shared.state.lock());
        if state.shutting_down {
            return Err(SupervisorError::ShuttingDown);
        }
        if let Some(service) = &self.shared.service {
            return Ok(self.submit_serviced(service, spec));
        }
        if state.queue.len() >= self.shared.config.queue_capacity {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            self.shared.telemetry.counter_add("supervisor.rejected", 1);
            return Err(SupervisorError::QueueFull {
                capacity: self.shared.config.queue_capacity,
            });
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = CancelToken::new();
        let queue_depth = state.queue.len() as u64;
        state.queue.push_back(QueuedJob {
            id,
            spec,
            cancel: cancel.clone(),
            queue_depth,
            enqueued: std::time::Instant::now(),
            degraded: false,
        });
        self.shared
            .queue_high_water
            .fetch_max(state.queue.len() as u64, Ordering::Relaxed);
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.telemetry.counter_add("supervisor.submitted", 1);
        self.shared
            .telemetry
            .gauge_set("supervisor.queue_depth", state.queue.len() as i64);
        drop(state);
        self.shared.job_available.notify_one();
        Ok(JobHandle { id, cancel })
    }

    /// Service-layer admission: runs the decision pipeline and turns
    /// sheds into typed terminal results. Caller holds the state lock.
    fn submit_serviced(&self, service: &Mutex<ServiceCore>, spec: JobSpec) -> JobHandle {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = CancelToken::new();
        let now_ms = self.shared.now_ms();
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.telemetry.counter_add("supervisor.submitted", 1);
        // The journal wants tenant/technique/key, but the spec moves
        // into the service; capture them up front (the key is the same
        // derivation the dedup layer performs).
        let (tenant, technique, key) = if self.shared.journal.is_some() {
            let dedup = self.shared.config.service.is_some_and(|s| s.dedup) && spec.dedup;
            let key = dedup.then(|| {
                JobKey::derive(
                    &spec.program,
                    &spec.config.hardware,
                    spec.technique,
                    spec.config.seed,
                )
            });
            (spec.tenant.to_string(), spec.technique.label(), key)
        } else {
            (String::new(), "", None)
        };
        let admission = {
            let mut service = recover(service.lock());
            let admission = service.submit(id, spec, cancel.clone(), now_ms);
            self.shared
                .queue_high_water
                .fetch_max(service.queue_len() as u64, Ordering::Relaxed);
            self.shared
                .telemetry
                .gauge_set("supervisor.queue_depth", service.queue_len() as i64);
            admission
        };
        match admission {
            Admission::Queued { degraded } => {
                self.shared.journal_event(&JournalEvent::admitted(
                    id,
                    &tenant,
                    technique,
                    key.as_ref(),
                    0,
                    now_ms,
                ));
                if degraded {
                    self.shared.degraded.fetch_add(1, Ordering::Relaxed);
                    self.shared.telemetry.counter_add("supervisor.degraded", 1);
                }
                self.shared.job_available.notify_one();
            }
            Admission::Attached { leader } => {
                self.shared.journal_event(&JournalEvent::attached(
                    id, &tenant, technique, leader, now_ms,
                ));
                // Counted (metrics and telemetry both) when the
                // broadcast result is actually delivered, so the
                // telemetry counter matches `SupervisorMetrics::deduped`
                // and a follower later promoted to leader is never
                // counted as dedup-served.
            }
            Admission::Shed { spec, reason } => {
                self.shared
                    .journal_event(&JournalEvent::shed(id, &reason, now_ms));
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                self.shared.telemetry.counter_add("supervisor.shed", 1);
                self.shared.completed.fetch_add(1, Ordering::Relaxed);
                recover(self.shared.results.lock()).push(JobResult {
                    id,
                    workload: spec.workload,
                    state: JobState::Rejected,
                    compiled: None,
                    error: None,
                    attempts: 0,
                    rejection: Some(reason),
                    deduped: false,
                });
                self.shared.idle.notify_all();
            }
        }
        JobHandle { id, cancel }
    }

    /// Blocks until no job is queued, running, or awaiting a dedup
    /// broadcast.
    pub fn wait_idle(&self) {
        let mut state = recover(self.shared.state.lock());
        loop {
            let service_busy = self
                .shared
                .service
                .as_ref()
                .is_some_and(|s| !recover(s.lock()).is_quiescent());
            if state.queue.is_empty() && state.in_flight == 0 && !service_busy {
                return;
            }
            state = recover(self.shared.idle.wait(state));
        }
    }

    /// Takes the terminal results accumulated so far (completion
    /// order).
    pub fn take_results(&self) -> Vec<JobResult> {
        std::mem::take(&mut *recover(self.shared.results.lock()))
    }

    /// The current breaker state for a workload, if any job of that
    /// workload has run.
    pub fn breaker_state(&self, workload: &str) -> Option<BreakerState> {
        recover(self.shared.breakers.lock())
            .get(workload)
            .map(CircuitBreaker::state)
    }

    /// A point-in-time snapshot of the supervisor's counters.
    pub fn metrics(&self) -> SupervisorMetrics {
        let breaker_trips = recover(self.shared.breakers.lock())
            .values()
            .map(CircuitBreaker::trips)
            .sum();
        SupervisorMetrics {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            retries: self.shared.retries.load(Ordering::Relaxed),
            cancelled: self.shared.cancelled.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            broken: self.shared.broken.load(Ordering::Relaxed),
            resumed: self.shared.resumed.load(Ordering::Relaxed),
            hung: self.shared.hung.load(Ordering::Relaxed),
            queue_high_water: self.shared.queue_high_water.load(Ordering::Relaxed),
            breaker_trips,
            shed: self.shared.shed.load(Ordering::Relaxed),
            deduped: self.shared.deduped.load(Ordering::Relaxed),
            degraded: self.shared.degraded.load(Ordering::Relaxed),
        }
    }

    /// The service layer's own counters (sheds by reason, dedup
    /// broadcasts, re-elections); `None` without a service layer.
    pub fn service_metrics(&self) -> Option<ServiceMetrics> {
        self.shared
            .service
            .as_ref()
            .map(|s| recover(s.lock()).metrics())
    }

    /// Graceful shutdown: stops accepting submissions, lets the
    /// workers drain every queued and in-flight job, joins them, and
    /// returns all unclaimed results.
    pub fn shutdown(mut self) -> Vec<JobResult> {
        recover(self.shared.state.lock()).shutting_down = true;
        if let Some(service) = &self.shared.service {
            recover(service.lock()).begin_shutdown();
        }
        self.shared.job_available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(wd) = &self.shared.watchdog {
            wd.stop();
        }
        if let Some(journal) = &self.shared.journal {
            // Fold the event stream so the next open replays a
            // snapshot instead of the whole history.
            let _ = recover(journal.lock()).compact();
        }
        self.take_results()
    }
}

fn worker_loop(shared: &Shared) {
    match &shared.service {
        Some(service) => worker_loop_serviced(shared, service),
        None => worker_loop_classic(shared),
    }
}

fn worker_loop_classic(shared: &Shared) {
    loop {
        let job = {
            let mut state = recover(shared.state.lock());
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.in_flight += 1;
                    shared
                        .telemetry
                        .gauge_set("supervisor.queue_depth", state.queue.len() as i64);
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = recover(shared.job_available.wait(state));
            }
        };
        let queue_wait_ms = job.enqueued.elapsed().as_millis() as u64;
        let result = run_job(shared, job, queue_wait_ms);
        {
            let mut state = recover(shared.state.lock());
            state.in_flight -= 1;
        }
        count_terminal(shared, result.state);
        shared.completed.fetch_add(1, Ordering::Relaxed);
        recover(shared.results.lock()).push(result);
        shared.idle.notify_all();
    }
}

/// The service-layer worker loop: dispatch comes from the
/// [`ServiceCore`] scheduler (deficit round robin with stale
/// shedding), and completions settle flights — broadcasting a
/// leader's success to its dedup followers or re-electing one after a
/// failure.
fn worker_loop_serviced(shared: &Shared, service: &Mutex<ServiceCore>) {
    loop {
        // Dispatch: the state lock serializes the condvar wait; the
        // service lock (nested, consistent order) runs the scheduler.
        let pending = {
            let mut state = recover(shared.state.lock());
            loop {
                let now_ms = shared.now_ms();
                let dispatch = recover(service.lock()).next(now_ms);
                match dispatch {
                    Some(Dispatch::Run(job)) => {
                        state.in_flight += 1;
                        break job;
                    }
                    Some(Dispatch::Shed {
                        job,
                        reason,
                        cancelled,
                    }) => {
                        // Stale in queue: typed terminal rejection,
                        // then keep scheduling. Followers of its
                        // flight whose own token fired resolve
                        // Cancelled alongside it.
                        shared.journal_event(&JournalEvent::shed(job.id, &reason, now_ms));
                        shared.shed.fetch_add(1, Ordering::Relaxed);
                        shared.telemetry.counter_add("supervisor.shed", 1);
                        shared.completed.fetch_add(1, Ordering::Relaxed);
                        recover(shared.results.lock()).push(JobResult {
                            id: job.id,
                            workload: job.spec.workload,
                            state: JobState::Rejected,
                            compiled: None,
                            error: None,
                            attempts: 0,
                            rejection: Some(reason),
                            deduped: false,
                        });
                        for info in &cancelled {
                            settle_cancelled_follower(shared, info);
                        }
                        shared.idle.notify_all();
                        continue;
                    }
                    None => {
                        if state.shutting_down {
                            return;
                        }
                        state = recover(shared.job_available.wait(state));
                    }
                }
            }
        };
        let ticket = pending.ticket();
        shared.journal_event(&JournalEvent::dispatched(pending.id, shared.now_ms()));
        let queue_wait_ms = shared.now_ms().saturating_sub(pending.enqueued_ms);
        let tenant = pending.spec.tenant.to_string();
        let job = QueuedJob {
            id: pending.id,
            spec: pending.spec,
            cancel: pending.cancel,
            queue_depth: pending.queue_depth,
            enqueued: std::time::Instant::now(),
            degraded: pending.degraded,
        };
        let started = std::time::Instant::now();
        let result = run_job(shared, job, queue_wait_ms);
        let measured_cost = started.elapsed().as_millis() as u64;

        // Settle the flight. Lock order: service before results, and
        // never service while holding state (submit holds state →
        // service).
        let completion = recover(service.lock()).complete(
            &ticket,
            result.state == JobState::Done,
            measured_cost,
            shared.now_ms(),
        );
        // Journal terminal outcomes before they become observable
        // results: the leader's, then every broadcast follower's.
        let settled_ms = shared.now_ms();
        match (&result.state, result.compiled.as_ref()) {
            (JobState::Done, Some(compiled)) => {
                let digest = checkpoint_fingerprint(compiled.mapped().circuit());
                shared.journal_event(&JournalEvent::completed(
                    result.id,
                    &tenant,
                    ticket.technique,
                    digest,
                    measured_cost,
                    settled_ms,
                ));
                for info in &completion.broadcast {
                    shared.journal_event(&JournalEvent::completed(
                        info.id,
                        &info.tenant.to_string(),
                        ticket.technique,
                        digest,
                        0,
                        settled_ms,
                    ));
                }
            }
            (JobState::Cancelled, _) => {
                shared.journal_event(&JournalEvent::cancelled(result.id, settled_ms));
            }
            _ => {
                shared.journal_event(&JournalEvent::failed(result.id, settled_ms));
            }
        }
        let mut settled = Vec::with_capacity(1 + completion.broadcast.len());
        if let Some(compiled) = result.compiled.as_ref() {
            for info in &completion.broadcast {
                let mut shared_result = compiled.clone();
                if let Some(sup) = shared_result
                    .report_mut()
                    .and_then(|r| r.supervision.as_mut())
                {
                    sup.tenant = info.tenant.to_string();
                    sup.deduped = true;
                }
                shared.deduped.fetch_add(1, Ordering::Relaxed);
                shared.telemetry.counter_add("supervisor.deduped", 1);
                settled.push(JobResult {
                    id: info.id,
                    workload: info.workload.clone(),
                    state: JobState::Done,
                    compiled: Some(shared_result),
                    error: None,
                    attempts: 0,
                    rejection: None,
                    deduped: true,
                });
            }
        }
        settled.insert(0, result);
        for result in settled {
            count_terminal(shared, result.state);
            shared.completed.fetch_add(1, Ordering::Relaxed);
            recover(shared.results.lock()).push(result);
        }
        for info in &completion.cancelled {
            settle_cancelled_follower(shared, info);
        }
        {
            let mut state = recover(shared.state.lock());
            state.in_flight -= 1;
        }
        if completion.reelected.is_some() {
            shared.job_available.notify_one();
        }
        shared.idle.notify_all();
    }
}

/// Records the terminal result for a dedup follower whose own cancel
/// token fired while attached: it detached from its flight and ends
/// [`JobState::Cancelled`], never served the broadcast result.
fn settle_cancelled_follower(shared: &Shared, info: &AttachedInfo) {
    shared.journal_event(&JournalEvent::cancelled(info.id, shared.now_ms()));
    count_terminal(shared, JobState::Cancelled);
    shared.completed.fetch_add(1, Ordering::Relaxed);
    recover(shared.results.lock()).push(JobResult {
        id: info.id,
        workload: info.workload.clone(),
        state: JobState::Cancelled,
        compiled: None,
        error: Some(CompileError::Cancelled {
            pass: "dedup-attached".to_string(),
        }),
        attempts: 0,
        rejection: None,
        deduped: false,
    });
}

fn count_terminal(shared: &Shared, state: JobState) {
    match state {
        JobState::Cancelled => shared.cancelled.fetch_add(1, Ordering::Relaxed),
        JobState::Failed => shared.failed.fetch_add(1, Ordering::Relaxed),
        JobState::Broken => shared.broken.fetch_add(1, Ordering::Relaxed),
        _ => 0,
    };
}

/// Sleeps `ms` in 1 ms slices, returning early (true) if the token
/// fires — a job sitting out a retry backoff stays promptly
/// cancellable.
fn cancel_aware_sleep(ms: u64, cancel: &CancelToken) -> bool {
    for _ in 0..ms {
        if cancel.is_cancelled() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cancel.is_cancelled()
}

fn run_job(shared: &Shared, job: QueuedJob, queue_wait_ms: u64) -> JobResult {
    shared
        .telemetry
        .histogram_record("supervisor.queue_wait_ms", queue_wait_ms);
    let mut job_span = shared.telemetry.span("supervisor", "supervisor.job");
    job_span.attr("id", job.id);
    job_span.attr("workload", &job.spec.workload);
    job_span.attr("queue_wait_ms", queue_wait_ms);
    // Breaker admission: an open workload fails fast without
    // consuming an attempt.
    {
        let mut breakers = recover(shared.breakers.lock());
        let breaker = breakers
            .entry(job.spec.workload.clone())
            .or_insert_with(|| CircuitBreaker::new(shared.config.breaker));
        if !breaker.admit() {
            job_span.attr("outcome", "broken");
            return JobResult {
                id: job.id,
                workload: job.spec.workload,
                state: JobState::Broken,
                compiled: None,
                error: None,
                attempts: 0,
                rejection: None,
                deduped: false,
            };
        }
    }

    // Overload degradation: a job admitted in the degraded tier runs
    // with the clamped composition search (still seed-deterministic).
    let config = if job.degraded {
        degrade_config(&job.spec.config)
    } else {
        job.spec.config.clone()
    };

    let retry = shared.config.retry;
    let mut attempts: u64 = 0;
    let mut backoff_total: u64 = 0;
    let mut hang_preemptions: u64 = 0;
    let outcome = loop {
        attempts += 1;
        let mut faults = job.spec.faults.clone();
        if attempts > 1 {
            // Transient faults exist to fail exactly one attempt.
            faults.transient_panic_passes.clear();
        }
        if hang_preemptions > 0 {
            // The watchdog already preempted an injected hang; strip
            // it so the rescheduled attempt can make progress (a real
            // hang would simply be preempted again until retries run
            // out).
            faults.hung_passes.clear();
        }
        // Under a watchdog each attempt runs on a private token so a
        // preemption kills only this attempt, never the job; the
        // watchdog propagates job-level cancels into it.
        let (attempt_cancel, heartbeat, watch) = match &shared.watchdog {
            Some(wd) => {
                let heartbeat = Heartbeat::new();
                let attempt_cancel = CancelToken::new();
                let guard = wd.watch(
                    job.cancel.clone(),
                    attempt_cancel.clone(),
                    heartbeat.clone(),
                );
                (attempt_cancel, Some(heartbeat), Some(guard))
            }
            None => (job.cancel.clone(), None, None),
        };
        let opts = SupervisedCompileOptions {
            technique: job.spec.technique,
            faults,
            cancel: attempt_cancel,
            checkpoint: job.spec.checkpoint.clone(),
            // Later attempts of this very job resume their own
            // checkpoint even when the submission didn't ask to.
            resume: job.spec.resume || (attempts > 1 && job.spec.checkpoint.is_some()),
            telemetry: shared.telemetry.clone(),
            heartbeat,
        };
        let mut attempt_span = shared.telemetry.span("supervisor", "supervisor.compile");
        attempt_span.attr("attempt", attempts);
        let attempt_result = run_supervised_compile(&job.spec.program, &config, &opts);
        drop(attempt_span);
        // A Cancelled attempt whose *job* token never fired but whose
        // watch was preempted is a hang, not a cancellation: retype it
        // so the retry machinery reschedules it.
        let attempt_result = match (attempt_result, watch) {
            (Err(CompileError::Cancelled { pass }), Some(guard))
                if guard.hung() && !job.cancel.is_cancelled() =>
            {
                hang_preemptions += 1;
                shared.hung.fetch_add(1, Ordering::Relaxed);
                Err(CompileError::WorkerHung {
                    pass,
                    stalled_ms: guard.stalled_ms(),
                })
            }
            (result, _) => result,
        };
        match attempt_result {
            Ok(compiled) => break Ok(compiled),
            Err(e) => match e.class() {
                ErrorClass::Cancelled => break Err((JobState::Cancelled, e)),
                ErrorClass::Retryable if attempts <= retry.max_retries as u64 => {
                    shared.retries.fetch_add(1, Ordering::Relaxed);
                    shared.telemetry.counter_add("supervisor.retries", 1);
                    let ms = retry.backoff_ms(job.id, (attempts - 1) as usize);
                    backoff_total += ms;
                    if cancel_aware_sleep(ms, &job.cancel) {
                        break Err((
                            JobState::Cancelled,
                            CompileError::Cancelled {
                                pass: "retry-backoff".to_string(),
                            },
                        ));
                    }
                    continue;
                }
                _ => break Err((JobState::Failed, e)),
            },
        }
    };

    // Breaker bookkeeping: cancellation says nothing about workload
    // health, so only real terminals move the breaker.
    let breaker_state = {
        let mut breakers = recover(shared.breakers.lock());
        let breaker = breakers
            .entry(job.spec.workload.clone())
            .or_insert_with(|| CircuitBreaker::new(shared.config.breaker));
        match &outcome {
            Ok(_) => breaker.record_success(),
            Err((JobState::Cancelled, _)) => {}
            Err(_) => breaker.record_failure(),
        }
        breaker.state().label().to_string()
    };

    job_span.attr("attempts", attempts);
    match &outcome {
        Ok(_) => job_span.attr("outcome", "done"),
        Err((state, _)) => job_span.attr("outcome", state.label()),
    }
    match outcome {
        Ok(mut compiled) => {
            let blocks_resumed = compiled
                .composition_stats()
                .map_or(0, |s| s.blocks_resumed as u64);
            if blocks_resumed > 0 {
                shared.resumed.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(report) = compiled.report_mut() {
                report.supervision = Some(SupervisionStats {
                    attempts,
                    retries: attempts - 1,
                    backoff_ms: backoff_total,
                    queue_depth: job.queue_depth,
                    breaker_state,
                    blocks_resumed,
                    resumed_from_checkpoint: blocks_resumed > 0,
                    hang_preemptions,
                    tenant: job.spec.tenant.to_string(),
                    degraded: job.degraded,
                    deduped: false,
                });
            }
            // The job finished; its checkpoint has served its purpose.
            if let Some(path) = &job.spec.checkpoint {
                let _ = std::fs::remove_file(path);
            }
            JobResult {
                id: job.id,
                workload: job.spec.workload,
                state: JobState::Done,
                compiled: Some(compiled),
                error: None,
                attempts,
                rejection: None,
                deduped: false,
            }
        }
        Err((state, error)) => JobResult {
            id: job.id,
            workload: job.spec.workload,
            state,
            compiled: None,
            error: Some(error),
            attempts,
            rejection: None,
            deduped: false,
        },
    }
}
