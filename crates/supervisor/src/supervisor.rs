//! The supervision runtime: bounded queue, worker pool, retry loop,
//! breakers, and graceful shutdown.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use geyser::{CancelToken, CompileError, ErrorClass, SupervisionStats, Telemetry};

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::compile::{run_supervised_compile, SupervisedCompileOptions};
use crate::error::SupervisorError;
use crate::job::{JobHandle, JobResult, JobSpec, JobState};
use crate::retry::RetryPolicy;
use crate::watchdog::{Heartbeat, Watchdog, WatchdogConfig};

/// Sizing and policy knobs for one [`Supervisor`].
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Worker threads executing jobs (clamped to at least 1).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected
    /// with [`SupervisorError::QueueFull`].
    pub queue_capacity: usize,
    /// Retry budget and backoff schedule for retryable failures.
    pub retry: RetryPolicy,
    /// Per-workload circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Hung-worker watchdog; `None` disables heartbeat monitoring and
    /// attempts run directly under the job's own token (the pre-
    /// watchdog behavior).
    pub watchdog: Option<WatchdogConfig>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            workers: 2,
            queue_capacity: 64,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            watchdog: None,
        }
    }
}

/// Counters describing everything a supervisor has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SupervisorMetrics {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Submissions bounced by admission control (queue full).
    pub rejected: u64,
    /// Jobs that reached a terminal state.
    pub completed: u64,
    /// Individual retry attempts across all jobs.
    pub retries: u64,
    /// Jobs that ended [`JobState::Cancelled`].
    pub cancelled: u64,
    /// Jobs that ended [`JobState::Failed`].
    pub failed: u64,
    /// Jobs bounced by an open circuit breaker.
    pub broken: u64,
    /// Jobs that restored at least one block from a checkpoint.
    pub resumed: u64,
    /// Attempts the watchdog preempted for a stale heartbeat.
    pub hung: u64,
    /// Deepest the queue ever got.
    pub queue_high_water: u64,
    /// Circuit-breaker trips across all workloads.
    pub breaker_trips: u64,
}

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    cancel: CancelToken,
    queue_depth: u64,
    enqueued: std::time::Instant,
}

struct QueueState {
    queue: VecDeque<QueuedJob>,
    shutting_down: bool,
    in_flight: usize,
}

struct Shared {
    config: SupervisorConfig,
    telemetry: Telemetry,
    watchdog: Option<Watchdog>,
    state: Mutex<QueueState>,
    job_available: Condvar,
    idle: Condvar,
    breakers: Mutex<HashMap<String, CircuitBreaker>>,
    results: Mutex<Vec<JobResult>>,
    next_id: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    retries: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    broken: AtomicU64,
    resumed: AtomicU64,
    hung: AtomicU64,
    queue_high_water: AtomicU64,
}

fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// A running supervision runtime over a pool of worker threads.
///
/// # Example
///
/// ```no_run
/// use geyser::{PipelineConfig, Technique};
/// use geyser_circuit::Circuit;
/// use geyser_supervisor::{JobSpec, Supervisor, SupervisorConfig};
///
/// let sup = Supervisor::start(SupervisorConfig::default());
/// let mut program = Circuit::new(2);
/// program.h(0).cx(0, 1);
/// let spec = JobSpec::new("bell", Technique::OptiMap, program, PipelineConfig::fast());
/// let handle = sup.submit(spec).expect("queue has room");
/// let results = sup.shutdown(); // drains in-flight and queued jobs
/// assert_eq!(results[0].id, handle.id);
/// ```
pub struct Supervisor {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Supervisor {
    /// Starts the worker pool.
    pub fn start(config: SupervisorConfig) -> Self {
        Self::start_with_telemetry(config, Telemetry::disabled())
    }

    /// Starts the worker pool with a telemetry handle: every job gets
    /// a `supervisor.job` span (queue wait, attempts, outcome), the
    /// compile attempts nest the pipeline's pass spans beneath it, and
    /// the queue depth is tracked as a gauge. Timings are
    /// observational only — results are identical with telemetry
    /// enabled or disabled.
    pub fn start_with_telemetry(config: SupervisorConfig, telemetry: Telemetry) -> Self {
        let watchdog = config
            .watchdog
            .map(|wd| Watchdog::start(wd, telemetry.clone()));
        let shared = Arc::new(Shared {
            config,
            telemetry,
            watchdog,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutting_down: false,
                in_flight: 0,
            }),
            job_available: Condvar::new(),
            idle: Condvar::new(),
            breakers: Mutex::new(HashMap::new()),
            results: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            broken: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
            hung: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("geyser-supervisor-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("worker thread spawns")
            })
            .collect();
        Supervisor { shared, workers }
    }

    /// Submits a job, applying admission control: a full queue or a
    /// draining supervisor rejects instead of buffering.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SupervisorError> {
        let mut state = recover(self.shared.state.lock());
        if state.shutting_down {
            return Err(SupervisorError::ShuttingDown);
        }
        if state.queue.len() >= self.shared.config.queue_capacity {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            self.shared.telemetry.counter_add("supervisor.rejected", 1);
            return Err(SupervisorError::QueueFull {
                capacity: self.shared.config.queue_capacity,
            });
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = CancelToken::new();
        let queue_depth = state.queue.len() as u64;
        state.queue.push_back(QueuedJob {
            id,
            spec,
            cancel: cancel.clone(),
            queue_depth,
            enqueued: std::time::Instant::now(),
        });
        self.shared
            .queue_high_water
            .fetch_max(state.queue.len() as u64, Ordering::Relaxed);
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.telemetry.counter_add("supervisor.submitted", 1);
        self.shared
            .telemetry
            .gauge_set("supervisor.queue_depth", state.queue.len() as i64);
        drop(state);
        self.shared.job_available.notify_one();
        Ok(JobHandle { id, cancel })
    }

    /// Blocks until no job is queued or running.
    pub fn wait_idle(&self) {
        let mut state = recover(self.shared.state.lock());
        while !(state.queue.is_empty() && state.in_flight == 0) {
            state = recover(self.shared.idle.wait(state));
        }
    }

    /// Takes the terminal results accumulated so far (completion
    /// order).
    pub fn take_results(&self) -> Vec<JobResult> {
        std::mem::take(&mut *recover(self.shared.results.lock()))
    }

    /// The current breaker state for a workload, if any job of that
    /// workload has run.
    pub fn breaker_state(&self, workload: &str) -> Option<BreakerState> {
        recover(self.shared.breakers.lock())
            .get(workload)
            .map(CircuitBreaker::state)
    }

    /// A point-in-time snapshot of the supervisor's counters.
    pub fn metrics(&self) -> SupervisorMetrics {
        let breaker_trips = recover(self.shared.breakers.lock())
            .values()
            .map(CircuitBreaker::trips)
            .sum();
        SupervisorMetrics {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            retries: self.shared.retries.load(Ordering::Relaxed),
            cancelled: self.shared.cancelled.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            broken: self.shared.broken.load(Ordering::Relaxed),
            resumed: self.shared.resumed.load(Ordering::Relaxed),
            hung: self.shared.hung.load(Ordering::Relaxed),
            queue_high_water: self.shared.queue_high_water.load(Ordering::Relaxed),
            breaker_trips,
        }
    }

    /// Graceful shutdown: stops accepting submissions, lets the
    /// workers drain every queued and in-flight job, joins them, and
    /// returns all unclaimed results.
    pub fn shutdown(mut self) -> Vec<JobResult> {
        recover(self.shared.state.lock()).shutting_down = true;
        self.shared.job_available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(wd) = &self.shared.watchdog {
            wd.stop();
        }
        self.take_results()
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = recover(shared.state.lock());
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.in_flight += 1;
                    shared
                        .telemetry
                        .gauge_set("supervisor.queue_depth", state.queue.len() as i64);
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = recover(shared.job_available.wait(state));
            }
        };
        let result = run_job(shared, job);
        {
            let mut state = recover(shared.state.lock());
            state.in_flight -= 1;
        }
        match result.state {
            JobState::Cancelled => shared.cancelled.fetch_add(1, Ordering::Relaxed),
            JobState::Failed => shared.failed.fetch_add(1, Ordering::Relaxed),
            JobState::Broken => shared.broken.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
        shared.completed.fetch_add(1, Ordering::Relaxed);
        recover(shared.results.lock()).push(result);
        shared.idle.notify_all();
    }
}

/// Sleeps `ms` in 1 ms slices, returning early (true) if the token
/// fires — a job sitting out a retry backoff stays promptly
/// cancellable.
fn cancel_aware_sleep(ms: u64, cancel: &CancelToken) -> bool {
    for _ in 0..ms {
        if cancel.is_cancelled() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cancel.is_cancelled()
}

fn run_job(shared: &Shared, job: QueuedJob) -> JobResult {
    let queue_wait_ms = job.enqueued.elapsed().as_millis() as u64;
    shared
        .telemetry
        .histogram_record("supervisor.queue_wait_ms", queue_wait_ms);
    let mut job_span = shared.telemetry.span("supervisor", "supervisor.job");
    job_span.attr("id", job.id);
    job_span.attr("workload", &job.spec.workload);
    job_span.attr("queue_wait_ms", queue_wait_ms);
    // Breaker admission: an open workload fails fast without
    // consuming an attempt.
    {
        let mut breakers = recover(shared.breakers.lock());
        let breaker = breakers
            .entry(job.spec.workload.clone())
            .or_insert_with(|| CircuitBreaker::new(shared.config.breaker));
        if !breaker.admit() {
            job_span.attr("outcome", "broken");
            return JobResult {
                id: job.id,
                workload: job.spec.workload,
                state: JobState::Broken,
                compiled: None,
                error: None,
                attempts: 0,
            };
        }
    }

    let retry = shared.config.retry;
    let mut attempts: u64 = 0;
    let mut backoff_total: u64 = 0;
    let mut hang_preemptions: u64 = 0;
    let outcome = loop {
        attempts += 1;
        let mut faults = job.spec.faults.clone();
        if attempts > 1 {
            // Transient faults exist to fail exactly one attempt.
            faults.transient_panic_passes.clear();
        }
        if hang_preemptions > 0 {
            // The watchdog already preempted an injected hang; strip
            // it so the rescheduled attempt can make progress (a real
            // hang would simply be preempted again until retries run
            // out).
            faults.hung_passes.clear();
        }
        // Under a watchdog each attempt runs on a private token so a
        // preemption kills only this attempt, never the job; the
        // watchdog propagates job-level cancels into it.
        let (attempt_cancel, heartbeat, watch) = match &shared.watchdog {
            Some(wd) => {
                let heartbeat = Heartbeat::new();
                let attempt_cancel = CancelToken::new();
                let guard = wd.watch(
                    job.cancel.clone(),
                    attempt_cancel.clone(),
                    heartbeat.clone(),
                );
                (attempt_cancel, Some(heartbeat), Some(guard))
            }
            None => (job.cancel.clone(), None, None),
        };
        let opts = SupervisedCompileOptions {
            technique: job.spec.technique,
            faults,
            cancel: attempt_cancel,
            checkpoint: job.spec.checkpoint.clone(),
            // Later attempts of this very job resume their own
            // checkpoint even when the submission didn't ask to.
            resume: job.spec.resume || (attempts > 1 && job.spec.checkpoint.is_some()),
            telemetry: shared.telemetry.clone(),
            heartbeat,
        };
        let mut attempt_span = shared.telemetry.span("supervisor", "supervisor.compile");
        attempt_span.attr("attempt", attempts);
        let attempt_result = run_supervised_compile(&job.spec.program, &job.spec.config, &opts);
        drop(attempt_span);
        // A Cancelled attempt whose *job* token never fired but whose
        // watch was preempted is a hang, not a cancellation: retype it
        // so the retry machinery reschedules it.
        let attempt_result = match (attempt_result, watch) {
            (Err(CompileError::Cancelled { pass }), Some(guard))
                if guard.hung() && !job.cancel.is_cancelled() =>
            {
                hang_preemptions += 1;
                shared.hung.fetch_add(1, Ordering::Relaxed);
                Err(CompileError::WorkerHung {
                    pass,
                    stalled_ms: guard.stalled_ms(),
                })
            }
            (result, _) => result,
        };
        match attempt_result {
            Ok(compiled) => break Ok(compiled),
            Err(e) => match e.class() {
                ErrorClass::Cancelled => break Err((JobState::Cancelled, e)),
                ErrorClass::Retryable if attempts <= retry.max_retries as u64 => {
                    shared.retries.fetch_add(1, Ordering::Relaxed);
                    shared.telemetry.counter_add("supervisor.retries", 1);
                    let ms = retry.backoff_ms(job.id, (attempts - 1) as usize);
                    backoff_total += ms;
                    if cancel_aware_sleep(ms, &job.cancel) {
                        break Err((
                            JobState::Cancelled,
                            CompileError::Cancelled {
                                pass: "retry-backoff".to_string(),
                            },
                        ));
                    }
                    continue;
                }
                _ => break Err((JobState::Failed, e)),
            },
        }
    };

    // Breaker bookkeeping: cancellation says nothing about workload
    // health, so only real terminals move the breaker.
    let breaker_state = {
        let mut breakers = recover(shared.breakers.lock());
        let breaker = breakers
            .entry(job.spec.workload.clone())
            .or_insert_with(|| CircuitBreaker::new(shared.config.breaker));
        match &outcome {
            Ok(_) => breaker.record_success(),
            Err((JobState::Cancelled, _)) => {}
            Err(_) => breaker.record_failure(),
        }
        breaker.state().label().to_string()
    };

    job_span.attr("attempts", attempts);
    match &outcome {
        Ok(_) => job_span.attr("outcome", "done"),
        Err((state, _)) => job_span.attr("outcome", state.label()),
    }
    match outcome {
        Ok(mut compiled) => {
            let blocks_resumed = compiled
                .composition_stats()
                .map_or(0, |s| s.blocks_resumed as u64);
            if blocks_resumed > 0 {
                shared.resumed.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(report) = compiled.report_mut() {
                report.supervision = Some(SupervisionStats {
                    attempts,
                    retries: attempts - 1,
                    backoff_ms: backoff_total,
                    queue_depth: job.queue_depth,
                    breaker_state,
                    blocks_resumed,
                    resumed_from_checkpoint: blocks_resumed > 0,
                    hang_preemptions,
                });
            }
            // The job finished; its checkpoint has served its purpose.
            if let Some(path) = &job.spec.checkpoint {
                let _ = std::fs::remove_file(path);
            }
            JobResult {
                id: job.id,
                workload: job.spec.workload,
                state: JobState::Done,
                compiled: Some(compiled),
                error: None,
                attempts,
            }
        }
        Err((state, error)) => JobResult {
            id: job.id,
            workload: job.spec.workload,
            state,
            compiled: None,
            error: Some(error),
            attempts,
        },
    }
}
