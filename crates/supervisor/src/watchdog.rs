//! Hung-worker detection: heartbeats, a background watchdog thread,
//! and typed preemption.
//!
//! A worker that panics is contained by the pass manager and a worker
//! that overruns its budget is degraded by the deadline checks — but a
//! worker stuck in a non-terminating loop holds its thread (and its
//! queue slot) forever, invisible to both mechanisms. The watchdog
//! closes that gap:
//!
//! 1. Every supervised attempt carries a [`Heartbeat`] the pipeline
//!    beats at each pass boundary and after every composed block.
//! 2. A single watchdog thread polls all registered attempts. When a
//!    heartbeat goes stale past [`WatchdogConfig::hang_timeout_ms`],
//!    it marks the attempt preempted and fires the attempt's private
//!    `CancelToken` — the same cooperative cancellation path user
//!    cancels use, so the worker unwinds at its next cancellation
//!    point.
//! 3. The supervisor sees the attempt end `Cancelled`, notices the
//!    preemption mark (and that the *job's* token never fired), and
//!    reclassifies the error as the retryable
//!    [`geyser::CompileError::WorkerHung`] so the existing
//!    retry/backoff machinery reschedules the job.
//!
//! The watchdog also propagates the job-level token into the attempt
//! token, so user cancellation keeps working unchanged when attempts
//! run under their own tokens.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use geyser::{CancelToken, Telemetry};

/// When the watchdog declares a worker hung and how often it looks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// A heartbeat older than this is a hang; the attempt is
    /// preempted.
    pub hang_timeout_ms: u64,
    /// Poll period of the watchdog thread. Bounds both hang-detection
    /// latency (timeout + one poll) and job-cancel propagation
    /// latency.
    pub poll_interval_ms: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            hang_timeout_ms: 500,
            poll_interval_ms: 5,
        }
    }
}

/// A cheaply clonable liveness beacon shared between one compile
/// attempt (which beats it) and the watchdog (which reads it).
#[derive(Debug, Clone)]
pub struct Heartbeat {
    inner: Arc<HeartbeatInner>,
}

#[derive(Debug)]
struct HeartbeatInner {
    epoch: Instant,
    last_beat_ms: AtomicU64,
    stage: Mutex<String>,
}

impl Default for Heartbeat {
    fn default() -> Self {
        Heartbeat::new()
    }
}

impl Heartbeat {
    /// A fresh heartbeat, considered beaten at creation time.
    pub fn new() -> Self {
        Heartbeat {
            inner: Arc::new(HeartbeatInner {
                epoch: Instant::now(),
                last_beat_ms: AtomicU64::new(0),
                stage: Mutex::new(String::from("start")),
            }),
        }
    }

    fn now_ms(&self) -> u64 {
        self.inner.epoch.elapsed().as_millis() as u64
    }

    /// Records liveness, naming the stage the worker is in.
    pub fn beat(&self, stage: &str) {
        self.inner
            .last_beat_ms
            .store(self.now_ms(), Ordering::Release);
        let mut s = self
            .inner
            .stage
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if *s != stage {
            s.clear();
            s.push_str(stage);
        }
    }

    /// Milliseconds since the last beat.
    pub fn stalled_ms(&self) -> u64 {
        self.now_ms()
            .saturating_sub(self.inner.last_beat_ms.load(Ordering::Acquire))
    }

    /// The stage named by the most recent beat.
    pub fn stage(&self) -> String {
        self.inner
            .stage
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// Set by the watchdog when it preempts an attempt; read by the
/// supervisor to reclassify the resulting `Cancelled` as `WorkerHung`.
#[derive(Debug, Default)]
struct Preemption {
    hung: AtomicBool,
    stalled_ms: AtomicU64,
}

struct Entry {
    id: u64,
    job_cancel: CancelToken,
    attempt_cancel: CancelToken,
    heartbeat: Heartbeat,
    preemption: Arc<Preemption>,
}

struct WatchShared {
    config: WatchdogConfig,
    telemetry: Telemetry,
    entries: Mutex<Vec<Entry>>,
    shutdown: AtomicBool,
}

impl WatchShared {
    fn poll_once(&self) {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let mut max_age: u64 = 0;
        for entry in entries.iter() {
            // Job-level cancellation propagates to the attempt token
            // so user cancels keep working when attempts run under
            // private tokens.
            if entry.job_cancel.is_cancelled() && !entry.attempt_cancel.is_cancelled() {
                entry.attempt_cancel.cancel();
            }
            let stalled = entry.heartbeat.stalled_ms();
            max_age = max_age.max(stalled);
            if stalled >= self.config.hang_timeout_ms
                && !entry.preemption.hung.swap(true, Ordering::SeqCst)
            {
                entry.preemption.stalled_ms.store(stalled, Ordering::SeqCst);
                entry.attempt_cancel.cancel();
                self.telemetry.counter_add("supervisor.hang_preemptions", 1);
            }
        }
        self.telemetry
            .gauge_set("supervisor.heartbeat_age_ms", max_age as i64);
    }
}

/// The background watchdog: one thread per supervisor, polling every
/// registered in-flight attempt.
pub(crate) struct Watchdog {
    shared: Arc<WatchShared>,
    next_id: AtomicU64,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    pub(crate) fn start(config: WatchdogConfig, telemetry: Telemetry) -> Self {
        let shared = Arc::new(WatchShared {
            config,
            telemetry,
            entries: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("geyser-watchdog".to_string())
            .spawn(move || {
                while !thread_shared.shutdown.load(Ordering::SeqCst) {
                    thread_shared.poll_once();
                    std::thread::sleep(Duration::from_millis(
                        thread_shared.config.poll_interval_ms.max(1),
                    ));
                }
            })
            .expect("watchdog thread spawns");
        Watchdog {
            shared,
            next_id: AtomicU64::new(0),
            handle: Some(handle),
        }
    }

    /// Puts one attempt under watch; the returned guard deregisters it
    /// on drop. A job token that is already cancelled propagates
    /// immediately (not a poll later), so pre-cancelled jobs stay
    /// deterministically cancelled.
    pub(crate) fn watch(
        &self,
        job_cancel: CancelToken,
        attempt_cancel: CancelToken,
        heartbeat: Heartbeat,
    ) -> WatchGuard {
        if job_cancel.is_cancelled() {
            attempt_cancel.cancel();
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let preemption = Arc::new(Preemption::default());
        self.shared
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Entry {
                id,
                job_cancel,
                attempt_cancel,
                heartbeat,
                preemption: Arc::clone(&preemption),
            });
        WatchGuard {
            shared: Arc::clone(&self.shared),
            id,
            preemption,
        }
    }

    /// Signals the watchdog thread to exit (it does so within one poll
    /// interval; `Drop` joins it).
    pub(crate) fn stop(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Keeps one attempt registered with the watchdog; dropping it
/// deregisters. Exposes whether (and for how long) the watchdog
/// preempted the attempt.
pub(crate) struct WatchGuard {
    shared: Arc<WatchShared>,
    id: u64,
    preemption: Arc<Preemption>,
}

impl WatchGuard {
    /// Whether the watchdog preempted this attempt for a stale
    /// heartbeat.
    pub(crate) fn hung(&self) -> bool {
        self.preemption.hung.load(Ordering::SeqCst)
    }

    /// How stale the heartbeat was at preemption time (0 if not
    /// preempted).
    pub(crate) fn stalled_ms(&self) -> u64 {
        self.preemption.stalled_ms.load(Ordering::SeqCst)
    }
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        self.shared
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|e| e.id != self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> WatchdogConfig {
        WatchdogConfig {
            hang_timeout_ms: 40,
            poll_interval_ms: 2,
        }
    }

    #[test]
    fn heartbeat_tracks_staleness_and_stage() {
        let hb = Heartbeat::new();
        hb.beat("map");
        assert_eq!(hb.stage(), "map");
        assert!(hb.stalled_ms() < 40);
        std::thread::sleep(Duration::from_millis(30));
        assert!(hb.stalled_ms() >= 25);
        hb.beat("compose");
        assert!(hb.stalled_ms() < 25);
        assert_eq!(hb.stage(), "compose");
    }

    #[test]
    fn stale_heartbeat_is_preempted_within_the_timeout() {
        let telemetry = Telemetry::enabled();
        let wd = Watchdog::start(fast_config(), telemetry.clone());
        let attempt = CancelToken::new();
        let hb = Heartbeat::new();
        let guard = wd.watch(CancelToken::new(), attempt.clone(), hb.clone());
        let deadline = Instant::now() + Duration::from_millis(2_000);
        while !guard.hung() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(guard.hung(), "stale heartbeat must be preempted");
        assert!(attempt.is_cancelled(), "preemption fires the attempt token");
        assert!(guard.stalled_ms() >= fast_config().hang_timeout_ms);
        assert_eq!(
            telemetry.counter_value("supervisor.hang_preemptions"),
            Some(1)
        );
    }

    #[test]
    fn beating_heartbeat_is_left_alone() {
        let wd = Watchdog::start(fast_config(), Telemetry::disabled());
        let attempt = CancelToken::new();
        let hb = Heartbeat::new();
        let guard = wd.watch(CancelToken::new(), attempt.clone(), hb.clone());
        for _ in 0..30 {
            hb.beat("compose");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!guard.hung(), "a live worker must not be preempted");
        assert!(!attempt.is_cancelled());
    }

    #[test]
    fn job_cancel_propagates_to_the_attempt_token() {
        let wd = Watchdog::start(fast_config(), Telemetry::disabled());
        let job = CancelToken::new();
        let attempt = CancelToken::new();
        let hb = Heartbeat::new();
        let guard = wd.watch(job.clone(), attempt.clone(), hb.clone());
        job.cancel();
        let deadline = Instant::now() + Duration::from_millis(2_000);
        while !attempt.is_cancelled() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(attempt.is_cancelled(), "job cancel must reach the attempt");
        // A propagated cancel is NOT a hang: keep beating to prove it.
        hb.beat("compose");
        assert!(!guard.hung());
    }

    #[test]
    fn pre_cancelled_job_propagates_at_registration() {
        let wd = Watchdog::start(fast_config(), Telemetry::disabled());
        let job = CancelToken::new();
        job.cancel();
        let attempt = CancelToken::new();
        let _guard = wd.watch(job, attempt.clone(), Heartbeat::new());
        assert!(
            attempt.is_cancelled(),
            "already-cancelled job must cancel the attempt synchronously"
        );
    }

    #[test]
    fn dropping_the_guard_deregisters() {
        let wd = Watchdog::start(fast_config(), Telemetry::disabled());
        let attempt = CancelToken::new();
        let guard = wd.watch(CancelToken::new(), attempt.clone(), Heartbeat::new());
        drop(guard);
        std::thread::sleep(Duration::from_millis(120));
        assert!(
            !attempt.is_cancelled(),
            "a deregistered attempt must never be preempted"
        );
    }
}
