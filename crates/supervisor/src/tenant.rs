//! Per-tenant identity, compile budgets, and fair dispatch.
//!
//! The service layer treats the worker pool as a shared resource that
//! many tenants draw on at once. Two mechanisms keep one noisy tenant
//! from starving everyone else:
//!
//! * a **token bucket** per tenant meters *admission*: each tenant
//!   earns compile-cost units at a steady rate (with a burst
//!   allowance), and under backlog a tenant whose bucket is empty is
//!   shed with a typed rejection instead of queueing unboundedly;
//! * **deficit round robin** meters *dispatch*: every backlogged
//!   tenant gets a quantum of cost units per scheduling round, so a
//!   tenant with thousands of queued jobs and a tenant with one
//!   interleave fairly regardless of arrival order.
//!
//! Every method takes an explicit `now_ms` instead of reading a
//! clock, so the same code runs under wall time inside the threaded
//! [`crate::Supervisor`] and under deterministic virtual time inside
//! the `serve` bench harness.

use std::collections::VecDeque;
use std::fmt;

/// Identifies the tenant a job is billed to and scheduled under.
///
/// Tenant names are free-form labels; jobs submitted without one fall
/// into the `"default"` tenant, which restores single-tenant behavior.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(String);

impl TenantId {
    /// A tenant with the given label.
    pub fn new(name: impl Into<String>) -> Self {
        TenantId(name.into())
    }

    /// The tenant's label.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Default for TenantId {
    fn default() -> Self {
        TenantId("default".to_string())
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TenantId {
    fn from(name: &str) -> Self {
        TenantId::new(name)
    }
}

/// A token bucket metering one tenant's compile budget in cost units
/// (≈ estimated compile milliseconds).
///
/// Deterministic: refills are computed from the `now_ms` values the
/// caller passes in, never from a real clock.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Maximum tokens the bucket holds (burst allowance).
    capacity: u64,
    /// Tokens earned per second of (virtual or wall) time.
    rate_per_sec: u64,
    /// Current balance, in 1/1000 token units for refill precision.
    millitokens: u64,
    /// Last refill timestamp.
    last_ms: u64,
}

impl TokenBucket {
    /// A full bucket with the given burst capacity and refill rate.
    pub fn new(capacity: u64, rate_per_sec: u64, now_ms: u64) -> Self {
        TokenBucket {
            capacity,
            rate_per_sec,
            millitokens: capacity.saturating_mul(1000),
            last_ms: now_ms,
        }
    }

    fn refill(&mut self, now_ms: u64) {
        let elapsed = now_ms.saturating_sub(self.last_ms);
        self.last_ms = now_ms;
        self.millitokens = self
            .millitokens
            .saturating_add(elapsed.saturating_mul(self.rate_per_sec))
            .min(self.capacity.saturating_mul(1000));
    }

    /// Current whole-token balance after refilling to `now_ms`.
    pub fn balance(&mut self, now_ms: u64) -> u64 {
        self.refill(now_ms);
        self.millitokens / 1000
    }

    /// Tries to withdraw `cost` tokens; returns whether the bucket had
    /// them. A failed withdrawal leaves the balance untouched.
    pub fn try_take(&mut self, cost: u64, now_ms: u64) -> bool {
        self.refill(now_ms);
        let want = cost.saturating_mul(1000);
        if self.millitokens >= want {
            self.millitokens -= want;
            true
        } else {
            false
        }
    }
}

/// One entry waiting in a tenant's queue.
#[derive(Debug)]
struct Entry<T> {
    item: T,
    cost: u64,
}

/// One tenant's FIFO plus its deficit counter.
#[derive(Debug)]
struct TenantQueue<T> {
    tenant: TenantId,
    queue: VecDeque<Entry<T>>,
    deficit: u64,
}

/// Deficit-round-robin dispatcher over per-tenant FIFO queues.
///
/// Each scheduling round visits backlogged tenants in a fixed
/// first-seen order; a tenant may dispatch jobs while its accumulated
/// deficit covers their cost, then yields the round. Tenants with
/// nothing queued accrue no deficit, so an idle tenant cannot bank
/// service time. Wholly deterministic: ties break on tenant
/// first-seen order, never on hash order or clocks.
#[derive(Debug)]
pub struct DrrQueue<T> {
    quantum: u64,
    tenants: Vec<TenantQueue<T>>,
    /// Round-robin cursor into `tenants`.
    cursor: usize,
    len: usize,
}

impl<T> DrrQueue<T> {
    /// An empty dispatcher granting `quantum` cost units per tenant
    /// per round (clamped to at least 1 so progress is guaranteed).
    pub fn new(quantum: u64) -> Self {
        DrrQueue {
            quantum: quantum.max(1),
            tenants: Vec::new(),
            cursor: 0,
            len: 0,
        }
    }

    /// Jobs queued across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no job is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Jobs queued for one tenant.
    pub fn tenant_backlog(&self, tenant: &TenantId) -> usize {
        self.tenants
            .iter()
            .find(|t| &t.tenant == tenant)
            .map_or(0, |t| t.queue.len())
    }

    /// Appends a job to its tenant's FIFO with the scheduler-visible
    /// cost estimate used for deficit accounting.
    pub fn enqueue(&mut self, tenant: &TenantId, item: T, cost: u64) {
        let slot = match self.tenants.iter_mut().find(|t| &t.tenant == tenant) {
            Some(slot) => slot,
            None => {
                self.tenants.push(TenantQueue {
                    tenant: tenant.clone(),
                    queue: VecDeque::new(),
                    deficit: 0,
                });
                self.tenants.last_mut().expect("just pushed")
            }
        };
        slot.queue.push_back(Entry {
            item,
            cost: cost.max(1),
        });
        self.len += 1;
    }

    /// Pops the next job under deficit round robin, returning it with
    /// its tenant. `None` when every queue is empty — a non-empty
    /// queue always dispatches in one call.
    pub fn dequeue(&mut self) -> Option<(TenantId, T)> {
        if self.len == 0 {
            return None;
        }
        let n = self.tenants.len();
        loop {
            // One full rotation, topping up a quantum per visited
            // backlogged tenant whose head is not yet affordable.
            for _ in 0..n {
                let idx = self.cursor % n;
                let slot = &mut self.tenants[idx];
                match slot.queue.front() {
                    Some(head) if head.cost <= slot.deficit => {
                        let entry = slot.queue.pop_front().expect("head exists");
                        slot.deficit -= entry.cost;
                        // An emptied tenant forfeits its residual deficit
                        // (classic DRR: no banking across idle periods).
                        if slot.queue.is_empty() {
                            slot.deficit = 0;
                            self.cursor += 1;
                        }
                        self.len -= 1;
                        return Some((slot.tenant.clone(), entry.item));
                    }
                    Some(_) => {
                        slot.deficit = slot.deficit.saturating_add(self.quantum);
                        self.cursor += 1;
                    }
                    None => {
                        slot.deficit = 0;
                        self.cursor += 1;
                    }
                }
            }
            // A whole rotation dispatched nothing: every head costs
            // more than its tenant's deficit. Fast-forward the rounds
            // a plain DRR would spin through — credit every
            // backlogged tenant the same number of whole quanta, the
            // minimum that makes some head affordable — and sweep
            // again. The uniform credit keeps the dispatch order
            // identical to stepping round by round, and the next
            // rotation is guaranteed to dispatch.
            let rounds = self
                .tenants
                .iter()
                .filter_map(|slot| {
                    let head = slot.queue.front()?;
                    Some(
                        head.cost
                            .saturating_sub(slot.deficit)
                            .div_ceil(self.quantum),
                    )
                })
                .min()
                .expect("len > 0 implies a backlogged tenant");
            for slot in &mut self.tenants {
                if !slot.queue.is_empty() {
                    slot.deficit = slot
                        .deficit
                        .saturating_add(rounds.saturating_mul(self.quantum));
                }
            }
        }
    }

    /// Removes and returns every queued job whose predicate matches
    /// (used to shed stale work and to cancel queued jobs).
    pub fn drain_matching(&mut self, mut pred: impl FnMut(&T) -> bool) -> Vec<(TenantId, T)> {
        let mut out = Vec::new();
        for slot in &mut self.tenants {
            let mut kept = VecDeque::with_capacity(slot.queue.len());
            while let Some(entry) = slot.queue.pop_front() {
                if pred(&entry.item) {
                    out.push((slot.tenant.clone(), entry.item));
                } else {
                    kept.push_back(entry);
                }
            }
            slot.queue = kept;
        }
        self.len -= out.len();
        out
    }

    /// Iterates the queued jobs in tenant-then-FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = (&TenantId, &T)> {
        self.tenants
            .iter()
            .flat_map(|slot| slot.queue.iter().map(move |e| (&slot.tenant, &e.item)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tenant_is_stable() {
        assert_eq!(TenantId::default().as_str(), "default");
        assert_eq!(TenantId::from("acme").to_string(), "acme");
    }

    #[test]
    fn bucket_meters_and_refills_in_virtual_time() {
        let mut b = TokenBucket::new(10, 5, 0);
        assert!(b.try_take(10, 0), "bucket starts full");
        assert!(!b.try_take(1, 0), "empty after the burst");
        // 5 tokens/sec → 1 token after 200 virtual ms.
        assert!(!b.try_take(2, 200));
        assert!(b.try_take(1, 200));
        // Refill clamps at capacity.
        assert_eq!(b.balance(1_000_000), 10);
    }

    #[test]
    fn failed_withdrawal_leaves_balance_untouched() {
        let mut b = TokenBucket::new(4, 1, 0);
        assert!(!b.try_take(5, 0));
        assert_eq!(b.balance(0), 4);
    }

    #[test]
    fn drr_interleaves_a_flood_with_a_single_job() {
        let mut q = DrrQueue::new(10);
        for i in 0..100 {
            q.enqueue(&TenantId::from("flood"), i, 10);
        }
        q.enqueue(&TenantId::from("light"), 1000, 10);
        // The light tenant's one job must come out within the first
        // round despite 100 jobs queued ahead of it.
        let mut seen_light_at = None;
        for pos in 0..q.len() {
            let (tenant, _) = q.dequeue().unwrap();
            if tenant.as_str() == "light" {
                seen_light_at = Some(pos);
                break;
            }
        }
        assert!(
            seen_light_at.unwrap() <= 2,
            "light tenant served at position {seen_light_at:?}, not starved"
        );
    }

    #[test]
    fn drr_shares_by_cost_not_job_count() {
        // Tenant "big" queues expensive jobs, "small" cheap ones: over
        // one full drain, per-round service should track the quantum,
        // so "small" dispatches ~4x as many jobs as "big".
        let mut q = DrrQueue::new(20);
        for i in 0..10 {
            q.enqueue(&TenantId::from("big"), i, 40);
            q.enqueue(&TenantId::from("small"), 100 + i, 10);
        }
        let mut first_eight = Vec::new();
        for _ in 0..8 {
            first_eight.push(q.dequeue().unwrap().0.as_str().to_string());
        }
        let small = first_eight.iter().filter(|t| *t == "small").count();
        let big = first_eight.len() - small;
        assert!(
            small > big,
            "cheap jobs should dispatch more often per round: {first_eight:?}"
        );
    }

    #[test]
    fn expensive_head_dispatches_in_one_call() {
        // Regression: a head costing more than deficit + 2x quantum
        // used to exhaust the bounded sweep and return None with the
        // job still queued, parking workers forever.
        let mut q = DrrQueue::new(400);
        q.enqueue(&TenantId::from("t"), 7, 1_000);
        assert_eq!(q.dequeue().unwrap().1, 7);
        assert!(q.is_empty());

        // Several tenants, all far pricier than one round's credit:
        // the fast-forward must still serve the cheaper head first.
        let mut q = DrrQueue::new(1);
        q.enqueue(&TenantId::from("a"), 1, 1_000);
        q.enqueue(&TenantId::from("b"), 2, 10_000);
        let mut out = Vec::new();
        while let Some((_, i)) = q.dequeue() {
            out.push(i);
        }
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn drr_is_deterministic() {
        let run = || {
            let mut q = DrrQueue::new(5);
            for i in 0..30u32 {
                q.enqueue(&TenantId::new(format!("t{}", i % 3)), i, 1 + (i as u64 % 7));
            }
            let mut order = Vec::new();
            while let Some((t, i)) = q.dequeue() {
                order.push((t.to_string(), i));
            }
            order
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn drain_matching_removes_and_counts() {
        let mut q = DrrQueue::new(5);
        q.enqueue(&TenantId::from("a"), 1, 1);
        q.enqueue(&TenantId::from("b"), 2, 1);
        q.enqueue(&TenantId::from("a"), 3, 1);
        let drained = q.drain_matching(|i| *i % 2 == 1);
        assert_eq!(drained.len(), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.dequeue().unwrap().1, 2);
    }

    #[test]
    fn idle_tenant_banks_no_deficit() {
        let mut q = DrrQueue::new(10);
        q.enqueue(&TenantId::from("a"), 0, 10);
        assert!(q.dequeue().is_some());
        assert!(q.dequeue().is_none());
        // "a" drained; later arrivals from "b" must not wait behind a
        // banked deficit.
        q.enqueue(&TenantId::from("b"), 1, 10);
        assert_eq!(q.dequeue().unwrap().0.as_str(), "b");
    }
}
