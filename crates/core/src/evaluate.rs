//! Output-fidelity evaluation (the paper's TVD experiments).

use geyser_circuit::Circuit;
use geyser_sim::{
    ideal_distribution, total_variation_distance, try_ideal_distribution,
    try_sample_noisy_distribution_traced, NoiseModel, SimFaults,
};
use geyser_telemetry::Telemetry;

use crate::{CompileError, CompiledCircuit};

/// Result of a noisy-execution evaluation of one compiled circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct TvdReport {
    /// TVD between the noisy output and the program's ideal output
    /// (paper Figs. 15–18; lower is better).
    pub tvd_to_ideal: f64,
    /// TVD between the compiled circuit's *noise-free* output and the
    /// program's ideal output — the compilation-error floor the paper
    /// bounds at < 1e-2 (Sec. 6).
    pub compilation_tvd: f64,
    /// Trajectories simulated.
    pub trajectories: usize,
}

/// Ideal output distribution of a compiled circuit, marginalized onto
/// the logical register.
pub fn ideal_logical_distribution(compiled: &CompiledCircuit) -> Vec<f64> {
    let node_dist = ideal_distribution(compiled.mapped().circuit());
    compiled.mapped().logical_distribution(&node_dist)
}

/// Analytic estimated success probability (ESP): the probability that
/// *no* error channel fires anywhere in the circuit,
/// `Π_ops (1 − p_x)^{k} (1 − p_z)^{k}` with `k` = engaged qubits ×
/// channel invocations. A standard closed-form fidelity proxy — it
/// tracks the TVD trend without any simulation, making the
/// pulses → fidelity mechanism auditable at a glance.
///
/// # Example
///
/// ```
/// use geyser::{compile, estimated_success_probability, PipelineConfig, Technique};
/// use geyser_circuit::Circuit;
/// use geyser_sim::NoiseModel;
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let compiled = compile(&c, Technique::OptiMap, &PipelineConfig::fast());
/// let esp = estimated_success_probability(&compiled, &NoiseModel::symmetric(0.001));
/// assert!(esp > 0.9 && esp <= 1.0);
/// ```
pub fn estimated_success_probability(compiled: &CompiledCircuit, noise: &NoiseModel) -> f64 {
    let mut esp = 1.0f64;
    for op in compiled.mapped().circuit().iter() {
        let trials = (noise.invocations_for(op) as i32) * op.qubits().len() as i32;
        esp *= (1.0 - noise.bit_flip).powi(trials);
        esp *= (1.0 - noise.phase_flip).powi(trials);
    }
    esp
}

/// Runs the compiled circuit under the noise model and reports TVDs
/// against the logical program's ideal output.
///
/// Deterministic for fixed inputs and seed.
///
/// # Panics
///
/// Panics if the program's qubit count differs from the compiled
/// circuit's logical register, or `trajectories == 0`.
///
/// # Example
///
/// ```
/// use geyser::{compile, evaluate_tvd, PipelineConfig, Technique};
/// use geyser_circuit::Circuit;
/// use geyser_sim::NoiseModel;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let compiled = compile(&c, Technique::OptiMap, &PipelineConfig::fast());
/// let report = evaluate_tvd(&compiled, &c, &NoiseModel::symmetric(0.001), 50, 1);
/// assert!(report.tvd_to_ideal < 0.5);
/// ```
pub fn evaluate_tvd(
    compiled: &CompiledCircuit,
    program: &Circuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> TvdReport {
    try_evaluate_tvd(compiled, program, noise, trajectories, seed).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`evaluate_tvd`]: returns
/// [`CompileError::RegisterMismatch`] or
/// [`CompileError::NoTrajectories`] instead of panicking on invalid
/// inputs.
///
/// # Example
///
/// ```
/// use geyser::{compile, try_evaluate_tvd, CompileError, PipelineConfig, Technique};
/// use geyser_circuit::Circuit;
/// use geyser_sim::NoiseModel;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let compiled = compile(&c, Technique::OptiMap, &PipelineConfig::fast());
/// let err = try_evaluate_tvd(&compiled, &c, &NoiseModel::noiseless(), 0, 0);
/// assert!(matches!(err, Err(CompileError::NoTrajectories)));
/// ```
pub fn try_evaluate_tvd(
    compiled: &CompiledCircuit,
    program: &Circuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> Result<TvdReport, CompileError> {
    try_evaluate_tvd_with_faults(
        compiled,
        program,
        noise,
        trajectories,
        seed,
        &SimFaults::none(),
    )
}

/// [`try_evaluate_tvd`] with test/bench-only sampler fault injection
/// (see [`crate::FaultInjector`]).
///
/// Numerical-health failures that survive the sampler's bounded
/// rejection-and-resample surface as [`CompileError::Sim`].
pub fn try_evaluate_tvd_with_faults(
    compiled: &CompiledCircuit,
    program: &Circuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    faults: &SimFaults,
) -> Result<TvdReport, CompileError> {
    try_evaluate_tvd_traced(
        compiled,
        program,
        noise,
        trajectories,
        seed,
        faults,
        &Telemetry::disabled(),
    )
}

/// [`try_evaluate_tvd_with_faults`] recording sampler telemetry
/// (`sim.sample` span, trajectory/resample counters). Observational
/// only: results are bit-identical with telemetry enabled or disabled.
#[allow(clippy::too_many_arguments)]
pub fn try_evaluate_tvd_traced(
    compiled: &CompiledCircuit,
    program: &Circuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    faults: &SimFaults,
    telemetry: &Telemetry,
) -> Result<TvdReport, CompileError> {
    if program.num_qubits() != compiled.mapped().num_logical() {
        return Err(CompileError::RegisterMismatch {
            program_qubits: program.num_qubits(),
            compiled_qubits: compiled.mapped().num_logical(),
        });
    }
    if trajectories == 0 {
        return Err(CompileError::NoTrajectories);
    }
    let ideal = try_ideal_distribution(program)?;

    let compiled_ideal = ideal_logical_distribution(compiled);
    let compilation_tvd = total_variation_distance(&ideal, &compiled_ideal);

    let noisy_nodes = try_sample_noisy_distribution_traced(
        compiled.mapped().circuit(),
        noise,
        trajectories,
        seed,
        faults,
        telemetry,
    )?;
    let noisy = compiled.mapped().logical_distribution(&noisy_nodes);
    let tvd_to_ideal = total_variation_distance(&ideal, &noisy);

    Ok(TvdReport {
        tvd_to_ideal,
        compilation_tvd,
        trajectories,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, PipelineConfig, Technique};

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for i in 1..n {
            c.cx(i - 1, i);
        }
        c
    }

    #[test]
    fn noiseless_evaluation_matches_compilation_floor() {
        let program = ghz(3);
        let compiled = compile(&program, Technique::OptiMap, &PipelineConfig::fast());
        let report = evaluate_tvd(&compiled, &program, &NoiseModel::noiseless(), 1, 0);
        assert!(report.compilation_tvd < 1e-9);
        assert!((report.tvd_to_ideal - report.compilation_tvd).abs() < 1e-12);
    }

    #[test]
    fn geyser_compilation_floor_is_small() {
        // Paper Sec. 6: ideal-output divergence of composed circuits
        // stays well below 1e-2.
        let program = ghz(4);
        let compiled = compile(&program, Technique::Geyser, &PipelineConfig::fast());
        let report = evaluate_tvd(&compiled, &program, &NoiseModel::noiseless(), 1, 0);
        assert!(
            report.compilation_tvd < 1e-2,
            "floor = {}",
            report.compilation_tvd
        );
    }

    #[test]
    fn higher_noise_gives_higher_tvd() {
        let program = ghz(3);
        let compiled = compile(&program, Technique::Baseline, &PipelineConfig::fast());
        let low = evaluate_tvd(&compiled, &program, &NoiseModel::symmetric(0.001), 300, 7);
        let high = evaluate_tvd(&compiled, &program, &NoiseModel::symmetric(0.02), 300, 7);
        assert!(low.tvd_to_ideal < high.tvd_to_ideal);
    }

    #[test]
    fn fewer_pulses_means_lower_tvd_between_techniques() {
        // The paper's core causal chain on a circuit with slack: the
        // technique with fewer pulses shows a lower TVD under the same
        // noise.
        let mut program = ghz(4);
        // Add removable redundancy so Baseline is clearly worse.
        for q in 0..4 {
            program.h(q).h(q).t(q).tdg(q);
        }
        program.cx(0, 1).cx(0, 1);
        let cfg = PipelineConfig::fast();
        let noise = NoiseModel::symmetric(0.005);
        let base = compile(&program, Technique::Baseline, &cfg);
        let opti = compile(&program, Technique::OptiMap, &cfg);
        assert!(opti.total_pulses() < base.total_pulses());
        let tvd_base = evaluate_tvd(&base, &program, &noise, 400, 3).tvd_to_ideal;
        let tvd_opti = evaluate_tvd(&opti, &program, &noise, 400, 3).tvd_to_ideal;
        assert!(
            tvd_opti < tvd_base,
            "OptiMap {tvd_opti} !< Baseline {tvd_base}"
        );
    }

    #[test]
    fn esp_decreases_with_pulse_count() {
        let small = ghz(3);
        let mut big = ghz(3);
        for _ in 0..5 {
            big.cx(0, 1).cx(0, 1);
        }
        let cfg = PipelineConfig::fast();
        let noise = NoiseModel::symmetric(0.002);
        let esp_small =
            estimated_success_probability(&compile(&small, Technique::Baseline, &cfg), &noise);
        let esp_big =
            estimated_success_probability(&compile(&big, Technique::Baseline, &cfg), &noise);
        assert!(esp_small > esp_big);
        assert!(esp_small <= 1.0 && esp_big > 0.0);
    }

    #[test]
    fn esp_is_one_without_noise() {
        let compiled = compile(&ghz(3), Technique::OptiMap, &PipelineConfig::fast());
        let esp = estimated_success_probability(&compiled, &NoiseModel::noiseless());
        assert!((esp - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "register mismatch")]
    fn program_size_mismatch_panics() {
        let program = ghz(3);
        let compiled = compile(&program, Technique::Baseline, &PipelineConfig::fast());
        let other = ghz(4);
        let _ = evaluate_tvd(&compiled, &other, &NoiseModel::noiseless(), 1, 0);
    }
}
