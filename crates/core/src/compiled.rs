//! The result of compiling a program with one technique.

use geyser_circuit::GateCounts;
use geyser_compose::CompositionStats;
use geyser_map::MappedCircuit;

use crate::{CompileReport, Technique};

/// A program compiled for a specific architecture/technique, with all
/// the metrics the paper reports.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    technique: Technique,
    mapped: MappedCircuit,
    composition: Option<CompositionStats>,
    report: Option<CompileReport>,
}

impl CompiledCircuit {
    pub(crate) fn new(
        technique: Technique,
        mapped: MappedCircuit,
        composition: Option<CompositionStats>,
    ) -> Self {
        CompiledCircuit {
            technique,
            mapped,
            composition,
            report: None,
        }
    }

    pub(crate) fn with_report(
        technique: Technique,
        mapped: MappedCircuit,
        composition: Option<CompositionStats>,
        report: CompileReport,
    ) -> Self {
        CompiledCircuit {
            technique,
            mapped,
            composition,
            report: Some(report),
        }
    }

    /// Reassembles a compiled circuit from its parts — the inverse of
    /// the accessors, used by result caches and external toolchains
    /// that persist compilations.
    pub fn from_parts(
        technique: Technique,
        mapped: MappedCircuit,
        composition: Option<CompositionStats>,
    ) -> Self {
        Self::new(technique, mapped, composition)
    }

    /// The technique that produced this circuit.
    pub fn technique(&self) -> Technique {
        self.technique
    }

    /// The mapped physical circuit and layout information.
    pub fn mapped(&self) -> &MappedCircuit {
        &self.mapped
    }

    /// Composition statistics (present only for [`Technique::Geyser`]).
    pub fn composition_stats(&self) -> Option<&CompositionStats> {
        self.composition.as_ref()
    }

    /// Attaches a pipeline report after the fact.
    ///
    /// Result caches use this to give replayed circuits the same
    /// report *shape* as fresh compiles — explicit
    /// `supervision`/`verification` keys (serialized as `null` when
    /// absent) instead of a missing report — so downstream JSON
    /// consumers see a stable schema whether a circuit was compiled or
    /// replayed.
    pub fn attach_report(&mut self, report: CompileReport) {
        self.report = Some(report);
    }

    /// Per-pass instrumentation from the pipeline run.
    ///
    /// Present whenever the circuit came out of a
    /// [`crate::PassManager`] (including [`crate::compile`]), and for
    /// circuits a cache replayed with [`CompiledCircuit::attach_report`]
    /// (their `passes` list is empty — no pass ran in this process).
    pub fn report(&self) -> Option<&CompileReport> {
        self.report.as_ref()
    }

    /// Mutable access to the pipeline report, used by supervisors to
    /// attach [`crate::SupervisionStats`] after the run completes.
    pub fn report_mut(&mut self) -> Option<&mut CompileReport> {
        self.report.as_mut()
    }

    /// Total physical pulses (paper Fig. 12, lower is better).
    pub fn total_pulses(&self) -> u64 {
        self.mapped.total_pulses()
    }

    /// Critical-path pulses (paper Fig. 13, lower is better).
    ///
    /// Neutral-atom techniques account for restriction zones;
    /// superconducting hardware has none (fixed couplers), so its
    /// depth is the plain data-dependency critical path.
    pub fn depth_pulses(&self) -> u64 {
        if self.technique == Technique::Superconducting {
            self.mapped.circuit().depth_pulses()
        } else {
            self.mapped.depth_pulses()
        }
    }

    /// Gate counts in the paper's buckets (Fig. 14).
    pub fn gate_counts(&self) -> GateCounts {
        self.mapped.gate_counts()
    }
}
