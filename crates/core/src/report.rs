//! Per-run instrumentation: what each pass did and what it cost.

use geyser_reuse::ReuseStats;
use serde::{Deserialize, Serialize};

/// Measurements for one pass execution.
///
/// The before/after columns snapshot the pipeline's *current* circuit
/// around the pass: the logical program before mapping, the mapped
/// physical circuit afterwards, and the composed circuit between
/// composition and seam cleanup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PassReport {
    /// Pass name (see [`crate::Pass::name`]).
    pub name: String,
    /// Wall-clock seconds spent inside the pass.
    pub seconds: f64,
    /// Physical pulses before the pass ran.
    pub pulses_before: u64,
    /// Physical pulses after the pass ran.
    pub pulses_after: u64,
    /// Gate count before the pass ran.
    pub gates_before: u64,
    /// Gate count after the pass ran.
    pub gates_after: u64,
    /// Critical-path pulse depth before the pass ran.
    pub depth_before: u64,
    /// Critical-path pulse depth after the pass ran.
    pub depth_after: u64,
    /// Blocks rewritten by this pass (composition only).
    pub blocks_composed: Option<u64>,
}

impl PassReport {
    /// Signed pulse change introduced by the pass (negative = saved).
    pub fn pulse_delta(&self) -> i64 {
        self.pulses_after as i64 - self.pulses_before as i64
    }
}

/// How the supervisor ran this job: retry, backoff, queue, breaker,
/// and checkpoint-resume accounting. Absent (`None`) for unsupervised
/// runs, so plain pipeline reports are unchanged.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct SupervisionStats {
    /// Pipeline attempts consumed, including the final one (1 = no
    /// retries were needed).
    pub attempts: u64,
    /// Attempts beyond the first (`attempts - 1`).
    pub retries: u64,
    /// Total milliseconds of retry backoff the job slept through.
    pub backoff_ms: u64,
    /// Jobs already waiting when this one was admitted to the queue.
    pub queue_depth: u64,
    /// The workload's circuit-breaker state when the job finished
    /// (`closed`, `open`, or `half-open`).
    pub breaker_state: String,
    /// Composition blocks restored from a checkpoint instead of
    /// recomposed.
    pub blocks_resumed: u64,
    /// Whether the run started from a crash-safe checkpoint at all.
    pub resumed_from_checkpoint: bool,
    /// Attempts the watchdog preempted because the worker's heartbeat
    /// went stale (each surfaces as a retryable `WorkerHung`).
    pub hang_preemptions: u64,
    /// Tenant the job was billed to (empty when the supervisor ran
    /// without the multi-tenant service layer).
    pub tenant: String,
    /// Whether the service layer downgraded this job to the cheaper
    /// degraded configuration because the system was overloaded when
    /// it was admitted.
    pub degraded: bool,
    /// Whether this result was served by single-flight deduplication
    /// (attached to another job's in-flight compile instead of
    /// compiling again).
    pub deduped: bool,
}

// Hand-written so reports filed before the service layer existed
// still load (the derive rejects missing fields): absent
// `tenant`/`degraded`/`deduped` keys deserialize to their defaults.
impl serde::Deserialize for SupervisionStats {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        fn or_default<T: serde::Deserialize + Default>(
            value: &serde::Value,
            name: &str,
        ) -> Result<T, serde::Error> {
            match value.get_field(name) {
                Ok(v) => serde::Deserialize::from_value(v),
                Err(_) => Ok(T::default()),
            }
        }
        Ok(SupervisionStats {
            attempts: serde::Deserialize::from_value(value.get_field("attempts")?)?,
            retries: serde::Deserialize::from_value(value.get_field("retries")?)?,
            backoff_ms: serde::Deserialize::from_value(value.get_field("backoff_ms")?)?,
            queue_depth: serde::Deserialize::from_value(value.get_field("queue_depth")?)?,
            breaker_state: serde::Deserialize::from_value(value.get_field("breaker_state")?)?,
            blocks_resumed: serde::Deserialize::from_value(value.get_field("blocks_resumed")?)?,
            resumed_from_checkpoint: serde::Deserialize::from_value(
                value.get_field("resumed_from_checkpoint")?,
            )?,
            hang_preemptions: serde::Deserialize::from_value(value.get_field("hang_preemptions")?)?,
            tenant: or_default(value, "tenant")?,
            degraded: or_default(value, "degraded")?,
            deduped: or_default(value, "deduped")?,
        })
    }
}

/// What the equivalence oracle measured for one compiled circuit.
///
/// A serializable mirror of `geyser_verify::EquivalenceReport`, kept
/// as plain data so reports and the results cache don't depend on the
/// oracle's internal types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationStats {
    /// Oracle tier that ran: `exact-unitary`, `state-probes`, or
    /// `structural`.
    pub method: String,
    /// Basis columns (exact tier) or probe states evaluated.
    pub probes: u64,
    /// Smallest fidelity observed; `-1.0` when the structural tier
    /// measured nothing.
    pub worst_fidelity: f64,
    /// Effective threshold: fidelity ≥ 1 − tolerance passes.
    pub tolerance: f64,
    /// Whether the compiled circuit passed the oracle.
    pub equivalent: bool,
    /// Oracle wall-clock seconds.
    pub seconds: f64,
}

/// The full instrumentation record of one [`crate::PassManager`] run.
///
/// Serializable to JSON for the evaluation binaries (`--report PATH`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CompileReport {
    /// Label of the technique the pass list implements.
    pub technique: String,
    /// Content digest of the [`geyser_hardware::HardwareSpec`] the
    /// pipeline compiled for (see `HardwareSpec::digest`); `0` when a
    /// report was built outside a pass-manager run.
    pub hardware_digest: u64,
    /// Per-pass measurements in execution order.
    pub passes: Vec<PassReport>,
    /// Whether the wall-clock budget expired mid-pipeline (the run
    /// then degraded instead of completing every pass).
    pub budget_exhausted: bool,
    /// Wall-clock milliseconds left on the budget when the pipeline
    /// finished; `None` when the run was unbudgeted.
    pub budget_remaining_ms: Option<u64>,
    /// Passes skipped because the budget expired, in schedule order.
    pub skipped_passes: Vec<String>,
    /// Composition blocks that kept their original pulses (timeout,
    /// non-convergence, ε-rejection, or not cheaper).
    pub blocks_fell_back: u64,
    /// Composition blocks whose isolated worker panicked.
    pub blocks_failed: u64,
    /// Supervisor accounting (retries, backoff, breaker, resume);
    /// `None` when the pipeline ran unsupervised.
    pub supervision: Option<SupervisionStats>,
    /// Equivalence-oracle verdict for the compiled circuit; `None`
    /// when verification was not requested.
    pub verification: Option<VerificationStats>,
    /// Composition-reuse accounting (fingerprints, replays,
    /// warm-starts, store traffic); `None` when reuse was disabled.
    pub reuse: Option<ReuseStats>,
}

// Hand-written so reports filed before the reuse subsystem existed
// still load (the derive rejects missing fields): an absent `reuse`
// key deserializes to `None`.
impl serde::Deserialize for CompileReport {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        fn or_default<T: serde::Deserialize + Default>(
            value: &serde::Value,
            name: &str,
        ) -> Result<T, serde::Error> {
            match value.get_field(name) {
                Ok(v) => serde::Deserialize::from_value(v),
                Err(_) => Ok(T::default()),
            }
        }
        Ok(CompileReport {
            technique: serde::Deserialize::from_value(value.get_field("technique")?)?,
            hardware_digest: serde::Deserialize::from_value(value.get_field("hardware_digest")?)?,
            passes: serde::Deserialize::from_value(value.get_field("passes")?)?,
            budget_exhausted: serde::Deserialize::from_value(value.get_field("budget_exhausted")?)?,
            budget_remaining_ms: serde::Deserialize::from_value(
                value.get_field("budget_remaining_ms")?,
            )?,
            skipped_passes: serde::Deserialize::from_value(value.get_field("skipped_passes")?)?,
            blocks_fell_back: serde::Deserialize::from_value(value.get_field("blocks_fell_back")?)?,
            blocks_failed: serde::Deserialize::from_value(value.get_field("blocks_failed")?)?,
            supervision: serde::Deserialize::from_value(value.get_field("supervision")?)?,
            verification: serde::Deserialize::from_value(value.get_field("verification")?)?,
            reuse: or_default(value, "reuse")?,
        })
    }
}

impl CompileReport {
    /// Starts an empty report for a technique.
    pub fn new(technique: &str) -> Self {
        CompileReport {
            technique: technique.to_string(),
            hardware_digest: 0,
            passes: Vec::new(),
            budget_exhausted: false,
            budget_remaining_ms: None,
            skipped_passes: Vec::new(),
            blocks_fell_back: 0,
            blocks_failed: 0,
            supervision: None,
            verification: None,
            reuse: None,
        }
    }

    /// Total wall-clock seconds across all passes.
    pub fn total_seconds(&self) -> f64 {
        self.passes.iter().map(|p| p.seconds).sum()
    }

    /// Signed pulse change across the whole pipeline, from the first
    /// pass's input to the last pass's output.
    pub fn pulse_delta(&self) -> i64 {
        match (self.passes.first(), self.passes.last()) {
            (Some(first), Some(last)) => last.pulses_after as i64 - first.pulses_before as i64,
            _ => 0,
        }
    }

    /// Renders the report as pretty-printed JSON.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (cannot happen for this type).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CompileReport {
        CompileReport {
            technique: "Geyser".into(),
            hardware_digest: 0x7925_376e_27ff_4848,
            budget_exhausted: false,
            budget_remaining_ms: None,
            skipped_passes: Vec::new(),
            blocks_fell_back: 0,
            blocks_failed: 0,
            supervision: None,
            verification: None,
            reuse: None,
            passes: vec![
                PassReport {
                    name: "map".into(),
                    seconds: 0.25,
                    pulses_before: 100,
                    pulses_after: 80,
                    gates_before: 60,
                    gates_after: 50,
                    depth_before: 40,
                    depth_after: 30,
                    blocks_composed: None,
                },
                PassReport {
                    name: "compose".into(),
                    seconds: 0.75,
                    pulses_before: 80,
                    pulses_after: 60,
                    gates_before: 50,
                    gates_after: 40,
                    depth_before: 30,
                    depth_after: 25,
                    blocks_composed: Some(4),
                },
            ],
        }
    }

    #[test]
    fn totals_aggregate_passes() {
        let r = sample();
        assert!((r.total_seconds() - 1.0).abs() < 1e-12);
        assert_eq!(r.pulse_delta(), -40);
        assert_eq!(r.passes[1].pulse_delta(), -20);
    }

    #[test]
    fn json_roundtrips() {
        let r = sample();
        let json = r.to_json();
        assert!(json.contains("\"technique\""));
        let back: CompileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn empty_report_has_zero_delta() {
        let r = CompileReport::new("Baseline");
        assert_eq!(r.pulse_delta(), 0);
        assert_eq!(r.total_seconds(), 0.0);
        assert!(!r.budget_exhausted);
        assert!(r.skipped_passes.is_empty());
    }

    #[test]
    fn degraded_report_roundtrips_robustness_fields() {
        let mut r = sample();
        r.budget_exhausted = true;
        r.budget_remaining_ms = Some(0);
        r.skipped_passes = vec!["compose".into(), "seam-cleanup".into()];
        r.blocks_fell_back = 3;
        r.blocks_failed = 1;
        let json = r.to_json();
        assert!(json.contains("\"budget_exhausted\""));
        assert!(json.contains("\"skipped_passes\""));
        let back: CompileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.skipped_passes.len(), 2);
        assert_eq!(back.budget_remaining_ms, Some(0));
    }

    #[test]
    fn verification_stats_roundtrip() {
        let mut r = sample();
        r.verification = Some(VerificationStats {
            method: "exact-unitary".into(),
            probes: 16,
            worst_fidelity: 0.999999999,
            tolerance: 1e-9,
            equivalent: true,
            seconds: 0.02,
        });
        let json = r.to_json();
        assert!(json.contains("\"verification\""));
        assert!(json.contains("\"worst_fidelity\""));
        let back: CompileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        let v = back.verification.unwrap();
        assert_eq!(v.method, "exact-unitary");
        assert!(v.equivalent);
    }

    #[test]
    fn supervision_stats_roundtrip() {
        let mut r = sample();
        r.supervision = Some(SupervisionStats {
            attempts: 3,
            retries: 2,
            backoff_ms: 12,
            queue_depth: 5,
            breaker_state: "closed".into(),
            blocks_resumed: 4,
            resumed_from_checkpoint: true,
            hang_preemptions: 1,
            tenant: "acme".into(),
            degraded: true,
            deduped: false,
        });
        let json = r.to_json();
        assert!(json.contains("\"supervision\""));
        assert!(json.contains("\"breaker_state\""));
        let back: CompileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        let s = back.supervision.unwrap();
        assert_eq!(s.retries, 2);
        assert!(s.resumed_from_checkpoint);
        assert_eq!(s.hang_preemptions, 1);
        assert_eq!(s.tenant, "acme");
        assert!(s.degraded);
        assert!(!s.deduped);
    }

    #[test]
    fn reuse_stats_roundtrip() {
        let mut r = sample();
        r.reuse = Some(ReuseStats {
            blocks_fingerprinted: 12,
            exact_hits: 8,
            exact_hits_rejected: 1,
            warm_starts: 2,
            evals_saved: 40_000,
            entries_published: 3,
            store_entries_loaded: 5,
            store_entries_stale: 1,
            store_entries_saved: 3,
            unverified_replays: 0,
        });
        let json = r.to_json();
        assert!(json.contains("\"reuse\""));
        assert!(json.contains("\"evals_saved\""));
        let back: CompileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        let s = back.reuse.unwrap();
        assert_eq!(s.exact_hits, 8);
        assert_eq!(s.unverified_replays, 0);
    }

    #[test]
    fn pre_reuse_reports_still_deserialize() {
        // Reports filed before the reuse subsystem existed lack the
        // `reuse` key entirely; the parse must default it to `None`.
        let json = sample().to_json();
        let key = json.find("\"reuse\"").expect("sample serializes reuse");
        let comma = json[..key].rfind(',').expect("reuse is not first");
        let end = key + json[key..].find("null").expect("reuse is null") + "null".len();
        let legacy = format!("{}{}", &json[..comma], &json[end..]);
        assert!(!legacy.contains("\"reuse\""));
        let back: CompileReport = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.reuse, None);
        assert_eq!(back, sample());
    }

    #[test]
    fn pre_service_supervision_stats_still_deserialize() {
        // SupervisionStats JSON written before the service layer lacks
        // the tenant/degraded/deduped keys; the serde defaults must
        // fill them in instead of failing the parse.
        let legacy = r#"{
            "attempts": 1, "retries": 0, "backoff_ms": 0,
            "queue_depth": 0, "breaker_state": "closed",
            "blocks_resumed": 0, "resumed_from_checkpoint": false,
            "hang_preemptions": 0
        }"#;
        let s: SupervisionStats = serde_json::from_str(legacy).unwrap();
        assert_eq!(s.tenant, "");
        assert!(!s.degraded);
        assert!(!s.deduped);
    }
}
