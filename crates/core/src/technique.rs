//! The four compilation techniques of the paper's evaluation.

use std::fmt;

use geyser_blocking::block_circuit;
use geyser_circuit::Circuit;
use geyser_compose::compose_blocked_circuit;
use geyser_map::{map_circuit, optimize_to_fixpoint, MappingOptions};
use geyser_topology::Lattice;

use crate::{CompiledCircuit, PipelineConfig};

/// A compilation technique from the paper's evaluation (Sec. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Mapping and scheduling onto the triangular neutral-atom lattice
    /// with no optimization passes — the Baker-et-al.-style comparison
    /// point.
    Baseline,
    /// Baseline plus all standard compiler optimizations (the passes a
    /// state-of-the-art transpiler applies).
    OptiMap,
    /// OptiMap plus Geyser's circuit blocking and block composition.
    Geyser,
    /// The superconducting-qubit comparison: square lattice (the
    /// best-case layout the paper grants superconducting hardware),
    /// all optimizations, **no CCZ** (not physically executable), and
    /// no restriction zones.
    Superconducting,
}

impl Technique {
    /// All four techniques in the paper's presentation order.
    pub const ALL: [Technique; 4] = [
        Technique::Baseline,
        Technique::OptiMap,
        Technique::Geyser,
        Technique::Superconducting,
    ];

    /// The three neutral-atom techniques (Figs. 12–15, 17).
    pub const NEUTRAL_ATOM: [Technique; 3] =
        [Technique::Baseline, Technique::OptiMap, Technique::Geyser];

    /// Display label used in tables and figures.
    pub fn label(&self) -> &'static str {
        match self {
            Technique::Baseline => "Baseline",
            Technique::OptiMap => "OptiMap",
            Technique::Geyser => "Geyser",
            Technique::Superconducting => "SC",
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Compiles a logical program with the given technique.
///
/// # Panics
///
/// Panics if the program has zero qubits.
///
/// # Example
///
/// ```
/// use geyser::{compile, PipelineConfig, Technique};
/// use geyser_circuit::Circuit;
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let compiled = compile(&c, Technique::OptiMap, &PipelineConfig::fast());
/// assert!(compiled.mapped().circuit().is_native_basis());
/// ```
pub fn compile(
    program: &Circuit,
    technique: Technique,
    config: &PipelineConfig,
) -> CompiledCircuit {
    assert!(program.num_qubits() > 0, "program must have qubits");
    match technique {
        Technique::Baseline => {
            let lattice = Lattice::triangular_for(program.num_qubits());
            let mapped = map_circuit(program, &lattice, &MappingOptions::baseline());
            CompiledCircuit::new(technique, mapped, None)
        }
        Technique::OptiMap => {
            let lattice = Lattice::triangular_for(program.num_qubits());
            let mapped = map_circuit(program, &lattice, &MappingOptions::optimized());
            CompiledCircuit::new(technique, mapped, None)
        }
        Technique::Geyser => {
            let lattice = Lattice::triangular_for(program.num_qubits());
            let mapped = map_circuit(program, &lattice, &MappingOptions::optimized());
            let blocked = block_circuit(mapped.circuit(), &lattice, &config.blocking);
            let composed = compose_blocked_circuit(&blocked, &config.composition);
            // Composition can expose new 1q-fusion opportunities at
            // block seams; a final cleanup never increases pulses.
            let cleaned = optimize_to_fixpoint(&composed.circuit);
            let final_mapped = mapped.with_circuit(cleaned);
            CompiledCircuit::new(technique, final_mapped, Some(composed.stats))
        }
        Technique::Superconducting => {
            let lattice = Lattice::square_for(program.num_qubits());
            let mapped = map_circuit(program, &lattice, &MappingOptions::optimized());
            CompiledCircuit::new(technique, mapped, None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for i in 1..n {
            c.cx(i - 1, i);
        }
        c
    }

    #[test]
    fn all_techniques_produce_native_circuits() {
        let program = ghz(4);
        for t in Technique::ALL {
            let compiled = compile(&program, t, &PipelineConfig::fast());
            assert!(
                compiled.mapped().circuit().is_native_basis(),
                "{t} not native"
            );
            assert_eq!(compiled.technique(), t);
        }
    }

    #[test]
    fn superconducting_never_emits_ccz() {
        let mut program = ghz(4);
        program.ccx(0, 1, 2); // forces a Toffoli through the pipeline
        let compiled = compile(
            &program,
            Technique::Superconducting,
            &PipelineConfig::fast(),
        );
        assert_eq!(compiled.gate_counts().ccz, 0);
    }

    #[test]
    fn optimap_beats_baseline_on_pulses() {
        let program = ghz(5);
        let cfg = PipelineConfig::fast();
        let base = compile(&program, Technique::Baseline, &cfg);
        let opti = compile(&program, Technique::OptiMap, &cfg);
        assert!(opti.total_pulses() <= base.total_pulses());
    }

    #[test]
    fn geyser_never_worse_than_optimap() {
        let program = ghz(5);
        let cfg = PipelineConfig::fast();
        let opti = compile(&program, Technique::OptiMap, &cfg);
        let geyser = compile(&program, Technique::Geyser, &cfg);
        assert!(geyser.total_pulses() <= opti.total_pulses());
    }

    #[test]
    fn geyser_records_composition_stats() {
        let program = ghz(4);
        let compiled = compile(&program, Technique::Geyser, &PipelineConfig::fast());
        let stats = compiled.composition_stats().expect("geyser has stats");
        assert!(stats.blocks_total > 0);
        assert!(
            compile(&program, Technique::Baseline, &PipelineConfig::fast())
                .composition_stats()
                .is_none()
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Technique::Baseline.label(), "Baseline");
        assert_eq!(Technique::Geyser.to_string(), "Geyser");
    }
}
