//! The four compilation techniques of the paper's evaluation.

use std::fmt;

use geyser_circuit::Circuit;

use crate::passes::{AllocateLatticePass, BlockPass, ComposePass, MapPass, SeamCleanupPass};
use crate::{CompileError, CompiledCircuit, Pass, PassManager, PipelineConfig};

/// A compilation technique from the paper's evaluation (Sec. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Mapping and scheduling onto the triangular neutral-atom lattice
    /// with no optimization passes — the Baker-et-al.-style comparison
    /// point.
    Baseline,
    /// Baseline plus all standard compiler optimizations (the passes a
    /// state-of-the-art transpiler applies).
    OptiMap,
    /// OptiMap plus Geyser's circuit blocking and block composition.
    Geyser,
    /// The superconducting-qubit comparison: square lattice (the
    /// best-case layout the paper grants superconducting hardware),
    /// all optimizations, **no CCZ** (not physically executable), and
    /// no restriction zones.
    Superconducting,
}

impl Technique {
    /// All four techniques in the paper's presentation order.
    pub const ALL: [Technique; 4] = [
        Technique::Baseline,
        Technique::OptiMap,
        Technique::Geyser,
        Technique::Superconducting,
    ];

    /// The three neutral-atom techniques (Figs. 12–15, 17).
    pub const NEUTRAL_ATOM: [Technique; 3] =
        [Technique::Baseline, Technique::OptiMap, Technique::Geyser];

    /// Display label used in tables and figures.
    pub fn label(&self) -> &'static str {
        match self {
            Technique::Baseline => "Baseline",
            Technique::OptiMap => "OptiMap",
            Technique::Geyser => "Geyser",
            Technique::Superconducting => "SC",
        }
    }

    /// Parses a display label back to its technique
    /// (case-insensitive; `"SC"` and `"Superconducting"` both name the
    /// superconducting comparison point). The inverse of
    /// [`Technique::label`], used by the evaluation binaries'
    /// `--techniques` flag.
    pub fn from_label(label: &str) -> Option<Technique> {
        match label.to_ascii_lowercase().as_str() {
            "baseline" => Some(Technique::Baseline),
            "optimap" => Some(Technique::OptiMap),
            "geyser" => Some(Technique::Geyser),
            "sc" | "superconducting" => Some(Technique::Superconducting),
            _ => None,
        }
    }

    /// The declarative pass list implementing this technique — the
    /// pipeline [`crate::compile`] runs, spelled out as data.
    pub fn pass_list(self) -> Vec<Box<dyn Pass>> {
        match self {
            Technique::Baseline => vec![
                Box::new(AllocateLatticePass::from_spec()),
                Box::new(MapPass::baseline()),
            ],
            Technique::OptiMap => vec![
                Box::new(AllocateLatticePass::from_spec()),
                Box::new(MapPass::optimized()),
            ],
            Technique::Geyser => vec![
                Box::new(AllocateLatticePass::from_spec()),
                Box::new(MapPass::optimized()),
                Box::new(BlockPass),
                Box::new(ComposePass),
                Box::new(SeamCleanupPass),
            ],
            Technique::Superconducting => vec![
                Box::new(AllocateLatticePass::square()),
                Box::new(MapPass::optimized()),
            ],
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Compiles a logical program with the given technique.
///
/// # Panics
///
/// Panics if the program has zero qubits.
///
/// # Example
///
/// ```
/// use geyser::{compile, PipelineConfig, Technique};
/// use geyser_circuit::Circuit;
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let compiled = compile(&c, Technique::OptiMap, &PipelineConfig::fast());
/// assert!(compiled.mapped().circuit().is_native_basis());
/// ```
pub fn compile(
    program: &Circuit,
    technique: Technique,
    config: &PipelineConfig,
) -> CompiledCircuit {
    try_compile(program, technique, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`compile`]: runs the technique's pass list
/// through a [`PassManager`] and returns a typed [`CompileError`]
/// instead of panicking.
///
/// # Example
///
/// ```
/// use geyser::{try_compile, CompileError, PipelineConfig, Technique};
/// use geyser_circuit::Circuit;
/// let empty = Circuit::new(0);
/// let err = try_compile(&empty, Technique::Baseline, &PipelineConfig::fast());
/// assert!(matches!(err, Err(CompileError::EmptyProgram)));
/// ```
pub fn try_compile(
    program: &Circuit,
    technique: Technique,
    config: &PipelineConfig,
) -> Result<CompiledCircuit, CompileError> {
    PassManager::for_technique(technique).run(program, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for i in 1..n {
            c.cx(i - 1, i);
        }
        c
    }

    #[test]
    fn all_techniques_produce_native_circuits() {
        let program = ghz(4);
        for t in Technique::ALL {
            let compiled = compile(&program, t, &PipelineConfig::fast());
            assert!(
                compiled.mapped().circuit().is_native_basis(),
                "{t} not native"
            );
            assert_eq!(compiled.technique(), t);
        }
    }

    #[test]
    fn superconducting_never_emits_ccz() {
        let mut program = ghz(4);
        program.ccx(0, 1, 2); // forces a Toffoli through the pipeline
        let compiled = compile(
            &program,
            Technique::Superconducting,
            &PipelineConfig::fast(),
        );
        assert_eq!(compiled.gate_counts().ccz, 0);
    }

    #[test]
    fn optimap_beats_baseline_on_pulses() {
        let program = ghz(5);
        let cfg = PipelineConfig::fast();
        let base = compile(&program, Technique::Baseline, &cfg);
        let opti = compile(&program, Technique::OptiMap, &cfg);
        assert!(opti.total_pulses() <= base.total_pulses());
    }

    #[test]
    fn geyser_never_worse_than_optimap() {
        let program = ghz(5);
        let cfg = PipelineConfig::fast();
        let opti = compile(&program, Technique::OptiMap, &cfg);
        let geyser = compile(&program, Technique::Geyser, &cfg);
        assert!(geyser.total_pulses() <= opti.total_pulses());
    }

    #[test]
    fn geyser_records_composition_stats() {
        let program = ghz(4);
        let compiled = compile(&program, Technique::Geyser, &PipelineConfig::fast());
        let stats = compiled.composition_stats().expect("geyser has stats");
        assert!(stats.blocks_total > 0);
        assert!(
            compile(&program, Technique::Baseline, &PipelineConfig::fast())
                .composition_stats()
                .is_none()
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Technique::Baseline.label(), "Baseline");
        assert_eq!(Technique::Geyser.to_string(), "Geyser");
    }

    #[test]
    fn from_label_inverts_label() {
        for t in Technique::ALL {
            assert_eq!(Technique::from_label(t.label()), Some(t));
            assert_eq!(Technique::from_label(&t.label().to_lowercase()), Some(t));
        }
        assert_eq!(
            Technique::from_label("superconducting"),
            Some(Technique::Superconducting)
        );
        assert_eq!(Technique::from_label("warp-drive"), None);
    }
}
