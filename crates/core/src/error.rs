//! Typed errors for the end-to-end compilation pipeline.

use std::fmt;

use geyser_blocking::BlockError;
use geyser_compose::ComposeError;
use geyser_map::MapError;
use geyser_sim::SimError;

/// Why a compilation (or evaluation) could not complete.
///
/// Every pipeline stage reports failures through this enum; the
/// panicking entry points ([`crate::compile`], [`crate::evaluate_tvd`])
/// are thin shims that panic with the [`fmt::Display`] rendering.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// The input program has zero qubits.
    EmptyProgram,
    /// The mapping stage failed.
    Map(MapError),
    /// The blocking stage failed.
    Block(BlockError),
    /// The composition stage failed.
    Compose(ComposeError),
    /// A pass ran before a stage it depends on (misordered pass list).
    MissingStage {
        /// The pass that could not run.
        pass: &'static str,
        /// The stage output it requires.
        requires: &'static str,
    },
    /// A debug-mode invariant check failed after a pass.
    InvariantViolation {
        /// The pass after which the invariant no longer holds.
        pass: String,
        /// Human-readable description of the broken invariant.
        detail: String,
    },
    /// The evaluated program's register does not match the compiled
    /// circuit's logical register.
    RegisterMismatch {
        /// Qubit count of the logical program.
        program_qubits: usize,
        /// Logical register size of the compiled circuit.
        compiled_qubits: usize,
    },
    /// An evaluation was requested with zero Monte-Carlo trajectories.
    NoTrajectories,
    /// The wall-clock budget expired before the pipeline produced a
    /// mapped circuit it could degrade to.
    BudgetExceeded {
        /// The pass the budget ran out in front of.
        pass: String,
    },
    /// A pass panicked; the panic was contained by the manager and the
    /// payload captured here.
    PassPanicked {
        /// The pass that panicked.
        pass: String,
        /// Rendered panic payload.
        detail: String,
    },
    /// The job's cancellation token fired before the pipeline
    /// completed; the run terminated promptly at a cancellation point.
    Cancelled {
        /// The pass the cancellation was observed in front of (or
        /// inside).
        pass: String,
    },
    /// The supervisor's watchdog preempted the attempt because the
    /// worker stopped heartbeating: the pipeline was stuck inside a
    /// pass past the hang timeout. Unlike [`CompileError::Cancelled`]
    /// this is an involuntary stop and is retryable — a fresh attempt
    /// (with transient hang faults stripped) can plausibly succeed.
    WorkerHung {
        /// The pass the worker was stuck in when preempted.
        pass: String,
        /// How long the heartbeat had been stale when the watchdog
        /// fired, in milliseconds.
        stalled_ms: u64,
    },
    /// Simulation failed a numerical health check during evaluation.
    Sim(SimError),
    /// The equivalence oracle rejected the compiled circuit: its
    /// semantics diverged from the source program beyond tolerance.
    VerificationFailed {
        /// Oracle method that ran (`exact-unitary`, `state-probes`).
        method: String,
        /// What the oracle measured.
        detail: String,
    },
    /// The persistent composition-reuse store could not be read or
    /// written (I/O failure outside the quarantine path — corrupt
    /// *entries* are quarantined and never surface here).
    ReuseStore {
        /// What the store operation was doing when it failed.
        detail: String,
    },
}

/// Supervision class of a [`CompileError`]: what a retry loop should
/// do with it.
///
/// * [`ErrorClass::Retryable`] — transient by nature (a contained
///   panic, an exhausted budget, a numerically unhealthy trajectory):
///   a reseeded or re-budgeted attempt can plausibly succeed.
/// * [`ErrorClass::Fatal`] — deterministic given the same input
///   (empty program, unmappable lattice, misordered passes): retrying
///   burns budget without hope, and repeated fatals should trip a
///   circuit breaker instead.
/// * [`ErrorClass::Cancelled`] — not a failure at all: the caller
///   asked the job to stop, and it must not be retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// A fresh attempt can plausibly succeed.
    Retryable,
    /// Deterministic failure; retrying is pointless.
    Fatal,
    /// The caller cancelled the job; never retried.
    Cancelled,
}

impl CompileError {
    /// Classifies this error for retry/breaker decisions.
    pub fn class(&self) -> ErrorClass {
        match self {
            CompileError::PassPanicked { .. }
            | CompileError::BudgetExceeded { .. }
            | CompileError::WorkerHung { .. }
            | CompileError::Sim(_) => ErrorClass::Retryable,
            CompileError::Cancelled { .. } => ErrorClass::Cancelled,
            CompileError::EmptyProgram
            | CompileError::Map(_)
            | CompileError::Block(_)
            | CompileError::Compose(_)
            | CompileError::MissingStage { .. }
            | CompileError::InvariantViolation { .. }
            | CompileError::RegisterMismatch { .. }
            | CompileError::NoTrajectories
            | CompileError::VerificationFailed { .. }
            | CompileError::ReuseStore { .. } => ErrorClass::Fatal,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::EmptyProgram => f.write_str("program must have qubits"),
            CompileError::Map(e) => write!(f, "mapping failed: {e}"),
            CompileError::Block(e) => write!(f, "blocking failed: {e}"),
            CompileError::Compose(e) => write!(f, "composition failed: {e}"),
            CompileError::MissingStage { pass, requires } => write!(
                f,
                "pass '{pass}' requires the '{requires}' stage to have run first"
            ),
            CompileError::InvariantViolation { pass, detail } => {
                write!(f, "invariant violated after pass '{pass}': {detail}")
            }
            CompileError::RegisterMismatch {
                program_qubits,
                compiled_qubits,
            } => write!(
                f,
                "program / compiled register mismatch: program has \
                 {program_qubits} qubits, compiled register has {compiled_qubits}"
            ),
            CompileError::NoTrajectories => {
                f.write_str("evaluation requires at least one trajectory")
            }
            CompileError::BudgetExceeded { pass } => write!(
                f,
                "wall-clock budget exhausted before pass '{pass}' with no \
                 mapped circuit to degrade to"
            ),
            CompileError::PassPanicked { pass, detail } => {
                write!(f, "pass '{pass}' panicked: {detail}")
            }
            CompileError::Cancelled { pass } => {
                write!(f, "compilation cancelled at pass '{pass}'")
            }
            CompileError::WorkerHung { pass, stalled_ms } => write!(
                f,
                "worker hung in pass '{pass}' (no heartbeat for {stalled_ms} ms); \
                 preempted by watchdog"
            ),
            CompileError::Sim(e) => write!(f, "simulation failed: {e}"),
            CompileError::VerificationFailed { method, detail } => {
                write!(f, "equivalence verification ({method}) failed: {detail}")
            }
            CompileError::ReuseStore { detail } => {
                write!(f, "reuse store failed: {detail}")
            }
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Map(e) => Some(e),
            CompileError::Block(e) => Some(e),
            CompileError::Compose(e) => Some(e),
            CompileError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MapError> for CompileError {
    fn from(e: MapError) -> Self {
        CompileError::Map(e)
    }
}

impl From<BlockError> for CompileError {
    fn from(e: BlockError) -> Self {
        CompileError::Block(e)
    }
}

impl From<ComposeError> for CompileError {
    fn from(e: ComposeError) -> Self {
        CompileError::Compose(e)
    }
}

impl From<SimError> for CompileError {
    fn from(e: SimError) -> Self {
        CompileError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_program_display_matches_legacy_panic() {
        assert_eq!(
            CompileError::EmptyProgram.to_string(),
            "program must have qubits"
        );
    }

    #[test]
    fn register_mismatch_display_mentions_mismatch() {
        let e = CompileError::RegisterMismatch {
            program_qubits: 3,
            compiled_qubits: 4,
        };
        assert!(e.to_string().contains("register mismatch"));
    }

    #[test]
    fn classification_partitions_the_taxonomy() {
        assert_eq!(
            CompileError::PassPanicked {
                pass: "map".into(),
                detail: "boom".into()
            }
            .class(),
            ErrorClass::Retryable
        );
        assert_eq!(
            CompileError::BudgetExceeded { pass: "map".into() }.class(),
            ErrorClass::Retryable
        );
        assert_eq!(
            CompileError::WorkerHung {
                pass: "compose".into(),
                stalled_ms: 250
            }
            .class(),
            ErrorClass::Retryable
        );
        assert_eq!(CompileError::EmptyProgram.class(), ErrorClass::Fatal);
        assert_eq!(
            CompileError::MissingStage {
                pass: "compose",
                requires: "block"
            }
            .class(),
            ErrorClass::Fatal
        );
        assert_eq!(
            CompileError::Cancelled { pass: "map".into() }.class(),
            ErrorClass::Cancelled
        );
        assert_eq!(
            CompileError::VerificationFailed {
                method: "exact-unitary".into(),
                detail: "fidelity 0.5".into()
            }
            .class(),
            ErrorClass::Fatal
        );
    }

    #[test]
    fn cancelled_display_names_the_pass() {
        let e = CompileError::Cancelled {
            pass: "compose".into(),
        };
        assert_eq!(e.to_string(), "compilation cancelled at pass 'compose'");
    }

    #[test]
    fn stage_errors_convert_and_chain() {
        let e: CompileError = MapError::LatticeTooSmall {
            qubits: 5,
            nodes: 2,
        }
        .into();
        assert!(matches!(e, CompileError::Map(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("lattice too small"));
    }
}
