//! End-to-end pipeline configuration.

use std::path::PathBuf;

use geyser_blocking::BlockingConfig;
use geyser_compose::CompositionConfig;
use geyser_hardware::HardwareSpec;

use crate::Budget;

/// Composition-reuse options (the `geyser-reuse` subsystem).
///
/// When enabled, the compose pass fingerprints every eligible block
/// and consults a reuse index before annealing: an exact hit replays
/// the cached composition (after the shared-oracle ε re-check), a
/// near-miss warm-starts the annealer from cached parameters. A
/// persistent store directory extends the index across jobs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReuseOptions {
    /// Whether the compose pass consults the reuse index at all.
    pub enabled: bool,
    /// Directory of the persistent cross-job reuse store (GEYSREC1
    /// records, one file per entry). `None` keeps the index
    /// in-process only.
    pub store: Option<PathBuf>,
    /// Whether near-miss (coarse-fingerprint) hits warm-start the
    /// annealer with a reduced iteration budget.
    pub warm_start: bool,
}

/// Configuration shared by every compilation technique.
///
/// The defaults reproduce the paper's settings; [`PipelineConfig::fast`]
/// shrinks the composition search budget for tests and smoke runs.
/// Owning a [`HardwareSpec`] makes the struct non-`Copy`: pass it by
/// reference or `clone()` explicitly.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Circuit-blocking options (Algorithm 1).
    pub blocking: BlockingConfig,
    /// Block-composition options (Algorithm 2).
    pub composition: CompositionConfig,
    /// Master seed for all stochastic stages.
    pub seed: u64,
    /// Wall-clock budget for the whole pipeline (unlimited by
    /// default); see [`Budget`] for the degradation policy.
    pub budget: Budget,
    /// The hardware scenario the pipeline compiles for: lattice
    /// geometry, simultaneous-pulse limits, and the noise model.
    /// Defaults to [`HardwareSpec::paper`].
    pub hardware: HardwareSpec,
    /// Composition-reuse options; disabled by default so the plain
    /// pipeline pays nothing for the machinery.
    pub reuse: ReuseOptions,
}

impl PipelineConfig {
    /// Full-budget configuration used for the paper-scale experiments.
    pub fn paper() -> Self {
        PipelineConfig {
            blocking: BlockingConfig::default(),
            composition: CompositionConfig::default(),
            seed: 0,
            budget: Budget::unlimited(),
            hardware: HardwareSpec::paper(),
            reuse: ReuseOptions::default(),
        }
    }

    /// Reduced-budget configuration for tests, doctests, and smoke
    /// runs: one annealing restart and a shallow ansatz search.
    pub fn fast() -> Self {
        PipelineConfig {
            blocking: BlockingConfig::default(),
            composition: CompositionConfig::fast(),
            seed: 0,
            budget: Budget::unlimited(),
            hardware: HardwareSpec::paper(),
            reuse: ReuseOptions::default(),
        }
    }

    /// Returns a copy with the given master seed (propagated into the
    /// composition stage).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.composition.seed = seed;
        self
    }

    /// Returns a copy with a wall-clock budget in milliseconds.
    pub fn with_budget_ms(mut self, ms: u64) -> Self {
        self.budget = Budget::wall_ms(ms);
        self
    }

    /// Returns a copy compiling for the given hardware scenario.
    pub fn with_hardware(mut self, hardware: HardwareSpec) -> Self {
        self.hardware = hardware;
        self
    }

    /// Returns a copy with the in-process composition-reuse index
    /// enabled.
    pub fn with_reuse(mut self) -> Self {
        self.reuse.enabled = true;
        self
    }

    /// Returns a copy with reuse enabled and backed by a persistent
    /// cross-job store directory.
    pub fn with_reuse_store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.reuse.enabled = true;
        self.reuse.store = Some(dir.into());
        self
    }

    /// Returns a copy with near-miss annealer warm-starts toggled
    /// (implies reuse when `true`).
    pub fn with_reuse_warm_start(mut self, on: bool) -> Self {
        self.reuse.warm_start = on;
        if on {
            self.reuse.enabled = true;
        }
        self
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_is_cheaper_than_paper() {
        let fast = PipelineConfig::fast();
        let paper = PipelineConfig::paper();
        assert!(fast.composition.anneal_iters < paper.composition.anneal_iters);
        assert!(fast.composition.max_layers <= paper.composition.max_layers);
    }

    #[test]
    fn seed_propagates_to_composition() {
        let cfg = PipelineConfig::paper().with_seed(42);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.composition.seed, 42);
    }

    #[test]
    fn hardware_defaults_to_the_paper_machine() {
        assert!(PipelineConfig::paper().hardware.is_paper());
        assert!(PipelineConfig::fast().hardware.is_paper());
    }

    #[test]
    fn reuse_is_off_by_default_and_builders_enable_it() {
        assert!(!PipelineConfig::paper().reuse.enabled);
        assert!(!PipelineConfig::fast().reuse.enabled);
        let cfg = PipelineConfig::fast().with_reuse();
        assert!(cfg.reuse.enabled);
        assert!(cfg.reuse.store.is_none());
        let cfg = PipelineConfig::fast().with_reuse_store("/tmp/reuse");
        assert!(cfg.reuse.enabled);
        assert_eq!(cfg.reuse.store.as_deref(), Some("/tmp/reuse".as_ref()));
        let cfg = PipelineConfig::fast().with_reuse_warm_start(true);
        assert!(cfg.reuse.enabled && cfg.reuse.warm_start);
    }

    #[test]
    fn with_hardware_swaps_the_scenario() {
        let spec = HardwareSpec::near_term();
        let cfg = PipelineConfig::fast().with_hardware(spec.clone());
        assert_eq!(cfg.hardware, spec);
        assert_ne!(cfg.hardware.digest(), HardwareSpec::paper().digest());
    }
}
