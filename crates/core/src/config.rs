//! End-to-end pipeline configuration.

use geyser_blocking::BlockingConfig;
use geyser_compose::CompositionConfig;
use geyser_hardware::HardwareSpec;

use crate::Budget;

/// Configuration shared by every compilation technique.
///
/// The defaults reproduce the paper's settings; [`PipelineConfig::fast`]
/// shrinks the composition search budget for tests and smoke runs.
/// Owning a [`HardwareSpec`] makes the struct non-`Copy`: pass it by
/// reference or `clone()` explicitly.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Circuit-blocking options (Algorithm 1).
    pub blocking: BlockingConfig,
    /// Block-composition options (Algorithm 2).
    pub composition: CompositionConfig,
    /// Master seed for all stochastic stages.
    pub seed: u64,
    /// Wall-clock budget for the whole pipeline (unlimited by
    /// default); see [`Budget`] for the degradation policy.
    pub budget: Budget,
    /// The hardware scenario the pipeline compiles for: lattice
    /// geometry, simultaneous-pulse limits, and the noise model.
    /// Defaults to [`HardwareSpec::paper`].
    pub hardware: HardwareSpec,
}

impl PipelineConfig {
    /// Full-budget configuration used for the paper-scale experiments.
    pub fn paper() -> Self {
        PipelineConfig {
            blocking: BlockingConfig::default(),
            composition: CompositionConfig::default(),
            seed: 0,
            budget: Budget::unlimited(),
            hardware: HardwareSpec::paper(),
        }
    }

    /// Reduced-budget configuration for tests, doctests, and smoke
    /// runs: one annealing restart and a shallow ansatz search.
    pub fn fast() -> Self {
        PipelineConfig {
            blocking: BlockingConfig::default(),
            composition: CompositionConfig::fast(),
            seed: 0,
            budget: Budget::unlimited(),
            hardware: HardwareSpec::paper(),
        }
    }

    /// Returns a copy with the given master seed (propagated into the
    /// composition stage).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.composition.seed = seed;
        self
    }

    /// Returns a copy with a wall-clock budget in milliseconds.
    pub fn with_budget_ms(mut self, ms: u64) -> Self {
        self.budget = Budget::wall_ms(ms);
        self
    }

    /// Returns a copy compiling for the given hardware scenario.
    pub fn with_hardware(mut self, hardware: HardwareSpec) -> Self {
        self.hardware = hardware;
        self
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_is_cheaper_than_paper() {
        let fast = PipelineConfig::fast();
        let paper = PipelineConfig::paper();
        assert!(fast.composition.anneal_iters < paper.composition.anneal_iters);
        assert!(fast.composition.max_layers <= paper.composition.max_layers);
    }

    #[test]
    fn seed_propagates_to_composition() {
        let cfg = PipelineConfig::paper().with_seed(42);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.composition.seed, 42);
    }

    #[test]
    fn hardware_defaults_to_the_paper_machine() {
        assert!(PipelineConfig::paper().hardware.is_paper());
        assert!(PipelineConfig::fast().hardware.is_paper());
    }

    #[test]
    fn with_hardware_swaps_the_scenario() {
        let spec = HardwareSpec::near_term();
        let cfg = PipelineConfig::fast().with_hardware(spec.clone());
        assert_eq!(cfg.hardware, spec);
        assert_ne!(cfg.hardware.digest(), HardwareSpec::paper().digest());
    }
}
