//! Core-side glue for the `geyser-verify` equivalence oracle.
//!
//! Two consumers share this module: the [`crate::passes::VerifyPass`]
//! that runs inside a pipeline, and [`verify_compiled`], the
//! standalone check bench binaries run on an already-finalized
//! [`CompiledCircuit`]. The standalone form is what `--verify` uses —
//! it sees the circuit exactly as it shipped, including anything a
//! `miscompile:<i>` fault corrupted at finalize time, which no
//! in-pipeline pass can observe.

use geyser_circuit::Circuit;
use geyser_compose::CompositionStats;
use geyser_verify::{composition_allowance, verify_mapped, EquivalenceReport, VerifyConfig};

use crate::report::VerificationStats;
use crate::CompiledCircuit;

/// Tolerance allowance for a pipeline's composition stats: zero for
/// exact pipelines, the triangle-inequality bound of
/// [`composition_allowance`] once composed blocks are in play.
pub fn verification_allowance(stats: Option<&CompositionStats>) -> f64 {
    stats
        .map(|s| composition_allowance(s.blocks_composed, s.max_accepted_hsd))
        .unwrap_or(0.0)
}

/// Converts an oracle verdict into the serializable report form.
pub fn verification_stats(report: &EquivalenceReport) -> VerificationStats {
    VerificationStats {
        method: report.method.label().to_string(),
        probes: report.probes,
        worst_fidelity: report.worst_fidelity,
        tolerance: report.tolerance,
        equivalent: report.equivalent,
        seconds: report.seconds,
    }
}

/// Runs the equivalence oracle on a finalized compilation, returning
/// the verdict as report-ready stats. Never errors: an inequivalent
/// circuit is reported with `equivalent: false`, and the caller
/// decides whether that fails the run.
pub fn verify_compiled(
    program: &Circuit,
    compiled: &CompiledCircuit,
    cfg: &VerifyConfig,
) -> VerificationStats {
    let allowance = verification_allowance(compiled.composition_stats());
    let report = verify_mapped(program, compiled.mapped(), allowance, cfg);
    verification_stats(&report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{try_compile, FaultInjector, PassManager, PipelineConfig, Technique};

    fn program() -> Circuit {
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 1).h(1).cz(1, 2).h(2).cz(0, 2).h(0).cz(1, 3);
        c
    }

    #[test]
    fn exact_pipelines_verify_at_strict_tolerance() {
        let cfg = PipelineConfig::fast();
        for technique in [
            Technique::Baseline,
            Technique::OptiMap,
            Technique::Superconducting,
        ] {
            let compiled = try_compile(&program(), technique, &cfg).unwrap();
            let stats = verify_compiled(&program(), &compiled, &VerifyConfig::default());
            assert!(
                stats.equivalent,
                "{technique:?}: {stats:?} should verify exactly"
            );
            assert!(
                stats.worst_fidelity >= 1.0 - 1e-9,
                "{technique:?}: {stats:?}"
            );
        }
    }

    #[test]
    fn composed_pipeline_verifies_within_allowance() {
        let cfg = PipelineConfig::fast();
        let compiled = try_compile(&program(), Technique::Geyser, &cfg).unwrap();
        let stats = verify_compiled(&program(), &compiled, &VerifyConfig::default());
        assert!(stats.equivalent, "{stats:?}");
    }

    #[test]
    fn injected_miscompile_is_caught_only_by_the_oracle() {
        let cfg = PipelineConfig::fast();
        let faults = FaultInjector::parse("miscompile:0").unwrap();
        // The corrupted run itself succeeds — every internal check
        // passes because the corruption lands after all of them.
        let compiled = PassManager::for_technique(Technique::Baseline)
            .with_faults(faults)
            .run(&program(), &cfg)
            .unwrap();
        let stats = verify_compiled(&program(), &compiled, &VerifyConfig::default());
        assert!(!stats.equivalent, "oracle must catch the miscompile");
        assert!(stats.worst_fidelity < 1.0 - 1e-6, "{stats:?}");
    }

    #[test]
    fn verify_pass_records_stats_on_the_report() {
        let cfg = PipelineConfig::fast();
        let compiled = PassManager::for_technique(Technique::OptiMap)
            .with_verification(VerifyConfig::default())
            .run(&program(), &cfg)
            .unwrap();
        let report = compiled.report().expect("report attached");
        let v = report.verification.as_ref().expect("verification recorded");
        assert!(v.equivalent);
        assert_eq!(v.method, "exact-unitary");
        assert!(report.passes.iter().any(|p| p.name == "verify"));
    }

    #[test]
    fn verify_pass_fails_corrupted_pipelines_typed() {
        // compose-corrupt is caught internally (ε re-check) and falls
        // back, so to reach the verify pass with a bad circuit we
        // corrupt via a custom pass list: run Baseline's passes, then
        // append a gate-dropping "optimizer" before the verify pass.
        struct DropLastGate;
        impl crate::Pass for DropLastGate {
            fn name(&self) -> &'static str {
                "drop-last-gate"
            }
            fn run(&self, ctx: &mut crate::CompileContext<'_>) -> Result<(), crate::CompileError> {
                let mapped = ctx.mapped().expect("runs after map");
                let circuit = mapped.circuit();
                let mut ops = circuit.ops().to_vec();
                ops.pop();
                let mut shorter = Circuit::new(circuit.num_qubits());
                for op in ops {
                    shorter.push(op);
                }
                let replaced = mapped.clone().with_circuit(shorter);
                ctx.set_mapped(replaced);
                Ok(())
            }
        }
        let cfg = PipelineConfig::fast();
        let mut pm = PassManager::for_technique(Technique::Baseline);
        pm.push(Box::new(DropLastGate));
        let err = pm
            .with_verification(VerifyConfig::default())
            .run(&program(), &cfg)
            .unwrap_err();
        assert!(
            matches!(err, crate::CompileError::VerificationFailed { .. }),
            "expected typed verification failure, got {err:?}"
        );
    }
}
