//! Built-in passes: the paper's pipeline stages wrapped as [`Pass`]es.
//!
//! Each pass is a thin adapter over its home crate's fallible entry
//! point (`geyser_map::try_map_circuit`,
//! `geyser_blocking::try_block_circuit`,
//! `geyser_compose::try_compose_blocked_circuit`); the algorithms
//! themselves live in those crates.

use geyser_blocking::try_block_circuit_traced;
use geyser_compose::{try_compose_blocked_circuit_reusing, try_compose_blocked_circuit_supervised};
use geyser_map::{optimize_to_fixpoint, try_map_circuit_traced, MappingOptions};
use geyser_optimize::Deadline;
use geyser_reuse::{load_reuse_dir, reuse_config_hash, save_reuse_dir, ReuseSession};

use geyser_verify::VerifyConfig;

pub use geyser_topology::LatticeKind;

use crate::pass::{CompileContext, Pass};
use crate::verify::{verification_allowance, verification_stats};
use crate::CompileError;

/// Allocates the physical lattice sized for the program.
///
/// Geometry — family, dimensions, spacing, interaction radius — comes
/// from the pipeline's [`geyser_hardware::HardwareSpec`]; a technique
/// may pin the lattice *family* (the superconducting comparison always
/// runs on a square grid) while spacing and radius still follow the
/// spec.
#[derive(Debug, Clone, Copy)]
pub struct AllocateLatticePass {
    /// Lattice family forced by the technique, or `None` to use the
    /// hardware spec's family.
    pub kind_override: Option<LatticeKind>,
}

impl AllocateLatticePass {
    /// Allocates whatever family the hardware spec declares (all
    /// neutral-atom techniques).
    pub fn from_spec() -> Self {
        AllocateLatticePass {
            kind_override: None,
        }
    }

    /// Forces a triangular lattice regardless of the spec (pipeline
    /// tests that hand-build pass lists).
    pub fn triangular() -> Self {
        AllocateLatticePass {
            kind_override: Some(LatticeKind::Triangular),
        }
    }

    /// Forces a square lattice (the superconducting comparison).
    pub fn square() -> Self {
        AllocateLatticePass {
            kind_override: Some(LatticeKind::Square),
        }
    }
}

impl Pass for AllocateLatticePass {
    fn name(&self) -> &'static str {
        "allocate-lattice"
    }

    fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
        let n = ctx.program().num_qubits();
        let lattice = ctx.config().hardware.build_lattice(n, self.kind_override);
        ctx.set_lattice(lattice);
        Ok(())
    }
}

/// Maps the logical program onto the allocated lattice: lowering,
/// layout, SWAP routing, native-basis translation, and (for the
/// optimized options) the OptiMap passes.
#[derive(Debug, Clone, Copy)]
pub struct MapPass {
    /// Mapping options (baseline vs optimized).
    pub options: MappingOptions,
}

impl MapPass {
    /// Baseline mapping: no optimization passes.
    pub fn baseline() -> Self {
        MapPass {
            options: MappingOptions::baseline(),
        }
    }

    /// OptiMap mapping: smart layout plus optimization to fixpoint.
    pub fn optimized() -> Self {
        MapPass {
            options: MappingOptions::optimized(),
        }
    }
}

impl Pass for MapPass {
    fn name(&self) -> &'static str {
        "map"
    }

    fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
        let lattice = ctx.lattice().ok_or(CompileError::MissingStage {
            pass: "map",
            requires: "allocate-lattice",
        })?;
        let mapped =
            try_map_circuit_traced(ctx.program(), lattice, &self.options, ctx.telemetry())?;
        ctx.set_mapped(mapped);
        Ok(())
    }
}

/// Partitions the mapped circuit into rounds of triangle blocks
/// (paper Algorithm 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockPass;

impl Pass for BlockPass {
    fn name(&self) -> &'static str {
        "block"
    }

    fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
        let mapped = ctx.mapped().ok_or(CompileError::MissingStage {
            pass: "block",
            requires: "map",
        })?;
        let lattice = ctx.lattice().ok_or(CompileError::MissingStage {
            pass: "block",
            requires: "allocate-lattice",
        })?;
        // The hardware's simultaneous-pulse cap folds into the
        // blocking options unless the caller already set a tighter
        // explicit cap.
        let mut blocking = ctx.config().blocking;
        if blocking.max_blocks_per_round.is_none() {
            blocking.max_blocks_per_round = ctx.config().hardware.parallel_block_limit();
        }
        let blocked =
            try_block_circuit_traced(mapped.circuit(), lattice, &blocking, ctx.telemetry())?;
        ctx.set_blocked(blocked);
        Ok(())
    }
}

/// Re-synthesizes every eligible block with annealed U3 + CZ/CCZ
/// layers (paper Algorithm 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct ComposePass;

impl Pass for ComposePass {
    fn name(&self) -> &'static str {
        "compose"
    }

    fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
        let blocked = ctx.blocked().ok_or(CompileError::MissingStage {
            pass: "compose",
            requires: "block",
        })?;
        // Thread the pipeline budget into the per-block search; a
        // forced-timeout fault overrides it so every block must prove
        // it degrades to `budget-exhausted` fallback.
        let mut cfg = ctx.config().composition;
        if ctx.faults().force_compose_timeout {
            cfg = cfg.with_deadline(Deadline::already_expired());
        } else if ctx.deadline().is_bounded() {
            cfg = cfg.with_deadline(ctx.deadline());
        }
        let reuse = ctx.config().reuse.clone();
        let mut composed = if reuse.enabled {
            // Build the reuse session keyed to this exact scenario:
            // entries only replay under the same hardware digest and
            // the same acceptance-relevant composition knobs.
            let mut session = ReuseSession::new(
                ctx.config().hardware.digest(),
                reuse_config_hash(
                    cfg.epsilon,
                    cfg.max_layers,
                    cfg.anneal_iters,
                    cfg.restarts,
                    cfg.retry_attempts,
                ),
            )
            .with_warm_start(reuse.warm_start)
            .with_skip_verify_fault(ctx.faults().reuse_skip_verify);
            if let Some(dir) = &reuse.store {
                load_reuse_dir(dir, &mut session, ctx.telemetry()).map_err(|e| {
                    CompileError::ReuseStore {
                        detail: format!("loading {}: {e}", dir.display()),
                    }
                })?;
            }
            if ctx.faults().reuse_poison {
                session.poison_entries();
            }
            let composed = try_compose_blocked_circuit_reusing(
                blocked,
                &cfg,
                &ctx.faults().compose,
                ctx.cancel(),
                &[],
                None,
                ctx.telemetry(),
                Some(&mut session),
            )?;
            if let Some(dir) = &reuse.store {
                save_reuse_dir(dir, &mut session).map_err(|e| CompileError::ReuseStore {
                    detail: format!("saving {}: {e}", dir.display()),
                })?;
            }
            (composed, Some(session.stats))
        } else {
            let composed = try_compose_blocked_circuit_supervised(
                blocked,
                &cfg,
                &ctx.faults().compose,
                ctx.cancel(),
                &[],
                None,
                ctx.telemetry(),
            )?;
            (composed, None)
        };
        // Fold the final session stats (including store save counts)
        // back into the stats the report reads.
        if let Some(stats) = composed.1 {
            composed.0.stats.reuse = Some(stats);
        }
        ctx.set_composed(composed.0.circuit, composed.0.stats);
        // A token that fired mid-composition left the remaining blocks
        // uncomposed; surface the typed terminal state instead of
        // finalizing a silently degraded circuit.
        if ctx.cancel().is_cancelled() {
            return Err(CompileError::Cancelled {
                pass: "compose".to_string(),
            });
        }
        Ok(())
    }
}

/// Final cleanup after composition: block substitution can expose new
/// single-qubit fusion opportunities at block seams; re-optimizing to
/// fixpoint never increases pulses. Installs the cleaned circuit as
/// the mapped result.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeamCleanupPass;

impl Pass for SeamCleanupPass {
    fn name(&self) -> &'static str {
        "seam-cleanup"
    }

    fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
        if ctx.mapped().is_none() {
            return Err(CompileError::MissingStage {
                pass: "seam-cleanup",
                requires: "map",
            });
        }
        let composed = ctx.take_composed().ok_or(CompileError::MissingStage {
            pass: "seam-cleanup",
            requires: "compose",
        })?;
        let cleaned = optimize_to_fixpoint(&composed);
        // invariant: the composed circuit spans the same node space as
        // the mapped circuit, so with_circuit cannot panic.
        let mapped = ctx.mapped().expect("checked above").with_circuit(cleaned);
        ctx.set_mapped(mapped);
        Ok(())
    }
}

/// Differential equivalence check of the pipeline's current mapped
/// circuit against the source program (the `geyser-verify` oracle).
///
/// Appended via [`crate::PassManager::with_verification`]; the verdict
/// is recorded on the [`crate::CompileReport`] and a failed check
/// aborts the run with [`CompileError::VerificationFailed`]. Composed
/// pipelines get a tolerance allowance derived from their composition
/// stats (composition is approximate by design, per-block HSD ≤ ε);
/// exact pipelines are held to the raw tolerance.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyPass {
    /// Oracle configuration (tiers, tolerances, probe seed).
    pub config: VerifyConfig,
}

impl VerifyPass {
    /// A verify pass with the given oracle configuration.
    pub fn new(config: VerifyConfig) -> Self {
        VerifyPass { config }
    }
}

impl Pass for VerifyPass {
    fn name(&self) -> &'static str {
        "verify"
    }

    fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
        let mapped = ctx.mapped().ok_or(CompileError::MissingStage {
            pass: "verify",
            requires: "map",
        })?;
        // Seam cleanup has not run if a composed circuit is still
        // pending; verify what will actually be finalized.
        let mapped = match ctx.composed() {
            Some(composed) => mapped.clone().with_circuit(composed.clone()),
            None => mapped.clone(),
        };
        let allowance = verification_allowance(ctx.composition_stats());
        let report = geyser_verify::verify_mapped(ctx.program(), &mapped, allowance, &self.config);
        let stats = verification_stats(&report);
        let verdict = (report.method.label().to_string(), report.detail.clone());
        ctx.set_verification(stats);
        if !report.equivalent {
            return Err(CompileError::VerificationFailed {
                method: verdict.0,
                detail: verdict
                    .1
                    .unwrap_or_else(|| "compiled circuit diverged from source".to_string()),
            });
        }
        Ok(())
    }
}
