//! Deterministic, config-driven fault injection for robustness tests.
//!
//! A [`FaultInjector`] is a *plan*: which pass panics, which
//! composition blocks are corrupted or killed, which Monte-Carlo
//! trajectories go NaN, whether the composition deadline is forced to
//! expire. The plan is plain data — building the same plan twice (or
//! deriving it from the same seed via [`FaultInjector::sampled`])
//! injects byte-identical faults, so every failure a fault test
//! provokes is reproducible.
//!
//! Injection is wired behind explicit entry points
//! ([`crate::PassManager::with_faults`]); the default pipeline carries
//! an empty plan and pays no cost for the machinery.

use std::fmt;

use geyser_compose::ComposeFaults;
use geyser_sim::SimFaults;

/// A deterministic fault plan for one compilation/evaluation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultInjector {
    /// Passes (by [`crate::Pass::name`]) that panic on entry; the
    /// manager must convert each to
    /// [`crate::CompileError::PassPanicked`].
    pub panic_passes: Vec<String>,
    /// Passes that panic on entry only on the first attempt of a
    /// supervised job: the supervisor strips these from the plan after
    /// attempt 0, so a retry succeeds. Exercises the
    /// retry-then-recover path with a deterministic fault.
    pub transient_panic_passes: Vec<String>,
    /// Passes that hang on entry (sleep-loop) until the job's
    /// cancellation token fires or the budget expires. Exercises the
    /// supervisor's ability to free a stuck worker via cancellation.
    pub hung_passes: Vec<String>,
    /// Cancels the job's own token after this many *freshly composed*
    /// blocks have been checkpointed — simulating a bench sweep killed
    /// mid-composition. The run ends typed-`Cancelled` with a partial
    /// checkpoint; a `--resume` run completes it bit-identically.
    pub kill_after_block: Option<usize>,
    /// Truncates the checkpoint file after writing it, so the next
    /// resume must detect the corruption and start fresh.
    pub corrupt_checkpoint: bool,
    /// Forces the composition deadline to be already expired: every
    /// eligible block must fall back with `budget-exhausted`.
    pub force_compose_timeout: bool,
    /// Gate indices of the *final* compiled circuit to corrupt after
    /// every internal check has run — a deliberate silent miscompile
    /// that only an end-to-end equivalence oracle can catch. Indices
    /// beyond the circuit inject nothing.
    pub miscompile_gates: Vec<usize>,
    /// Kills the service harness while appending journal event number
    /// `n` (0-based): the frame is written only partially, leaving the
    /// torn tail a real `kill -9` mid-append would. Recovery must
    /// truncate the tail and resume.
    pub kill_mid_journal_append: Option<usize>,
    /// Crashes the next store compaction (journal snapshot or shared
    /// cache) after its temp file is written but *before* the commit
    /// rename — the old generation must stay fully intact.
    pub kill_mid_compaction: bool,
    /// Tears the final journal frame after the run completes, so the
    /// next recovery must truncate the tail and re-admit the event's
    /// job exactly once.
    pub torn_journal_tail: bool,
    /// Perturbs every `Composed` entry in the reuse index after it is
    /// loaded (a planted stale/poisoned store): the ε re-check must
    /// reject every poisoned replay, so the compile stays clean.
    pub reuse_poison: bool,
    /// Disables the ε re-check on reuse replays — cached compositions
    /// are trusted blindly. Combined with `reuse-poison` this lets
    /// garbage escape into the output; the geyser-verify reuse
    /// invariant (nonzero `unverified_replays`) must trip on it.
    pub reuse_skip_verify: bool,
    /// Composition-stage faults (corrupted candidates, per-block worker
    /// panics).
    pub compose: ComposeFaults,
    /// Sampler faults (transient/persistent NaN trajectories).
    pub sim: SimFaults,
}

/// Why a `--inject` fault spec failed to parse.
///
/// Carries the offending token so CLI layers can print a pointed
/// message instead of panicking on user input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpecError {
    /// The token's kind is not in the fault table.
    UnknownKind {
        /// The unrecognized kind.
        kind: String,
    },
    /// The kind requires a `:<arg>` and none was given.
    MissingArg {
        /// The fault kind missing its argument.
        kind: String,
        /// What the argument should have been (e.g. `block`).
        expected: &'static str,
    },
    /// The `:<arg>` was present but not a valid index.
    BadIndex {
        /// The full offending token.
        token: String,
        /// What the argument should have been.
        expected: &'static str,
    },
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpecError::UnknownKind { kind } => {
                write!(f, "unknown fault kind '{kind}'")
            }
            FaultSpecError::MissingArg { kind, expected } => {
                write!(f, "fault '{kind}' needs :<{expected}>")
            }
            FaultSpecError::BadIndex { token, expected } => {
                write!(f, "fault '{token}': bad {expected} index")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

impl FaultInjector {
    /// An empty plan: no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.panic_passes.is_empty()
            && self.transient_panic_passes.is_empty()
            && self.hung_passes.is_empty()
            && self.kill_after_block.is_none()
            && !self.corrupt_checkpoint
            && !self.force_compose_timeout
            && self.miscompile_gates.is_empty()
            && self.kill_mid_journal_append.is_none()
            && !self.kill_mid_compaction
            && !self.torn_journal_tail
            && !self.reuse_poison
            && !self.reuse_skip_verify
            && self.compose.is_empty()
            && self.sim.is_empty()
    }

    /// Derives a one-of-each fault plan from a seed: one corrupted
    /// composition block, one panicking block, and one transient NaN
    /// trajectory, all chosen by splitmix64 draws. Used by randomized
    /// robustness tests that want coverage across runs while each run
    /// stays reproducible.
    pub fn sampled(seed: u64, blocks: usize, trajectories: usize) -> Self {
        let mut state = seed;
        let mut draw = move |modulus: usize| -> usize {
            // splitmix64 step — a fixed, dependency-free generator.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z % modulus.max(1) as u64) as usize
        };
        FaultInjector {
            compose: ComposeFaults {
                corrupt_blocks: vec![draw(blocks)],
                panic_blocks: vec![draw(blocks)],
            },
            sim: SimFaults {
                nan_trajectories: vec![draw(trajectories)],
                ..SimFaults::none()
            },
            ..FaultInjector::none()
        }
    }

    /// Renders the plan back into `--inject` syntax, the inverse of
    /// [`FaultInjector::parse`]. Chaos campaigns use this to report
    /// exactly which fault composition each campaign ran, in a form
    /// that can be replayed verbatim with `--inject`.
    pub fn spec(&self) -> String {
        let mut tokens: Vec<String> = Vec::new();
        for p in &self.panic_passes {
            tokens.push(format!("pass-panic:{p}"));
        }
        for p in &self.transient_panic_passes {
            tokens.push(format!("pass-panic-once:{p}"));
        }
        for p in &self.hung_passes {
            tokens.push(format!("hang-pass:{p}"));
        }
        if let Some(i) = self.kill_after_block {
            tokens.push(format!("kill-after-block:{i}"));
        }
        if self.corrupt_checkpoint {
            tokens.push("checkpoint-corrupt".to_string());
        }
        if self.force_compose_timeout {
            tokens.push("compose-timeout".to_string());
        }
        for g in &self.miscompile_gates {
            tokens.push(format!("miscompile:{g}"));
        }
        if let Some(n) = self.kill_mid_journal_append {
            tokens.push(format!("kill-mid-journal-append:{n}"));
        }
        if self.kill_mid_compaction {
            tokens.push("kill-mid-compaction".to_string());
        }
        if self.torn_journal_tail {
            tokens.push("torn-journal-tail".to_string());
        }
        if self.reuse_poison {
            tokens.push("reuse-poison".to_string());
        }
        if self.reuse_skip_verify {
            tokens.push("reuse-skip-verify".to_string());
        }
        for b in &self.compose.corrupt_blocks {
            tokens.push(format!("compose-corrupt:{b}"));
        }
        for b in &self.compose.panic_blocks {
            tokens.push(format!("compose-panic:{b}"));
        }
        for t in &self.sim.nan_trajectories {
            tokens.push(format!("sim-nan:{t}"));
        }
        for t in &self.sim.persistent_nan_trajectories {
            tokens.push(format!("sim-nan-persistent:{t}"));
        }
        tokens.join(",")
    }

    /// Parses a comma-separated fault spec, the `--inject` syntax of
    /// the bench binaries:
    ///
    /// | token | fault |
    /// |---|---|
    /// | `pass-panic:<name>` | pass `<name>` panics on entry |
    /// | `pass-panic-once:<name>` | pass `<name>` panics only on attempt 0 of a supervised job |
    /// | `hang-pass:<name>` | pass `<name>` hangs until cancelled or out of budget |
    /// | `kill-after-block:<i>` | job self-cancels after `i` fresh blocks checkpoint |
    /// | `checkpoint-corrupt` | checkpoint file truncated after writing |
    /// | `compose-timeout` | composition deadline forced expired |
    /// | `miscompile:<i>` | gate `i` of the final circuit silently corrupted |
    /// | `kill-mid-journal-append:<n>` | harness killed mid-append of journal event `n` |
    /// | `kill-mid-compaction` | next store compaction crashed before its commit rename |
    /// | `torn-journal-tail` | final journal frame torn after the run |
    /// | `reuse-poison` | every loaded Composed reuse entry's params perturbed |
    /// | `reuse-skip-verify` | reuse replays skip the ε re-check (trusted blindly) |
    /// | `compose-corrupt:<i>` | block `i`'s winning candidate corrupted |
    /// | `compose-panic:<i>` | block `i`'s worker panics |
    /// | `sim-nan:<t>` | trajectory `t` transiently NaN (recovers) |
    /// | `sim-nan-persistent:<t>` | trajectory `t` NaN on every retry |
    ///
    /// # Example
    ///
    /// ```
    /// use geyser::FaultInjector;
    /// let f = FaultInjector::parse("compose-corrupt:0,sim-nan:3").unwrap();
    /// assert_eq!(f.compose.corrupt_blocks, vec![0]);
    /// assert_eq!(f.sim.nan_trajectories, vec![3]);
    /// assert!(FaultInjector::parse("bogus").is_err());
    /// ```
    pub fn parse(spec: &str) -> Result<Self, FaultSpecError> {
        let mut plan = FaultInjector::none();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (kind, arg) = match token.split_once(':') {
                Some((k, a)) => (k, Some(a)),
                None => (token, None),
            };
            let index = |expected: &'static str| -> Result<usize, FaultSpecError> {
                arg.ok_or(FaultSpecError::MissingArg {
                    kind: kind.to_string(),
                    expected,
                })?
                .parse()
                .map_err(|_| FaultSpecError::BadIndex {
                    token: token.to_string(),
                    expected,
                })
            };
            let name = |expected: &'static str| -> Result<String, FaultSpecError> {
                arg.map(str::to_string).ok_or(FaultSpecError::MissingArg {
                    kind: kind.to_string(),
                    expected,
                })
            };
            match kind {
                "pass-panic" => plan.panic_passes.push(name("pass-name")?),
                "pass-panic-once" => plan.transient_panic_passes.push(name("pass-name")?),
                "hang-pass" => plan.hung_passes.push(name("pass-name")?),
                "kill-after-block" => plan.kill_after_block = Some(index("block")?),
                "checkpoint-corrupt" => plan.corrupt_checkpoint = true,
                "compose-timeout" => plan.force_compose_timeout = true,
                "miscompile" => plan.miscompile_gates.push(index("gate")?),
                "kill-mid-journal-append" => plan.kill_mid_journal_append = Some(index("event")?),
                "kill-mid-compaction" => plan.kill_mid_compaction = true,
                "torn-journal-tail" => plan.torn_journal_tail = true,
                "reuse-poison" => plan.reuse_poison = true,
                "reuse-skip-verify" => plan.reuse_skip_verify = true,
                "compose-corrupt" => plan.compose.corrupt_blocks.push(index("block")?),
                "compose-panic" => plan.compose.panic_blocks.push(index("block")?),
                "sim-nan" => plan.sim.nan_trajectories.push(index("trajectory")?),
                "sim-nan-persistent" => plan
                    .sim
                    .persistent_nan_trajectories
                    .push(index("trajectory")?),
                other => {
                    return Err(FaultSpecError::UnknownKind {
                        kind: other.to_string(),
                    })
                }
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultInjector::none().is_empty());
        assert!(!FaultInjector::parse("compose-timeout").unwrap().is_empty());
        assert!(!FaultInjector::parse("hang-pass:map").unwrap().is_empty());
        assert!(!FaultInjector::parse("kill-after-block:0")
            .unwrap()
            .is_empty());
        assert!(!FaultInjector::parse("checkpoint-corrupt")
            .unwrap()
            .is_empty());
        assert!(!FaultInjector::parse("pass-panic-once:map")
            .unwrap()
            .is_empty());
        assert!(!FaultInjector::parse("miscompile:0").unwrap().is_empty());
        assert!(!FaultInjector::parse("kill-mid-journal-append:0")
            .unwrap()
            .is_empty());
        assert!(!FaultInjector::parse("kill-mid-compaction")
            .unwrap()
            .is_empty());
        assert!(!FaultInjector::parse("torn-journal-tail")
            .unwrap()
            .is_empty());
        assert!(!FaultInjector::parse("reuse-poison").unwrap().is_empty());
        assert!(!FaultInjector::parse("reuse-skip-verify")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn parse_covers_every_kind() {
        let plan = FaultInjector::parse(
            "pass-panic:map, pass-panic-once:compose, hang-pass:block, \
             kill-after-block:2, checkpoint-corrupt, compose-timeout, \
             compose-corrupt:1, compose-panic:2, sim-nan:3, sim-nan-persistent:4, \
             miscompile:5, kill-mid-journal-append:6, kill-mid-compaction, \
             torn-journal-tail, reuse-poison, reuse-skip-verify",
        )
        .unwrap();
        assert_eq!(plan.panic_passes, vec!["map".to_string()]);
        assert_eq!(plan.transient_panic_passes, vec!["compose".to_string()]);
        assert_eq!(plan.hung_passes, vec!["block".to_string()]);
        assert_eq!(plan.kill_after_block, Some(2));
        assert!(plan.corrupt_checkpoint);
        assert!(plan.force_compose_timeout);
        assert_eq!(plan.compose.corrupt_blocks, vec![1]);
        assert_eq!(plan.compose.panic_blocks, vec![2]);
        assert_eq!(plan.sim.nan_trajectories, vec![3]);
        assert_eq!(plan.sim.persistent_nan_trajectories, vec![4]);
        assert_eq!(plan.miscompile_gates, vec![5]);
        assert_eq!(plan.kill_mid_journal_append, Some(6));
        assert!(plan.kill_mid_compaction);
        assert!(plan.torn_journal_tail);
        assert!(plan.reuse_poison);
        assert!(plan.reuse_skip_verify);
    }

    #[test]
    fn parse_rejects_malformed_tokens_with_typed_errors() {
        assert_eq!(
            FaultInjector::parse("warp-core-breach"),
            Err(FaultSpecError::UnknownKind {
                kind: "warp-core-breach".to_string()
            })
        );
        assert_eq!(
            FaultInjector::parse("compose-corrupt"),
            Err(FaultSpecError::MissingArg {
                kind: "compose-corrupt".to_string(),
                expected: "block"
            })
        );
        assert_eq!(
            FaultInjector::parse("sim-nan:many"),
            Err(FaultSpecError::BadIndex {
                token: "sim-nan:many".to_string(),
                expected: "trajectory"
            })
        );
        assert!(FaultInjector::parse("pass-panic").is_err());
        assert!(FaultInjector::parse("hang-pass").is_err());
        assert!(FaultInjector::parse("kill-after-block:soon").is_err());
        assert!(FaultInjector::parse("miscompile").is_err());
        assert!(FaultInjector::parse("miscompile:first").is_err());
    }

    #[test]
    fn spec_errors_render_pointed_messages() {
        let e = FaultInjector::parse("sim-nan:many").unwrap_err();
        assert_eq!(e.to_string(), "fault 'sim-nan:many': bad trajectory index");
        let e = FaultInjector::parse("explode").unwrap_err();
        assert_eq!(e.to_string(), "unknown fault kind 'explode'");
        let e = FaultInjector::parse("hang-pass").unwrap_err();
        assert_eq!(e.to_string(), "fault 'hang-pass' needs :<pass-name>");
    }

    #[test]
    fn spec_roundtrips_through_parse() {
        let spec = "pass-panic:map,pass-panic-once:compose,hang-pass:block,\
                    kill-after-block:2,checkpoint-corrupt,compose-timeout,\
                    miscompile:5,kill-mid-journal-append:6,kill-mid-compaction,\
                    torn-journal-tail,reuse-poison,reuse-skip-verify,\
                    compose-corrupt:1,compose-panic:2,sim-nan:3,\
                    sim-nan-persistent:4";
        let plan = FaultInjector::parse(spec).unwrap();
        assert_eq!(plan.spec(), spec);
        assert_eq!(FaultInjector::parse(&plan.spec()).unwrap(), plan);
        assert_eq!(FaultInjector::none().spec(), "");
    }

    #[test]
    fn sampled_is_deterministic_per_seed() {
        let a = FaultInjector::sampled(9, 7, 50);
        let b = FaultInjector::sampled(9, 7, 50);
        assert_eq!(a, b);
        assert!(a.compose.corrupt_blocks[0] < 7);
        assert!(a.compose.panic_blocks[0] < 7);
        assert!(a.sim.nan_trajectories[0] < 50);
    }
}
