//! Deterministic, config-driven fault injection for robustness tests.
//!
//! A [`FaultInjector`] is a *plan*: which pass panics, which
//! composition blocks are corrupted or killed, which Monte-Carlo
//! trajectories go NaN, whether the composition deadline is forced to
//! expire. The plan is plain data — building the same plan twice (or
//! deriving it from the same seed via [`FaultInjector::sampled`])
//! injects byte-identical faults, so every failure a fault test
//! provokes is reproducible.
//!
//! Injection is wired behind explicit entry points
//! ([`crate::PassManager::with_faults`]); the default pipeline carries
//! an empty plan and pays no cost for the machinery.

use geyser_compose::ComposeFaults;
use geyser_sim::SimFaults;

/// A deterministic fault plan for one compilation/evaluation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultInjector {
    /// Passes (by [`crate::Pass::name`]) that panic on entry; the
    /// manager must convert each to
    /// [`crate::CompileError::PassPanicked`].
    pub panic_passes: Vec<String>,
    /// Forces the composition deadline to be already expired: every
    /// eligible block must fall back with `budget-exhausted`.
    pub force_compose_timeout: bool,
    /// Composition-stage faults (corrupted candidates, per-block worker
    /// panics).
    pub compose: ComposeFaults,
    /// Sampler faults (transient/persistent NaN trajectories).
    pub sim: SimFaults,
}

impl FaultInjector {
    /// An empty plan: no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.panic_passes.is_empty()
            && !self.force_compose_timeout
            && self.compose.is_empty()
            && self.sim.is_empty()
    }

    /// Derives a one-of-each fault plan from a seed: one corrupted
    /// composition block, one panicking block, and one transient NaN
    /// trajectory, all chosen by splitmix64 draws. Used by randomized
    /// robustness tests that want coverage across runs while each run
    /// stays reproducible.
    pub fn sampled(seed: u64, blocks: usize, trajectories: usize) -> Self {
        let mut state = seed;
        let mut draw = move |modulus: usize| -> usize {
            // splitmix64 step — a fixed, dependency-free generator.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z % modulus.max(1) as u64) as usize
        };
        FaultInjector {
            compose: ComposeFaults {
                corrupt_blocks: vec![draw(blocks)],
                panic_blocks: vec![draw(blocks)],
            },
            sim: SimFaults {
                nan_trajectories: vec![draw(trajectories)],
                ..SimFaults::none()
            },
            ..FaultInjector::none()
        }
    }

    /// Parses a comma-separated fault spec, the `--inject` syntax of
    /// the bench binaries:
    ///
    /// | token | fault |
    /// |---|---|
    /// | `pass-panic:<name>` | pass `<name>` panics on entry |
    /// | `compose-timeout` | composition deadline forced expired |
    /// | `compose-corrupt:<i>` | block `i`'s winning candidate corrupted |
    /// | `compose-panic:<i>` | block `i`'s worker panics |
    /// | `sim-nan:<t>` | trajectory `t` transiently NaN (recovers) |
    /// | `sim-nan-persistent:<t>` | trajectory `t` NaN on every retry |
    ///
    /// # Example
    ///
    /// ```
    /// use geyser::FaultInjector;
    /// let f = FaultInjector::parse("compose-corrupt:0,sim-nan:3").unwrap();
    /// assert_eq!(f.compose.corrupt_blocks, vec![0]);
    /// assert_eq!(f.sim.nan_trajectories, vec![3]);
    /// assert!(FaultInjector::parse("bogus").is_err());
    /// ```
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultInjector::none();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (kind, arg) = match token.split_once(':') {
                Some((k, a)) => (k, Some(a)),
                None => (token, None),
            };
            let index = |what: &str| -> Result<usize, String> {
                arg.ok_or_else(|| format!("fault '{kind}' needs :<{what}>"))?
                    .parse()
                    .map_err(|_| format!("fault '{token}': bad {what} index"))
            };
            match kind {
                "pass-panic" => plan.panic_passes.push(
                    arg.ok_or_else(|| "fault 'pass-panic' needs :<pass-name>".to_string())?
                        .to_string(),
                ),
                "compose-timeout" => plan.force_compose_timeout = true,
                "compose-corrupt" => plan.compose.corrupt_blocks.push(index("block")?),
                "compose-panic" => plan.compose.panic_blocks.push(index("block")?),
                "sim-nan" => plan.sim.nan_trajectories.push(index("trajectory")?),
                "sim-nan-persistent" => plan
                    .sim
                    .persistent_nan_trajectories
                    .push(index("trajectory")?),
                other => return Err(format!("unknown fault kind '{other}'")),
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultInjector::none().is_empty());
        assert!(!FaultInjector::parse("compose-timeout").unwrap().is_empty());
    }

    #[test]
    fn parse_covers_every_kind() {
        let plan = FaultInjector::parse(
            "pass-panic:map, compose-timeout, compose-corrupt:1, compose-panic:2, \
             sim-nan:3, sim-nan-persistent:4",
        )
        .unwrap();
        assert_eq!(plan.panic_passes, vec!["map".to_string()]);
        assert!(plan.force_compose_timeout);
        assert_eq!(plan.compose.corrupt_blocks, vec![1]);
        assert_eq!(plan.compose.panic_blocks, vec![2]);
        assert_eq!(plan.sim.nan_trajectories, vec![3]);
        assert_eq!(plan.sim.persistent_nan_trajectories, vec![4]);
    }

    #[test]
    fn parse_rejects_malformed_tokens() {
        assert!(FaultInjector::parse("warp-core-breach").is_err());
        assert!(FaultInjector::parse("compose-corrupt").is_err());
        assert!(FaultInjector::parse("sim-nan:many").is_err());
        assert!(FaultInjector::parse("pass-panic").is_err());
    }

    #[test]
    fn sampled_is_deterministic_per_seed() {
        let a = FaultInjector::sampled(9, 7, 50);
        let b = FaultInjector::sampled(9, 7, 50);
        assert_eq!(a, b);
        assert!(a.compose.corrupt_blocks[0] < 7);
        assert!(a.compose.panic_blocks[0] < 7);
        assert!(a.sim.nan_trajectories[0] < 50);
    }
}
