//! Wall-clock budgets for the compile pipeline.

use geyser_optimize::Deadline;

/// A wall-clock budget for one end-to-end compilation.
///
/// Unlimited by default. When bounded, [`crate::PassManager`] starts a
/// [`Deadline`] at the top of the run and threads it through every
/// pass: the composition stage checks it per block (and inside every
/// annealing attempt), and the manager itself checks it between
/// passes. When the budget expires the pipeline *degrades* rather than
/// dying — remaining blocks fall back to their original pulses,
/// remaining optional passes are skipped — and only errors with
/// [`crate::CompileError::BudgetExceeded`] when no mapped circuit
/// exists yet to degrade to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Wall-clock milliseconds for the whole pipeline; `None` is
    /// unlimited.
    pub wall_ms: Option<u64>,
}

impl Budget {
    /// No budget: the pipeline runs to completion.
    pub fn unlimited() -> Self {
        Budget { wall_ms: None }
    }

    /// A wall-clock budget in milliseconds.
    pub fn wall_ms(ms: u64) -> Self {
        Budget { wall_ms: Some(ms) }
    }

    /// Whether any limit is configured.
    pub fn is_bounded(&self) -> bool {
        self.wall_ms.is_some()
    }

    /// Starts the clock: returns the deadline every stage checks.
    pub fn start(&self) -> Deadline {
        match self.wall_ms {
            Some(ms) => Deadline::after_ms(ms),
            None => Deadline::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_expires() {
        let d = Budget::unlimited().start();
        assert!(!d.expired());
        assert!(!d.is_bounded());
        assert_eq!(d.remaining_ms(), None);
    }

    #[test]
    fn bounded_budget_starts_a_live_deadline() {
        let d = Budget::wall_ms(60_000).start();
        assert!(d.is_bounded());
        assert!(!d.expired());
        assert!(d.remaining_ms().unwrap() > 0);
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Budget::wall_ms(0).start();
        assert!(d.expired());
    }
}
