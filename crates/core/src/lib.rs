//! Geyser: a compilation framework for quantum computing with neutral
//! atoms — Rust reproduction of the ISCA 2022 paper by Patel, Silver,
//! and Tiwari.
//!
//! Geyser compiles quantum circuits for neutral-atom hardware in three
//! steps (paper Fig. 6):
//!
//! 1. **Mapping** — place the logical circuit on a triangular atom
//!    lattice, route with SWAPs, translate to the native
//!    `{U3, CZ, CCZ}` basis ([`geyser_map`]).
//! 2. **Blocking** — partition the mapped circuit into three-qubit
//!    triangle blocks grouped into parallel rounds
//!    ([`geyser_blocking`]).
//! 3. **Composition** — re-synthesize each block with layers of U3 +
//!    CZ/CCZ gates found by dual annealing, cutting physical pulse
//!    counts ([`geyser_compose`]).
//!
//! This crate exposes the end-to-end pipeline as the paper's four
//! comparison points ([`Technique`]) and the evaluation drivers that
//! regenerate every table and figure (see `geyser-bench`).
//!
//! # Quickstart
//!
//! ```
//! use geyser::{compile, PipelineConfig, Technique};
//! use geyser_circuit::Circuit;
//!
//! let mut program = Circuit::new(3);
//! program.h(0).cx(0, 1).cx(1, 2);
//!
//! let cfg = PipelineConfig::fast(); // reduced budgets for docs/tests
//! let baseline = compile(&program, Technique::Baseline, &cfg);
//! let geyser = compile(&program, Technique::Geyser, &cfg);
//! assert!(geyser.total_pulses() <= baseline.total_pulses());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod compiled;
mod config;
mod error;
mod evaluate;
mod fault;
mod pass;
pub mod passes;
mod report;
mod technique;
mod verify;

pub use budget::Budget;
pub use compiled::CompiledCircuit;
pub use config::PipelineConfig;
pub use error::{CompileError, ErrorClass};
pub use evaluate::{
    estimated_success_probability, evaluate_tvd, ideal_logical_distribution, try_evaluate_tvd,
    try_evaluate_tvd_traced, try_evaluate_tvd_with_faults, TvdReport,
};
pub use fault::{FaultInjector, FaultSpecError};
pub use geyser_store::{
    decode_record, encode_record, read_record_file, read_record_file_quarantining,
    write_record_atomic, RecordError, RecordPayload, StoreCorruption, StoreReadError,
};
pub use pass::{CompileContext, Pass, PassManager};
pub use report::{CompileReport, PassReport, SupervisionStats, VerificationStats};
// The record layer moved to its own crate so non-core consumers (the
// reuse index, future stores) can share it without depending on the
// whole pipeline; `geyser::store::*` paths keep working via this
// re-export.
pub use geyser_store as store;
pub use technique::{compile, try_compile, Technique};
pub use verify::{verification_allowance, verification_stats, verify_compiled};

// Re-export the component crates so downstream users need only one
// dependency.
pub use geyser_hardware::{HardwareSpec, HardwareSpecError, LatticeSpec};
pub use geyser_optimize::{CancelToken, Deadline};
pub use geyser_telemetry::{MetricsSnapshot, Telemetry};

pub use geyser_blocking as blocking;
pub use geyser_circuit as circuit;
pub use geyser_compose as compose;
pub use geyser_hardware as hardware;
pub use geyser_map as map;
pub use geyser_num as num;
pub use geyser_optimize as optimize;
pub use geyser_sim as sim;
pub use geyser_synth as synth;
pub use geyser_topology as topology;
pub use geyser_verify as verifier;
pub use geyser_workloads as workloads;
