//! The pass-manager pipeline driver.
//!
//! A compilation is a sequence of [`Pass`]es run over a shared
//! [`CompileContext`] by a [`PassManager`]. Each technique of the
//! paper is a declarative pass list (see [`crate::Technique::pass_list`]);
//! the manager times every pass, snapshots circuit metrics around it,
//! and assembles the [`CompileReport`] that ships with the final
//! [`CompiledCircuit`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use geyser_blocking::BlockedCircuit;
use geyser_circuit::Circuit;
use geyser_compose::CompositionStats;
use geyser_map::MappedCircuit;
use geyser_optimize::{CancelToken, Deadline};
use geyser_sim::{ideal_distribution, total_variation_distance};
use geyser_telemetry::Telemetry;
use geyser_topology::Lattice;

use geyser_circuit::{Gate, Operation};

use crate::report::{CompileReport, PassReport, VerificationStats};
use crate::{CompileError, CompiledCircuit, FaultInjector, PipelineConfig, Technique};

/// Largest physical register (lattice nodes) the debug-mode
/// distribution spot check will statevector-simulate.
const SPOT_CHECK_MAX_NODES: usize = 8;

/// Mutable state threaded through a pass pipeline.
///
/// Starts with just the logical program and configuration; passes fill
/// in the lattice, the mapped circuit, and the composition artifacts
/// as the pipeline advances.
#[derive(Debug)]
pub struct CompileContext<'a> {
    program: &'a Circuit,
    config: &'a PipelineConfig,
    technique: Technique,
    deadline: Deadline,
    cancel: CancelToken,
    faults: FaultInjector,
    telemetry: Telemetry,
    lattice: Option<Lattice>,
    mapped: Option<MappedCircuit>,
    blocked: Option<BlockedCircuit>,
    composed: Option<Circuit>,
    composition: Option<CompositionStats>,
    verification: Option<VerificationStats>,
}

impl<'a> CompileContext<'a> {
    /// Fresh context for one compilation run.
    pub fn new(program: &'a Circuit, technique: Technique, config: &'a PipelineConfig) -> Self {
        CompileContext {
            program,
            config,
            technique,
            deadline: Deadline::none(),
            cancel: CancelToken::none(),
            faults: FaultInjector::none(),
            telemetry: Telemetry::disabled(),
            lattice: None,
            mapped: None,
            blocked: None,
            composed: None,
            composition: None,
            verification: None,
        }
    }

    /// The started wall-clock deadline every stage must check
    /// (unbounded unless [`crate::Budget`] set one).
    pub fn deadline(&self) -> Deadline {
        self.deadline
    }

    /// Installs the run's deadline (done once by the manager).
    pub fn set_deadline(&mut self, deadline: Deadline) {
        self.deadline = deadline;
    }

    /// The job's cooperative cancellation token. Passes that run
    /// long inner loops (annealing, per-block composition) must poll
    /// it; a fired token ends the run with
    /// [`CompileError::Cancelled`].
    pub fn cancel(&self) -> &CancelToken {
        &self.cancel
    }

    /// Installs the run's cancellation token (done once by the
    /// manager).
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// The run's telemetry handle (disabled unless the manager
    /// installed a recording one). Passes open spans and bump metrics
    /// through it; timings are recorded but never read back, so
    /// compilation stays bit-identical with telemetry on or off.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Installs the run's telemetry handle (done once by the manager).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The active fault-injection plan (empty in production runs).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Installs the fault plan (done once by the manager).
    pub fn set_faults(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// The logical input program.
    pub fn program(&self) -> &Circuit {
        self.program
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        self.config
    }

    /// The technique this pipeline implements.
    pub fn technique(&self) -> Technique {
        self.technique
    }

    /// The allocated lattice, if a lattice pass has run.
    pub fn lattice(&self) -> Option<&Lattice> {
        self.lattice.as_ref()
    }

    /// Installs the lattice.
    pub fn set_lattice(&mut self, lattice: Lattice) {
        self.lattice = Some(lattice);
    }

    /// The mapped circuit, if the mapping pass has run.
    pub fn mapped(&self) -> Option<&MappedCircuit> {
        self.mapped.as_ref()
    }

    /// Installs (or replaces) the mapped circuit.
    pub fn set_mapped(&mut self, mapped: MappedCircuit) {
        self.mapped = Some(mapped);
    }

    /// The blocked circuit, if the blocking pass has run.
    pub fn blocked(&self) -> Option<&BlockedCircuit> {
        self.blocked.as_ref()
    }

    /// Installs the blocked circuit.
    pub fn set_blocked(&mut self, blocked: BlockedCircuit) {
        self.blocked = Some(blocked);
    }

    /// The composed physical circuit awaiting seam cleanup, if the
    /// composition pass has run and cleanup has not consumed it yet.
    pub fn composed(&self) -> Option<&Circuit> {
        self.composed.as_ref()
    }

    /// Installs the composition output.
    pub fn set_composed(&mut self, circuit: Circuit, stats: CompositionStats) {
        self.composed = Some(circuit);
        self.composition = Some(stats);
    }

    /// Removes and returns the composed circuit (seam cleanup).
    pub fn take_composed(&mut self) -> Option<Circuit> {
        self.composed.take()
    }

    /// Composition statistics, if composition has run.
    pub fn composition_stats(&self) -> Option<&CompositionStats> {
        self.composition.as_ref()
    }

    /// The equivalence-oracle verdict, if a verify pass has run.
    pub fn verification(&self) -> Option<&VerificationStats> {
        self.verification.as_ref()
    }

    /// Installs the oracle verdict (the verify pass).
    pub fn set_verification(&mut self, stats: VerificationStats) {
        self.verification = Some(stats);
    }

    /// The pipeline's current best view of the circuit: the composed
    /// circuit if one is pending cleanup, else the mapped physical
    /// circuit, else the logical program.
    pub fn current_circuit(&self) -> &Circuit {
        if let Some(c) = &self.composed {
            c
        } else if let Some(m) = &self.mapped {
            m.circuit()
        } else {
            self.program
        }
    }

    fn into_compiled(mut self, mut report: CompileReport) -> Result<CompiledCircuit, CompileError> {
        let mut mapped = self.mapped.take().ok_or(CompileError::MissingStage {
            pass: "finalize",
            requires: "map",
        })?;
        // Degraded finalize: if the budget expired between composition
        // and seam cleanup, the composed circuit is still pending —
        // install it so its pulse savings are not thrown away.
        if let Some(composed) = self.composed.take() {
            mapped = mapped.with_circuit(composed);
        }
        // Injected silent miscompile: corrupt the final circuit after
        // every internal check has run, so nothing short of an
        // end-to-end equivalence oracle can notice.
        if !self.faults.miscompile_gates.is_empty() {
            let corrupted = miscompile(mapped.circuit(), &self.faults.miscompile_gates);
            mapped = mapped.with_circuit(corrupted);
        }
        report.verification = self.verification.take();
        Ok(CompiledCircuit::with_report(
            self.technique,
            mapped,
            self.composition,
            report,
        ))
    }
}

/// One step of a compilation pipeline.
///
/// Passes mutate the [`CompileContext`] — installing the lattice, the
/// mapped circuit, composition results — and report failures as
/// [`CompileError`]s. The built-in passes live in [`crate::passes`];
/// external code can implement the trait to splice custom stages into
/// a [`PassManager`].
pub trait Pass {
    /// Stable, kebab-case pass name used in reports and errors.
    fn name(&self) -> &'static str;

    /// Runs the pass over the shared context.
    fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError>;
}

/// Runs an ordered list of [`Pass`]es and instruments every step.
///
/// # Example
///
/// ```
/// use geyser::{PassManager, PipelineConfig, Technique};
/// use geyser_circuit::Circuit;
///
/// let mut program = Circuit::new(2);
/// program.h(0).cx(0, 1);
/// let pm = PassManager::for_technique(Technique::OptiMap);
/// let compiled = pm
///     .run(&program, &PipelineConfig::fast())
///     .expect("pipeline succeeds");
/// let report = compiled.report().expect("pass manager attaches a report");
/// assert_eq!(report.passes.len(), 2); // allocate-lattice, map
/// ```
pub struct PassManager {
    technique: Technique,
    passes: Vec<Box<dyn Pass>>,
    debug_invariants: bool,
    faults: FaultInjector,
    cancel: CancelToken,
    telemetry: Telemetry,
}

impl PassManager {
    /// A manager over an explicit pass list, labelled with the
    /// technique the list implements.
    pub fn new(technique: Technique, passes: Vec<Box<dyn Pass>>) -> Self {
        PassManager {
            technique,
            passes,
            debug_invariants: false,
            faults: FaultInjector::none(),
            cancel: CancelToken::none(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// The declarative pipeline for one of the paper's techniques —
    /// equivalent to what [`crate::compile`] runs.
    pub fn for_technique(technique: Technique) -> Self {
        Self::new(technique, technique.pass_list())
    }

    /// Installs a fault-injection plan for robustness testing: the
    /// named passes panic on entry (contained as
    /// [`CompileError::PassPanicked`]), and compose/timeout faults are
    /// threaded into the composition stage.
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = faults;
        self
    }

    /// Installs a cooperative cancellation token. The manager checks
    /// it before every pass (returning [`CompileError::Cancelled`]
    /// once fired) and threads it into the context so long-running
    /// passes — the annealer's chain moves, per-block composition —
    /// observe it at much finer grain than the wall-clock budget.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Installs a telemetry handle: the manager opens a span per pass
    /// (category `core`) and threads the handle into the context so
    /// the mapper, blocker, composer, and verifier can instrument
    /// their own stages. The default disabled handle makes every
    /// instrumentation point a no-op.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enables (or disables) inter-pass invariant checking: after each
    /// pass the manager verifies the physical circuit stays in the
    /// native basis, the logical register is preserved, and — for
    /// small circuits — that the output distribution still matches the
    /// program's (a unitary-equivalence spot check via `geyser-sim`).
    pub fn with_debug_invariants(mut self, on: bool) -> Self {
        self.debug_invariants = on;
        self
    }

    /// Appends a pass to the end of the list.
    pub fn push(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// Appends the equivalence-oracle [`crate::passes::VerifyPass`]:
    /// after every other pass, the compiled circuit is checked against
    /// the source program and the verdict is recorded on the report; a
    /// failed check aborts the run with
    /// [`CompileError::VerificationFailed`].
    pub fn with_verification(mut self, cfg: geyser_verify::VerifyConfig) -> Self {
        self.passes
            .push(Box::new(crate::passes::VerifyPass::new(cfg)));
        self
    }

    /// Names of the scheduled passes, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs the pipeline over a program.
    ///
    /// On success the returned [`CompiledCircuit`] carries a
    /// [`CompileReport`] with one entry per pass.
    ///
    /// # Robustness
    ///
    /// Every pass runs under `catch_unwind`: a panicking pass becomes
    /// [`CompileError::PassPanicked`] instead of unwinding through the
    /// caller. When the configured [`crate::Budget`] expires
    /// mid-pipeline, remaining passes are *skipped* (recorded in
    /// [`CompileReport::skipped_passes`]) and the best circuit built so
    /// far is finalized; the run only fails with
    /// [`CompileError::BudgetExceeded`] if the budget dies before a
    /// mapped circuit exists to degrade to.
    pub fn run(
        &self,
        program: &Circuit,
        config: &PipelineConfig,
    ) -> Result<CompiledCircuit, CompileError> {
        if program.num_qubits() == 0 {
            return Err(CompileError::EmptyProgram);
        }
        let mut ctx = CompileContext::new(program, self.technique, config);
        ctx.set_deadline(config.budget.start());
        ctx.set_cancel(self.cancel.clone());
        ctx.set_faults(self.faults.clone());
        ctx.set_telemetry(self.telemetry.clone());
        let mut pipeline_span = self.telemetry.span("core", "pipeline");
        pipeline_span.attr("technique", self.technique.label());
        let mut report = CompileReport::new(self.technique.label());
        report.hardware_digest = config.hardware.digest();
        for pass in &self.passes {
            // Cancellation wins over degradation: a cancelled job must
            // stop producing output, not finalize a partial circuit.
            if self.cancel.is_cancelled() {
                return Err(CompileError::Cancelled {
                    pass: pass.name().to_string(),
                });
            }
            if ctx.deadline().expired() {
                if ctx.mapped().is_some() {
                    // Graceful degradation: keep what compiled so far.
                    report.budget_exhausted = true;
                    report.skipped_passes.push(pass.name().to_string());
                    self.telemetry.counter_add("core.passes_skipped", 1);
                    continue;
                }
                return Err(CompileError::BudgetExceeded {
                    pass: pass.name().to_string(),
                });
            }
            if self.faults.hung_passes.iter().any(|p| p == pass.name()) {
                // Injected hang: the pass makes no progress, so the
                // only exits are the job's cancel token or the
                // wall-clock budget — exactly the paths a supervisor
                // must be able to free a stuck worker through.
                loop {
                    if self.cancel.is_cancelled() {
                        return Err(CompileError::Cancelled {
                            pass: pass.name().to_string(),
                        });
                    }
                    if ctx.deadline().expired() {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                if ctx.mapped().is_some() {
                    report.budget_exhausted = true;
                    report.skipped_passes.push(pass.name().to_string());
                    continue;
                }
                return Err(CompileError::BudgetExceeded {
                    pass: pass.name().to_string(),
                });
            }
            let (pulses_before, gates_before, depth_before) = snapshot(&ctx);
            let blocks_before = ctx.composition_stats().map(|s| s.blocks_composed as u64);
            let start = Instant::now();
            // Transient panics fault identically to persistent ones
            // here; the supervisor strips them from the plan after
            // attempt 0 so a retry succeeds.
            let inject_panic = self
                .faults
                .panic_passes
                .iter()
                .chain(self.faults.transient_panic_passes.iter())
                .any(|p| p == pass.name());
            // Panic isolation: a pass that unwinds (injected or a
            // genuine bug) is reported as a typed error; the context
            // is dropped with the run, never reused. The pass span is
            // closed by its guard on every path out of the
            // `catch_unwind` — including the unwinding one — so a
            // panicking pass never leaves an open span behind.
            let mut pass_span = self.telemetry.span("core", pass.name());
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if inject_panic {
                    panic!("injected fault in pass '{}'", pass.name());
                }
                pass.run(&mut ctx)
            }));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    pass_span.attr("panicked", true);
                    return Err(CompileError::PassPanicked {
                        pass: pass.name().to_string(),
                        detail: panic_message(payload),
                    });
                }
            }
            drop(pass_span);
            self.telemetry.counter_add("core.passes_run", 1);
            let seconds = start.elapsed().as_secs_f64();
            let (pulses_after, gates_after, depth_after) = snapshot(&ctx);
            let blocks_after = ctx.composition_stats().map(|s| s.blocks_composed as u64);
            report.passes.push(PassReport {
                name: pass.name().to_string(),
                seconds,
                pulses_before,
                pulses_after,
                gates_before,
                gates_after,
                depth_before,
                depth_after,
                blocks_composed: match (blocks_before, blocks_after) {
                    (None, Some(after)) => Some(after),
                    (Some(before), Some(after)) if after != before => Some(after - before),
                    _ => None,
                },
            });
            if self.debug_invariants {
                check_invariants(&ctx, pass.name())?;
            }
        }
        report.budget_remaining_ms = ctx.deadline().remaining_ms();
        if let Some(stats) = ctx.composition_stats() {
            report.blocks_fell_back = stats.blocks_fell_back as u64;
            report.blocks_failed = stats.blocks_failed as u64;
            report.reuse = stats.reuse;
        }
        ctx.into_compiled(report)
    }
}

/// Renders a `catch_unwind` payload as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field("technique", &self.technique)
            .field("passes", &self.pass_names())
            .field("debug_invariants", &self.debug_invariants)
            .finish()
    }
}

/// Deterministically corrupts the listed gate indices of a circuit:
/// a `U3` gets its θ shifted by 0.25 rad; a `CZ`/`CCZ` gets a stray
/// `U3(0.25, 0, 0)` inserted after it on its first qubit. Both stay in
/// the native basis, so no structural check can object — only
/// semantics change.
fn miscompile(circuit: &Circuit, gates: &[usize]) -> Circuit {
    let mut ops: Vec<Operation> = circuit.ops().to_vec();
    let mut targets: Vec<usize> = gates.iter().copied().filter(|&i| i < ops.len()).collect();
    targets.sort_unstable();
    targets.dedup();
    // Highest index first so insertions don't shift pending targets.
    for &i in targets.iter().rev() {
        match *ops[i].gate() {
            Gate::U3 { theta, phi, lambda } => {
                ops[i] = Operation::new(
                    Gate::U3 {
                        theta: theta + 0.25,
                        phi,
                        lambda,
                    },
                    ops[i].qubits().to_vec(),
                );
            }
            _ => {
                let q = ops[i].qubits()[0];
                ops.insert(
                    i + 1,
                    Operation::new(
                        Gate::U3 {
                            theta: 0.25,
                            phi: 0.0,
                            lambda: 0.0,
                        },
                        vec![q],
                    ),
                );
            }
        }
    }
    let mut out = Circuit::new(circuit.num_qubits());
    for op in ops {
        out.push(op);
    }
    out
}

/// (total pulses, gate count, depth pulses) of the context's current
/// circuit.
fn snapshot(ctx: &CompileContext<'_>) -> (u64, u64, u64) {
    let c = ctx.current_circuit();
    (c.total_pulses(), c.len() as u64, c.depth_pulses())
}

/// Inter-pass invariant checks (debug mode).
fn check_invariants(ctx: &CompileContext<'_>, pass: &str) -> Result<(), CompileError> {
    let Some(mapped) = ctx.mapped() else {
        return Ok(()); // pre-mapping stages carry no physical circuit
    };
    if mapped.num_logical() != ctx.program().num_qubits() {
        return Err(CompileError::InvariantViolation {
            pass: pass.to_string(),
            detail: format!(
                "logical register changed: program has {} qubits, mapped circuit tracks {}",
                ctx.program().num_qubits(),
                mapped.num_logical()
            ),
        });
    }
    let current = ctx.current_circuit();
    if !current.is_native_basis() {
        return Err(CompileError::InvariantViolation {
            pass: pass.to_string(),
            detail: "physical circuit left the native {U3, CZ, CCZ} basis".to_string(),
        });
    }
    // Unitary-equivalence spot check on small circuits: the compiled
    // output distribution (marginalized onto the logical register)
    // must match the program's ideal distribution. Composition is
    // approximate (per-block HSD <= epsilon), so the tolerance widens
    // once composed blocks are in play.
    let nodes = current.num_qubits();
    if nodes <= SPOT_CHECK_MAX_NODES && nodes == mapped.lattice().num_nodes() {
        let got = mapped.logical_distribution(&ideal_distribution(current));
        let want = ideal_distribution(ctx.program());
        let tvd = total_variation_distance(&want, &got);
        let tol = if ctx.composition_stats().is_some() {
            5e-2
        } else {
            1e-6
        };
        if tvd > tol {
            return Err(CompileError::InvariantViolation {
                pass: pass.to_string(),
                detail: format!("output distribution diverged from program: TVD = {tvd:.3e}"),
            });
        }
    }
    Ok(())
}
