//! End-to-end composition-reuse tests on a deep fixed-angle QAOA —
//! the canonical structured workload: every layer repeats the same
//! cost-plus-mixer block, so the reuse index should resolve most
//! blocks after the first layer without touching the annealer.

use geyser::workloads::qaoa_fixed;
use geyser::{verify_compiled, CompiledCircuit, PassManager, PipelineConfig, Technique, Telemetry};
use geyser_verify::VerifyConfig;

/// Compiles `circuit` with the Geyser technique under `cfg`, returning
/// the compiled circuit plus the annealer-evaluation count telemetry
/// observed for the run.
fn compile(circuit: &geyser::circuit::Circuit, cfg: &PipelineConfig) -> (CompiledCircuit, u64) {
    let telemetry = Telemetry::enabled();
    let compiled = PassManager::for_technique(Technique::Geyser)
        .with_telemetry(telemetry.clone())
        .run(circuit, cfg)
        .expect("deep QAOA compiles");
    let evals = telemetry
        .counter_value("compose.anneal_evaluations")
        .unwrap_or(0);
    (compiled, evals)
}

/// A scratch directory unique to this test binary + test name, wiped
/// before use so reruns are deterministic.
fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("geyser-reuse-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn reuse_cuts_annealing_on_deep_fixed_angle_qaoa() {
    let circuit = qaoa_fixed(4, 10, 3);
    let cfg = PipelineConfig::fast().with_seed(11);

    let (baseline, base_evals) = compile(&circuit, &cfg);
    let (reused, reuse_evals) = compile(&circuit, &cfg.clone().with_reuse());

    let stats = reused
        .report()
        .expect("pass-manager runs carry a report")
        .reuse
        .expect("reuse stats present when reuse is on");
    println!(
        "baseline evals={base_evals} reuse evals={reuse_evals} stats={stats:?} \
         baseline pulses={} reused pulses={}",
        baseline.total_pulses(),
        reused.total_pulses()
    );

    // A 10-fold repeated layer means most blocks after the first layer
    // are exact hits; the annealer must run strictly less than the
    // baseline (the acceptance bar is >=5x in the committed benchmark,
    // but the test only pins the direction so budget tweaks don't
    // break it).
    assert!(stats.blocks_fingerprinted > 0);
    assert!(
        stats.exact_hits > 0,
        "repeated layers must replay: {stats:?}"
    );
    assert!(
        reuse_evals < base_evals,
        "reuse must skip annealing work: {reuse_evals} vs {base_evals}"
    );
    assert_eq!(stats.unverified_replays, 0);

    // Replays go through the epsilon re-verification gate, so the
    // compiled circuit must still pass the end-to-end oracle.
    let vcfg = VerifyConfig::default().with_seed(11);
    let verdict = verify_compiled(&circuit, &reused, &vcfg);
    assert!(verdict.equivalent, "reuse broke equivalence: {verdict:?}");
}

#[test]
fn persistent_store_replays_across_jobs() {
    let dir = scratch_dir("store");
    let circuit = qaoa_fixed(4, 6, 5);
    let cfg = PipelineConfig::fast().with_seed(23).with_reuse_store(&dir);

    // Job 1 seeds the store.
    let (first, first_evals) = compile(&circuit, &cfg);
    let first_stats = first.report().unwrap().reuse.unwrap();
    println!("job1 evals={first_evals} stats={first_stats:?}");
    assert!(first_stats.store_entries_saved > 0, "{first_stats:?}");

    // Job 2 is a fresh process-equivalent session over the same store:
    // every fingerprint it computes is already cached, so annealing is
    // skipped wholesale.
    let (second, second_evals) = compile(&circuit, &cfg);
    let second_stats = second.report().unwrap().reuse.unwrap();
    println!("job2 evals={second_evals} stats={second_stats:?}");
    let outcomes = store_outcomes(&dir);
    println!("store outcomes: {outcomes:?}");
    assert!(second_stats.store_entries_loaded > 0, "{second_stats:?}");
    assert!(second_stats.exact_hits > 0, "{second_stats:?}");
    assert!(
        second_evals < first_evals,
        "warm store must skip annealing: {second_evals} vs {first_evals}"
    );

    let vcfg = VerifyConfig::default().with_seed(23);
    assert!(verify_compiled(&circuit, &second, &vcfg).equivalent);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Outcome labels of every entry in a reuse store directory.
fn store_outcomes(dir: &std::path::Path) -> Vec<String> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if !geyser_reuse::is_reuse_entry(&path) {
                continue;
            }
            if let Ok(payload) = geyser::store::read_record_file(&path) {
                if let Ok(record) = geyser_reuse::parse_reuse_record(payload.text()) {
                    out.push(record.outcome);
                }
            }
        }
    }
    out.sort();
    out
}
