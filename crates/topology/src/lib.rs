//! Neutral-atom lattice topologies, interaction radii, and restriction
//! zones.
//!
//! Neutral-atom machines arrange atoms with optical tweezers in any
//! desired pattern (paper Sec. 3.2); Geyser selects a **triangular
//! grid** so that three mutually-adjacent atoms form equilateral
//! triangles — the natural home of a native CCZ gate — while keeping
//! restriction zones minimal (a 3-qubit gate restricts at most nine
//! neighbouring atoms vs twelve on a square grid, paper Fig. 7).
//!
//! This crate models:
//!
//! * [`Lattice`] — triangular and square atom grids with physical
//!   coordinates and Rydberg-radius adjacency,
//! * restriction zones ([`Lattice::restriction_zone`]) — the set of
//!   non-engaged atoms blocked while a multi-qubit gate executes
//!   (paper Fig. 4),
//! * hop distances and shortest paths for SWAP routing,
//! * triangle enumeration for circuit blocking.
//!
//! # Example
//!
//! ```
//! use geyser_topology::Lattice;
//!
//! let lat = Lattice::triangular(4, 4);
//! // A 3-qubit gate on a triangle restricts at most 9 neighbours.
//! let tri = lat.triangles()[0];
//! assert!(lat.restriction_zone(&tri).len() <= 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lattice;
mod path;
mod render;

pub use lattice::{Lattice, LatticeKind};
pub use path::PathMatrix;
pub use render::render_occupancy;
