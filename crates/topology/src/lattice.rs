//! Atom grid geometry and adjacency.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// The geometric family of an atom arrangement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatticeKind {
    /// Equilateral triangular grid — Geyser's choice (paper Fig. 7a).
    /// Interior atoms have six equidistant neighbours; every adjacent
    /// triple forms an executable CCZ triangle.
    Triangular,
    /// Square grid with perpendicular neighbours only — the layout
    /// used for the superconducting-qubit comparison (paper Sec. 4).
    Square,
    /// Square grid whose interaction radius also reaches diagonal
    /// neighbours (paper Fig. 7b) — used in the topology ablation.
    SquareDiagonal,
}

/// An arrangement of neutral atoms with Rydberg-radius adjacency.
///
/// Atoms are indexed `0..num_nodes()` in row-major order. Two atoms
/// are *adjacent* when their separation is within the interaction
/// radius, meaning a multi-qubit Rydberg gate can engage them — and,
/// dually, that one atom falls inside the other's restriction zone
/// while a multi-qubit gate runs nearby (paper Sec. 2.2).
///
/// # Example
///
/// ```
/// use geyser_topology::{Lattice, LatticeKind};
/// let lat = Lattice::triangular(3, 3);
/// assert_eq!(lat.kind(), LatticeKind::Triangular);
/// assert_eq!(lat.num_nodes(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lattice {
    kind: LatticeKind,
    rows: usize,
    cols: usize,
    positions: Vec<(f64, f64)>,
    neighbors: Vec<Vec<usize>>,
}

impl Lattice {
    /// Unit spacing between adjacent atoms (arbitrary length unit; the
    /// paper's technological parameters fix it at a few μm).
    pub const SPACING: f64 = 1.0;

    /// Builds a triangular grid with `rows × cols` atoms.
    ///
    /// Odd rows are offset by half a spacing, giving interior atoms
    /// six equidistant neighbours at distance [`Lattice::SPACING`].
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0 || cols == 0`.
    pub fn triangular(rows: usize, cols: usize) -> Self {
        Self::with_geometry(LatticeKind::Triangular, rows, cols, Self::SPACING, 1.01)
    }

    /// Builds a square grid with perpendicular adjacency only.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0 || cols == 0`.
    pub fn square(rows: usize, cols: usize) -> Self {
        Self::with_geometry(LatticeKind::Square, rows, cols, Self::SPACING, 1.01)
    }

    /// Builds a square grid whose interaction radius reaches diagonal
    /// neighbours (radius √2·spacing, paper Fig. 7b).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0 || cols == 0`.
    pub fn square_diagonal(rows: usize, cols: usize) -> Self {
        Self::with_geometry(
            LatticeKind::SquareDiagonal,
            rows,
            cols,
            Self::SPACING,
            std::f64::consts::SQRT_2 * 1.01,
        )
    }

    /// Builds a lattice of any family with explicit geometry: atom
    /// `spacing` between grid neighbours and an absolute interaction
    /// `radius`. The paper's layouts correspond to spacing 1.0 with
    /// radius `1.01·spacing` (triangular, square) or `√2·1.01·spacing`
    /// (diagonal square).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0 || cols == 0`, or if `spacing`/`radius`
    /// are not positive finite numbers.
    pub fn with_geometry(
        kind: LatticeKind,
        rows: usize,
        cols: usize,
        spacing: f64,
        radius: f64,
    ) -> Self {
        assert!(
            spacing.is_finite() && spacing > 0.0,
            "atom spacing must be positive and finite"
        );
        assert!(
            radius.is_finite() && radius > 0.0,
            "interaction radius must be positive and finite"
        );
        let positions = match kind {
            LatticeKind::Triangular => (0..rows)
                .flat_map(|r| {
                    (0..cols).map(move |c| {
                        let x = c as f64 * spacing + if r % 2 == 1 { spacing / 2.0 } else { 0.0 };
                        let y = r as f64 * spacing * 3f64.sqrt() / 2.0;
                        (x, y)
                    })
                })
                .collect(),
            LatticeKind::Square | LatticeKind::SquareDiagonal => (0..rows)
                .flat_map(|r| (0..cols).map(move |c| (c as f64 * spacing, r as f64 * spacing)))
                .collect(),
        };
        Self::from_positions(kind, rows, cols, positions, radius)
    }

    /// Sizes a lattice of any family just large enough to host
    /// `num_qubits` atoms (the [`Lattice::grid_dims`] policy), built
    /// with explicit geometry as in [`Lattice::with_geometry`].
    pub fn sized_for(kind: LatticeKind, num_qubits: usize, spacing: f64, radius: f64) -> Self {
        let (r, c) = Self::grid_dims(num_qubits);
        Self::with_geometry(kind, r, c, spacing, radius)
    }

    /// Chooses a lattice just large enough to host `num_qubits` atoms,
    /// keeping the aspect ratio near square.
    pub fn triangular_for(num_qubits: usize) -> Self {
        let (r, c) = Self::grid_dims(num_qubits);
        Self::triangular(r, c)
    }

    /// Square-lattice counterpart of [`Lattice::triangular_for`].
    pub fn square_for(num_qubits: usize) -> Self {
        let (r, c) = Self::grid_dims(num_qubits);
        Self::square(r, c)
    }

    /// The near-square `(rows, cols)` grid sizing policy used by the
    /// `*_for` constructors: `cols = ⌈√n⌉`, `rows = ⌈n / cols⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits == 0`.
    pub fn grid_dims(num_qubits: usize) -> (usize, usize) {
        assert!(num_qubits > 0, "need at least one qubit");
        let c = (num_qubits as f64).sqrt().ceil() as usize;
        let r = num_qubits.div_ceil(c);
        (r.max(1), c.max(1))
    }

    fn from_positions(
        kind: LatticeKind,
        rows: usize,
        cols: usize,
        positions: Vec<(f64, f64)>,
        radius: f64,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "lattice dimensions must be non-zero");
        let n = positions.len();
        let mut neighbors = vec![Vec::new(); n];
        for a in 0..n {
            for b in (a + 1)..n {
                let dx = positions[a].0 - positions[b].0;
                let dy = positions[a].1 - positions[b].1;
                if (dx * dx + dy * dy).sqrt() <= radius {
                    neighbors[a].push(b);
                    neighbors[b].push(a);
                }
            }
        }
        Lattice {
            kind,
            rows,
            cols,
            positions,
            neighbors,
        }
    }

    /// The lattice family.
    #[inline]
    pub fn kind(&self) -> LatticeKind {
        self.kind
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of atoms.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.positions.len()
    }

    /// Physical coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn position(&self, node: usize) -> (f64, f64) {
        self.positions[node]
    }

    /// Nodes within the interaction radius of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn neighbors(&self, node: usize) -> &[usize] {
        &self.neighbors[node]
    }

    /// Returns `true` if `a` and `b` are within the interaction radius.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        a != b && self.neighbors[a].contains(&b)
    }

    /// Euclidean distance between two nodes.
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        let (ax, ay) = self.positions[a];
        let (bx, by) = self.positions[b];
        (ax - bx).hypot(ay - by)
    }

    /// The restriction zone of a multi-qubit gate engaging `engaged`:
    /// every atom within the interaction radius of an engaged atom
    /// that is not itself engaged (paper Fig. 4). Those atoms cannot
    /// run any gate while this one executes.
    pub fn restriction_zone(&self, engaged: &[usize]) -> BTreeSet<usize> {
        let mut zone = BTreeSet::new();
        for &q in engaged {
            for &nb in &self.neighbors[q] {
                if !engaged.contains(&nb) {
                    zone.insert(nb);
                }
            }
        }
        zone
    }

    /// Returns `true` if two gate executions conflict: their engaged
    /// sets intersect, or either (being multi-qubit, hence generating
    /// a restriction zone) restricts a qubit the other engages.
    ///
    /// Single-qubit gates produce no zone (paper Sec. 2.2), so two
    /// single-qubit gates conflict only when they target the same atom.
    pub fn gates_conflict(&self, engaged_a: &[usize], engaged_b: &[usize]) -> bool {
        if engaged_a.iter().any(|q| engaged_b.contains(q)) {
            return true;
        }
        let a_multi = engaged_a.len() > 1;
        let b_multi = engaged_b.len() > 1;
        if a_multi
            && engaged_b
                .iter()
                .any(|&b| engaged_a.iter().any(|&a| self.are_adjacent(a, b)))
        {
            return true;
        }
        if b_multi
            && engaged_a
                .iter()
                .any(|&a| engaged_b.iter().any(|&b| self.are_adjacent(a, b)))
        {
            return true;
        }
        false
    }

    /// All mutually-adjacent node triples, each sorted ascending —
    /// the candidate CCZ blocks for circuit blocking.
    pub fn triangles(&self) -> Vec<[usize; 3]> {
        let mut tris = Vec::new();
        for a in 0..self.num_nodes() {
            for (i, &b) in self.neighbors[a].iter().enumerate() {
                if b <= a {
                    continue;
                }
                for &c in &self.neighbors[a][i + 1..] {
                    if c <= a || c == b {
                        continue;
                    }
                    if self.are_adjacent(b, c) {
                        let mut t = [a, b, c];
                        t.sort_unstable();
                        tris.push(t);
                    }
                }
            }
        }
        tris
    }

    /// All mutually-adjacent node quadruples (sorted ascending) — the
    /// candidate CCCZ cells of the four-qubit blocking ablation
    /// (paper Fig. 7b). Triangular lattices have none; the diagonal
    /// square lattice has one per unit cell.
    pub fn four_cliques(&self) -> Vec<[usize; 4]> {
        let tris = self.triangles();
        let mut out = Vec::new();
        for t in &tris {
            // Extend each triangle by a common neighbour above its max
            // index (dedup by construction).
            let candidates: Vec<usize> = self
                .neighbors(t[0])
                .iter()
                .copied()
                .filter(|&v| v > t[2])
                .collect();
            for v in candidates {
                if self.are_adjacent(t[1], v) && self.are_adjacent(t[2], v) {
                    out.push([t[0], t[1], t[2], v]);
                }
            }
        }
        out
    }

    /// All adjacent node pairs (each sorted ascending).
    pub fn edges(&self) -> Vec<[usize; 2]> {
        let mut out = Vec::new();
        for a in 0..self.num_nodes() {
            for &b in &self.neighbors[a] {
                if b > a {
                    out.push([a, b]);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangular_interior_has_six_neighbors() {
        let lat = Lattice::triangular(5, 5);
        // Node (2,2) = index 12 is interior.
        assert_eq!(lat.neighbors(12).len(), 6);
        // All six at unit distance.
        for &nb in lat.neighbors(12) {
            assert!((lat.distance(12, nb) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn square_interior_has_four_neighbors() {
        let lat = Lattice::square(5, 5);
        assert_eq!(lat.neighbors(12).len(), 4);
    }

    #[test]
    fn square_diagonal_interior_has_eight_neighbors() {
        let lat = Lattice::square_diagonal(5, 5);
        assert_eq!(lat.neighbors(12).len(), 8);
    }

    #[test]
    fn adjacency_is_symmetric() {
        for lat in [
            Lattice::triangular(4, 5),
            Lattice::square(4, 5),
            Lattice::square_diagonal(4, 5),
        ] {
            for a in 0..lat.num_nodes() {
                for &b in lat.neighbors(a) {
                    assert!(lat.are_adjacent(b, a), "{a}-{b} asymmetric");
                }
            }
        }
    }

    #[test]
    fn two_qubit_zone_at_most_eight_on_triangular() {
        // Paper Fig. 4: a two-qubit operation restricts at most 8
        // nearby qubits on the triangular lattice.
        let lat = Lattice::triangular(6, 6);
        for e in lat.edges() {
            let zone = lat.restriction_zone(&e);
            assert!(zone.len() <= 8, "edge {e:?} zone {}", zone.len());
        }
        // Some interior edge achieves exactly 8.
        let max = lat
            .edges()
            .iter()
            .map(|e| lat.restriction_zone(e).len())
            .max()
            .unwrap();
        assert_eq!(max, 8);
    }

    #[test]
    fn three_qubit_zone_at_most_nine_on_triangular() {
        // Paper Fig. 4: a three-qubit operation restricts at most 9.
        let lat = Lattice::triangular(6, 6);
        let max = lat
            .triangles()
            .iter()
            .map(|t| lat.restriction_zone(t).len())
            .max()
            .unwrap();
        assert_eq!(max, 9);
    }

    #[test]
    fn four_qubit_square_cell_zone_is_twelve() {
        // Paper Fig. 7b: a four-qubit gate on a square cell restricts
        // 12 qubits on the diagonal square lattice.
        let lat = Lattice::square_diagonal(6, 6);
        // Interior unit cell (2,2),(2,3),(3,2),(3,3) = 14,15,20,21.
        let cell = [14, 15, 20, 21];
        assert_eq!(lat.restriction_zone(&cell).len(), 12);
    }

    #[test]
    fn restriction_zone_excludes_engaged() {
        let lat = Lattice::triangular(4, 4);
        let tri = lat.triangles()[0];
        let zone = lat.restriction_zone(&tri);
        for q in tri {
            assert!(!zone.contains(&q));
        }
    }

    #[test]
    fn zone_of_single_qubit_is_its_neighborhood() {
        let lat = Lattice::triangular(4, 4);
        let zone = lat.restriction_zone(&[5]);
        assert_eq!(zone.len(), lat.neighbors(5).len());
    }

    #[test]
    fn conflict_rules() {
        let lat = Lattice::triangular(5, 5);
        // Shared qubit always conflicts.
        assert!(lat.gates_conflict(&[0], &[0]));
        // Two 1q gates on different atoms never conflict, even adjacent.
        assert!(!lat.gates_conflict(&[0], &[1]));
        // A 2q gate conflicts with an adjacent 1q gate.
        let edge = lat.edges()[0];
        let nb = lat
            .restriction_zone(&edge)
            .into_iter()
            .next()
            .expect("edge has a zone");
        assert!(lat.gates_conflict(&edge, &[nb]));
        // Far-apart multi-qubit gates do not conflict.
        let tris = lat.triangles();
        let t1 = tris[0];
        let far = tris
            .iter()
            .find(|t| {
                t.iter()
                    .all(|&q| t1.iter().all(|&p| !lat.are_adjacent(p, q) && p != q))
            })
            .expect("lattice large enough for disjoint triangles");
        assert!(!lat.gates_conflict(&t1, far));
    }

    #[test]
    fn triangular_lattice_has_triangles_square_does_not() {
        assert!(!Lattice::triangular(3, 3).triangles().is_empty());
        assert!(Lattice::square(3, 3).triangles().is_empty());
        assert!(!Lattice::square_diagonal(3, 3).triangles().is_empty());
    }

    #[test]
    fn triangles_are_sorted_and_unique() {
        let lat = Lattice::triangular(4, 4);
        let tris = lat.triangles();
        let mut seen = std::collections::BTreeSet::new();
        for t in &tris {
            assert!(t[0] < t[1] && t[1] < t[2], "unsorted triangle {t:?}");
            assert!(seen.insert(*t), "duplicate triangle {t:?}");
        }
    }

    #[test]
    fn four_cliques_only_on_diagonal_square() {
        assert!(Lattice::triangular(4, 4).four_cliques().is_empty());
        assert!(Lattice::square(4, 4).four_cliques().is_empty());
        let diag = Lattice::square_diagonal(3, 3);
        let cells = diag.four_cliques();
        // One K4 per unit cell: (rows-1)·(cols-1) = 4.
        assert_eq!(cells.len(), 4);
        for cell in &cells {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    assert!(diag.are_adjacent(cell[i], cell[j]), "{cell:?}");
                }
            }
            assert!(cell.windows(2).all(|w| w[0] < w[1]), "unsorted {cell:?}");
        }
    }

    #[test]
    fn sized_constructors_fit_requested_qubits() {
        for n in 1..30 {
            assert!(Lattice::triangular_for(n).num_nodes() >= n);
            assert!(Lattice::square_for(n).num_nodes() >= n);
        }
    }

    #[test]
    fn with_geometry_reproduces_paper_constructors_bit_identically() {
        assert_eq!(
            Lattice::with_geometry(LatticeKind::Triangular, 4, 5, 1.0, 1.01),
            Lattice::triangular(4, 5)
        );
        assert_eq!(
            Lattice::with_geometry(LatticeKind::Square, 4, 5, 1.0, 1.01),
            Lattice::square(4, 5)
        );
        assert_eq!(
            Lattice::with_geometry(
                LatticeKind::SquareDiagonal,
                3,
                3,
                1.0,
                std::f64::consts::SQRT_2 * 1.01,
            ),
            Lattice::square_diagonal(3, 3)
        );
        for n in 1..20 {
            assert_eq!(
                Lattice::sized_for(LatticeKind::Triangular, n, 1.0, 1.01),
                Lattice::triangular_for(n)
            );
        }
    }

    #[test]
    fn wider_radius_reaches_diagonal_neighbors() {
        // Radius 1.5 on a plain square grid reaches the √2 diagonal,
        // so the perpendicular-only family gains triangles.
        let lat = Lattice::with_geometry(LatticeKind::Square, 3, 3, 1.0, 1.5);
        assert!(lat.are_adjacent(0, 4));
        assert!(!lat.triangles().is_empty());
    }

    #[test]
    fn edges_count_matches_neighbor_lists() {
        let lat = Lattice::triangular(4, 4);
        let total_degree: usize = (0..lat.num_nodes()).map(|v| lat.neighbors(v).len()).sum();
        assert_eq!(lat.edges().len() * 2, total_degree);
    }
}
