//! All-pairs hop distances and shortest paths for SWAP routing.

use std::collections::VecDeque;

use crate::Lattice;

/// Precomputed all-pairs BFS over a lattice's adjacency graph.
///
/// Hop distance is the routing metric: bringing two qubits together
/// for a two-qubit gate costs one SWAP per hop beyond adjacency.
///
/// # Example
///
/// ```
/// use geyser_topology::{Lattice, PathMatrix};
/// let lat = Lattice::square(3, 3);
/// let pm = PathMatrix::new(&lat);
/// // Corner to opposite corner of a 3×3 grid: 4 hops.
/// assert_eq!(pm.hops(0, 8), 4);
/// ```
#[derive(Debug, Clone)]
pub struct PathMatrix {
    n: usize,
    /// `dist[a * n + b]` = hop count, `usize::MAX` if disconnected.
    dist: Vec<usize>,
    /// `next[a * n + b]` = first hop on a shortest path a→b.
    next: Vec<usize>,
}

impl PathMatrix {
    /// Runs BFS from every node of `lattice`.
    pub fn new(lattice: &Lattice) -> Self {
        let n = lattice.num_nodes();
        let mut dist = vec![usize::MAX; n * n];
        let mut next = vec![usize::MAX; n * n];
        for src in 0..n {
            dist[src * n + src] = 0;
            next[src * n + src] = src;
            let mut queue = VecDeque::from([src]);
            while let Some(u) = queue.pop_front() {
                for &v in lattice.neighbors(u) {
                    if dist[src * n + v] == usize::MAX {
                        dist[src * n + v] = dist[src * n + u] + 1;
                        // First hop toward v: if u is the source, the
                        // first hop is v itself; otherwise inherit.
                        next[src * n + v] = if u == src { v } else { next[src * n + u] };
                        queue.push_back(v);
                    }
                }
            }
        }
        PathMatrix { n, dist, next }
    }

    /// Hop distance between two nodes (0 for identical nodes).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or the nodes are
    /// disconnected (cannot happen for the grid constructors).
    pub fn hops(&self, a: usize, b: usize) -> usize {
        assert!(a < self.n && b < self.n, "node out of range");
        let d = self.dist[a * self.n + b];
        assert_ne!(d, usize::MAX, "nodes {a} and {b} are disconnected");
        d
    }

    /// A shortest node path from `a` to `b`, inclusive of both ends.
    ///
    /// # Panics
    ///
    /// Same conditions as [`PathMatrix::hops`].
    pub fn shortest_path(&self, a: usize, b: usize) -> Vec<usize> {
        let mut path = vec![a];
        let mut cur = a;
        let _ = self.hops(a, b); // validates connectivity
        while cur != b {
            cur = self.next[cur * self.n + b];
            path.push(cur);
        }
        path
    }

    /// Number of nodes the matrix was built over.
    pub fn num_nodes(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_nodes_are_one_hop() {
        let lat = Lattice::triangular(3, 3);
        let pm = PathMatrix::new(&lat);
        for e in lat.edges() {
            assert_eq!(pm.hops(e[0], e[1]), 1);
        }
    }

    #[test]
    fn self_distance_is_zero() {
        let lat = Lattice::square(3, 3);
        let pm = PathMatrix::new(&lat);
        for v in 0..lat.num_nodes() {
            assert_eq!(pm.hops(v, v), 0);
            assert_eq!(pm.shortest_path(v, v), vec![v]);
        }
    }

    #[test]
    fn distances_are_symmetric() {
        let lat = Lattice::triangular(4, 5);
        let pm = PathMatrix::new(&lat);
        for a in 0..lat.num_nodes() {
            for b in 0..lat.num_nodes() {
                assert_eq!(pm.hops(a, b), pm.hops(b, a));
            }
        }
    }

    #[test]
    fn square_grid_manhattan_distance() {
        let lat = Lattice::square(4, 4);
        let pm = PathMatrix::new(&lat);
        // (0,0) -> (3,3): Manhattan distance 6.
        assert_eq!(pm.hops(0, 15), 6);
    }

    #[test]
    fn paths_are_valid_walks_of_right_length() {
        let lat = Lattice::triangular(4, 4);
        let pm = PathMatrix::new(&lat);
        for a in 0..lat.num_nodes() {
            for b in 0..lat.num_nodes() {
                let path = pm.shortest_path(a, b);
                assert_eq!(path.len(), pm.hops(a, b) + 1);
                assert_eq!(path[0], a);
                assert_eq!(*path.last().unwrap(), b);
                for w in path.windows(2) {
                    assert!(lat.are_adjacent(w[0], w[1]), "invalid step {w:?}");
                }
            }
        }
    }

    #[test]
    fn triangle_inequality_on_hops() {
        let lat = Lattice::square(4, 4);
        let pm = PathMatrix::new(&lat);
        for a in 0..16 {
            for b in 0..16 {
                for c in 0..16 {
                    assert!(pm.hops(a, c) <= pm.hops(a, b) + pm.hops(b, c));
                }
            }
        }
    }
}
