//! Text rendering of lattice occupancy — the paper's Fig. 4 view:
//! active atoms, their restriction zones, and free atoms.

use crate::Lattice;

/// Cell glyphs used by [`render_occupancy`].
const ACTIVE: char = '●';
const RESTRICTED: char = '■';
const FREE: char = '·';

/// Renders the lattice with the given engaged atom groups as an
/// ASCII/Unicode diagram: `●` engaged, `■` inside a restriction zone,
/// `·` free — the visual of paper Fig. 4.
///
/// Each inner slice of `engaged_groups` is one concurrently-executing
/// operation; zones are computed per multi-qubit group.
///
/// # Panics
///
/// Panics if any engaged node is out of range.
///
/// # Example
///
/// ```
/// use geyser_topology::{render_occupancy, Lattice};
/// let lat = Lattice::triangular(3, 3);
/// let picture = render_occupancy(&lat, &[&[0, 1]]);
/// assert!(picture.contains('●'));
/// assert!(picture.contains('■'));
/// ```
pub fn render_occupancy(lattice: &Lattice, engaged_groups: &[&[usize]]) -> String {
    let n = lattice.num_nodes();
    let mut state = vec![FREE; n];
    for group in engaged_groups {
        if group.len() > 1 {
            for z in lattice.restriction_zone(group) {
                if state[z] == FREE {
                    state[z] = RESTRICTED;
                }
            }
        }
    }
    // Engaged marks win over restricted ones.
    for group in engaged_groups {
        for &q in *group {
            assert!(q < n, "engaged node {q} out of range");
            state[q] = ACTIVE;
        }
    }

    let mut out = String::new();
    for r in 0..lattice.rows() {
        // Offset odd triangular rows to suggest the geometry.
        let (x0, _) = lattice.position(r * lattice.cols());
        out.push_str(&" ".repeat((x0 * 2.0).round() as usize));
        for c in 0..lattice.cols() {
            let v = r * lattice.cols() + c;
            out.push(state[v]);
            if c + 1 < lattice.cols() {
                out.push_str("   ");
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_engaged_restricted_and_free() {
        let lat = Lattice::triangular(4, 4);
        let tri = lat.triangles()[0];
        let picture = render_occupancy(&lat, &[&tri]);
        let actives = picture.matches(ACTIVE).count();
        let restricted = picture.matches(RESTRICTED).count();
        let free = picture.matches(FREE).count();
        assert_eq!(actives, 3);
        assert_eq!(restricted, lat.restriction_zone(&tri).len());
        assert_eq!(actives + restricted + free, lat.num_nodes());
    }

    #[test]
    fn single_qubit_ops_cast_no_zone() {
        let lat = Lattice::triangular(3, 3);
        let picture = render_occupancy(&lat, &[&[4]]);
        assert_eq!(picture.matches(ACTIVE).count(), 1);
        assert_eq!(picture.matches(RESTRICTED).count(), 0);
    }

    #[test]
    fn multiple_groups_merge_zones() {
        let lat = Lattice::triangular(3, 6);
        let picture = render_occupancy(&lat, &[&[0, 1], &[16, 17]]);
        assert_eq!(picture.matches(ACTIVE).count(), 4);
        let z1 = lat.restriction_zone(&[0, 1]).len();
        let z2 = lat.restriction_zone(&[16, 17]).len();
        assert_eq!(picture.matches(RESTRICTED).count(), z1 + z2);
    }

    #[test]
    fn row_count_matches_lattice() {
        let lat = Lattice::square(3, 5);
        let picture = render_occupancy(&lat, &[]);
        assert_eq!(picture.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        let lat = Lattice::square(2, 2);
        let _ = render_occupancy(&lat, &[&[9]]);
    }
}
