//! Pauli-string observables and expectation values.
//!
//! Variational workloads (VQE, QAOA, Hamiltonian evolution) are judged
//! by the expectation value of a Hamiltonian, not by a single output
//! distribution. This module provides weighted Pauli-string
//! observables and `⟨ψ|H|ψ⟩` evaluation against the state-vector
//! engine — used by the energy-error evaluation example and tests.

use serde::{Deserialize, Serialize};

use crate::StateVector;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pauli {
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

/// A weighted tensor product of Pauli operators on specific qubits,
/// e.g. `0.5 · X₀X₁` or `-1.25 · Z₂`.
///
/// # Example
///
/// ```
/// use geyser_sim::{Pauli, PauliString};
/// let zz = PauliString::new(0.5, vec![(0, Pauli::Z), (1, Pauli::Z)]);
/// assert_eq!(zz.weight(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PauliString {
    coefficient: f64,
    factors: Vec<(usize, Pauli)>,
}

impl PauliString {
    /// Creates a weighted Pauli string.
    ///
    /// # Panics
    ///
    /// Panics if a qubit appears twice.
    pub fn new(coefficient: f64, factors: Vec<(usize, Pauli)>) -> Self {
        for (i, (q, _)) in factors.iter().enumerate() {
            assert!(
                !factors[..i].iter().any(|(p, _)| p == q),
                "qubit {q} repeated in Pauli string"
            );
        }
        PauliString {
            coefficient,
            factors,
        }
    }

    /// The identity term `c · I`.
    pub fn identity(coefficient: f64) -> Self {
        Self::new(coefficient, Vec::new())
    }

    /// The real coefficient.
    pub fn coefficient(&self) -> f64 {
        self.coefficient
    }

    /// The non-identity factors.
    pub fn factors(&self) -> &[(usize, Pauli)] {
        &self.factors
    }

    /// Number of non-identity factors (the Pauli weight).
    pub fn weight(&self) -> usize {
        self.factors.len()
    }

    /// Applies the (unweighted) Pauli product to a state in place.
    fn apply_to(&self, sv: &mut StateVector) {
        for &(q, p) in &self.factors {
            match p {
                Pauli::X => sv.apply_x(q),
                Pauli::Z => sv.apply_z(q),
                Pauli::Y => {
                    // Y = i·X·Z: apply Z then X; the global i phase
                    // cancels in ⟨ψ|P|ψ⟩ only when tracked, so apply
                    // it explicitly below via apply_phase_i.
                    sv.apply_z(q);
                    sv.apply_x(q);
                    sv.apply_global_i();
                }
            }
        }
    }

    /// `coefficient · ⟨ψ|P|ψ⟩` (real because P is Hermitian).
    ///
    /// # Panics
    ///
    /// Panics if a factor's qubit exceeds the state's register.
    pub fn expectation(&self, sv: &StateVector) -> f64 {
        let mut transformed = sv.clone();
        self.apply_to(&mut transformed);
        self.coefficient * sv.inner(&transformed).re
    }
}

/// A Hermitian observable as a sum of weighted Pauli strings.
///
/// # Example
///
/// ```
/// use geyser_sim::{Observable, Pauli, PauliString, StateVector};
/// // H = Z₀ on a single qubit: ⟨0|Z|0⟩ = 1.
/// let h = Observable::new(vec![PauliString::new(1.0, vec![(0, Pauli::Z)])]);
/// let sv = StateVector::zero_state(1);
/// assert!((h.expectation(&sv) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observable {
    terms: Vec<PauliString>,
}

impl Observable {
    /// Creates an observable from its Pauli terms.
    pub fn new(terms: Vec<PauliString>) -> Self {
        Observable { terms }
    }

    /// The constituent terms.
    pub fn terms(&self) -> &[PauliString] {
        &self.terms
    }

    /// `⟨ψ|H|ψ⟩ = Σ cᵢ ⟨ψ|Pᵢ|ψ⟩`.
    pub fn expectation(&self, sv: &StateVector) -> f64 {
        self.terms.iter().map(|t| t.expectation(sv)).sum()
    }

    /// The 1D Heisenberg XXX chain Hamiltonian used by the paper's
    /// materials-simulation workload:
    /// `H = J Σᵢ (XᵢXᵢ₊₁ + YᵢYᵢ₊₁ + ZᵢZᵢ₊₁) + h Σᵢ Zᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn heisenberg_chain(n: usize, j: f64, h: f64) -> Self {
        assert!(n >= 2, "chain needs at least two sites");
        let mut terms = Vec::new();
        for i in 0..n - 1 {
            for p in [Pauli::X, Pauli::Y, Pauli::Z] {
                terms.push(PauliString::new(j, vec![(i, p), (i + 1, p)]));
            }
        }
        for i in 0..n {
            terms.push(PauliString::new(h, vec![(i, Pauli::Z)]));
        }
        Observable::new(terms)
    }

    /// MaxCut cost observable `Σ_(u,v)∈E ½(1 − Z_u Z_v)` whose
    /// expectation is the expected cut size — QAOA's figure of merit.
    pub fn maxcut(edges: &[(usize, usize)]) -> Self {
        let mut terms = vec![PauliString::identity(0.5 * edges.len() as f64)];
        for &(u, v) in edges {
            terms.push(PauliString::new(-0.5, vec![(u, Pauli::Z), (v, Pauli::Z)]));
        }
        Observable::new(terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_circuit::Circuit;

    fn state_of(c: &Circuit) -> StateVector {
        let mut sv = StateVector::zero_state(c.num_qubits());
        sv.apply_circuit(c);
        sv
    }

    #[test]
    fn z_expectation_on_basis_states() {
        let zero = StateVector::zero_state(1);
        let z = PauliString::new(1.0, vec![(0, Pauli::Z)]);
        assert!((z.expectation(&zero) - 1.0).abs() < 1e-12);
        let mut c = Circuit::new(1);
        c.x(0);
        assert!((z.expectation(&state_of(&c)) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_expectation_on_plus_state() {
        let mut c = Circuit::new(1);
        c.h(0);
        let x = PauliString::new(1.0, vec![(0, Pauli::X)]);
        assert!((x.expectation(&state_of(&c)) - 1.0).abs() < 1e-12);
        let z = PauliString::new(1.0, vec![(0, Pauli::Z)]);
        assert!(z.expectation(&state_of(&c)).abs() < 1e-12);
    }

    #[test]
    fn y_expectation_on_y_eigenstate() {
        // |+i⟩ = S H |0⟩ has ⟨Y⟩ = +1.
        let mut c = Circuit::new(1);
        c.h(0).s(0);
        let y = PauliString::new(1.0, vec![(0, Pauli::Y)]);
        assert!((y.expectation(&state_of(&c)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zz_on_bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = state_of(&c);
        let zz = PauliString::new(1.0, vec![(0, Pauli::Z), (1, Pauli::Z)]);
        let xx = PauliString::new(1.0, vec![(0, Pauli::X), (1, Pauli::X)]);
        let yy = PauliString::new(1.0, vec![(0, Pauli::Y), (1, Pauli::Y)]);
        assert!((zz.expectation(&sv) - 1.0).abs() < 1e-12);
        assert!((xx.expectation(&sv) - 1.0).abs() < 1e-12);
        assert!((yy.expectation(&sv) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn coefficient_scales_linearly() {
        let sv = StateVector::zero_state(1);
        let z = PauliString::new(-2.5, vec![(0, Pauli::Z)]);
        assert!((z.expectation(&sv) + 2.5).abs() < 1e-12);
    }

    #[test]
    fn heisenberg_neel_energy() {
        // ⟨0101|H|0101⟩: XX/YY terms vanish, each ZZ bond gives −J,
        // field gives h·(+1−1+1−1) = 0.
        let n = 4;
        let ham = Observable::heisenberg_chain(n, 1.0, 0.5);
        let mut c = Circuit::new(n);
        c.x(1).x(3);
        let e = ham.expectation(&state_of(&c));
        assert!((e + 3.0).abs() < 1e-12, "E = {e}");
    }

    #[test]
    fn maxcut_counts_cut_edges() {
        // Triangle graph, state |010⟩ cuts edges (0,1) and (1,2).
        let obs = Observable::maxcut(&[(0, 1), (1, 2), (0, 2)]);
        let mut c = Circuit::new(3);
        c.x(1);
        let cut = obs.expectation(&state_of(&c));
        assert!((cut - 2.0).abs() < 1e-12);
    }

    #[test]
    fn energy_conserved_under_trotter_evolution() {
        // The Trotterized Heisenberg evolution approximately conserves
        // the Hamiltonian it simulates.
        use geyser_workloads_shim::heisenberg_like;
        let n = 4;
        let ham = Observable::heisenberg_chain(n, 1.0, 0.5);
        let init = {
            let mut c = Circuit::new(n);
            c.x(1).x(3);
            state_of(&c)
        };
        let e0 = ham.expectation(&init);
        let evolved = state_of(&heisenberg_like(n, 3, 0.05));
        let e1 = ham.expectation(&evolved);
        assert!((e0 - e1).abs() < 0.05, "energy drifted {e0} → {e1}");
    }

    /// Minimal local re-implementation of the Heisenberg circuit to
    /// avoid a dev-dependency cycle with `geyser-workloads`.
    mod geyser_workloads_shim {
        use geyser_circuit::Circuit;

        pub fn heisenberg_like(n: usize, steps: usize, dt: f64) -> Circuit {
            let theta = 2.0 * dt;
            let mut c = Circuit::new(n);
            for q in (1..n).step_by(2) {
                c.x(q);
            }
            for _ in 0..steps {
                for i in 0..n - 1 {
                    let (a, b) = (i, i + 1);
                    c.h(a).h(b);
                    c.cx(a, b);
                    c.rz(theta, b);
                    c.cx(a, b);
                    c.h(a).h(b);
                    c.rx(std::f64::consts::FRAC_PI_2, a)
                        .rx(std::f64::consts::FRAC_PI_2, b);
                    c.cx(a, b);
                    c.rz(theta, b);
                    c.cx(a, b);
                    c.rx(-std::f64::consts::FRAC_PI_2, a)
                        .rx(-std::f64::consts::FRAC_PI_2, b);
                    c.cx(a, b);
                    c.rz(theta, b);
                    c.cx(a, b);
                }
                for q in 0..n {
                    c.rz(2.0 * 0.5 * dt, q);
                }
            }
            c
        }
    }
}
