//! Typed errors for numerical-health failures in simulation.

use std::fmt;

/// A numerical-health failure detected during simulation.
///
/// State-vector evolution under exact unitaries preserves the norm and
/// never produces NaN/Inf; either symptom means the input matrices were
/// corrupt or accumulated error grew pathological. These surface as
/// typed errors so the pipeline can degrade (resample, fall back)
/// instead of silently propagating garbage probabilities.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A NaN or Inf amplitude appeared in the state vector.
    NonFiniteAmplitude {
        /// Index of the circuit operation after which the bad
        /// amplitude was detected, when known.
        step: Option<usize>,
    },
    /// The squared norm drifted from 1 beyond tolerance (unitarity
    /// violation — the applied matrices were not unitary).
    NormDrift {
        /// Observed squared norm.
        norm_sqr: f64,
    },
    /// A Monte-Carlo trajectory remained numerically unhealthy after
    /// the bounded rejection-and-resample retries.
    TrajectoryRejected {
        /// Index of the offending trajectory.
        trajectory: usize,
        /// Resample attempts that were made before giving up.
        retries: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NonFiniteAmplitude { step: Some(step) } => {
                write!(f, "non-finite amplitude after operation {step}")
            }
            SimError::NonFiniteAmplitude { step: None } => {
                write!(f, "non-finite amplitude in state vector")
            }
            SimError::NormDrift { norm_sqr } => {
                write!(f, "state norm drifted from 1 (norm² = {norm_sqr})")
            }
            SimError::TrajectoryRejected {
                trajectory,
                retries,
            } => write!(
                f,
                "trajectory {trajectory} still unhealthy after {retries} resamples"
            ),
        }
    }
}

impl std::error::Error for SimError {}
