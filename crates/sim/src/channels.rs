//! General quantum channels in Kraus form.
//!
//! The paper's evaluation uses the bit-flip + phase-flip channel; this
//! module generalizes the exact (density-matrix) engine to arbitrary
//! single-qubit Kraus channels — depolarizing and amplitude damping
//! are provided — so the noise-model ablations can explore channels
//! the stochastic-Pauli trajectory sampler cannot represent.

use geyser_num::{CMatrix, Complex};

use crate::DensityMatrix;

/// A single-qubit quantum channel as a set of Kraus operators
/// `{K_i}` with `Σ K_i† K_i = I`.
///
/// # Example
///
/// ```
/// use geyser_sim::KrausChannel;
/// let ch = KrausChannel::depolarizing(0.1);
/// assert_eq!(ch.operators().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KrausChannel {
    operators: Vec<CMatrix>,
}

impl KrausChannel {
    /// Builds a channel from explicit Kraus operators.
    ///
    /// # Panics
    ///
    /// Panics if the operators are not all 2×2 or violate the
    /// completeness relation `Σ K†K = I` beyond `1e-9`.
    pub fn new(operators: Vec<CMatrix>) -> Self {
        assert!(!operators.is_empty(), "channel needs Kraus operators");
        let mut sum = CMatrix::zeros(2, 2);
        for k in &operators {
            assert_eq!(k.rows(), 2, "Kraus operators must be 2×2");
            assert_eq!(k.cols(), 2, "Kraus operators must be 2×2");
            sum = &sum + &k.dagger().matmul(k);
        }
        assert!(
            sum.approx_eq(&CMatrix::identity(2), 1e-9),
            "Kraus operators violate completeness"
        );
        KrausChannel { operators }
    }

    /// The Kraus operators.
    pub fn operators(&self) -> &[CMatrix] {
        &self.operators
    }

    /// Bit-flip channel: `ρ → (1−p)ρ + p XρX`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    pub fn bit_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let k0 = CMatrix::identity(2).scale(Complex::from_real((1.0 - p).sqrt()));
        let k1 = geyser_circuit::Gate::X
            .matrix()
            .scale(Complex::from_real(p.sqrt()));
        Self::new(vec![k0, k1])
    }

    /// Phase-flip channel: `ρ → (1−p)ρ + p ZρZ`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    pub fn phase_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let k0 = CMatrix::identity(2).scale(Complex::from_real((1.0 - p).sqrt()));
        let k1 = geyser_circuit::Gate::Z
            .matrix()
            .scale(Complex::from_real(p.sqrt()));
        Self::new(vec![k0, k1])
    }

    /// Symmetric depolarizing channel:
    /// `ρ → (1−p)ρ + p/3 (XρX + YρY + ZρZ)`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    pub fn depolarizing(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let s = (p / 3.0).sqrt();
        Self::new(vec![
            CMatrix::identity(2).scale(Complex::from_real((1.0 - p).sqrt())),
            geyser_circuit::Gate::X
                .matrix()
                .scale(Complex::from_real(s)),
            geyser_circuit::Gate::Y
                .matrix()
                .scale(Complex::from_real(s)),
            geyser_circuit::Gate::Z
                .matrix()
                .scale(Complex::from_real(s)),
        ])
    }

    /// Amplitude-damping channel with decay probability `γ` —
    /// the `T₁` relaxation of a physical qubit toward `|0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `γ ∉ [0, 1]`.
    pub fn amplitude_damping(gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma out of range");
        let z = Complex::ZERO;
        let k0 = CMatrix::from_rows(&[
            &[Complex::ONE, z],
            &[z, Complex::from_real((1.0 - gamma).sqrt())],
        ]);
        let k1 = CMatrix::from_rows(&[&[z, Complex::from_real(gamma.sqrt())], &[z, z]]);
        Self::new(vec![k0, k1])
    }
}

impl DensityMatrix {
    /// Applies a single-qubit Kraus channel to one qubit:
    /// `ρ → Σ_i K_i ρ K_i†`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn apply_channel(&mut self, channel: &KrausChannel, qubit: usize) {
        let n = self.num_qubits();
        assert!(qubit < n, "qubit out of range");
        let mut out = CMatrix::zeros(self.as_matrix().rows(), self.as_matrix().cols());
        for k in channel.operators() {
            let full = crate::embed_gate(k, &[qubit], n);
            let term = full.matmul(self.as_matrix()).matmul(&full.dagger());
            out = &out + &term;
        }
        self.set_matrix(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_circuit::Circuit;

    fn plus_state() -> DensityMatrix {
        let mut rho = DensityMatrix::zero_state(1);
        let mut c = Circuit::new(1);
        c.h(0);
        rho.apply_circuit_noisy(&c, &crate::NoiseModel::noiseless());
        rho
    }

    #[test]
    fn channels_preserve_trace() {
        for ch in [
            KrausChannel::bit_flip(0.3),
            KrausChannel::phase_flip(0.2),
            KrausChannel::depolarizing(0.4),
            KrausChannel::amplitude_damping(0.25),
        ] {
            let mut rho = plus_state();
            rho.apply_channel(&ch, 0);
            assert!((rho.trace().re - 1.0).abs() < 1e-10);
            assert!(rho.trace().im.abs() < 1e-12);
        }
    }

    #[test]
    fn full_depolarizing_yields_maximally_mixed() {
        // p = 3/4 with equal Pauli weights is the fully depolarizing
        // point: ρ → I/2 for any input.
        let mut rho = plus_state();
        rho.apply_channel(&KrausChannel::depolarizing(0.75), 0);
        let m = rho.as_matrix();
        assert!((m[(0, 0)].re - 0.5).abs() < 1e-10);
        assert!((m[(1, 1)].re - 0.5).abs() < 1e-10);
        assert!(m[(0, 1)].norm() < 1e-10);
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let gamma = 0.3;
        let mut rho = DensityMatrix::zero_state(1);
        let mut c = Circuit::new(1);
        c.x(0);
        rho.apply_circuit_noisy(&c, &crate::NoiseModel::noiseless());
        rho.apply_channel(&KrausChannel::amplitude_damping(gamma), 0);
        let p = rho.probabilities();
        assert!((p[1] - (1.0 - gamma)).abs() < 1e-10);
        assert!((p[0] - gamma).abs() < 1e-10);
        // Unlike Pauli channels, repeated damping converges to |0⟩.
        for _ in 0..200 {
            rho.apply_channel(&KrausChannel::amplitude_damping(gamma), 0);
        }
        assert!(rho.probabilities()[0] > 0.999999);
    }

    #[test]
    fn phase_flip_kills_coherence_not_populations() {
        let mut rho = plus_state();
        rho.apply_channel(&KrausChannel::phase_flip(0.5), 0);
        let m = rho.as_matrix();
        // Populations stay 50/50; off-diagonals vanish at p = 1/2.
        assert!((m[(0, 0)].re - 0.5).abs() < 1e-10);
        assert!(m[(0, 1)].norm() < 1e-10);
    }

    #[test]
    fn bit_flip_channel_matches_noise_model_closed_form() {
        // One bit-flip channel application equals one NoiseModel
        // invocation with the same rate (phase part disabled).
        let p = 0.17;
        let mut via_channel = DensityMatrix::zero_state(1);
        via_channel.apply_channel(&KrausChannel::bit_flip(p), 0);
        let d1 = via_channel.probabilities();
        assert!((d1[1] - p).abs() < 1e-12);
    }

    #[test]
    fn channel_on_one_qubit_of_entangled_pair() {
        // Damping one half of a Bell pair breaks the correlation
        // asymmetrically: P(01) gains weight... specifically,
        // ρ_Bell under damping of qubit 1 puts γ/2 mass on |10⟩.
        let mut rho = DensityMatrix::zero_state(2);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        rho.apply_circuit_noisy(&c, &crate::NoiseModel::noiseless());
        rho.apply_channel(&KrausChannel::amplitude_damping(0.4), 1);
        let p = rho.probabilities();
        assert!((p[0b10] - 0.2).abs() < 1e-10, "p = {p:?}");
        assert!((p[0b11] - 0.3).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "completeness")]
    fn invalid_kraus_set_rejected() {
        let _ = KrausChannel::new(vec![CMatrix::identity(2).scale(Complex::from_real(0.5))]);
    }
}
