//! Exact density-matrix simulation of the noise channel.
//!
//! The Monte-Carlo trajectory engine ([`crate::sample_noisy_distribution`])
//! is an *estimator* of the true channel output; this module evolves
//! the full density matrix `ρ` exactly, applying the bit-flip and
//! phase-flip channels in closed form:
//!
//! `ρ → (1−p)·ρ + p·X ρ X` (and likewise with `Z`).
//!
//! Exact evolution costs `O(4^n)` memory, so it is limited to small
//! registers (`n ≤ 8`) — exactly the regime needed to validate the
//! trajectory sampler, which the cross-check tests here do.

use geyser_circuit::{Circuit, Operation};
use geyser_num::{CMatrix, Complex};

use crate::{embed_gate, NoiseModel};

/// An `n`-qubit mixed state as a `2^n × 2^n` density matrix.
///
/// # Example
///
/// ```
/// use geyser_circuit::Circuit;
/// use geyser_sim::{DensityMatrix, NoiseModel};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let mut rho = DensityMatrix::zero_state(2);
/// rho.apply_circuit_noisy(&c, &NoiseModel::noiseless());
/// let p = rho.probabilities();
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// assert!((p[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    num_qubits: usize,
    rho: CMatrix,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 8` (the dense matrix would be > 4 GiB
    /// beyond that).
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(num_qubits <= 8, "density matrix limited to 8 qubits");
        let dim = 1usize << num_qubits;
        let mut rho = CMatrix::zeros(dim, dim);
        rho[(0, 0)] = Complex::ONE;
        DensityMatrix { num_qubits, rho }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Borrows the underlying matrix.
    pub fn as_matrix(&self) -> &CMatrix {
        &self.rho
    }

    /// Replaces the underlying matrix (used by channel application).
    pub(crate) fn set_matrix(&mut self, rho: CMatrix) {
        debug_assert_eq!(rho.rows(), 1 << self.num_qubits);
        self.rho = rho;
    }

    /// Applies a unitary operation: `ρ → U ρ U†`.
    pub fn apply_operation(&mut self, op: &Operation) {
        let u = embed_gate(&op.gate().matrix(), op.qubits(), self.num_qubits);
        self.rho = u.matmul(&self.rho).matmul(&u.dagger());
    }

    /// Applies the single-qubit Pauli channel
    /// `ρ → (1−p)·ρ + p·P ρ P` with `P ∈ {X, Z}` on one qubit.
    fn apply_pauli_channel(&mut self, qubit: usize, p: f64, pauli: &CMatrix) {
        if p == 0.0 {
            return;
        }
        let full = embed_gate(pauli, &[qubit], self.num_qubits);
        let flipped = full.matmul(&self.rho).matmul(&full.dagger());
        self.rho =
            &self.rho.scale(Complex::from_real(1.0 - p)) + &flipped.scale(Complex::from_real(p));
    }

    /// Applies the noise model's channel for `op`: for each channel
    /// invocation (per pulse or per op, per the model's granularity)
    /// and each engaged qubit, the bit-flip then phase-flip channels.
    pub fn apply_noise(&mut self, op: &Operation, noise: &NoiseModel) {
        if noise.is_noiseless() {
            return;
        }
        let x = geyser_circuit::Gate::X.matrix();
        let z = geyser_circuit::Gate::Z.matrix();
        for _ in 0..noise.invocations_for(op) {
            for &q in op.qubits() {
                self.apply_pauli_channel(q, noise.bit_flip, &x);
                self.apply_pauli_channel(q, noise.phase_flip, &z);
            }
        }
    }

    /// Runs the whole circuit under the noise model (gate, then its
    /// noise, in program order — matching the trajectory engine).
    ///
    /// # Panics
    ///
    /// Panics if the circuit size mismatches.
    pub fn apply_circuit_noisy(&mut self, circuit: &Circuit, noise: &NoiseModel) {
        assert_eq!(
            circuit.num_qubits(),
            self.num_qubits,
            "circuit qubit count mismatch"
        );
        for op in circuit.iter() {
            self.apply_operation(op);
            self.apply_noise(op, noise);
        }
    }

    /// Measurement probabilities (the diagonal of `ρ`).
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.rho.rows()).map(|i| self.rho[(i, i)].re).collect()
    }

    /// Trace of `ρ` (should remain 1).
    pub fn trace(&self) -> Complex {
        self.rho.trace()
    }

    /// Purity `Tr(ρ²)`: 1 for pure states, `1/2^n` for the maximally
    /// mixed state.
    pub fn purity(&self) -> f64 {
        self.rho.matmul(&self.rho).trace().re
    }
}

/// Exact noisy output distribution via density-matrix evolution.
///
/// The closed-form counterpart of [`crate::sample_noisy_distribution`];
/// use it to validate trajectory counts or when exactness matters more
/// than register size.
///
/// # Panics
///
/// Panics if the circuit has more than 8 qubits.
pub fn exact_noisy_distribution(circuit: &Circuit, noise: &NoiseModel) -> Vec<f64> {
    let mut rho = DensityMatrix::zero_state(circuit.num_qubits());
    rho.apply_circuit_noisy(circuit, noise);
    rho.probabilities()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ideal_distribution, sample_noisy_distribution, total_variation_distance};

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn noiseless_density_matches_statevector() {
        let c = bell();
        let exact = exact_noisy_distribution(&c, &NoiseModel::noiseless());
        let ideal = ideal_distribution(&c);
        assert!(total_variation_distance(&exact, &ideal) < 1e-12);
    }

    #[test]
    fn trace_and_purity_under_noise() {
        let c = bell();
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_circuit_noisy(&c, &NoiseModel::symmetric(0.05));
        assert!((rho.trace().re - 1.0).abs() < 1e-10);
        assert!(rho.trace().im.abs() < 1e-12);
        // Noise mixes the state: purity strictly below 1.
        assert!(rho.purity() < 1.0 - 1e-6);
        assert!(rho.purity() > 0.25);
    }

    #[test]
    fn single_qubit_bit_flip_closed_form() {
        // X-channel with probability p on |0⟩: P(1) after one H-free
        // application = p.
        let mut c = Circuit::new(1);
        c.u3(0.0, 0.0, 0.0, 0); // identity op to attach noise to
        let p = 0.2;
        let noise = NoiseModel {
            bit_flip: p,
            phase_flip: 0.0,
            granularity: crate::NoiseGranularity::PerOperation,
        };
        let dist = exact_noisy_distribution(&c, &noise);
        assert!((dist[1] - p).abs() < 1e-12, "dist = {dist:?}");
    }

    #[test]
    fn per_pulse_granularity_compounds() {
        // A CZ carries 3 pulses: the per-pulse channel applies three
        // times per qubit, so P(no flip) = (1-p)^3 per qubit.
        let mut c = Circuit::new(2);
        c.cz(0, 1);
        let p = 0.1;
        let noise = NoiseModel::symmetric(0.0); // start clean
        let noise = NoiseModel {
            bit_flip: p,
            ..noise
        };
        let dist = exact_noisy_distribution(&c, &noise);
        // Three compositions of the flip channel: the qubit reads 0
        // when an even number of X errors occurred.
        let stay = (1.0 + (1.0f64 - 2.0 * p).powi(3)) / 2.0;
        assert!((dist[0] - stay * stay).abs() < 1e-10, "dist = {dist:?}");
    }

    #[test]
    fn trajectory_sampler_converges_to_exact_channel() {
        // The key cross-validation: the Monte-Carlo estimator must
        // converge to the density-matrix ground truth.
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cz(1, 2).h(2).cx(2, 0);
        let noise = NoiseModel::symmetric(0.02);
        let exact = exact_noisy_distribution(&c, &noise);
        let coarse = sample_noisy_distribution(&c, &noise, 100, 1);
        let fine = sample_noisy_distribution(&c, &noise, 4000, 1);
        let err_coarse = total_variation_distance(&exact, &coarse);
        let err_fine = total_variation_distance(&exact, &fine);
        assert!(
            err_fine < err_coarse,
            "no convergence: {err_fine} !< {err_coarse}"
        );
        assert!(err_fine < 0.02, "residual error {err_fine}");
    }

    #[test]
    fn phase_flip_is_invisible_in_computational_basis_alone() {
        // Z-noise right before measurement does not change the
        // computational-basis distribution of a basis state.
        let mut c = Circuit::new(1);
        c.x(0);
        let noise = NoiseModel {
            bit_flip: 0.0,
            phase_flip: 0.3,
            granularity: crate::NoiseGranularity::PerOperation,
        };
        let dist = exact_noisy_distribution(&c, &noise);
        assert!((dist[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "limited to 8 qubits")]
    fn oversized_register_rejected() {
        let _ = DensityMatrix::zero_state(9);
    }
}
