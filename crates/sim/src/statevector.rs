//! Per-gate state-vector simulation.

use geyser_circuit::{Circuit, Operation};
use geyser_num::{CMatrix, Complex};

use crate::SimError;

/// Tolerance on `|norm² − 1|` used by the health checks: far looser
/// than per-gate float error, far tighter than any real corruption.
pub const NORM_DRIFT_TOL: f64 = 1e-6;

/// A pure quantum state over `n` qubits as `2^n` complex amplitudes.
///
/// The basis-index convention is big-endian: **qubit 0 is the most
/// significant bit** of the basis-state index, matching the local
/// matrix convention of [`geyser_circuit::Gate::matrix`] and the
/// Kronecker-product order used by [`crate::circuit_unitary`].
///
/// # Example
///
/// ```
/// use geyser_circuit::Circuit;
/// use geyser_sim::StateVector;
///
/// let mut c = Circuit::new(2);
/// c.x(0); // flips qubit 0 (the MSB)
/// let mut sv = StateVector::zero_state(2);
/// sv.apply_circuit(&c);
/// let p = sv.probabilities();
/// assert!((p[0b10] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// Creates the all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 26` (guard against runaway allocation).
    pub fn zero_state(num_qubits: usize) -> Self {
        Self::basis_state(num_qubits, 0)
    }

    /// Creates the computational basis state with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_qubits` or `num_qubits > 26`.
    pub fn basis_state(num_qubits: usize, index: usize) -> Self {
        assert!(num_qubits <= 26, "state vector too large");
        let dim = 1usize << num_qubits;
        assert!(index < dim, "basis index out of range");
        let mut amps = vec![Complex::ZERO; dim];
        amps[index] = Complex::ONE;
        StateVector { num_qubits, amps }
    }

    /// Constructs a state from raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or the norm deviates
    /// from 1 by more than `1e-6`.
    pub fn from_amplitudes(amps: Vec<Complex>) -> Self {
        let dim = amps.len();
        assert!(dim.is_power_of_two(), "length must be a power of two");
        let num_qubits = dim.trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(
            (norm - 1.0).abs() < 1e-6,
            "state vector not normalized (norm² = {norm})"
        );
        StateVector { num_qubits, amps }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Borrows the amplitudes (big-endian basis indexing).
    #[inline]
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Bit position (from the least-significant end) of `qubit` in a
    /// basis index under the big-endian convention.
    #[inline]
    fn bit_of(&self, qubit: usize) -> usize {
        self.num_qubits - 1 - qubit
    }

    /// Applies a `2^k × 2^k` unitary to the ordered qubit list.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension does not match `qubits.len()`,
    /// or any qubit is duplicated/out of range.
    pub fn apply_matrix(&mut self, m: &CMatrix, qubits: &[usize]) {
        let k = qubits.len();
        assert_eq!(m.rows(), 1 << k, "matrix dimension mismatch");
        assert_eq!(m.cols(), 1 << k, "matrix must be square");
        for (i, q) in qubits.iter().enumerate() {
            assert!(*q < self.num_qubits, "qubit {q} out of range");
            assert!(!qubits[..i].contains(q), "duplicate qubit {q}");
        }
        let bits: Vec<usize> = qubits.iter().map(|&q| self.bit_of(q)).collect();
        let mask: usize = bits.iter().map(|&b| 1usize << b).sum();
        let dim = self.amps.len();
        let sub = 1usize << k;
        let mut local = vec![Complex::ZERO; sub];

        // Iterate over every basis index with all gate bits cleared.
        let mut base = 0usize;
        loop {
            // Gather the 2^k amplitudes of this gate subspace.
            for (l, slot) in local.iter_mut().enumerate() {
                let mut idx = base;
                for (j, &b) in bits.iter().enumerate() {
                    // Local index bit j corresponds to qubits[j], which
                    // is the (k-1-j)-th significant local bit.
                    if (l >> (k - 1 - j)) & 1 == 1 {
                        idx |= 1 << b;
                    }
                }
                *slot = self.amps[idx];
            }
            // Scatter the transformed amplitudes back.
            for r in 0..sub {
                let mut acc = Complex::ZERO;
                for (c, &amp) in local.iter().enumerate() {
                    let entry = m[(r, c)];
                    if entry != Complex::ZERO {
                        acc += entry * amp;
                    }
                }
                let mut idx = base;
                for (j, &b) in bits.iter().enumerate() {
                    if (r >> (k - 1 - j)) & 1 == 1 {
                        idx |= 1 << b;
                    }
                }
                self.amps[idx] = acc;
            }
            // Advance `base` to the next index that has zeros in all
            // gate-bit positions (standard "carry over masked bits").
            base = (base | mask).wrapping_add(1) & !mask;
            if base == 0 || base >= dim {
                break;
            }
        }
    }

    /// Applies one circuit operation.
    pub fn apply_operation(&mut self, op: &Operation) {
        self.apply_matrix(&op.gate().matrix(), op.qubits());
    }

    /// Applies every operation of `circuit` in program order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is declared over a different qubit count.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert_eq!(
            circuit.num_qubits(),
            self.num_qubits,
            "circuit qubit count mismatch"
        );
        for op in circuit.iter() {
            self.apply_operation(op);
        }
    }

    /// Applies every operation with a per-operation NaN/Inf guard and
    /// a final unitarity-drift check ([`NORM_DRIFT_TOL`]).
    ///
    /// Unitary evolution cannot produce either symptom; an error means
    /// a gate matrix was corrupt (or pathologically non-unitary) and
    /// the state should not be trusted.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is declared over a different qubit count
    /// (a programming error, unlike the numerical failures above).
    pub fn try_apply_circuit(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        assert_eq!(
            circuit.num_qubits(),
            self.num_qubits,
            "circuit qubit count mismatch"
        );
        for (step, op) in circuit.iter().enumerate() {
            self.apply_operation(op);
            if !self.is_finite() {
                return Err(SimError::NonFiniteAmplitude { step: Some(step) });
            }
        }
        self.check_health(NORM_DRIFT_TOL)
    }

    /// Returns `true` if every amplitude is finite (no NaN/Inf).
    pub fn is_finite(&self) -> bool {
        self.amps
            .iter()
            .all(|a| a.re.is_finite() && a.im.is_finite())
    }

    /// Verifies numerical health: all amplitudes finite and the
    /// squared norm within `norm_tol` of 1.
    pub fn check_health(&self, norm_tol: f64) -> Result<(), SimError> {
        if !self.is_finite() {
            return Err(SimError::NonFiniteAmplitude { step: None });
        }
        let norm_sqr = self.norm_sqr();
        if (norm_sqr - 1.0).abs() > norm_tol {
            return Err(SimError::NormDrift { norm_sqr });
        }
        Ok(())
    }

    /// Applies a Pauli-X error to one qubit (fast path for noise
    /// injection — swaps amplitude pairs in place).
    pub fn apply_x(&mut self, qubit: usize) {
        let b = 1usize << self.bit_of(qubit);
        for i in 0..self.amps.len() {
            if i & b == 0 {
                self.amps.swap(i, i | b);
            }
        }
    }

    /// Applies a Pauli-Z error to one qubit (fast path for noise
    /// injection — negates amplitudes where the qubit is `|1⟩`).
    pub fn apply_z(&mut self, qubit: usize) {
        let b = 1usize << self.bit_of(qubit);
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & b != 0 {
                *amp = -*amp;
            }
        }
    }

    /// Multiplies every amplitude by the imaginary unit `i` — a
    /// tracked global phase, needed when building Pauli-Y action from
    /// `Y = i·X·Z` in observable evaluation.
    pub fn apply_global_i(&mut self) {
        for a in &mut self.amps {
            *a = Complex::I * *a;
        }
    }

    /// Measurement probabilities for every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// `⟨self|other⟩` inner product.
    ///
    /// # Panics
    ///
    /// Panics if qubit counts differ.
    pub fn inner(&self, other: &StateVector) -> Complex {
        assert_eq!(self.num_qubits, other.num_qubits);
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Squared norm (should remain 1 under unitary evolution).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_circuit::Gate;

    #[test]
    fn zero_state_probabilities() {
        let sv = StateVector::zero_state(3);
        let p = sv.probabilities();
        assert_eq!(p.len(), 8);
        assert!((p[0] - 1.0).abs() < 1e-15);
        assert!(p[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn x_flips_msb_for_qubit_zero() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_matrix(&Gate::X.matrix(), &[0]);
        assert!((sv.probabilities()[0b10] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn x_flips_lsb_for_last_qubit() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_matrix(&Gate::X.matrix(), &[1]);
        assert!((sv.probabilities()[0b01] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut sv = StateVector::zero_state(1);
        sv.apply_matrix(&Gate::H.matrix(), &[0]);
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bell_state_via_circuit() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut sv = StateVector::zero_state(2);
        sv.apply_circuit(&c);
        let p = sv.probabilities();
        assert!((p[0b00] - 0.5).abs() < 1e-12);
        assert!((p[0b11] - 0.5).abs() < 1e-12);
        assert!(p[0b01].abs() < 1e-12);
        assert!(p[0b10].abs() < 1e-12);
    }

    #[test]
    fn cx_respects_argument_order() {
        // Control q1, target q0: |01> -> |11>.
        let mut sv = StateVector::basis_state(2, 0b01);
        sv.apply_matrix(&Gate::CX.matrix(), &[1, 0]);
        assert!((sv.probabilities()[0b11] - 1.0).abs() < 1e-12);
        // Control q0 (currently |0>), nothing happens.
        let mut sv2 = StateVector::basis_state(2, 0b01);
        sv2.apply_matrix(&Gate::CX.matrix(), &[0, 1]);
        assert!((sv2.probabilities()[0b01] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ccz_phases_only_all_ones() {
        let mut sv = StateVector::basis_state(3, 0b111);
        sv.apply_matrix(&Gate::CCZ.matrix(), &[0, 1, 2]);
        assert!((sv.amplitudes()[0b111] + Complex::ONE).norm() < 1e-12);
        let mut sv2 = StateVector::basis_state(3, 0b110);
        sv2.apply_matrix(&Gate::CCZ.matrix(), &[0, 1, 2]);
        assert!((sv2.amplitudes()[0b110] - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn gate_on_nonadjacent_qubits() {
        // CX with control q0 and target q2 in a 3-qubit register.
        let mut sv = StateVector::basis_state(3, 0b100);
        sv.apply_matrix(&Gate::CX.matrix(), &[0, 2]);
        assert!((sv.probabilities()[0b101] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges_qubit_states() {
        let mut sv = StateVector::basis_state(3, 0b100);
        sv.apply_matrix(&Gate::Swap.matrix(), &[0, 2]);
        assert!((sv.probabilities()[0b001] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fast_paulis_match_matrix_application() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2).cz(0, 1).t(2);
        let mut a = StateVector::zero_state(3);
        a.apply_circuit(&c);
        let mut b = a.clone();
        a.apply_x(1);
        b.apply_matrix(&Gate::X.matrix(), &[1]);
        assert!(a.inner(&b).norm() > 1.0 - 1e-12);
        let mut a2 = b.clone();
        let mut b2 = b.clone();
        a2.apply_z(2);
        b2.apply_matrix(&Gate::Z.matrix(), &[2]);
        assert!(a2.inner(&b2).norm() > 1.0 - 1e-12);
    }

    #[test]
    fn norm_preserved_under_long_random_circuit() {
        let mut c = Circuit::new(4);
        for i in 0..20 {
            c.rx(0.1 * i as f64, i % 4);
            c.cz(i % 4, (i + 1) % 4);
        }
        let mut sv = StateVector::zero_state(4);
        sv.apply_circuit(&c);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn inner_product_of_orthogonal_states() {
        let a = StateVector::basis_state(2, 0);
        let b = StateVector::basis_state(2, 3);
        assert!(a.inner(&b).norm() < 1e-15);
        assert!((a.inner(&a) - Complex::ONE).norm() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "not normalized")]
    fn unnormalized_amplitudes_rejected() {
        let _ = StateVector::from_amplitudes(vec![Complex::ONE, Complex::ONE]);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn duplicate_gate_qubits_rejected() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_matrix(&Gate::CZ.matrix(), &[0, 0]);
    }

    #[test]
    fn healthy_circuit_passes_guards() {
        let mut c = Circuit::new(3);
        c.h(0).cz(0, 1).t(2).ccz(0, 1, 2).h(1);
        let mut sv = StateVector::zero_state(3);
        sv.try_apply_circuit(&c).expect("healthy circuit");
        assert!(sv.is_finite());
        sv.check_health(crate::NORM_DRIFT_TOL).expect("healthy");
    }

    #[test]
    fn nan_gate_matrix_is_detected_with_step_index() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_matrix(&Gate::H.matrix(), &[0]);
        let mut bad = CMatrix::identity(2);
        bad[(0, 0)] = Complex::new(f64::NAN, 0.0);
        sv.apply_matrix(&bad, &[1]);
        assert!(!sv.is_finite());
        assert_eq!(
            sv.check_health(crate::NORM_DRIFT_TOL),
            Err(crate::SimError::NonFiniteAmplitude { step: None })
        );
    }

    #[test]
    fn non_unitary_matrix_trips_norm_drift() {
        let mut sv = StateVector::zero_state(1);
        // Scaling the identity by 2 is finite but quadruples the norm.
        let bad = CMatrix::identity(2).scale(Complex::new(2.0, 0.0));
        sv.apply_matrix(&bad, &[0]);
        match sv.check_health(crate::NORM_DRIFT_TOL) {
            Err(crate::SimError::NormDrift { norm_sqr }) => {
                assert!((norm_sqr - 4.0).abs() < 1e-12)
            }
            other => panic!("expected NormDrift, got {other:?}"),
        }
    }
}
