//! Full-circuit unitary construction.
//!
//! Block composition (paper Sec. 3.4) compares the 8×8 unitary of an
//! original 3-qubit block against a composed candidate via the
//! Hilbert–Schmidt distance. This module builds those unitaries — and,
//! for testing, the unitary of any small circuit.

use geyser_circuit::Circuit;
use geyser_num::{CMatrix, Complex};

/// Embeds a `2^k × 2^k` gate matrix acting on the ordered qubit list
/// `qubits` into the full `2^n × 2^n` space of an `n`-qubit register
/// (big-endian convention: qubit 0 is the most significant index bit).
///
/// # Panics
///
/// Panics if the matrix dimension does not match `qubits.len()`, if a
/// qubit is out of range or duplicated, or if `n > 13` (the resulting
/// dense matrix would exceed memory sanity bounds).
///
/// # Example
///
/// ```
/// use geyser_circuit::Gate;
/// use geyser_sim::embed_gate;
/// let full = embed_gate(&Gate::X.matrix(), &[1], 2);
/// assert_eq!(full.rows(), 4);
/// // X on qubit 1 (LSB): |00> -> |01>
/// assert!(full[(1, 0)].norm() > 0.99);
/// ```
pub fn embed_gate(m: &CMatrix, qubits: &[usize], n: usize) -> CMatrix {
    let k = qubits.len();
    assert!(n <= 13, "embedding beyond 13 qubits is not supported");
    assert_eq!(m.rows(), 1 << k, "matrix dimension mismatch");
    assert_eq!(m.cols(), 1 << k, "matrix must be square");
    for (i, q) in qubits.iter().enumerate() {
        assert!(*q < n, "qubit {q} out of range");
        assert!(!qubits[..i].contains(q), "duplicate qubit {q}");
    }
    let dim = 1usize << n;
    let bit_of = |q: usize| n - 1 - q;
    let mut out = CMatrix::zeros(dim, dim);
    for col in 0..dim {
        // Extract the local column index for the gate qubits.
        let mut lcol = 0usize;
        for (j, &q) in qubits.iter().enumerate() {
            if (col >> bit_of(q)) & 1 == 1 {
                lcol |= 1 << (k - 1 - j);
            }
        }
        // Rest bits are unchanged by the gate.
        let rest = {
            let mut r = col;
            for &q in qubits {
                r &= !(1usize << bit_of(q));
            }
            r
        };
        for lrow in 0..(1usize << k) {
            let entry = m[(lrow, lcol)];
            if entry == Complex::ZERO {
                continue;
            }
            let mut row = rest;
            for (j, &q) in qubits.iter().enumerate() {
                if (lrow >> (k - 1 - j)) & 1 == 1 {
                    row |= 1 << bit_of(q);
                }
            }
            out[(row, col)] = entry;
        }
    }
    out
}

/// Builds the full unitary of a circuit by composing embedded gate
/// matrices in program order (`U = U_m ⋯ U_2 U_1`).
///
/// # Panics
///
/// Panics if the circuit has more than 13 qubits.
///
/// # Example
///
/// ```
/// use geyser_circuit::Circuit;
/// use geyser_sim::circuit_unitary;
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let u = circuit_unitary(&c);
/// assert!(u.is_unitary(1e-10));
/// ```
pub fn circuit_unitary(circuit: &Circuit) -> CMatrix {
    let n = circuit.num_qubits();
    assert!(n <= 13, "unitary construction beyond 13 qubits");
    let mut u = CMatrix::identity(1 << n);
    for op in circuit.iter() {
        let g = embed_gate(&op.gate().matrix(), op.qubits(), n);
        u = g.matmul(&u);
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateVector;
    use geyser_circuit::Gate;

    #[test]
    fn embed_single_qubit_matches_kron() {
        // X on qubit 0 of 2 = X ⊗ I; on qubit 1 = I ⊗ X.
        let x = Gate::X.matrix();
        let id = CMatrix::identity(2);
        assert!(embed_gate(&x, &[0], 2).approx_eq(&x.kron(&id), 1e-14));
        assert!(embed_gate(&x, &[1], 2).approx_eq(&id.kron(&x), 1e-14));
    }

    #[test]
    fn embed_adjacent_two_qubit_matches_kron() {
        let cz = Gate::CZ.matrix();
        let id = CMatrix::identity(2);
        assert!(embed_gate(&cz, &[0, 1], 3).approx_eq(&cz.kron(&id), 1e-14));
        assert!(embed_gate(&cz, &[1, 2], 3).approx_eq(&id.kron(&cz), 1e-14));
    }

    #[test]
    fn embed_reversed_qubit_order() {
        // CX with control q1, target q0 should differ from control q0.
        let cx = Gate::CX.matrix();
        let a = embed_gate(&cx, &[0, 1], 2);
        let b = embed_gate(&cx, &[1, 0], 2);
        assert!(!a.approx_eq(&b, 1e-6));
        // b: |01> (ctrl q1 = 1) -> |11>
        assert!(b[(0b11, 0b01)].norm() > 0.99);
    }

    #[test]
    fn circuit_unitary_is_unitary() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccz(0, 1, 2).rz(0.3, 2).swap(0, 2);
        let u = circuit_unitary(&c);
        assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn unitary_agrees_with_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).t(1).cx(0, 2).cz(1, 2).ry(0.7, 0);
        let u = circuit_unitary(&c);
        let mut sv = StateVector::zero_state(3);
        sv.apply_circuit(&c);
        // First column of U = U|000>.
        for row in 0..8 {
            assert!(
                (u[(row, 0)] - sv.amplitudes()[row]).norm() < 1e-12,
                "row {row}"
            );
        }
    }

    #[test]
    fn order_of_application_is_program_order() {
        // X then H on one qubit: U = H·X.
        let mut c = Circuit::new(1);
        c.x(0).h(0);
        let u = circuit_unitary(&c);
        let want = Gate::H.matrix().matmul(&Gate::X.matrix());
        assert!(u.approx_eq(&want, 1e-14));
    }

    #[test]
    fn empty_circuit_is_identity() {
        let u = circuit_unitary(&Circuit::new(2));
        assert!(u.approx_eq(&CMatrix::identity(4), 1e-15));
    }

    #[test]
    fn nonadjacent_gate_embedding() {
        // CZ on qubits (0, 2) of 3: diagonal with -1 where both bits set.
        let u = embed_gate(&Gate::CZ.matrix(), &[0, 2], 3);
        for idx in 0..8 {
            let want = if idx & 0b101 == 0b101 { -1.0 } else { 1.0 };
            assert!((u[(idx, idx)].re - want).abs() < 1e-14, "idx {idx}");
        }
    }

    #[test]
    #[should_panic(expected = "beyond 13 qubits")]
    fn oversized_unitary_rejected() {
        let _ = circuit_unitary(&Circuit::new(14));
    }
}
