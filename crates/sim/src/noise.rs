//! The paper's stochastic Pauli noise model.
//!
//! Sec. 4 of the paper: "The noise model includes both bit-flip and
//! phase-flip errors with 0.1% occurrence rate on one-qubit
//! operations. The one-qubit error matrix is then self-tensored to
//! generate two-qubit and three-qubit error matrices." Self-tensoring
//! means each engaged qubit independently experiences the one-qubit
//! channel. The paper further motivates *pulses* as the unit noise is
//! proportional to (Sec. 3.3), so the default granularity applies the
//! channel once per physical pulse; a per-operation granularity is
//! provided for the ablation study.

use geyser_circuit::Operation;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How often the single-qubit error channel fires for an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NoiseGranularity {
    /// Channel applied once per physical pulse of the operation
    /// (U3 → 1×, CZ → 3×, CCZ → 5×). Default; matches the paper's
    /// "noise effects are proportional to pulses" premise.
    PerPulse,
    /// Channel applied once per operation regardless of pulse count
    /// (ablation variant).
    PerOperation,
}

/// Stochastic bit-flip + phase-flip noise model.
///
/// # Example
///
/// ```
/// use geyser_sim::NoiseModel;
/// let nm = NoiseModel::symmetric(0.001); // the paper's default 0.1%
/// assert_eq!(nm.bit_flip, 0.001);
/// assert_eq!(nm.phase_flip, 0.001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Probability of an X error per channel invocation per qubit.
    pub bit_flip: f64,
    /// Probability of a Z error per channel invocation per qubit.
    pub phase_flip: f64,
    /// Channel granularity (per pulse or per operation).
    pub granularity: NoiseGranularity,
}

impl NoiseModel {
    /// Noise model with equal bit-flip and phase-flip rates at
    /// per-pulse granularity (the paper's configuration).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn symmetric(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        NoiseModel {
            bit_flip: rate,
            phase_flip: rate,
            granularity: NoiseGranularity::PerPulse,
        }
    }

    /// The ideal (noise-free) model.
    pub fn noiseless() -> Self {
        Self::symmetric(0.0)
    }

    /// Returns a copy using per-operation granularity (ablation).
    pub fn with_per_operation_granularity(mut self) -> Self {
        self.granularity = NoiseGranularity::PerOperation;
        self
    }

    /// Returns `true` if both error rates are zero.
    pub fn is_noiseless(&self) -> bool {
        self.bit_flip == 0.0 && self.phase_flip == 0.0
    }

    /// Number of channel invocations for an operation under this
    /// model's granularity.
    pub fn invocations_for(&self, op: &Operation) -> u32 {
        match self.granularity {
            NoiseGranularity::PerPulse => op.pulses(),
            NoiseGranularity::PerOperation => 1,
        }
    }

    /// Samples the Pauli errors injected after `op` for one Monte-Carlo
    /// trajectory. Returns `(x_errors, z_errors)` as qubit index lists
    /// (a qubit may appear multiple times; X·X cancels but sampling
    /// faithfully mirrors the physical channel).
    pub fn sample_errors<R: Rng + ?Sized>(
        &self,
        op: &Operation,
        rng: &mut R,
    ) -> (Vec<usize>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut zs = Vec::new();
        if self.is_noiseless() {
            return (xs, zs);
        }
        let reps = self.invocations_for(op);
        for _ in 0..reps {
            for &q in op.qubits() {
                if rng.gen::<f64>() < self.bit_flip {
                    xs.push(q);
                }
                if rng.gen::<f64>() < self.phase_flip {
                    zs.push(q);
                }
            }
        }
        (xs, zs)
    }
}

impl Default for NoiseModel {
    /// The paper's default configuration: 0.1% symmetric per-pulse.
    fn default() -> Self {
        Self::symmetric(0.001)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_circuit::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn symmetric_constructor() {
        let nm = NoiseModel::symmetric(0.005);
        assert_eq!(nm.bit_flip, 0.005);
        assert_eq!(nm.phase_flip, 0.005);
        assert_eq!(nm.granularity, NoiseGranularity::PerPulse);
        assert!(!nm.is_noiseless());
        assert!(NoiseModel::noiseless().is_noiseless());
    }

    #[test]
    #[should_panic(expected = "rate must be in [0, 1]")]
    fn invalid_rate_panics() {
        let _ = NoiseModel::symmetric(1.5);
    }

    #[test]
    fn invocations_follow_pulse_counts() {
        let nm = NoiseModel::default();
        let u3 = Operation::new(Gate::H, vec![0]);
        let cz = Operation::new(Gate::CZ, vec![0, 1]);
        let ccz = Operation::new(Gate::CCZ, vec![0, 1, 2]);
        assert_eq!(nm.invocations_for(&u3), 1);
        assert_eq!(nm.invocations_for(&cz), 3);
        assert_eq!(nm.invocations_for(&ccz), 5);
        let per_op = nm.with_per_operation_granularity();
        assert_eq!(per_op.invocations_for(&ccz), 1);
    }

    #[test]
    fn noiseless_sampling_injects_nothing() {
        let nm = NoiseModel::noiseless();
        let mut rng = StdRng::seed_from_u64(7);
        let op = Operation::new(Gate::CCZ, vec![0, 1, 2]);
        let (xs, zs) = nm.sample_errors(&op, &mut rng);
        assert!(xs.is_empty());
        assert!(zs.is_empty());
    }

    #[test]
    fn error_rate_statistics_match_model() {
        // With rate p per invocation per qubit, a CZ (3 pulses) on two
        // qubits performs 6 Bernoulli trials per error type.
        let p = 0.05;
        let nm = NoiseModel::symmetric(p);
        let op = Operation::new(Gate::CZ, vec![0, 1]);
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 20_000;
        let mut total_x = 0usize;
        for _ in 0..trials {
            let (xs, _) = nm.sample_errors(&op, &mut rng);
            total_x += xs.len();
        }
        let mean = total_x as f64 / trials as f64;
        let expected = 6.0 * p;
        assert!(
            (mean - expected).abs() < 0.02,
            "mean X errors {mean} vs expected {expected}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let nm = NoiseModel::symmetric(0.3);
        let op = Operation::new(Gate::CCZ, vec![0, 1, 2]);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            nm.sample_errors(&op, &mut rng)
        };
        assert_eq!(run(9), run(9));
    }
}
