//! Atom-loss simulation (paper Sec. 6, "Neutral Atom Loss").
//!
//! Neutral atoms are occasionally knocked out of their traps. The
//! paper argues Geyser tolerates realistic loss rates because lost
//! atoms are replaced between shots by shuttling spare atoms
//! (take → transfer → release with optical tweezers), and reports that
//! effectiveness is insensitive to realistic loss probabilities.
//!
//! This module reproduces that experiment's mechanism: within one
//! trajectory ("shot"), each atom may be lost with some probability at
//! a uniformly random point of the circuit. A lost atom is projected
//! out (measured and reset), and every subsequent gate engaging it is
//! skipped — a Rydberg gate cannot fire against an empty trap. Between
//! shots the register is re-loaded, so each trajectory starts intact.

use geyser_circuit::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{ideal_distribution, NoiseModel, StateVector};

/// Atom-loss configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomLossModel {
    /// Probability that a given atom is lost at some point during one
    /// shot. Realistic values are well below 1% (paper refs. [13, 25]).
    pub loss_per_shot: f64,
}

impl AtomLossModel {
    /// Creates a loss model.
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]`.
    pub fn new(loss_per_shot: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_per_shot),
            "loss probability must be in [0, 1]"
        );
        AtomLossModel { loss_per_shot }
    }

    /// The lossless model.
    pub fn none() -> Self {
        Self::new(0.0)
    }
}

/// Monte-Carlo estimate of the output distribution under both gate
/// noise and atom loss.
///
/// Per trajectory: each qubit independently draws whether it is lost
/// this shot and, if so, after which operation index. When the loss
/// point is reached the qubit is projectively measured and reset to
/// `|0⟩` (the photodetector sees an empty site; the state decoheres),
/// and later operations engaging it are skipped. Gate noise applies
/// exactly as in [`crate::sample_noisy_distribution`].
///
/// # Panics
///
/// Panics if `trajectories == 0`.
pub fn sample_with_atom_loss(
    circuit: &Circuit,
    noise: &NoiseModel,
    loss: &AtomLossModel,
    trajectories: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(trajectories > 0, "need at least one trajectory");
    let n = circuit.num_qubits();
    let dim = 1usize << n;
    if loss.loss_per_shot == 0.0 && noise.is_noiseless() {
        return ideal_distribution(circuit);
    }

    let mut accum = vec![0.0f64; dim];
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..trajectories {
        // Loss schedule for this shot: op index after which each qubit
        // disappears (usize::MAX = never).
        let loss_at: Vec<usize> = (0..n)
            .map(|_| {
                if rng.gen::<f64>() < loss.loss_per_shot && !circuit.is_empty() {
                    rng.gen_range(0..circuit.len())
                } else {
                    usize::MAX
                }
            })
            .collect();

        let mut sv = StateVector::zero_state(n);
        let mut lost = vec![false; n];
        for (i, op) in circuit.iter().enumerate() {
            if op.qubits().iter().any(|&q| lost[q]) {
                continue; // empty trap: the gate cannot execute
            }
            sv.apply_operation(op);
            let (xs, zs) = noise.sample_errors(op, &mut rng);
            for q in xs {
                sv.apply_x(q);
            }
            for q in zs {
                sv.apply_z(q);
            }
            // Process any losses scheduled right after this op.
            for q in 0..n {
                if !lost[q] && loss_at[q] == i {
                    lost[q] = true;
                    collapse_and_reset(&mut sv, q, &mut rng);
                }
            }
        }
        for (a, p) in accum.iter_mut().zip(sv.probabilities()) {
            *a += p;
        }
    }
    let inv = 1.0 / trajectories as f64;
    for a in &mut accum {
        *a *= inv;
    }
    accum
}

/// Projectively measures qubit `q` (sampled collapse) and forces it to
/// `|0⟩` — the state left behind when the atom vanishes and its site
/// later reads empty.
fn collapse_and_reset(sv: &mut StateVector, q: usize, rng: &mut StdRng) {
    let n = sv.num_qubits();
    let bit = 1usize << (n - 1 - q);
    let p1: f64 = sv
        .amplitudes()
        .iter()
        .enumerate()
        .filter(|(i, _)| i & bit != 0)
        .map(|(_, a)| a.norm_sqr())
        .sum();
    let outcome_one = rng.gen::<f64>() < p1;
    // Zero the non-selected branch and renormalize.
    let keep_mask = if outcome_one { bit } else { 0 };
    let norm = if outcome_one { p1 } else { 1.0 - p1 };
    let scale = if norm > 1e-300 {
        1.0 / norm.sqrt()
    } else {
        0.0
    };
    let amps: Vec<geyser_num::Complex> = sv
        .amplitudes()
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            if i & bit == keep_mask {
                a.scale(scale)
            } else {
                geyser_num::Complex::ZERO
            }
        })
        .collect();
    let mut collapsed = StateVector::from_amplitudes(amps);
    if outcome_one {
        collapsed.apply_x(q); // reset the (replaced) site to |0⟩
    }
    *sv = collapsed;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::total_variation_distance;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn zero_loss_matches_noisy_sampler() {
        let c = bell();
        let noise = NoiseModel::symmetric(0.01);
        let a = sample_with_atom_loss(&c, &noise, &AtomLossModel::none(), 200, 3);
        let b = crate::sample_noisy_distribution(&c, &noise, 200, 3);
        // Same RNG consumption pattern is not guaranteed; compare
        // statistically.
        assert!(total_variation_distance(&a, &b) < 0.05);
    }

    #[test]
    fn certain_loss_destroys_entanglement() {
        // Losing q1 right after preparation leaves q0 mixed and q1 = 0:
        // distribution concentrates on |00⟩ and |10⟩.
        let c = bell();
        let loss = AtomLossModel::new(1.0);
        let dist = sample_with_atom_loss(&c, &NoiseModel::noiseless(), &loss, 800, 5);
        // |01⟩ and |11⟩ should carry (almost) no mass beyond losses
        // happening before the CX.
        assert!(dist[0b00] > 0.2);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn realistic_loss_rates_barely_move_the_output() {
        // The paper's qualitative claim: sub-percent loss rates do not
        // change the measured distribution materially.
        let c = bell();
        let clean = ideal_distribution(&c);
        let tiny = sample_with_atom_loss(
            &c,
            &NoiseModel::noiseless(),
            &AtomLossModel::new(0.002),
            2000,
            7,
        );
        let tvd = total_variation_distance(&clean, &tiny);
        assert!(tvd < 0.01, "TVD = {tvd}");
    }

    #[test]
    fn loss_tvd_grows_with_rate() {
        let c = bell();
        let clean = ideal_distribution(&c);
        let mut prev = 0.0;
        for rate in [0.01, 0.2, 0.8] {
            let dist = sample_with_atom_loss(
                &c,
                &NoiseModel::noiseless(),
                &AtomLossModel::new(rate),
                1500,
                11,
            );
            let tvd = total_variation_distance(&clean, &dist);
            assert!(tvd >= prev - 0.02, "rate {rate}: {tvd} < {prev}");
            prev = tvd;
        }
        assert!(prev > 0.1, "high loss should visibly corrupt output");
    }

    #[test]
    fn distribution_is_normalized_under_loss() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).t(2);
        let dist = sample_with_atom_loss(
            &c,
            &NoiseModel::symmetric(0.01),
            &AtomLossModel::new(0.3),
            300,
            13,
        );
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_rate_panics() {
        let _ = AtomLossModel::new(1.5);
    }
}
