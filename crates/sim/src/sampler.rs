//! Ideal and noisy output-distribution estimation.

use geyser_circuit::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{NoiseModel, StateVector};

/// Exact (noise-free) output distribution of `circuit` starting from
/// `|0…0⟩`, indexed by big-endian basis state.
///
/// # Example
///
/// ```
/// use geyser_circuit::Circuit;
/// use geyser_sim::ideal_distribution;
/// let mut c = Circuit::new(1);
/// c.h(0);
/// let p = ideal_distribution(&c);
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// ```
pub fn ideal_distribution(circuit: &Circuit) -> Vec<f64> {
    let mut sv = StateVector::zero_state(circuit.num_qubits());
    sv.apply_circuit(circuit);
    sv.probabilities()
}

/// Monte-Carlo estimate of the noisy output distribution.
///
/// Runs `trajectories` independent noise realizations. In each
/// trajectory every operation is applied exactly, followed by the
/// Pauli errors sampled from `noise`; the trajectory's *exact*
/// measurement distribution is then accumulated. Averaging exact
/// per-trajectory distributions (rather than drawing one shot per
/// trajectory) is a standard variance-reduction: the estimator remains
/// unbiased for the channel's output distribution while converging
/// with far fewer trajectories.
///
/// Deterministic for a fixed `(circuit, noise, trajectories, seed)`.
///
/// # Panics
///
/// Panics if `trajectories == 0`.
pub fn sample_noisy_distribution(
    circuit: &Circuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(trajectories > 0, "need at least one trajectory");
    let n = circuit.num_qubits();
    let dim = 1usize << n;

    if noise.is_noiseless() {
        return ideal_distribution(circuit);
    }

    let mut accum = vec![0.0f64; dim];
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..trajectories {
        let mut sv = StateVector::zero_state(n);
        for op in circuit.iter() {
            sv.apply_operation(op);
            let (xs, zs) = noise.sample_errors(op, &mut rng);
            for q in xs {
                sv.apply_x(q);
            }
            for q in zs {
                sv.apply_z(q);
            }
        }
        for (a, p) in accum.iter_mut().zip(sv.probabilities()) {
            *a += p;
        }
    }
    let inv = 1.0 / trajectories as f64;
    for a in &mut accum {
        *a *= inv;
    }
    accum
}

/// Draws `shots` basis-state samples from a probability distribution,
/// returning per-state counts. Used to emulate finite-shot readout.
///
/// # Panics
///
/// Panics if the distribution is empty or sums to ≤ 0.
pub fn sampled_counts(distribution: &[f64], shots: usize, seed: u64) -> Vec<u64> {
    assert!(!distribution.is_empty(), "empty distribution");
    let total: f64 = distribution.iter().sum();
    assert!(total > 0.0, "distribution must have positive mass");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0u64; distribution.len()];
    for _ in 0..shots {
        let mut r = rng.gen::<f64>() * total;
        let mut idx = distribution.len() - 1;
        for (i, &p) in distribution.iter().enumerate() {
            if r < p {
                idx = i;
                break;
            }
            r -= p;
        }
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::total_variation_distance;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn ideal_distribution_normalizes() {
        let p = ideal_distribution(&bell());
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noiseless_sampling_equals_ideal() {
        let c = bell();
        let p1 = ideal_distribution(&c);
        let p2 = sample_noisy_distribution(&c, &NoiseModel::noiseless(), 10, 1);
        assert!(total_variation_distance(&p1, &p2) < 1e-14);
    }

    #[test]
    fn noise_increases_tvd_to_ideal() {
        let c = bell();
        let ideal = ideal_distribution(&c);
        let low = sample_noisy_distribution(&c, &NoiseModel::symmetric(0.001), 400, 2);
        let high = sample_noisy_distribution(&c, &NoiseModel::symmetric(0.05), 400, 2);
        let tvd_low = total_variation_distance(&ideal, &low);
        let tvd_high = total_variation_distance(&ideal, &high);
        assert!(tvd_low < tvd_high, "tvd {tvd_low} !< {tvd_high}");
        assert!(tvd_high > 0.01);
    }

    #[test]
    fn noisy_distribution_is_normalized() {
        let c = bell();
        let p = sample_noisy_distribution(&c, &NoiseModel::symmetric(0.02), 50, 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let c = bell();
        let nm = NoiseModel::symmetric(0.01);
        let a = sample_noisy_distribution(&c, &nm, 20, 7);
        let b = sample_noisy_distribution(&c, &nm, 20, 7);
        assert_eq!(a, b);
        let d = sample_noisy_distribution(&c, &nm, 20, 8);
        assert_ne!(a, d);
    }

    #[test]
    fn more_pulses_mean_more_noise() {
        // Same unitary effect, but one circuit wastes pulses: X·X·X = X.
        let mut lean = Circuit::new(1);
        lean.x(0);
        let mut wasteful = Circuit::new(1);
        wasteful.x(0).x(0).x(0).x(0).x(0);
        let nm = NoiseModel::symmetric(0.02);
        let ideal = ideal_distribution(&lean);
        let lean_p = sample_noisy_distribution(&lean, &nm, 600, 11);
        let waste_p = sample_noisy_distribution(&wasteful, &nm, 600, 11);
        let tvd_lean = total_variation_distance(&ideal, &lean_p);
        let tvd_waste = total_variation_distance(&ideal, &waste_p);
        assert!(
            tvd_lean < tvd_waste,
            "lean {tvd_lean} !< wasteful {tvd_waste}"
        );
    }

    #[test]
    fn sampled_counts_sum_to_shots() {
        let p = ideal_distribution(&bell());
        let counts = sampled_counts(&p, 1000, 5);
        assert_eq!(counts.iter().sum::<u64>(), 1000);
        // Only |00> and |11> should ever be sampled.
        assert_eq!(counts[1], 0);
        assert_eq!(counts[2], 0);
        assert!(counts[0] > 350 && counts[3] > 350);
    }

    #[test]
    #[should_panic(expected = "at least one trajectory")]
    fn zero_trajectories_panics() {
        let _ = sample_noisy_distribution(&bell(), &NoiseModel::symmetric(0.1), 0, 0);
    }
}
