//! Ideal and noisy output-distribution estimation.
//!
//! # Failure model
//!
//! Trajectory simulation applies exact gate matrices, so a NaN/Inf
//! amplitude or a norm drifted from 1 means the inputs were corrupt.
//! Each trajectory is health-checked; an unhealthy one is rejected and
//! resampled from a derived seed up to [`MAX_TRAJECTORY_RETRIES`]
//! times before the sampler gives up with a typed
//! [`SimError::TrajectoryRejected`]. Healthy runs consume the primary
//! RNG stream exactly as before, so fault handling never perturbs
//! fault-free results.

use geyser_circuit::Circuit;
use geyser_num::{CMatrix, Complex};
use geyser_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{NoiseModel, SimError, StateVector, NORM_DRIFT_TOL};

/// Resample attempts per rejected trajectory before the sampler gives
/// up with [`SimError::TrajectoryRejected`].
pub const MAX_TRAJECTORY_RETRIES: usize = 3;

/// Test/bench-only fault hooks for the Monte-Carlo sampler.
///
/// Injection corrupts the trajectory state with a NaN-bearing gate
/// matrix — the same symptom a genuinely corrupt unitary would cause.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimFaults {
    /// Trajectories whose *first* attempt is corrupted (transient
    /// fault: rejection-and-resample must recover).
    pub nan_trajectories: Vec<usize>,
    /// Trajectories corrupted on *every* attempt (persistent fault:
    /// must surface as [`SimError::TrajectoryRejected`]).
    pub persistent_nan_trajectories: Vec<usize>,
}

impl SimFaults {
    /// No injected faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault is configured.
    pub fn is_empty(&self) -> bool {
        self.nan_trajectories.is_empty() && self.persistent_nan_trajectories.is_empty()
    }
}

/// Poisons the state with a NaN-bearing single-qubit matrix, the way a
/// corrupted gate unitary would.
fn poison_state(sv: &mut StateVector) {
    let mut bad = CMatrix::identity(2);
    bad[(0, 0)] = Complex::new(f64::NAN, 0.0);
    sv.apply_matrix(&bad, &[0]);
}

/// Exact (noise-free) output distribution of `circuit` starting from
/// `|0…0⟩`, indexed by big-endian basis state.
///
/// # Example
///
/// ```
/// use geyser_circuit::Circuit;
/// use geyser_sim::ideal_distribution;
/// let mut c = Circuit::new(1);
/// c.h(0);
/// let p = ideal_distribution(&c);
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// ```
pub fn ideal_distribution(circuit: &Circuit) -> Vec<f64> {
    let mut sv = StateVector::zero_state(circuit.num_qubits());
    sv.apply_circuit(circuit);
    sv.probabilities()
}

/// [`ideal_distribution`] with numerical health guards: returns a
/// typed [`SimError`] instead of silently emitting NaN probabilities
/// when a gate matrix is corrupt or non-unitary.
pub fn try_ideal_distribution(circuit: &Circuit) -> Result<Vec<f64>, SimError> {
    let mut sv = StateVector::zero_state(circuit.num_qubits());
    sv.try_apply_circuit(circuit)?;
    Ok(sv.probabilities())
}

/// Monte-Carlo estimate of the noisy output distribution.
///
/// Runs `trajectories` independent noise realizations. In each
/// trajectory every operation is applied exactly, followed by the
/// Pauli errors sampled from `noise`; the trajectory's *exact*
/// measurement distribution is then accumulated. Averaging exact
/// per-trajectory distributions (rather than drawing one shot per
/// trajectory) is a standard variance-reduction: the estimator remains
/// unbiased for the channel's output distribution while converging
/// with far fewer trajectories.
///
/// Deterministic for a fixed `(circuit, noise, trajectories, seed)`.
///
/// # Panics
///
/// Panics if `trajectories == 0` or simulation is numerically
/// unhealthy (see [`try_sample_noisy_distribution`] for the fallible
/// form).
pub fn sample_noisy_distribution(
    circuit: &Circuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> Vec<f64> {
    try_sample_noisy_distribution(circuit, noise, trajectories, seed)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`sample_noisy_distribution`] with trajectory
/// health checks and rejection-and-resample (no fault hooks).
pub fn try_sample_noisy_distribution(
    circuit: &Circuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> Result<Vec<f64>, SimError> {
    try_sample_noisy_distribution_with_faults(
        circuit,
        noise,
        trajectories,
        seed,
        &SimFaults::none(),
    )
}

/// Runs one noise trajectory from `|0…0⟩`, consuming `rng` for the
/// Pauli error draws.
fn run_trajectory(
    circuit: &Circuit,
    noise: &NoiseModel,
    rng: &mut StdRng,
    inject_nan: bool,
) -> StateVector {
    let mut sv = StateVector::zero_state(circuit.num_qubits());
    for op in circuit.iter() {
        sv.apply_operation(op);
        let (xs, zs) = noise.sample_errors(op, rng);
        for q in xs {
            sv.apply_x(q);
        }
        for q in zs {
            sv.apply_z(q);
        }
    }
    if inject_nan {
        poison_state(&mut sv);
    }
    sv
}

/// [`try_sample_noisy_distribution`] with test/bench-only fault
/// injection.
///
/// Each trajectory is health-checked (finite amplitudes, norm within
/// [`NORM_DRIFT_TOL`]); an unhealthy one is resampled from a seed
/// derived from `(seed, trajectory, attempt)` up to
/// [`MAX_TRAJECTORY_RETRIES`] times. Attempt 0 consumes the primary
/// RNG stream exactly as the historical sampler did, so fault-free
/// runs are bit-identical with or without the guard machinery.
///
/// # Panics
///
/// Panics if `trajectories == 0`.
pub fn try_sample_noisy_distribution_with_faults(
    circuit: &Circuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    faults: &SimFaults,
) -> Result<Vec<f64>, SimError> {
    try_sample_noisy_distribution_traced(
        circuit,
        noise,
        trajectories,
        seed,
        faults,
        &Telemetry::disabled(),
    )
}

/// [`try_sample_noisy_distribution_with_faults`] recording a
/// `sim.sample` span plus `sim.trajectories` / `sim.resamples`
/// counters on `telemetry`. Results are bit-identical with telemetry
/// enabled or disabled — the handle is observational only.
///
/// # Panics
///
/// Panics if `trajectories == 0`.
pub fn try_sample_noisy_distribution_traced(
    circuit: &Circuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    faults: &SimFaults,
    telemetry: &Telemetry,
) -> Result<Vec<f64>, SimError> {
    assert!(trajectories > 0, "need at least one trajectory");
    let n = circuit.num_qubits();
    let dim = 1usize << n;

    if noise.is_noiseless() && faults.is_empty() {
        return try_ideal_distribution(circuit);
    }

    let mut span = telemetry.span("sim", "sim.sample");
    span.attr("trajectories", trajectories);
    let mut accum = vec![0.0f64; dim];
    let mut rng = StdRng::seed_from_u64(seed);
    for t in 0..trajectories {
        let persistent = faults.persistent_nan_trajectories.contains(&t);
        let transient = faults.nan_trajectories.contains(&t);
        let mut sv = run_trajectory(circuit, noise, &mut rng, persistent || transient);
        let mut retries = 0;
        while sv.check_health(NORM_DRIFT_TOL).is_err() {
            if retries >= MAX_TRAJECTORY_RETRIES {
                return Err(SimError::TrajectoryRejected {
                    trajectory: t,
                    retries,
                });
            }
            retries += 1;
            telemetry.counter_add("sim.resamples", 1);
            // Derived stream: keeps the primary RNG untouched so later
            // trajectories draw the same errors they always did.
            let retry_seed = seed
                ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ (retries as u64).rotate_left(48);
            let mut retry_rng = StdRng::seed_from_u64(retry_seed);
            sv = run_trajectory(circuit, noise, &mut retry_rng, persistent);
        }
        for (a, p) in accum.iter_mut().zip(sv.probabilities()) {
            *a += p;
        }
    }
    telemetry.counter_add("sim.trajectories", trajectories as u64);
    let inv = 1.0 / trajectories as f64;
    for a in &mut accum {
        *a *= inv;
    }
    Ok(accum)
}

/// Draws `shots` basis-state samples from a probability distribution,
/// returning per-state counts. Used to emulate finite-shot readout.
///
/// # Panics
///
/// Panics if the distribution is empty or sums to ≤ 0.
pub fn sampled_counts(distribution: &[f64], shots: usize, seed: u64) -> Vec<u64> {
    assert!(!distribution.is_empty(), "empty distribution");
    let total: f64 = distribution.iter().sum();
    assert!(total > 0.0, "distribution must have positive mass");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0u64; distribution.len()];
    for _ in 0..shots {
        let mut r = rng.gen::<f64>() * total;
        let mut idx = distribution.len() - 1;
        for (i, &p) in distribution.iter().enumerate() {
            if r < p {
                idx = i;
                break;
            }
            r -= p;
        }
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::total_variation_distance;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn ideal_distribution_normalizes() {
        let p = ideal_distribution(&bell());
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noiseless_sampling_equals_ideal() {
        let c = bell();
        let p1 = ideal_distribution(&c);
        let p2 = sample_noisy_distribution(&c, &NoiseModel::noiseless(), 10, 1);
        assert!(total_variation_distance(&p1, &p2) < 1e-14);
    }

    #[test]
    fn noise_increases_tvd_to_ideal() {
        let c = bell();
        let ideal = ideal_distribution(&c);
        let low = sample_noisy_distribution(&c, &NoiseModel::symmetric(0.001), 400, 2);
        let high = sample_noisy_distribution(&c, &NoiseModel::symmetric(0.05), 400, 2);
        let tvd_low = total_variation_distance(&ideal, &low);
        let tvd_high = total_variation_distance(&ideal, &high);
        assert!(tvd_low < tvd_high, "tvd {tvd_low} !< {tvd_high}");
        assert!(tvd_high > 0.01);
    }

    #[test]
    fn noisy_distribution_is_normalized() {
        let c = bell();
        let p = sample_noisy_distribution(&c, &NoiseModel::symmetric(0.02), 50, 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let c = bell();
        let nm = NoiseModel::symmetric(0.01);
        let a = sample_noisy_distribution(&c, &nm, 20, 7);
        let b = sample_noisy_distribution(&c, &nm, 20, 7);
        assert_eq!(a, b);
        let d = sample_noisy_distribution(&c, &nm, 20, 8);
        assert_ne!(a, d);
    }

    #[test]
    fn more_pulses_mean_more_noise() {
        // Same unitary effect, but one circuit wastes pulses: X·X·X = X.
        let mut lean = Circuit::new(1);
        lean.x(0);
        let mut wasteful = Circuit::new(1);
        wasteful.x(0).x(0).x(0).x(0).x(0);
        let nm = NoiseModel::symmetric(0.02);
        let ideal = ideal_distribution(&lean);
        let lean_p = sample_noisy_distribution(&lean, &nm, 600, 11);
        let waste_p = sample_noisy_distribution(&wasteful, &nm, 600, 11);
        let tvd_lean = total_variation_distance(&ideal, &lean_p);
        let tvd_waste = total_variation_distance(&ideal, &waste_p);
        assert!(
            tvd_lean < tvd_waste,
            "lean {tvd_lean} !< wasteful {tvd_waste}"
        );
    }

    #[test]
    fn sampled_counts_sum_to_shots() {
        let p = ideal_distribution(&bell());
        let counts = sampled_counts(&p, 1000, 5);
        assert_eq!(counts.iter().sum::<u64>(), 1000);
        // Only |00> and |11> should ever be sampled.
        assert_eq!(counts[1], 0);
        assert_eq!(counts[2], 0);
        assert!(counts[0] > 350 && counts[3] > 350);
    }

    #[test]
    #[should_panic(expected = "at least one trajectory")]
    fn zero_trajectories_panics() {
        let _ = sample_noisy_distribution(&bell(), &NoiseModel::symmetric(0.1), 0, 0);
    }

    #[test]
    fn transient_nan_trajectory_is_resampled() {
        let c = bell();
        let nm = NoiseModel::symmetric(0.01);
        let faults = SimFaults {
            nan_trajectories: vec![3, 7],
            ..SimFaults::none()
        };
        let p = try_sample_noisy_distribution_with_faults(&c, &nm, 20, 7, &faults)
            .expect("transient faults must be resampled away");
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|x| x.is_finite()));
        // The resampled estimate stays statistically sane.
        let clean = sample_noisy_distribution(&c, &nm, 20, 7);
        assert!(total_variation_distance(&p, &clean) < 0.1);
    }

    #[test]
    fn guards_do_not_perturb_fault_free_stream() {
        // With no faults injected, the guarded sampler is bit-identical
        // to the unguarded one (attempt 0 consumes the primary stream).
        let c = bell();
        let nm = NoiseModel::symmetric(0.02);
        let a = sample_noisy_distribution(&c, &nm, 30, 9);
        let b = try_sample_noisy_distribution_with_faults(&c, &nm, 30, 9, &SimFaults::none())
            .expect("healthy");
        assert_eq!(a, b);
    }

    #[test]
    fn persistent_nan_trajectory_surfaces_typed_error() {
        let c = bell();
        let nm = NoiseModel::symmetric(0.01);
        let faults = SimFaults {
            persistent_nan_trajectories: vec![2],
            ..SimFaults::none()
        };
        let err = try_sample_noisy_distribution_with_faults(&c, &nm, 10, 1, &faults)
            .expect_err("persistent corruption must not be averaged in");
        assert_eq!(
            err,
            SimError::TrajectoryRejected {
                trajectory: 2,
                retries: MAX_TRAJECTORY_RETRIES
            }
        );
    }

    #[test]
    fn try_ideal_distribution_matches_ideal() {
        let c = bell();
        let a = ideal_distribution(&c);
        let b = try_ideal_distribution(&c).expect("healthy circuit");
        assert_eq!(a, b);
    }
}
