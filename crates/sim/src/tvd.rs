//! Total variation distance between output distributions.

/// Total variation distance `½ Σ_k |p₁(k) − p₂(k)|` (paper Sec. 2.3).
///
/// The paper's primary output-fidelity metric: the TVD between a noisy
/// circuit's output distribution and the ideal output, lower is
/// better. Ranges over `[0, 1]` for normalized distributions.
///
/// # Panics
///
/// Panics if the distributions have different lengths.
///
/// # Example
///
/// ```
/// use geyser_sim::total_variation_distance;
/// let p = [0.5, 0.5];
/// let q = [1.0, 0.0];
/// assert!((total_variation_distance(&p, &q) - 0.5).abs() < 1e-15);
/// ```
pub fn total_variation_distance(p1: &[f64], p2: &[f64]) -> f64 {
    assert_eq!(p1.len(), p2.len(), "distribution length mismatch");
    0.5 * p1.iter().zip(p2).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_tvd() {
        let p = [0.25, 0.25, 0.25, 0.25];
        assert_eq!(total_variation_distance(&p, &p), 0.0);
    }

    #[test]
    fn disjoint_distributions_have_tvd_one() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((total_variation_distance(&p, &q) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn symmetry() {
        let p = [0.7, 0.2, 0.1, 0.0];
        let q = [0.1, 0.3, 0.5, 0.1];
        assert_eq!(
            total_variation_distance(&p, &q),
            total_variation_distance(&q, &p)
        );
    }

    #[test]
    fn triangle_inequality() {
        let p = [0.6, 0.4];
        let q = [0.3, 0.7];
        let r = [0.1, 0.9];
        let pq = total_variation_distance(&p, &q);
        let qr = total_variation_distance(&q, &r);
        let pr = total_variation_distance(&p, &r);
        assert!(pr <= pq + qr + 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = total_variation_distance(&[1.0], &[0.5, 0.5]);
    }
}
