//! State-vector and unitary simulation with stochastic Pauli noise.
//!
//! This crate is the evaluation substrate for the Geyser pipeline. The
//! paper's evaluation (Sec. 4) simulates circuits under a bit-flip +
//! phase-flip noise model and compares output distributions with the
//! total variation distance (TVD); block composition additionally
//! needs exact unitaries of 3-qubit blocks to compute the
//! Hilbert–Schmidt distance. Both engines live here:
//!
//! * [`StateVector`] — per-gate state-vector application, practical up
//!   to ~20 qubits (the largest paper benchmark is 16).
//! * [`circuit_unitary`] — full `2^n × 2^n` unitary construction,
//!   practical up to ~12 qubits; block composition only uses `n = 3`.
//! * [`NoiseModel`] + [`sample_noisy_distribution`] — Monte-Carlo
//!   trajectory simulation of the paper's stochastic Pauli channel.
//! * [`total_variation_distance`] — the output-fidelity metric.
//!
//! # Example
//!
//! ```
//! use geyser_circuit::Circuit;
//! use geyser_sim::{ideal_distribution, total_variation_distance};
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! let p = ideal_distribution(&bell);
//! // Bell state: 50/50 between |00> and |11>.
//! assert!((p[0] - 0.5).abs() < 1e-12);
//! assert!((p[3] - 0.5).abs() < 1e-12);
//! assert!(total_variation_distance(&p, &p) < 1e-15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channels;
mod density;
mod error;
mod loss;
mod noise;
mod observable;
mod sampler;
mod statevector;
mod tvd;
mod unitary;

pub use channels::KrausChannel;
pub use density::{exact_noisy_distribution, DensityMatrix};
pub use error::SimError;
pub use loss::{sample_with_atom_loss, AtomLossModel};
pub use noise::{NoiseGranularity, NoiseModel};
pub use observable::{Observable, Pauli, PauliString};
pub use sampler::{
    ideal_distribution, sample_noisy_distribution, sampled_counts, try_ideal_distribution,
    try_sample_noisy_distribution, try_sample_noisy_distribution_traced,
    try_sample_noisy_distribution_with_faults, SimFaults, MAX_TRAJECTORY_RETRIES,
};
pub use statevector::{StateVector, NORM_DRIFT_TOL};
pub use tvd::total_variation_distance;
pub use unitary::{circuit_unitary, embed_gate};
