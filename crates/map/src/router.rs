//! SWAP routing onto the lattice (SABRE-style lookahead heuristic).

use geyser_circuit::{Circuit, Gate, Operation};
use geyser_topology::{Lattice, PathMatrix};

use crate::lower::is_two_qubit_max;
use crate::Layout;

/// Result of routing: a physical circuit over lattice nodes plus the
/// layout evolution caused by inserted SWAPs.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// The routed circuit, indexed by lattice node. Every two-qubit
    /// operation acts on adjacent nodes.
    pub circuit: Circuit,
    /// Placement before the first operation.
    pub initial_layout: Layout,
    /// Placement after the last operation (SWAPs permute qubits).
    pub final_layout: Layout,
    /// Number of SWAP gates inserted.
    pub swaps_inserted: usize,
}

/// Number of upcoming two-qubit gates considered by the lookahead.
const LOOKAHEAD_WINDOW: usize = 12;
/// Geometric decay applied to later gates in the lookahead score.
const LOOKAHEAD_DECAY: f64 = 0.6;

/// Routes a logical circuit (gates of arity ≤ 2) onto `lattice`,
/// inserting SWAPs so that every two-qubit gate acts on adjacent
/// nodes.
///
/// The heuristic walks each non-adjacent pair together one hop at a
/// time, choosing at each step the single SWAP (from either endpoint
/// toward the other) that minimizes a decayed lookahead distance over
/// the next `LOOKAHEAD_WINDOW` (12) two-qubit gates — a lightweight
/// variant of SABRE's scoring.
///
/// # Panics
///
/// Panics if the circuit contains gates of arity three (lower them
/// first with [`crate::lower_to_two_qubit`]), or the layout does not
/// match the circuit/lattice.
pub fn route(circuit: &Circuit, lattice: &Lattice, initial_layout: &Layout) -> RoutedCircuit {
    assert!(
        is_two_qubit_max(circuit),
        "route requires gates of arity <= 2; lower the circuit first"
    );
    assert_eq!(
        initial_layout.num_logical(),
        circuit.num_qubits(),
        "layout logical-qubit count mismatch"
    );
    assert_eq!(
        initial_layout.num_nodes(),
        lattice.num_nodes(),
        "layout node count mismatch"
    );

    let pm = PathMatrix::new(lattice);
    let mut layout = initial_layout.clone();
    let mut out = Circuit::new(lattice.num_nodes());
    let mut swaps = 0usize;

    // Pre-extract the two-qubit gate positions for lookahead scoring.
    let two_qubit_gates: Vec<(usize, usize, usize)> = circuit
        .iter()
        .enumerate()
        .filter(|(_, op)| op.arity() == 2)
        .map(|(i, op)| (i, op.qubits()[0], op.qubits()[1]))
        .collect();

    let lookahead_score = |layout: &Layout, from_2q_idx: usize| -> f64 {
        two_qubit_gates
            .iter()
            .skip(from_2q_idx)
            .take(LOOKAHEAD_WINDOW)
            .enumerate()
            .map(|(k, &(_, a, b))| {
                let d = pm.hops(layout.node_of(a), layout.node_of(b)) as f64;
                LOOKAHEAD_DECAY.powi(k as i32) * d
            })
            .sum()
    };

    let mut next_2q = 0usize;
    for op in circuit.iter() {
        match op.arity() {
            1 => {
                let node = layout.node_of(op.qubits()[0]);
                out.push(Operation::new(*op.gate(), vec![node]));
            }
            2 => {
                let (a, b) = (op.qubits()[0], op.qubits()[1]);
                // Bring the endpoints together one hop at a time.
                while !lattice.are_adjacent(layout.node_of(a), layout.node_of(b)) {
                    let na = layout.node_of(a);
                    let nb = layout.node_of(b);
                    // Candidate SWAPs: first hop from either endpoint.
                    let hop_a = pm.shortest_path(na, nb)[1];
                    let hop_b = pm.shortest_path(nb, na)[1];
                    let mut try_a = layout.clone();
                    try_a.swap_nodes(na, hop_a);
                    let mut try_b = layout.clone();
                    try_b.swap_nodes(nb, hop_b);
                    let score_a = lookahead_score(&try_a, next_2q);
                    let score_b = lookahead_score(&try_b, next_2q);
                    let (chosen, swap_pair) = if score_a <= score_b {
                        (try_a, (na, hop_a))
                    } else {
                        (try_b, (nb, hop_b))
                    };
                    out.push(Operation::new(Gate::Swap, vec![swap_pair.0, swap_pair.1]));
                    swaps += 1;
                    layout = chosen;
                }
                out.push(Operation::new(
                    *op.gate(),
                    vec![layout.node_of(a), layout.node_of(b)],
                ));
                next_2q += 1;
            }
            _ => unreachable!("arity checked above"),
        }
    }

    RoutedCircuit {
        circuit: out,
        initial_layout: initial_layout.clone(),
        final_layout: layout,
        swaps_inserted: swaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_num::hilbert_schmidt_distance;
    use geyser_sim::circuit_unitary;

    /// Builds the permutation circuit mapping the routed register back
    /// to the initial placement, so unitary equivalence can be checked.
    fn undo_permutation(routed: &RoutedCircuit) -> Circuit {
        let n_nodes = routed.circuit.num_qubits();
        let mut c = Circuit::new(n_nodes);
        // Current position of each logical qubit vs its initial node.
        let mut pos: Vec<usize> = (0..routed.initial_layout.num_logical())
            .map(|q| routed.final_layout.node_of(q))
            .collect();
        for q in 0..pos.len() {
            let want = routed.initial_layout.node_of(q);
            if pos[q] != want {
                // Find which logical qubit (if any) sits at `want`.
                let other = pos.iter().position(|&p| p == want);
                c.swap(pos[q], want);
                let old = pos[q];
                pos[q] = want;
                if let Some(o) = other {
                    pos[o] = old;
                }
            }
        }
        c
    }

    fn assert_routing_preserves_unitary(logical: &Circuit, lattice: &Lattice) {
        let layout = Layout::trivial(logical.num_qubits(), lattice);
        let routed = route(logical, lattice, &layout);
        // All 2q ops adjacent.
        for op in routed.circuit.iter() {
            if op.arity() == 2 {
                assert!(
                    lattice.are_adjacent(op.qubits()[0], op.qubits()[1]),
                    "non-adjacent 2q op after routing: {op}"
                );
            }
        }
        // Unitary equivalence after undoing the SWAP permutation:
        // embed the logical circuit into the node space via the layout.
        let mut full = routed.circuit.clone();
        full.extend_from(&undo_permutation(&routed));
        let embedded = logical.remapped(lattice.num_nodes(), |q| layout.node_of(q));
        let d = hilbert_schmidt_distance(&circuit_unitary(&embedded), &circuit_unitary(&full));
        assert!(d < 1e-9, "routing changed the unitary, HSD = {d}");
    }

    #[test]
    fn adjacent_gates_route_without_swaps() {
        let lat = Lattice::square(2, 2);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let routed = route(&c, &lat, &Layout::trivial(2, &lat));
        assert_eq!(routed.swaps_inserted, 0);
        assert_eq!(routed.circuit.len(), 2);
    }

    #[test]
    fn distant_gate_inserts_swaps() {
        // 1×4 line: qubits 0 and 3 are three hops apart.
        let lat = Lattice::square(1, 4);
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let routed = route(&c, &lat, &Layout::trivial(4, &lat));
        assert_eq!(routed.swaps_inserted, 2);
        assert_routing_preserves_unitary(&c, &lat);
    }

    #[test]
    fn routing_preserves_unitary_on_line() {
        let lat = Lattice::square(1, 4);
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 2).cx(1, 3).cz(0, 3).t(2);
        assert_routing_preserves_unitary(&c, &lat);
    }

    #[test]
    fn routing_preserves_unitary_on_triangular() {
        let lat = Lattice::triangular(2, 3);
        let mut c = Circuit::new(5);
        c.h(0).cx(0, 4).cz(1, 3).cx(2, 4).cx(0, 1).cz(3, 4);
        assert_routing_preserves_unitary(&c, &lat);
    }

    #[test]
    fn single_qubit_gates_follow_their_qubit() {
        let lat = Lattice::square(1, 3);
        let mut c = Circuit::new(3);
        c.cx(0, 2).h(0);
        let routed = route(&c, &lat, &Layout::trivial(3, &lat));
        // The H must land on wherever q0 ended up.
        let last = routed.circuit.ops().last().unwrap();
        assert_eq!(last.gate().name(), "h");
        assert_eq!(last.qubits()[0], routed.final_layout.node_of(0));
    }

    #[test]
    fn repeated_interaction_amortizes_swaps() {
        // After the first CX(0,3), the qubits sit adjacent: the second
        // CX must not add SWAPs.
        let lat = Lattice::square(1, 4);
        let mut c = Circuit::new(4);
        c.cx(0, 3).cx(0, 3);
        let routed = route(&c, &lat, &Layout::trivial(4, &lat));
        assert_eq!(routed.swaps_inserted, 2);
    }

    #[test]
    #[should_panic(expected = "arity <= 2")]
    fn three_qubit_gate_rejected() {
        let lat = Lattice::triangular(2, 2);
        let mut c = Circuit::new(3);
        c.ccz(0, 1, 2);
        let _ = route(&c, &lat, &Layout::trivial(3, &lat));
    }
}
