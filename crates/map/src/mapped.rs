//! The end-to-end mapping pipeline and its result type.

use geyser_circuit::{Circuit, GateCounts};
use geyser_telemetry::Telemetry;
use geyser_topology::Lattice;

use crate::{
    lower_to_two_qubit, optimize_to_fixpoint, route, to_native_basis, zone_aware_depth_pulses,
    Layout, MapError,
};

/// Options controlling [`map_circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingOptions {
    /// Run the OptiMap optimization passes after basis translation.
    pub optimize: bool,
    /// Use the interaction-aware initial layout instead of the trivial
    /// one.
    pub smart_layout: bool,
}

impl MappingOptions {
    /// Baseline configuration: mapping and scheduling only, no
    /// optimization passes (paper's "Baseline" technique).
    pub fn baseline() -> Self {
        MappingOptions {
            optimize: false,
            smart_layout: false,
        }
    }

    /// OptiMap configuration: Baseline plus all optimization passes
    /// (paper's "OptiMap" technique).
    pub fn optimized() -> Self {
        MappingOptions {
            optimize: true,
            smart_layout: true,
        }
    }
}

impl Default for MappingOptions {
    fn default() -> Self {
        Self::optimized()
    }
}

/// A circuit mapped onto a physical lattice in the native basis.
///
/// Carries everything downstream stages need: the physical circuit
/// (over lattice nodes), the lattice, and the initial/final layouts
/// (SWAP routing permutes logical qubits across nodes).
#[derive(Debug, Clone)]
pub struct MappedCircuit {
    circuit: Circuit,
    lattice: Lattice,
    initial_layout: Layout,
    final_layout: Layout,
    num_logical: usize,
    swaps_inserted: usize,
}

impl MappedCircuit {
    /// Assembles a mapped circuit from its parts (used by the Geyser
    /// pipeline when substituting a composed physical circuit).
    ///
    /// # Panics
    ///
    /// Panics if the circuit is not over the lattice's node space.
    pub fn from_parts(
        circuit: Circuit,
        lattice: Lattice,
        initial_layout: Layout,
        final_layout: Layout,
        num_logical: usize,
        swaps_inserted: usize,
    ) -> Self {
        assert_eq!(
            circuit.num_qubits(),
            lattice.num_nodes(),
            "circuit must be over lattice nodes"
        );
        MappedCircuit {
            circuit,
            lattice,
            initial_layout,
            final_layout,
            num_logical,
            swaps_inserted,
        }
    }

    /// Fallible form of [`MappedCircuit::from_parts`]: returns
    /// [`MapError::NodeSpaceMismatch`] instead of panicking when the
    /// circuit is not over the lattice's node space.
    pub fn try_from_parts(
        circuit: Circuit,
        lattice: Lattice,
        initial_layout: Layout,
        final_layout: Layout,
        num_logical: usize,
        swaps_inserted: usize,
    ) -> Result<Self, MapError> {
        if circuit.num_qubits() != lattice.num_nodes() {
            return Err(MapError::NodeSpaceMismatch {
                circuit_qubits: circuit.num_qubits(),
                lattice_nodes: lattice.num_nodes(),
            });
        }
        Ok(Self::from_parts(
            circuit,
            lattice,
            initial_layout,
            final_layout,
            num_logical,
            swaps_inserted,
        ))
    }

    /// The physical circuit over lattice nodes.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The lattice the circuit is mapped onto.
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// Placement before the first operation.
    pub fn initial_layout(&self) -> &Layout {
        &self.initial_layout
    }

    /// Placement after the last operation.
    pub fn final_layout(&self) -> &Layout {
        &self.final_layout
    }

    /// Number of logical qubits of the original program.
    pub fn num_logical(&self) -> usize {
        self.num_logical
    }

    /// SWAPs inserted during routing.
    pub fn swaps_inserted(&self) -> usize {
        self.swaps_inserted
    }

    /// Total physical pulses (paper Fig. 12).
    pub fn total_pulses(&self) -> u64 {
        self.circuit.total_pulses()
    }

    /// Zone-aware critical-path pulses (paper Fig. 13).
    pub fn depth_pulses(&self) -> u64 {
        zone_aware_depth_pulses(&self.circuit, &self.lattice)
    }

    /// Gate counts in the paper's buckets (Fig. 14).
    pub fn gate_counts(&self) -> GateCounts {
        self.circuit.gate_counts()
    }

    /// Returns a copy with a different physical circuit (same lattice
    /// and layouts) — used by composition, which rewrites blocks
    /// in place without moving qubits.
    pub fn with_circuit(&self, circuit: Circuit) -> Self {
        Self::from_parts(
            circuit,
            self.lattice.clone(),
            self.initial_layout.clone(),
            self.final_layout.clone(),
            self.num_logical,
            self.swaps_inserted,
        )
    }

    /// Marginalizes a distribution over node basis states down to the
    /// logical register, reading each logical qubit from the node it
    /// occupies at the end of the circuit.
    ///
    /// Under noise, nodes outside the register may be excited; their
    /// state is traced out, exactly as a hardware run would discard
    /// non-register readout.
    ///
    /// # Panics
    ///
    /// Panics if `node_distribution.len() != 2^num_nodes`.
    pub fn logical_distribution(&self, node_distribution: &[f64]) -> Vec<f64> {
        let num_nodes = self.lattice.num_nodes();
        assert_eq!(
            node_distribution.len(),
            1usize << num_nodes,
            "distribution dimension mismatch"
        );
        let n = self.num_logical;
        let mut out = vec![0.0f64; 1 << n];
        // Bit position (from LSB) of node v in a node basis index.
        let node_bit = |v: usize| num_nodes - 1 - v;
        // Bit position of logical qubit q in a logical basis index.
        let logical_bit = |q: usize| n - 1 - q;
        let register: Vec<(usize, usize)> = (0..n)
            .map(|q| (logical_bit(q), node_bit(self.final_layout.node_of(q))))
            .collect();
        for (state, &p) in node_distribution.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let mut logical_state = 0usize;
            for &(lbit, nbit) in &register {
                if (state >> nbit) & 1 == 1 {
                    logical_state |= 1 << lbit;
                }
            }
            out[logical_state] += p;
        }
        out
    }
}

/// Runs the full mapping pipeline (paper Sec. 3.2):
///
/// 1. lower three-qubit gates to one-/two-qubit gates,
/// 2. choose an initial layout,
/// 3. route with SWAPs so all two-qubit gates are adjacent,
/// 4. translate to the native `{U3, CZ}` basis,
/// 5. (OptiMap only) run optimization passes to fixpoint.
///
/// # Panics
///
/// Panics if the lattice has fewer nodes than the circuit has qubits.
///
/// # Example
///
/// ```
/// use geyser_circuit::Circuit;
/// use geyser_map::{map_circuit, MappingOptions};
/// use geyser_topology::Lattice;
///
/// let mut c = Circuit::new(4);
/// c.h(0).cx(0, 3).cx(1, 2);
/// let lat = Lattice::triangular_for(4);
/// let baseline = map_circuit(&c, &lat, &MappingOptions::baseline());
/// let optimap = map_circuit(&c, &lat, &MappingOptions::optimized());
/// assert!(optimap.total_pulses() <= baseline.total_pulses());
/// ```
pub fn map_circuit(
    logical: &Circuit,
    lattice: &Lattice,
    options: &MappingOptions,
) -> MappedCircuit {
    try_map_circuit(logical, lattice, options).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`map_circuit`]: returns
/// [`MapError::LatticeTooSmall`] instead of panicking when the lattice
/// cannot host the program.
///
/// # Example
///
/// ```
/// use geyser_circuit::Circuit;
/// use geyser_map::{try_map_circuit, MapError, MappingOptions};
/// use geyser_topology::Lattice;
///
/// let mut c = Circuit::new(6);
/// c.h(0).cx(0, 5);
/// let tiny = Lattice::triangular(1, 2); // 2 nodes for 6 qubits
/// let err = try_map_circuit(&c, &tiny, &MappingOptions::baseline());
/// assert!(matches!(err, Err(MapError::LatticeTooSmall { .. })));
/// ```
pub fn try_map_circuit(
    logical: &Circuit,
    lattice: &Lattice,
    options: &MappingOptions,
) -> Result<MappedCircuit, MapError> {
    try_map_circuit_traced(logical, lattice, options, &Telemetry::disabled())
}

/// [`try_map_circuit`] with telemetry: opens a span per mapping stage
/// (category `map`) and counts routed SWAP insertions under
/// `map.swaps_inserted`. A disabled handle makes this identical to the
/// untraced form — instrumentation never feeds back into mapping
/// decisions.
pub fn try_map_circuit_traced(
    logical: &Circuit,
    lattice: &Lattice,
    options: &MappingOptions,
    telemetry: &Telemetry,
) -> Result<MappedCircuit, MapError> {
    if lattice.num_nodes() < logical.num_qubits() {
        return Err(MapError::LatticeTooSmall {
            qubits: logical.num_qubits(),
            nodes: lattice.num_nodes(),
        });
    }
    let lowered = {
        let _span = telemetry.span("map", "map.lower");
        lower_to_two_qubit(logical)
    };
    let layout = {
        let mut span = telemetry.span("map", "map.layout");
        span.attr("smart", options.smart_layout);
        if options.smart_layout {
            Layout::interaction_aware(&lowered, lattice)
        } else {
            Layout::trivial(lowered.num_qubits(), lattice)
        }
    };
    let routed = {
        let mut span = telemetry.span("map", "map.route");
        let routed = route(&lowered, lattice, &layout);
        span.attr("swaps", routed.swaps_inserted);
        routed
    };
    telemetry.counter_add("map.swaps_inserted", routed.swaps_inserted as u64);
    let native = {
        let _span = telemetry.span("map", "map.native_basis");
        to_native_basis(&routed.circuit)
    };
    let final_circuit = if options.optimize {
        let _span = telemetry.span("map", "map.optimize");
        optimize_to_fixpoint(&native)
    } else {
        native
    };
    Ok(MappedCircuit {
        circuit: final_circuit,
        lattice: lattice.clone(),
        initial_layout: routed.initial_layout,
        final_layout: routed.final_layout,
        num_logical: logical.num_qubits(),
        swaps_inserted: routed.swaps_inserted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_sim::{ideal_distribution, total_variation_distance};

    fn logical_output(mapped: &MappedCircuit) -> Vec<f64> {
        mapped.logical_distribution(&ideal_distribution(mapped.circuit()))
    }

    #[test]
    fn pipeline_produces_native_basis() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccx(0, 1, 2);
        let lat = Lattice::triangular_for(3);
        for opts in [MappingOptions::baseline(), MappingOptions::optimized()] {
            let m = map_circuit(&c, &lat, &opts);
            assert!(m.circuit().is_native_basis(), "{opts:?}");
        }
    }

    #[test]
    fn mapping_preserves_output_distribution() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).t(3).cx(0, 3);
        let lat = Lattice::triangular_for(4);
        let want = ideal_distribution(&c);
        for opts in [MappingOptions::baseline(), MappingOptions::optimized()] {
            let m = map_circuit(&c, &lat, &opts);
            let got = logical_output(&m);
            let tvd = total_variation_distance(&want, &got);
            assert!(tvd < 1e-9, "{opts:?}: TVD = {tvd}");
        }
    }

    #[test]
    fn optimap_never_uses_more_pulses_than_baseline() {
        let mut c = Circuit::new(5);
        c.h(0).cx(0, 4).h(1).cx(1, 3).t(2).cx(2, 4).cx(0, 1).h(4);
        let lat = Lattice::triangular_for(5);
        let base = map_circuit(&c, &lat, &MappingOptions::baseline());
        let opti = map_circuit(&c, &lat, &MappingOptions::optimized());
        assert!(opti.total_pulses() <= base.total_pulses());
    }

    #[test]
    fn logical_distribution_reads_final_positions() {
        // Circuit with routing: X on q0, then CX(0, 3) forces SWAPs on
        // a line; the |1⟩ must still be read out from q0's final node.
        let mut c = Circuit::new(4);
        c.x(0).cx(0, 3);
        let lat = Lattice::square(1, 4);
        let m = map_circuit(&c, &lat, &MappingOptions::baseline());
        let got = logical_output(&m);
        // Expected: |1001⟩ (q0 = 1 flips q3).
        let want_state = 0b1001;
        assert!((got[want_state] - 1.0).abs() < 1e-9, "dist = {got:?}");
    }

    #[test]
    fn marginalization_sums_to_one() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 2);
        let lat = Lattice::triangular(2, 2); // 4 nodes > 3 qubits
        let m = map_circuit(&c, &lat, &MappingOptions::optimized());
        let dist = logical_output(&m);
        assert_eq!(dist.len(), 8);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn with_circuit_swaps_payload() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let lat = Lattice::triangular_for(2);
        let m = map_circuit(&c, &lat, &MappingOptions::baseline());
        let empty = m.with_circuit(Circuit::new(lat.num_nodes()));
        assert_eq!(empty.total_pulses(), 0);
        assert_eq!(empty.num_logical(), 2);
    }

    #[test]
    fn depth_pulses_bounded_by_total() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(2, 3).cx(1, 2);
        let lat = Lattice::triangular_for(4);
        let m = map_circuit(&c, &lat, &MappingOptions::optimized());
        assert!(m.depth_pulses() <= m.total_pulses());
        assert!(m.depth_pulses() > 0);
    }
}
