//! OptiMap optimization passes.
//!
//! These are the "state-of-the-art optimizations performed by Qiskit"
//! the paper's OptiMap technique layers on top of the Baseline
//! (Sec. 4): fusing runs of single-qubit gates into one U3 pulse,
//! deleting identity gates, and cancelling CZ/CCZ pairs across
//! commuting (diagonal) operations. Every pass preserves the circuit
//! unitary up to global phase.

use geyser_circuit::{Circuit, Gate, Operation};
use geyser_num::{zyz_angles, CMatrix};

const TOL: f64 = 1e-9;

/// Returns `true` if the matrix equals `e^{iα}·I` within tolerance.
fn is_identity_up_to_phase(m: &CMatrix) -> bool {
    let phase = m[(0, 0)];
    if (phase.norm() - 1.0).abs() > TOL {
        return false;
    }
    m.approx_eq(&CMatrix::identity(m.rows()).scale(phase), TOL)
}

/// Returns `true` if the operation's matrix is diagonal (commutes with
/// CZ and CCZ).
fn is_diagonal_op(op: &Operation) -> bool {
    if op.gate().is_diagonal() {
        return true;
    }
    let m = op.gate().matrix();
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            if r != c && m[(r, c)].norm() > TOL {
                return false;
            }
        }
    }
    true
}

/// Fuses every maximal run of single-qubit gates on one qubit into a
/// single U3 (dropping runs that collapse to the identity).
///
/// # Example
///
/// ```
/// use geyser_circuit::Circuit;
/// use geyser_map::fuse_single_qubit_runs;
/// let mut c = Circuit::new(1);
/// c.h(0).h(0); // H·H = I: fuses away entirely
/// assert!(fuse_single_qubit_runs(&c).is_empty());
/// ```
pub fn fuse_single_qubit_runs(circuit: &Circuit) -> Circuit {
    let n = circuit.num_qubits();
    let mut out = Circuit::new(n);
    let mut pending: Vec<Option<CMatrix>> = vec![None; n];

    let flush = |out: &mut Circuit, pending: &mut Vec<Option<CMatrix>>, q: usize| {
        if let Some(m) = pending[q].take() {
            if !is_identity_up_to_phase(&m) {
                let d = zyz_angles(&m).expect("product of unitaries is unitary");
                out.u3(d.theta, d.phi, d.lambda, q);
            }
        }
    };

    for op in circuit.iter() {
        if op.arity() == 1 {
            let q = op.qubits()[0];
            let g = op.gate().matrix();
            pending[q] = Some(match pending[q].take() {
                // Later gates left-multiply: run = g_k ⋯ g_2 g_1.
                Some(acc) => g.matmul(&acc),
                None => g,
            });
        } else {
            for &q in op.qubits() {
                flush(&mut out, &mut pending, q);
            }
            out.push(op.clone());
        }
    }
    for q in 0..n {
        flush(&mut out, &mut pending, q);
    }
    out
}

/// Removes single-qubit operations whose matrix is the identity up to
/// global phase (e.g. `U3(0, 0, 0)` or `RZ(2π)`).
pub fn remove_identities(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    for op in circuit.iter() {
        if op.arity() == 1 && is_identity_up_to_phase(&op.gate().matrix()) {
            continue;
        }
        out.push(op.clone());
    }
    out
}

/// Cancels pairs of identical CZ (or CCZ) operations on the same qubit
/// set when every intervening operation touching those qubits is
/// diagonal (and therefore commutes with the gate).
///
/// # Example
///
/// ```
/// use geyser_circuit::Circuit;
/// use geyser_map::cancel_cz_pairs;
/// let mut c = Circuit::new(2);
/// c.cz(0, 1).rz(0.4, 0).cz(1, 0); // CZ is symmetric; RZ commutes
/// let opt = cancel_cz_pairs(&c);
/// assert_eq!(opt.gate_counts().cz, 0);
/// assert_eq!(opt.len(), 1);
/// ```
pub fn cancel_cz_pairs(circuit: &Circuit) -> Circuit {
    let ops = circuit.ops();
    let mut removed = vec![false; ops.len()];

    for i in 0..ops.len() {
        if removed[i] || !matches!(ops[i].gate(), Gate::CZ | Gate::CCZ) {
            continue;
        }
        let mut set_i: Vec<usize> = ops[i].qubits().to_vec();
        set_i.sort_unstable();
        'scan: for j in (i + 1)..ops.len() {
            if removed[j] {
                continue;
            }
            if !ops[j].overlaps(&ops[i]) {
                continue;
            }
            if ops[j].gate() == ops[i].gate() {
                let mut set_j: Vec<usize> = ops[j].qubits().to_vec();
                set_j.sort_unstable();
                if set_i == set_j {
                    removed[i] = true;
                    removed[j] = true;
                    break 'scan;
                }
            }
            if is_diagonal_op(&ops[j]) {
                continue;
            }
            break 'scan;
        }
    }

    let mut out = Circuit::new(circuit.num_qubits());
    for (i, op) in ops.iter().enumerate() {
        if !removed[i] {
            out.push(op.clone());
        }
    }
    out
}

/// Runs all OptiMap passes in rotation until the circuit stops
/// changing (bounded at ten rounds; convergence is typically 2–3).
///
/// # Example
///
/// ```
/// use geyser_circuit::Circuit;
/// use geyser_map::optimize_to_fixpoint;
/// let mut c = Circuit::new(2);
/// c.h(1).cz(0, 1).cz(0, 1).h(1); // everything cancels
/// assert!(optimize_to_fixpoint(&c).is_empty());
/// ```
pub fn optimize_to_fixpoint(circuit: &Circuit) -> Circuit {
    let mut cur = circuit.clone();
    for _ in 0..10 {
        let next = cancel_cz_pairs(&fuse_single_qubit_runs(&cur));
        if next.ops() == cur.ops() {
            break;
        }
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_num::hilbert_schmidt_distance;
    use geyser_sim::circuit_unitary;

    fn assert_equivalent(a: &Circuit, b: &Circuit) {
        let d = hilbert_schmidt_distance(&circuit_unitary(a), &circuit_unitary(b));
        assert!(d < 1e-9, "HSD = {d}");
    }

    #[test]
    fn fusion_merges_runs() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).h(0).x(1).z(1);
        let fused = fuse_single_qubit_runs(&c);
        assert_eq!(fused.len(), 2); // one U3 per qubit
        assert_equivalent(&c, &fused);
    }

    #[test]
    fn fusion_respects_multi_qubit_barriers() {
        let mut c = Circuit::new(2);
        c.h(0).cz(0, 1).h(0);
        let fused = fuse_single_qubit_runs(&c);
        // The two H's cannot fuse across the CZ.
        assert_eq!(fused.len(), 3);
        assert_equivalent(&c, &fused);
    }

    #[test]
    fn fusion_drops_identity_runs() {
        let mut c = Circuit::new(1);
        c.s(0).sdg(0).t(0).tdg(0);
        assert!(fuse_single_qubit_runs(&c).is_empty());
    }

    #[test]
    fn fusion_preserves_gate_order_semantics() {
        // T·H ≠ H·T: fusion must respect application order.
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let fused = fuse_single_qubit_runs(&c);
        assert_eq!(fused.len(), 1);
        assert_equivalent(&c, &fused);
    }

    #[test]
    fn identity_removal() {
        let mut c = Circuit::new(2);
        c.u3(0.0, 0.0, 0.0, 0).rz(0.0, 1).h(0);
        let cleaned = remove_identities(&c);
        assert_eq!(cleaned.len(), 1);
    }

    #[test]
    fn adjacent_cz_pairs_cancel() {
        let mut c = Circuit::new(2);
        c.cz(0, 1).cz(0, 1);
        assert!(cancel_cz_pairs(&c).is_empty());
    }

    #[test]
    fn cz_cancels_through_diagonal_gates() {
        let mut c = Circuit::new(3);
        c.cz(0, 1).rz(0.3, 0).t(1).cz(2, 1).cz(0, 1);
        let opt = cancel_cz_pairs(&c);
        // The outer CZ(0,1) pair cancels (RZ, T, CZ(2,1) all diagonal).
        assert_eq!(opt.gate_counts().cz, 1);
        assert_equivalent(&c, &opt);
    }

    #[test]
    fn cz_blocked_by_non_diagonal_gate() {
        let mut c = Circuit::new(2);
        c.cz(0, 1).h(0).cz(0, 1);
        let opt = cancel_cz_pairs(&c);
        assert_eq!(opt.gate_counts().cz, 2);
    }

    #[test]
    fn ccz_pairs_cancel() {
        let mut c = Circuit::new(3);
        c.ccz(0, 1, 2).rz(0.5, 1).ccz(2, 0, 1);
        let opt = cancel_cz_pairs(&c);
        assert_eq!(opt.gate_counts().ccz, 0);
        assert_equivalent(&c, &opt);
    }

    #[test]
    fn fixpoint_combines_passes() {
        // H-CZ-CZ-H collapses to nothing, but only after both passes.
        let mut c = Circuit::new(2);
        c.h(1).cz(0, 1).cz(1, 0).h(1);
        assert!(optimize_to_fixpoint(&c).is_empty());
    }

    #[test]
    fn fixpoint_preserves_unitary_on_random_circuit() {
        let mut c = Circuit::new(3);
        c.h(0)
            .t(0)
            .cz(0, 1)
            .rz(0.2, 1)
            .cz(0, 1)
            .h(2)
            .h(2)
            .cz(1, 2)
            .x(0)
            .y(0);
        let opt = optimize_to_fixpoint(&c);
        assert!(opt.total_pulses() < c.total_pulses());
        assert_equivalent(&c, &opt);
    }

    #[test]
    fn fixpoint_never_increases_pulses() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cz(1, 2).h(2);
        let native = crate::to_native_basis(&c);
        let opt = optimize_to_fixpoint(&native);
        assert!(opt.total_pulses() <= native.total_pulses());
    }
}
