//! Typed errors for the mapping stage.

use std::fmt;

/// Why a circuit could not be mapped onto a lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MapError {
    /// The lattice has fewer nodes than the program has qubits.
    LatticeTooSmall {
        /// Logical qubits in the program.
        qubits: usize,
        /// Nodes available on the lattice.
        nodes: usize,
    },
    /// A physical circuit was paired with a lattice of a different
    /// node count (see [`crate::MappedCircuit::try_from_parts`]).
    NodeSpaceMismatch {
        /// Qubit count of the physical circuit.
        circuit_qubits: usize,
        /// Node count of the lattice.
        lattice_nodes: usize,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::LatticeTooSmall { qubits, nodes } => write!(
                f,
                "lattice too small: {qubits} logical qubits need at least \
                 {qubits} nodes, lattice has {nodes}"
            ),
            MapError::NodeSpaceMismatch {
                circuit_qubits,
                lattice_nodes,
            } => write!(
                f,
                "circuit must be over lattice nodes: circuit has \
                 {circuit_qubits} qubits, lattice has {lattice_nodes} nodes"
            ),
        }
    }
}

impl std::error::Error for MapError {}
