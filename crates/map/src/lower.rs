//! Front-end lowering: decompose three-qubit gates into one- and
//! two-qubit gates.
//!
//! The paper's input circuits contain only one- and two-qubit gates
//! (Sec. 3.2: "the input circuits of quantum algorithms only consist
//! of one- and two-qubit gate operations") — any Toffoli in an
//! algorithm's textbook form is first lowered with the standard
//! T-gate construction. Geyser's composition stage later *re*-creates
//! three-qubit gates where profitable; this module is the forward
//! direction.

use geyser_circuit::{Circuit, Gate, Operation};

/// Rewrites every CCX/CCZ into the standard 6-CNOT + T-gate
/// construction, leaving all other gates untouched. The result is
/// exactly unitary-equivalent (no global-phase drift).
///
/// # Example
///
/// ```
/// use geyser_circuit::Circuit;
/// use geyser_map::lower_to_two_qubit;
/// let mut c = Circuit::new(3);
/// c.ccx(0, 1, 2);
/// let lowered = lower_to_two_qubit(&c);
/// assert!(lowered.iter().all(|op| op.arity() <= 2));
/// ```
pub fn lower_to_two_qubit(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    for op in circuit.iter() {
        match op.gate() {
            Gate::CCX => {
                let (a, b, c) = (op.qubits()[0], op.qubits()[1], op.qubits()[2]);
                out.h(c);
                emit_ccz_core(&mut out, a, b, c);
                out.h(c);
            }
            Gate::CCZ => {
                let (a, b, c) = (op.qubits()[0], op.qubits()[1], op.qubits()[2]);
                emit_ccz_core(&mut out, a, b, c);
            }
            _ => {
                out.push(op.clone());
            }
        }
    }
    out
}

/// The CCZ body shared by both decompositions: the textbook Toffoli
/// construction with the target's sandwiching Hadamards stripped.
fn emit_ccz_core(out: &mut Circuit, a: usize, b: usize, c: usize) {
    out.cx(b, c);
    out.tdg(c);
    out.cx(a, c);
    out.t(c);
    out.cx(b, c);
    out.tdg(c);
    out.cx(a, c);
    out.t(b);
    out.t(c);
    out.cx(a, b);
    out.t(a);
    out.tdg(b);
    out.cx(a, b);
}

/// Convenience check used by the router: `true` when no operation in
/// the circuit exceeds two qubits.
pub(crate) fn is_two_qubit_max(circuit: &Circuit) -> bool {
    circuit.iter().all(|op: &Operation| op.arity() <= 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_num::hilbert_schmidt_distance;
    use geyser_sim::circuit_unitary;

    #[test]
    fn ccx_lowering_is_exact() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let lowered = lower_to_two_qubit(&c);
        assert!(is_two_qubit_max(&lowered));
        let d = hilbert_schmidt_distance(&circuit_unitary(&c), &circuit_unitary(&lowered));
        assert!(d < 1e-12, "HSD = {d}");
    }

    #[test]
    fn ccz_lowering_is_exact() {
        let mut c = Circuit::new(3);
        c.ccz(0, 1, 2);
        let lowered = lower_to_two_qubit(&c);
        assert!(is_two_qubit_max(&lowered));
        let d = hilbert_schmidt_distance(&circuit_unitary(&c), &circuit_unitary(&lowered));
        assert!(d < 1e-12, "HSD = {d}");
    }

    #[test]
    fn ccz_lowering_gate_budget_matches_paper() {
        // Paper Fig. 11: a decomposed CCZ costs 6 two-qubit gates.
        let mut c = Circuit::new(3);
        c.ccz(0, 1, 2);
        let lowered = lower_to_two_qubit(&c);
        let two_qubit = lowered.iter().filter(|op| op.arity() == 2).count();
        assert_eq!(two_qubit, 6);
    }

    #[test]
    fn lowering_with_permuted_arguments() {
        let mut c = Circuit::new(4);
        c.ccx(3, 1, 0);
        let lowered = lower_to_two_qubit(&c);
        let d = hilbert_schmidt_distance(&circuit_unitary(&c), &circuit_unitary(&lowered));
        assert!(d < 1e-12);
    }

    #[test]
    fn other_gates_pass_through() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(0.3, 2).swap(1, 2);
        let lowered = lower_to_two_qubit(&c);
        assert_eq!(lowered.len(), c.len());
        assert_eq!(lowered.ops(), c.ops());
    }

    #[test]
    fn mixed_circuit_stays_equivalent() {
        let mut c = Circuit::new(3);
        c.h(0).ccx(0, 1, 2).cz(1, 2).ccz(2, 0, 1).t(0);
        let lowered = lower_to_two_qubit(&c);
        assert!(is_two_qubit_max(&lowered));
        let d = hilbert_schmidt_distance(&circuit_unitary(&c), &circuit_unitary(&lowered));
        assert!(d < 1e-11, "HSD = {d}");
    }
}
