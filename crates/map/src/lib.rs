//! Circuit mapping for neutral-atom lattices: layout, SWAP routing,
//! basis translation, and the OptiMap optimization passes.
//!
//! This crate implements the first stage of the Geyser pipeline
//! (paper Sec. 3.2) and the two non-Geyser comparison points of the
//! evaluation:
//!
//! * **Baseline** — lower the logical circuit to one- and two-qubit
//!   gates, place it on the lattice, route with SWAPs, and translate
//!   to the native `{U3, CZ}` basis. No optimization.
//! * **OptiMap** — Baseline plus the standard optimization passes a
//!   state-of-the-art compiler applies: single-qubit-run fusion,
//!   identity elimination, and commutation-aware CZ cancellation.
//!
//! The output [`MappedCircuit`] is expressed over *physical lattice
//! nodes* and carries the layout information needed to interpret
//! measurement outcomes and to verify unitary equivalence.
//!
//! # Example
//!
//! ```
//! use geyser_circuit::Circuit;
//! use geyser_map::{map_circuit, MappingOptions};
//! use geyser_topology::Lattice;
//!
//! let mut c = Circuit::new(3);
//! c.h(0).cx(0, 1).cx(1, 2);
//! let lat = Lattice::triangular_for(3);
//! let mapped = map_circuit(&c, &lat, &MappingOptions::optimized());
//! assert!(mapped.circuit().is_native_basis());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod basis;
mod error;
mod layout;
mod lower;
mod mapped;
mod passes;
mod router;
mod router_optimal;
mod schedule;

pub use basis::to_native_basis;
pub use error::MapError;
pub use layout::Layout;
pub use lower::lower_to_two_qubit;
pub use mapped::{
    map_circuit, try_map_circuit, try_map_circuit_traced, MappedCircuit, MappingOptions,
};
pub use passes::{
    cancel_cz_pairs, fuse_single_qubit_runs, optimize_to_fixpoint, remove_identities,
};
pub use router::{route, RoutedCircuit};
pub use router_optimal::optimal_swap_count;
pub use schedule::{zone_aware_depth_pulses, zone_aware_schedule, Schedule, ScheduledOp};
