//! Initial placement of logical qubits onto lattice nodes.

use geyser_circuit::Circuit;
use geyser_topology::{Lattice, PathMatrix};

/// A bijection from logical qubits to a subset of lattice nodes.
///
/// # Example
///
/// ```
/// use geyser_map::Layout;
/// use geyser_topology::Lattice;
/// let lat = Lattice::triangular(3, 3);
/// let layout = Layout::trivial(4, &lat);
/// assert_eq!(layout.node_of(2), 2);
/// assert_eq!(layout.logical_at(2), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    node_of: Vec<usize>,
    logical_at: Vec<Option<usize>>,
}

impl Layout {
    /// Builds a layout from an explicit logical→node assignment.
    ///
    /// # Panics
    ///
    /// Panics if a node is out of range or assigned twice.
    pub fn from_assignment(node_of: Vec<usize>, num_nodes: usize) -> Self {
        let mut logical_at = vec![None; num_nodes];
        for (q, &n) in node_of.iter().enumerate() {
            assert!(n < num_nodes, "node {n} out of range");
            assert!(logical_at[n].is_none(), "node {n} assigned twice");
            logical_at[n] = Some(q);
        }
        Layout {
            node_of,
            logical_at,
        }
    }

    /// Places logical qubit `q` on node `q`.
    ///
    /// # Panics
    ///
    /// Panics if the lattice has fewer nodes than logical qubits.
    pub fn trivial(num_logical: usize, lattice: &Lattice) -> Self {
        assert!(
            lattice.num_nodes() >= num_logical,
            "lattice too small: {} nodes for {} qubits",
            lattice.num_nodes(),
            num_logical
        );
        Self::from_assignment((0..num_logical).collect(), lattice.num_nodes())
    }

    /// Interaction-aware greedy placement: logical qubits that
    /// interact most are placed first, each as close as possible to
    /// its already-placed partners (classic weighted-graph embedding,
    /// the role Qiskit's layout passes play in the paper's flow).
    ///
    /// # Panics
    ///
    /// Panics if the lattice has fewer nodes than logical qubits.
    pub fn interaction_aware(circuit: &Circuit, lattice: &Lattice) -> Self {
        let n = circuit.num_qubits();
        assert!(
            lattice.num_nodes() >= n,
            "lattice too small: {} nodes for {} qubits",
            lattice.num_nodes(),
            n
        );
        let pm = PathMatrix::new(lattice);

        // Interaction weights between logical qubit pairs.
        let mut weight = vec![0u64; n * n];
        for op in circuit.iter() {
            let qs = op.qubits();
            for i in 0..qs.len() {
                for j in (i + 1)..qs.len() {
                    weight[qs[i] * n + qs[j]] += 1;
                    weight[qs[j] * n + qs[i]] += 1;
                }
            }
        }
        let degree = |q: usize| -> u64 { (0..n).map(|r| weight[q * n + r]).sum() };

        // Order logical qubits by total interaction weight, descending.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&q| std::cmp::Reverse(degree(q)));

        // Seed: put the heaviest qubit on the most-connected node
        // nearest the lattice centroid.
        let centroid_node = {
            let (mut cx, mut cy) = (0.0, 0.0);
            for v in 0..lattice.num_nodes() {
                let (x, y) = lattice.position(v);
                cx += x;
                cy += y;
            }
            cx /= lattice.num_nodes() as f64;
            cy /= lattice.num_nodes() as f64;
            (0..lattice.num_nodes())
                .min_by(|&a, &b| {
                    let da = {
                        let (x, y) = lattice.position(a);
                        (x - cx).hypot(y - cy)
                    };
                    let db = {
                        let (x, y) = lattice.position(b);
                        (x - cx).hypot(y - cy)
                    };
                    da.total_cmp(&db)
                })
                // invariant: callers validate lattice capacity before
                // layout construction, so the node iterator is never
                // empty here.
                .expect("lattice is non-empty")
        };

        let mut node_of = vec![usize::MAX; n];
        let mut taken = vec![false; lattice.num_nodes()];
        for (rank, &q) in order.iter().enumerate() {
            let best = if rank == 0 {
                centroid_node
            } else {
                // Cost of a candidate node: weighted hop distance to
                // already-placed partners (falls back to centroid pull
                // for qubits with no placed partner).
                (0..lattice.num_nodes())
                    .filter(|&v| !taken[v])
                    .min_by_key(|&v| {
                        let mut cost: u64 = 0;
                        let mut any = false;
                        for r in 0..n {
                            let w = weight[q * n + r];
                            if w > 0 && node_of[r] != usize::MAX {
                                cost += w * pm.hops(v, node_of[r]) as u64;
                                any = true;
                            }
                        }
                        if !any {
                            cost = pm.hops(v, centroid_node) as u64;
                        }
                        cost
                    })
                    // invariant: num_logical <= num_nodes is checked on
                    // entry, so at least one untaken node remains for
                    // every qubit placed.
                    .expect("lattice has free nodes")
            };
            node_of[q] = best;
            taken[best] = true;
        }
        Self::from_assignment(node_of, lattice.num_nodes())
    }

    /// Node hosting logical qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[inline]
    pub fn node_of(&self, q: usize) -> usize {
        self.node_of[q]
    }

    /// Logical qubit hosted at `node`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn logical_at(&self, node: usize) -> Option<usize> {
        self.logical_at[node]
    }

    /// Number of logical qubits.
    #[inline]
    pub fn num_logical(&self) -> usize {
        self.node_of.len()
    }

    /// Number of lattice nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.logical_at.len()
    }

    /// Exchanges the contents of two nodes (the layout-tracking side
    /// of a SWAP gate). Either node may be empty.
    ///
    /// # Panics
    ///
    /// Panics if a node is out of range.
    pub fn swap_nodes(&mut self, a: usize, b: usize) {
        let la = self.logical_at[a];
        let lb = self.logical_at[b];
        self.logical_at[a] = lb;
        self.logical_at[b] = la;
        if let Some(q) = la {
            self.node_of[q] = b;
        }
        if let Some(q) = lb {
            self.node_of[q] = a;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_layout_is_identity() {
        let lat = Lattice::square(2, 3);
        let l = Layout::trivial(5, &lat);
        for q in 0..5 {
            assert_eq!(l.node_of(q), q);
            assert_eq!(l.logical_at(q), Some(q));
        }
        assert_eq!(l.logical_at(5), None);
        assert_eq!(l.num_logical(), 5);
        assert_eq!(l.num_nodes(), 6);
    }

    #[test]
    #[should_panic(expected = "lattice too small")]
    fn oversubscription_panics() {
        let lat = Lattice::square(2, 2);
        let _ = Layout::trivial(5, &lat);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_assignment_panics() {
        let _ = Layout::from_assignment(vec![0, 0], 4);
    }

    #[test]
    fn swap_nodes_updates_both_directions() {
        let lat = Lattice::square(2, 2);
        let mut l = Layout::trivial(2, &lat);
        l.swap_nodes(0, 3); // q0 moves to empty node 3
        assert_eq!(l.node_of(0), 3);
        assert_eq!(l.logical_at(0), None);
        assert_eq!(l.logical_at(3), Some(0));
        l.swap_nodes(3, 1); // q0 and q1 exchange
        assert_eq!(l.node_of(0), 1);
        assert_eq!(l.node_of(1), 3);
    }

    #[test]
    fn interaction_aware_places_hot_pairs_adjacent() {
        // q0-q1 interact heavily; they should land adjacent.
        let mut c = Circuit::new(4);
        for _ in 0..10 {
            c.cx(0, 1);
        }
        c.cx(2, 3);
        let lat = Lattice::triangular(3, 3);
        let l = Layout::interaction_aware(&c, &lat);
        assert!(lat.are_adjacent(l.node_of(0), l.node_of(1)));
    }

    #[test]
    fn interaction_aware_is_a_valid_bijection() {
        let mut c = Circuit::new(6);
        c.cx(0, 5).cx(1, 4).cx(2, 3).h(0);
        let lat = Lattice::triangular(3, 3);
        let l = Layout::interaction_aware(&c, &lat);
        let mut seen = std::collections::BTreeSet::new();
        for q in 0..6 {
            assert!(seen.insert(l.node_of(q)), "node reused");
            assert_eq!(l.logical_at(l.node_of(q)), Some(q));
        }
    }

    #[test]
    fn interaction_aware_handles_gateless_circuit() {
        let c = Circuit::new(3);
        let lat = Lattice::square(2, 2);
        let l = Layout::interaction_aware(&c, &lat);
        assert_eq!(l.num_logical(), 3);
    }
}
