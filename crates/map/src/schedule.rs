//! Restriction-zone-aware scheduling (depth pulses, paper Fig. 13).
//!
//! While a multi-qubit Rydberg gate executes, every atom inside its
//! restriction zone is frozen (paper Fig. 4). The critical-path length
//! of a physical circuit therefore depends on the layout: two
//! operations that are data-independent may still serialize because
//! their zones overlap. This greedy list scheduler computes the
//! makespan in pulses under those constraints.

use geyser_circuit::Circuit;
use geyser_topology::Lattice;

/// One scheduled time interval `[start, end)` on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    start: u64,
    end: u64,
}

impl Interval {
    fn overlaps(&self, start: u64, end: u64) -> bool {
        self.start < end && start < self.end
    }
}

/// One operation's placement in a zone-aware schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledOp {
    /// Index into the circuit's operation list.
    pub op_index: usize,
    /// Start time in pulses.
    pub start: u64,
    /// End time in pulses (exclusive).
    pub end: u64,
}

/// A complete zone-aware schedule of a physical circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    entries: Vec<ScheduledOp>,
    makespan: u64,
}

impl Schedule {
    /// Per-operation placements in program order.
    pub fn entries(&self) -> &[ScheduledOp] {
        &self.entries
    }

    /// Total schedule length in pulses (the paper's depth pulses).
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// Number of operations executing at time `t`.
    pub fn concurrency_at(&self, t: u64) -> usize {
        self.entries
            .iter()
            .filter(|e| e.start <= t && t < e.end)
            .count()
    }

    /// Peak concurrency across the schedule — how much quantum
    /// parallelism the layout actually admits.
    pub fn peak_concurrency(&self) -> usize {
        self.entries
            .iter()
            .map(|e| self.concurrency_at(e.start))
            .max()
            .unwrap_or(0)
    }

    /// Renders a textual Gantt chart (one row per scheduled op),
    /// useful for inspecting restriction-zone serialization.
    pub fn render_gantt(&self, circuit: &Circuit) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let span = self.makespan.min(120);
        let scale = if self.makespan > 120 {
            self.makespan as f64 / 120.0
        } else {
            1.0
        };
        for e in &self.entries {
            let op = &circuit.ops()[e.op_index];
            let s = (e.start as f64 / scale).round() as u64;
            let w = (((e.end - e.start) as f64 / scale).round() as u64).max(1);
            let _ = write!(out, "{:>4} {:<18} ", e.op_index, op.to_string());
            out.push_str(&" ".repeat(s as usize));
            out.push_str(&"█".repeat(w.min(span + 1) as usize));
            out.push('\n');
        }
        let _ = writeln!(out, "makespan: {} pulses", self.makespan);
        out
    }
}

/// Builds the full zone-aware schedule of `circuit` on `lattice`.
///
/// Operations are scheduled greedily in program order: each starts at
/// the earliest time satisfying
///
/// 1. data dependencies (its qubits are free),
/// 2. its own qubits are not inside any running multi-qubit gate's
///    restriction zone,
/// 3. (for multi-qubit gates) no other operation is running on a node
///    inside its own restriction zone.
///
/// `circuit` must be expressed over physical lattice nodes.
///
/// # Panics
///
/// Panics if the circuit's qubit count differs from the lattice size.
pub fn zone_aware_schedule(circuit: &Circuit, lattice: &Lattice) -> Schedule {
    assert_eq!(
        circuit.num_qubits(),
        lattice.num_nodes(),
        "circuit must be over lattice nodes"
    );
    let n = lattice.num_nodes();
    // Per node: intervals where an operation executes on the node.
    let mut busy: Vec<Vec<Interval>> = vec![Vec::new(); n];
    // Per node: intervals where the node sits in some gate's zone.
    let mut restricted: Vec<Vec<Interval>> = vec![Vec::new(); n];
    // Earliest data-ready time per node.
    let mut ready: Vec<u64> = vec![0; n];

    let mut makespan = 0u64;
    let mut entries = Vec::with_capacity(circuit.len());
    for (op_index, op) in circuit.iter().enumerate() {
        let dur = op.pulses() as u64;
        let qubits = op.qubits();
        let is_multi = qubits.len() > 1;
        let zone: Vec<usize> = if is_multi {
            lattice.restriction_zone(qubits).into_iter().collect()
        } else {
            Vec::new()
        };

        // Lower bound from data dependencies.
        let mut t = qubits.iter().map(|&q| ready[q]).max().unwrap_or(0);
        // Push t forward past every conflict.
        loop {
            let end = t + dur;
            let mut pushed = t;
            // (2) own qubits must not be restricted during [t, end).
            for &q in qubits {
                for iv in &restricted[q] {
                    if iv.overlaps(t, end) {
                        pushed = pushed.max(iv.end);
                    }
                }
                // Qubits must also not be busy (covers same-node
                // overlap with ops we don't depend on via `ready`).
                for iv in &busy[q] {
                    if iv.overlaps(t, end) {
                        pushed = pushed.max(iv.end);
                    }
                }
            }
            // (3) our zone must contain no executing operation.
            for &z in &zone {
                for iv in &busy[z] {
                    if iv.overlaps(t, end) {
                        pushed = pushed.max(iv.end);
                    }
                }
            }
            if pushed == t {
                break;
            }
            t = pushed;
        }

        let end = t + dur;
        for &q in qubits {
            busy[q].push(Interval { start: t, end });
            ready[q] = end;
        }
        for &z in &zone {
            restricted[z].push(Interval { start: t, end });
        }
        entries.push(ScheduledOp {
            op_index,
            start: t,
            end,
        });
        makespan = makespan.max(end);
    }
    Schedule { entries, makespan }
}

/// The zone-aware makespan in pulses (paper Fig. 13's metric).
///
/// Shorthand for [`zone_aware_schedule`]`.makespan()`.
///
/// # Panics
///
/// Panics if the circuit's qubit count differs from the lattice size.
///
/// # Example
///
/// ```
/// use geyser_circuit::Circuit;
/// use geyser_map::zone_aware_depth_pulses;
/// use geyser_topology::Lattice;
///
/// let lat = Lattice::triangular(2, 2);
/// let mut c = Circuit::new(4);
/// c.cz(0, 1).cz(2, 3); // zones overlap on a 2×2 patch: serialized
/// assert_eq!(zone_aware_depth_pulses(&c, &lat), 6);
/// ```
pub fn zone_aware_depth_pulses(circuit: &Circuit, lattice: &Lattice) -> u64 {
    zone_aware_schedule(circuit, lattice).makespan()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_circuit_has_zero_depth() {
        let lat = Lattice::triangular(2, 2);
        assert_eq!(zone_aware_depth_pulses(&Circuit::new(4), &lat), 0);
    }

    #[test]
    fn independent_one_qubit_gates_run_in_parallel() {
        let lat = Lattice::triangular(2, 2);
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3);
        // 1q gates create no zones: all concurrent.
        assert_eq!(zone_aware_depth_pulses(&c, &lat), 1);
    }

    #[test]
    fn serial_chain_adds_up() {
        let lat = Lattice::triangular(2, 2);
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 1).h(1);
        assert_eq!(zone_aware_depth_pulses(&c, &lat), 1 + 3 + 1);
    }

    #[test]
    fn zone_conflict_serializes_data_independent_gates() {
        // On a 2×2 triangular patch every node neighbours every other
        // (except one diagonal), so two CZs conflict via zones even
        // though they share no qubit.
        let lat = Lattice::triangular(2, 2);
        let mut c = Circuit::new(4);
        c.cz(0, 1).cz(2, 3);
        assert_eq!(zone_aware_depth_pulses(&c, &lat), 6);
        // Ignoring zones they would be concurrent:
        assert_eq!(c.depth_pulses(), 3);
    }

    #[test]
    fn distant_gates_stay_parallel() {
        // A 3×6 triangular lattice: gates at opposite corners.
        let lat = Lattice::triangular(3, 6);
        let mut c = Circuit::new(18);
        c.cz(0, 1).cz(16, 17);
        assert_eq!(zone_aware_depth_pulses(&c, &lat), 3);
    }

    #[test]
    fn one_qubit_gate_blocked_inside_zone() {
        // H on a node inside the zone of a running CZ must wait if
        // issued after, but the scheduler is greedy in program order:
        // H(q2) issued after CZ(0,1) with q2 adjacent to q0.
        let lat = Lattice::triangular(2, 2);
        let mut c = Circuit::new(4);
        c.cz(0, 1).h(2);
        // q2 neighbours q0/q1 on this patch, so H waits for the CZ.
        assert_eq!(zone_aware_depth_pulses(&c, &lat), 4);
    }

    #[test]
    fn one_qubit_gates_do_not_block_multi_qubit_gates() {
        // H(far node) runs during CZ: 1q gates generate no zone, and
        // the H's node is outside the CZ zone.
        let lat = Lattice::triangular(3, 6);
        let mut c = Circuit::new(18);
        c.h(17).cz(0, 1);
        assert_eq!(zone_aware_depth_pulses(&c, &lat), 3);
    }

    #[test]
    fn zone_aware_depth_at_least_plain_depth() {
        let lat = Lattice::triangular(3, 3);
        let mut c = Circuit::new(9);
        c.cz(0, 1).cz(3, 4).cz(6, 7).h(2).h(5).cz(1, 2).ccz(3, 4, 6);
        assert!(zone_aware_depth_pulses(&c, &lat) >= c.depth_pulses());
    }

    #[test]
    #[should_panic(expected = "over lattice nodes")]
    fn size_mismatch_panics() {
        let lat = Lattice::triangular(2, 2);
        let _ = zone_aware_depth_pulses(&Circuit::new(3), &lat);
    }

    #[test]
    fn schedule_entries_cover_all_ops_in_order() {
        let lat = Lattice::triangular(2, 3);
        let mut c = Circuit::new(6);
        c.h(0).cz(0, 1).cz(4, 5).h(1).ccz(0, 1, 2);
        let s = zone_aware_schedule(&c, &lat);
        assert_eq!(s.entries().len(), c.len());
        for (i, e) in s.entries().iter().enumerate() {
            assert_eq!(e.op_index, i);
            assert_eq!(e.end - e.start, c.ops()[i].pulses() as u64);
        }
        assert_eq!(
            s.makespan(),
            s.entries().iter().map(|e| e.end).max().unwrap()
        );
    }

    #[test]
    fn concurrency_reflects_parallelism() {
        let lat = Lattice::triangular(3, 6);
        let mut c = Circuit::new(18);
        c.cz(0, 1).cz(16, 17); // independent, run together
        let s = zone_aware_schedule(&c, &lat);
        assert_eq!(s.peak_concurrency(), 2);
        assert_eq!(s.concurrency_at(0), 2);
        assert_eq!(s.concurrency_at(5), 0);
    }

    #[test]
    fn gantt_renders_every_op() {
        let lat = Lattice::triangular(2, 2);
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 1);
        let s = zone_aware_schedule(&c, &lat);
        let g = s.render_gantt(&c);
        assert!(g.contains("h q0"));
        assert!(g.contains("cz q0,q1"));
        assert!(g.contains("makespan: 4 pulses"));
    }
}
