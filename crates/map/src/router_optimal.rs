//! Exact (A*) SWAP routing for small instances.
//!
//! The production router ([`crate::route`]) is a greedy lookahead
//! heuristic; this module finds the *provably minimal* number of SWAPs
//! for small circuits by A* search over (placement, next-gate) states.
//! It exists as a quality oracle: tests compare the heuristic's SWAP
//! counts against the optimum, and downstream users can route small
//! hot kernels exactly.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use geyser_circuit::Circuit;
use geyser_topology::{Lattice, PathMatrix};

use crate::Layout;

/// Hard limits keeping the search space tractable.
const MAX_NODES: usize = 9;
const MAX_EXPANSIONS: usize = 2_000_000;

/// Minimal SWAP count to route `circuit` (gates of arity ≤ 2, in
/// program order) on `lattice` from `initial_layout`.
///
/// Returns `None` when the instance exceeds the search limits
/// (more than [`MAX_NODES`] lattice nodes, or the frontier budget).
///
/// The gate *order* is fixed (no commutation reordering), matching
/// the production router's model, so the two are directly comparable.
///
/// # Panics
///
/// Panics if the circuit contains gates of arity 3 (lower first) or
/// the layout does not match.
///
/// # Example
///
/// ```
/// use geyser_circuit::Circuit;
/// use geyser_map::{optimal_swap_count, Layout};
/// use geyser_topology::Lattice;
///
/// let lat = Lattice::square(1, 4);
/// let mut c = Circuit::new(4);
/// c.cx(0, 3);
/// let layout = Layout::trivial(4, &lat);
/// assert_eq!(optimal_swap_count(&c, &lat, &layout), Some(2));
/// ```
pub fn optimal_swap_count(
    circuit: &Circuit,
    lattice: &Lattice,
    initial_layout: &Layout,
) -> Option<usize> {
    assert!(
        circuit.iter().all(|op| op.arity() <= 2),
        "optimal routing requires gates of arity <= 2"
    );
    assert_eq!(
        initial_layout.num_logical(),
        circuit.num_qubits(),
        "layout logical-qubit count mismatch"
    );
    // Only 2-qubit gates constrain routing.
    let pairs: Vec<(usize, usize)> = circuit
        .iter()
        .filter(|op| op.arity() == 2)
        .map(|op| (op.qubits()[0], op.qubits()[1]))
        .collect();
    if pairs.is_empty() {
        return Some(0);
    }
    if lattice.num_nodes() > MAX_NODES {
        return None;
    }
    let pm = PathMatrix::new(lattice);
    let edges = lattice.edges();

    // State: placement (node index per logical qubit) + gate cursor.
    // `logical_of` is recoverable; we track node_of per logical qubit.
    let n_logical = circuit.num_qubits();
    let start: Vec<u8> = (0..n_logical)
        .map(|q| initial_layout.node_of(q) as u8)
        .collect();

    let heuristic = |placement: &[u8], cursor: usize| -> usize {
        let (a, b) = pairs[cursor];
        pm.hops(placement[a] as usize, placement[b] as usize)
            .saturating_sub(1)
    };

    // Advance the cursor over every already-satisfied gate.
    let advance = |placement: &[u8], mut cursor: usize| -> usize {
        while cursor < pairs.len() {
            let (a, b) = pairs[cursor];
            if lattice.are_adjacent(placement[a] as usize, placement[b] as usize) {
                cursor += 1;
            } else {
                break;
            }
        }
        cursor
    };

    let mut best_g: HashMap<(Vec<u8>, usize), usize> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(usize, usize, Vec<u8>)>> = BinaryHeap::new();
    let cursor0 = advance(&start, 0);
    if cursor0 == pairs.len() {
        return Some(0);
    }
    heap.push(Reverse((
        heuristic(&start, cursor0),
        cursor0,
        start.clone(),
    )));
    best_g.insert((start, cursor0), 0);

    let mut expansions = 0usize;
    while let Some(Reverse((f, cursor, placement))) = heap.pop() {
        let g = *best_g.get(&(placement.clone(), cursor))?;
        if f > g + heuristic(&placement, cursor) {
            continue; // stale heap entry
        }
        expansions += 1;
        if expansions > MAX_EXPANSIONS {
            return None;
        }
        for &[u, v] in &edges {
            let mut next = placement.clone();
            // Swap whatever sits on nodes u and v (either may be empty).
            for slot in next.iter_mut() {
                if *slot as usize == u {
                    *slot = v as u8;
                } else if *slot as usize == v {
                    *slot = u as u8;
                }
            }
            let g2 = g + 1;
            let cursor2 = advance(&next, cursor);
            if cursor2 == pairs.len() {
                return Some(g2);
            }
            let key = (next.clone(), cursor2);
            if best_g.get(&key).is_none_or(|&old| g2 < old) {
                best_g.insert(key, g2);
                heap.push(Reverse((g2 + heuristic(&next, cursor2), cursor2, next)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route;

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let lat = Lattice::square(2, 2);
        let mut c = Circuit::new(4);
        c.cx(0, 1).cz(2, 3).cx(0, 2);
        let layout = Layout::trivial(4, &lat);
        assert_eq!(optimal_swap_count(&c, &lat, &layout), Some(0));
    }

    #[test]
    fn line_distance_three_needs_two_swaps() {
        let lat = Lattice::square(1, 4);
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let layout = Layout::trivial(4, &lat);
        assert_eq!(optimal_swap_count(&c, &lat, &layout), Some(2));
    }

    #[test]
    fn repeated_pair_costs_once() {
        let lat = Lattice::square(1, 4);
        let mut c = Circuit::new(4);
        c.cx(0, 3).cz(0, 3).cx(3, 0);
        let layout = Layout::trivial(4, &lat);
        assert_eq!(optimal_swap_count(&c, &lat, &layout), Some(2));
    }

    #[test]
    fn heuristic_router_is_never_better_than_optimal() {
        // The oracle property: greedy SWAPs ≥ optimal SWAPs, and on
        // these small cases the gap stays tight.
        let lat = Lattice::triangular(2, 3);
        let layout = Layout::trivial(6, &lat);
        let cases: Vec<Circuit> = vec![
            {
                let mut c = Circuit::new(6);
                c.cx(0, 5).cx(1, 4).cx(2, 3);
                c
            },
            {
                let mut c = Circuit::new(6);
                c.cx(0, 4).cz(3, 5).cx(0, 2).cz(1, 5);
                c
            },
            {
                let mut c = Circuit::new(6);
                for i in 0..5 {
                    c.cx(i, 5 - i.min(4));
                }
                c
            },
        ];
        for (i, c) in cases.iter().enumerate() {
            let optimal = optimal_swap_count(c, &lat, &layout).expect("small instance");
            let greedy = route(c, &lat, &layout).swaps_inserted;
            assert!(
                greedy >= optimal,
                "case {i}: greedy {greedy} < optimal {optimal}?!"
            );
            assert!(
                greedy <= optimal + 3,
                "case {i}: greedy {greedy} far above optimal {optimal}"
            );
        }
    }

    #[test]
    fn oversized_lattice_returns_none() {
        let lat = Lattice::triangular(4, 4);
        let c = Circuit::new(16);
        let layout = Layout::trivial(16, &lat);
        assert_eq!(optimal_swap_count(&c, &lat, &layout), Some(0));
        let mut c2 = Circuit::new(16);
        c2.cx(0, 15);
        assert_eq!(optimal_swap_count(&c2, &lat, &layout), None);
    }

    #[test]
    fn empty_circuit_is_free() {
        let lat = Lattice::square(2, 2);
        let layout = Layout::trivial(3, &lat);
        assert_eq!(optimal_swap_count(&Circuit::new(3), &lat, &layout), Some(0));
    }
}
