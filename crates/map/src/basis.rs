//! Translation into the native neutral-atom basis `{U3, CZ, CCZ}`.

use geyser_circuit::{Circuit, Gate, Operation};
use geyser_num::zyz_angles;

/// Rewrites every gate into the native neutral-atom basis:
///
/// * any single-qubit gate → one `U3` (exact ZYZ angles, global phase
///   dropped — physically irrelevant),
/// * `CZ` → `CZ`; `CCZ` → `CCZ` (already native),
/// * `CX(c, t)` → `H(t)·CZ·H(t)` with the Hadamards as U3,
/// * `CPhase(θ)` → two CZ plus U3 corrections,
/// * `SWAP` → three CX, each expanded as above.
///
/// The output is unitary-equivalent to the input up to global phase.
///
/// # Example
///
/// ```
/// use geyser_circuit::Circuit;
/// use geyser_map::to_native_basis;
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let native = to_native_basis(&c);
/// assert!(native.is_native_basis());
/// ```
pub fn to_native_basis(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    for op in circuit.iter() {
        emit_native(&mut out, op);
    }
    out
}

fn emit_native(out: &mut Circuit, op: &Operation) {
    match *op.gate() {
        Gate::U3 { .. } | Gate::CZ | Gate::CCZ => {
            out.push(op.clone());
        }
        ref g if g.is_single_qubit() => {
            // invariant: Gate::matrix() of a 1q gate is unitary by
            // construction, so the ZYZ decomposition cannot fail.
            let d = zyz_angles(&g.matrix()).expect("1q gate matrices are unitary");
            out.u3(d.theta, d.phi, d.lambda, op.qubits()[0]);
        }
        Gate::CX => {
            let (c, t) = (op.qubits()[0], op.qubits()[1]);
            emit_u3_of(out, Gate::H, t);
            out.cz(c, t);
            emit_u3_of(out, Gate::H, t);
        }
        Gate::CPhase(theta) => {
            // CP(θ) = P(θ/2)_c · P(θ/2)_t · CX · P(−θ/2)_t · CX, with
            // each CX expanded through CZ.
            let (c, t) = (op.qubits()[0], op.qubits()[1]);
            emit_u3_of(out, Gate::Phase(theta / 2.0), c);
            emit_u3_of(out, Gate::Phase(theta / 2.0), t);
            emit_cx_native(out, c, t);
            emit_u3_of(out, Gate::Phase(-theta / 2.0), t);
            emit_cx_native(out, c, t);
        }
        Gate::Swap => {
            let (a, b) = (op.qubits()[0], op.qubits()[1]);
            emit_cx_native(out, a, b);
            emit_cx_native(out, b, a);
            emit_cx_native(out, a, b);
        }
        Gate::CCX => {
            // CCX = (I⊗I⊗H)·CCZ·(I⊗I⊗H); CCZ is native.
            let (a, b, c) = (op.qubits()[0], op.qubits()[1], op.qubits()[2]);
            emit_u3_of(out, Gate::H, c);
            out.ccz(a, b, c);
            emit_u3_of(out, Gate::H, c);
        }
        ref g => unreachable!("unhandled gate {g}"),
    }
}

fn emit_cx_native(out: &mut Circuit, c: usize, t: usize) {
    emit_u3_of(out, Gate::H, t);
    out.cz(c, t);
    emit_u3_of(out, Gate::H, t);
}

fn emit_u3_of(out: &mut Circuit, gate: Gate, q: usize) {
    // invariant: only called with fixed 1q gates whose matrices are
    // unitary by construction.
    let d = zyz_angles(&gate.matrix()).expect("1q gate matrices are unitary");
    out.u3(d.theta, d.phi, d.lambda, q);
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_num::hilbert_schmidt_distance;
    use geyser_sim::circuit_unitary;

    fn assert_equivalent(a: &Circuit, b: &Circuit) {
        let d = hilbert_schmidt_distance(&circuit_unitary(a), &circuit_unitary(b));
        assert!(d < 1e-10, "HSD = {d}");
    }

    #[test]
    fn single_qubit_gates_become_one_u3() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).x(0).rz(0.7, 0).ry(1.1, 0);
        let native = to_native_basis(&c);
        assert!(native.is_native_basis());
        assert_eq!(native.len(), 5);
        assert_equivalent(&c, &native);
    }

    #[test]
    fn cx_translation_is_exact() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let native = to_native_basis(&c);
        assert!(native.is_native_basis());
        assert_eq!(native.gate_counts().cz, 1);
        assert_equivalent(&c, &native);
    }

    #[test]
    fn cx_reverse_direction() {
        let mut c = Circuit::new(2);
        c.cx(1, 0);
        assert_equivalent(&c, &to_native_basis(&c));
    }

    #[test]
    fn cphase_translation_is_exact() {
        for theta in [0.3, 1.7, -0.9, std::f64::consts::PI] {
            let mut c = Circuit::new(2);
            c.cp(theta, 0, 1);
            let native = to_native_basis(&c);
            assert!(native.is_native_basis());
            assert_equivalent(&c, &native);
        }
    }

    #[test]
    fn swap_translation_is_exact() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let native = to_native_basis(&c);
        assert!(native.is_native_basis());
        assert_eq!(native.gate_counts().cz, 3);
        assert_equivalent(&c, &native);
    }

    #[test]
    fn ccx_uses_native_ccz() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let native = to_native_basis(&c);
        assert!(native.is_native_basis());
        assert_eq!(native.gate_counts().ccz, 1);
        assert_equivalent(&c, &native);
    }

    #[test]
    fn ccz_passes_through() {
        let mut c = Circuit::new(3);
        c.ccz(0, 1, 2);
        let native = to_native_basis(&c);
        assert_eq!(native.len(), 1);
        assert_equivalent(&c, &native);
    }

    #[test]
    fn larger_mixed_circuit_is_equivalent() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .cp(0.4, 1, 2)
            .swap(0, 2)
            .t(1)
            .cz(0, 1)
            .rz(1.2, 2)
            .cx(2, 0);
        let native = to_native_basis(&c);
        assert!(native.is_native_basis());
        assert_equivalent(&c, &native);
    }

    #[test]
    fn pulse_cost_matches_gate_pulse_model() {
        // A translated CX should cost exactly Gate::CX.pulses().
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let native = to_native_basis(&c);
        assert_eq!(native.total_pulses(), u64::from(Gate::CX.pulses()));
    }
}
