//! Materializing KAK factors as `{U3, CZ}` circuits.

use geyser_circuit::{Circuit, Gate};
use geyser_num::{zyz_angles, CMatrix};

use crate::{kak_decompose, KakDecomposition};

/// Angle below which an interaction coefficient is treated as zero.
const ANGLE_TOL: f64 = 1e-7;

/// A 2-qubit circuit builder that fuses every run of single-qubit
/// gates into one U3 pulse, so synthesized circuits come out with
/// minimal pulse counts without needing a separate optimization pass.
struct FusingBuilder {
    circuit: Circuit,
    pending: [Option<CMatrix>; 2],
}

impl FusingBuilder {
    fn new() -> Self {
        FusingBuilder {
            circuit: Circuit::new(2),
            pending: [None, None],
        }
    }

    fn apply_1q(&mut self, q: usize, m: &CMatrix) {
        self.pending[q] = Some(match self.pending[q].take() {
            Some(acc) => m.matmul(&acc),
            None => m.clone(),
        });
    }

    fn apply_gate(&mut self, q: usize, g: Gate) {
        self.apply_1q(q, &g.matrix());
    }

    fn flush(&mut self, q: usize) {
        if let Some(m) = self.pending[q].take() {
            let phase = m[(0, 0)];
            let is_identity = (phase.norm() - 1.0).abs() < 1e-9
                && m.approx_eq(&CMatrix::identity(2).scale(phase), 1e-9);
            if !is_identity {
                let d = zyz_angles(&m).expect("1q products stay unitary");
                self.circuit.u3(d.theta, d.phi, d.lambda, q);
            }
        }
    }

    fn cz(&mut self) {
        self.flush(0);
        self.flush(1);
        self.circuit.cz(0, 1);
    }

    fn finish(mut self) -> Circuit {
        self.flush(0);
        self.flush(1);
        self.circuit
    }
}

/// Reduces an interaction angle into `(-π/2, π/2]` and reports how
/// many π-steps were folded (each contributes a local `P ⊗ P` at π/2
/// or a global sign at π).
fn fold_angle(t: f64) -> (f64, bool) {
    // exp(i t PP) with t' = t − kπ differs by (−1)^k global phase.
    let k = (t / std::f64::consts::PI).round();
    let mut reduced = t - k * std::f64::consts::PI;
    let mut half_turn = false;
    if reduced > std::f64::consts::FRAC_PI_2 - 1e-12 {
        reduced -= std::f64::consts::PI;
    }
    // Exactly ±π/2: exp(±iπ/2 PP) = ±i·P⊗P — emit locals instead of
    // an entangling factor.
    if (reduced.abs() - std::f64::consts::FRAC_PI_2).abs() < ANGLE_TOL {
        half_turn = true;
    }
    (reduced, half_turn)
}

/// Emits `exp(i t P⊗P)` for one interaction axis into the builder.
fn emit_axis(builder: &mut FusingBuilder, axis: char, t: f64) {
    let (t, half_turn) = fold_angle(t);
    if t.abs() < ANGLE_TOL {
        return;
    }
    let pauli = match axis {
        'X' => Gate::X,
        'Y' => Gate::Y,
        _ => Gate::Z,
    };
    if half_turn {
        // exp(±iπ/2 PP) = ±i (P ⊗ P): purely local.
        builder.apply_gate(0, pauli);
        builder.apply_gate(1, pauli);
        return;
    }
    // Basis change taking ZZ → PP.
    let pre: Option<Gate> = match axis {
        'X' => Some(Gate::H),
        'Y' => Some(Gate::RX(std::f64::consts::FRAC_PI_2)),
        _ => None,
    };
    if let Some(g) = pre {
        builder.apply_gate(0, g);
        builder.apply_gate(1, g);
    }
    // exp(i t ZZ) = CX·(I⊗RZ(−2t))·CX, with CX = (I⊗H)·CZ·(I⊗H).
    builder.apply_gate(1, Gate::H);
    builder.cz();
    builder.apply_gate(1, Gate::H);
    builder.apply_gate(1, Gate::RZ(-2.0 * t));
    builder.apply_gate(1, Gate::H);
    builder.cz();
    builder.apply_gate(1, Gate::H);
    let post: Option<Gate> = match axis {
        'X' => Some(Gate::H),
        'Y' => Some(Gate::RX(-std::f64::consts::FRAC_PI_2)),
        _ => None,
    };
    if let Some(g) = post {
        builder.apply_gate(0, g);
        builder.apply_gate(1, g);
    }
}

/// Builds a `{U3, CZ}` circuit implementing the canonical interaction
/// `exp(i(a XX + b YY + c ZZ))` up to global phase.
///
/// Axes whose folded angle vanishes cost nothing; axes landing on
/// ±π/2 reduce to local Paulis; each remaining axis costs two CZ.
///
/// # Example
///
/// ```
/// use geyser_synth::canonical_circuit;
/// // A pure ZZ interaction takes two CZ pulses.
/// let c = canonical_circuit(0.0, 0.0, 0.4);
/// assert_eq!(c.gate_counts().cz, 2);
/// ```
pub fn canonical_circuit(a: f64, b: f64, c: f64) -> Circuit {
    let mut builder = FusingBuilder::new();
    emit_axis(&mut builder, 'X', a);
    emit_axis(&mut builder, 'Y', b);
    emit_axis(&mut builder, 'Z', c);
    builder.finish()
}

/// Synthesizes an exact `{U3, CZ}` circuit for any 4×4 unitary
/// (global phase dropped — physically irrelevant).
///
/// Returns `None` if `u` is not a 4×4 unitary. The output uses at
/// most six CZ gates (two per non-trivial interaction axis) with all
/// single-qubit runs fused into single U3 pulses.
///
/// # Example
///
/// ```
/// use geyser_circuit::Gate;
/// use geyser_synth::synthesize_two_qubit;
/// let c = synthesize_two_qubit(&Gate::CPhase(0.8).matrix()).unwrap();
/// assert!(c.is_native_basis());
/// assert_eq!(c.gate_counts().cz, 2);
/// ```
pub fn synthesize_two_qubit(u: &CMatrix) -> Option<Circuit> {
    let kak: KakDecomposition = kak_decompose(u)?;
    let mut builder = FusingBuilder::new();
    // Right locals first (applied first in time).
    builder.apply_1q(0, &kak.b1);
    builder.apply_1q(1, &kak.b0);
    emit_axis(&mut builder, 'X', kak.interaction.0);
    emit_axis(&mut builder, 'Y', kak.interaction.1);
    emit_axis(&mut builder, 'Z', kak.interaction.2);
    builder.apply_1q(0, &kak.a1);
    builder.apply_1q(1, &kak.a0);
    Some(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_num::hilbert_schmidt_distance;
    use geyser_sim::circuit_unitary;

    fn assert_synthesis(u: &CMatrix, max_cz: usize) {
        let c = synthesize_two_qubit(u).expect("synthesis succeeds");
        assert!(c.is_native_basis());
        let d = hilbert_schmidt_distance(&circuit_unitary(&c), u);
        assert!(d < 1e-7, "HSD = {d}");
        assert!(
            c.gate_counts().cz <= max_cz,
            "used {} CZ (max {max_cz})",
            c.gate_counts().cz
        );
    }

    #[test]
    fn canonical_circuit_matches_closed_form() {
        for (a, b, c) in [
            (0.3, 0.0, 0.0),
            (0.0, 0.7, 0.0),
            (0.0, 0.0, -0.4),
            (0.5, -0.3, 0.2),
            (1.2, 0.9, 0.1),
        ] {
            let circuit = canonical_circuit(a, b, c);
            let want = crate::kak::canonical_matrix(a, b, c);
            let d = hilbert_schmidt_distance(&circuit_unitary(&circuit), &want);
            assert!(d < 1e-9, "({a},{b},{c}): HSD = {d}");
        }
    }

    #[test]
    fn zero_interaction_is_empty() {
        assert!(canonical_circuit(0.0, 0.0, 0.0).is_empty());
        // Full π turns are global phases.
        assert!(canonical_circuit(std::f64::consts::PI, 0.0, 0.0).is_empty());
    }

    #[test]
    fn half_turns_are_local() {
        let c = canonical_circuit(std::f64::consts::FRAC_PI_2, 0.0, 0.0);
        assert_eq!(c.gate_counts().cz, 0);
        let want = crate::kak::canonical_matrix(std::f64::consts::FRAC_PI_2, 0.0, 0.0);
        let d = hilbert_schmidt_distance(&circuit_unitary(&c), &want);
        assert!(d < 1e-9);
    }

    #[test]
    fn single_axis_costs_two_cz() {
        let c = canonical_circuit(0.0, 0.0, 0.37);
        assert_eq!(c.gate_counts().cz, 2);
    }

    #[test]
    fn cphase_synthesizes_with_two_cz() {
        for theta in [0.4, 1.3, -2.0] {
            assert_synthesis(&Gate::CPhase(theta).matrix(), 2);
        }
    }

    #[test]
    fn cz_class_gates_synthesize_cheaply() {
        assert_synthesis(&Gate::CZ.matrix(), 2);
        assert_synthesis(&Gate::CX.matrix(), 2);
    }

    #[test]
    fn swap_synthesizes() {
        // SWAP is the (π/4, π/4, π/4) class: 6 CZ with this template.
        assert_synthesis(&Gate::Swap.matrix(), 6);
    }

    #[test]
    fn local_unitaries_need_no_cz() {
        let u = Gate::H.matrix().kron(&Gate::T.matrix());
        let c = synthesize_two_qubit(&u).unwrap();
        assert_eq!(c.gate_counts().cz, 0);
        assert!(c.len() <= 2);
        let d = hilbert_schmidt_distance(&circuit_unitary(&c), &u);
        assert!(d < 1e-9);
    }

    #[test]
    fn random_two_qubit_unitaries_synthesize() {
        use geyser_circuit::Circuit;
        for seed in 0..10u64 {
            let mut c = Circuit::new(2);
            for i in 0..6 {
                let t = 0.41 * (seed as f64 + 1.0) + 0.13 * i as f64;
                c.ry(t, i % 2);
                c.rz(1.7 * t, (i + 1) % 2);
                c.cz(0, 1);
            }
            let u = circuit_unitary(&c);
            assert_synthesis(&u, 6);
        }
    }

    #[test]
    fn rejects_non_two_qubit_input() {
        assert!(synthesize_two_qubit(&CMatrix::identity(8)).is_none());
    }
}
