//! Factoring tensor-product unitaries into their factors.

use geyser_num::{CMatrix, Complex};

/// Splits a matrix known to be (numerically) a tensor product
/// `A ⊗ B` with `A` of dimension `dim_a × dim_a` into factors.
///
/// The split carries the usual gauge freedom `(A·e^{iγ}, B·e^{−iγ})`;
/// the returned pair satisfies `A ⊗ B ≈ m` exactly (phase included).
///
/// Returns `None` when the dimensions do not divide, or `m` deviates
/// from a tensor product by more than `tol` (entry-wise, after
/// reconstruction).
///
/// # Example
///
/// ```
/// use geyser_circuit::Gate;
/// use geyser_synth::split_tensor_product_dims;
/// // 2 ⊗ 4 split of T ⊗ CZ.
/// let m = Gate::T.matrix().kron(&Gate::CZ.matrix());
/// let (a, b) = split_tensor_product_dims(&m, 2, 1e-10).expect("splits");
/// assert_eq!(b.rows(), 4);
/// assert!(a.kron(&b).approx_eq(&m, 1e-10));
/// ```
pub fn split_tensor_product_dims(
    m: &CMatrix,
    dim_a: usize,
    tol: f64,
) -> Option<(CMatrix, CMatrix)> {
    if !m.is_square() || dim_a == 0 || !m.rows().is_multiple_of(dim_a) {
        return None;
    }
    let dim_b = m.rows() / dim_a;
    // Blocks: m[(dim_b·i + j, dim_b·k + l)] = A[(i,k)] · B[(j,l)].
    let block = |i: usize, k: usize| {
        CMatrix::from_fn(dim_b, dim_b, |j, l| m[(dim_b * i + j, dim_b * k + l)])
    };
    // Anchor on the block with the largest Frobenius norm.
    let mut best = (0usize, 0usize);
    let mut best_norm = -1.0f64;
    for i in 0..dim_a {
        for k in 0..dim_a {
            let n = block(i, k).frobenius_norm();
            if n > best_norm {
                best_norm = n;
                best = (i, k);
            }
        }
    }
    if best_norm < tol {
        return None;
    }
    // For unitary A ⊗ B each nonzero block is A[(i,k)]·B with B
    // unitary, so ‖block‖_F = |A[(i,k)]|·√dim_b.
    let anchor = block(best.0, best.1);
    let b = anchor.scale(Complex::from_real((dim_b as f64).sqrt() / best_norm));
    let b_dag = b.dagger();
    let a = CMatrix::from_fn(dim_a, dim_a, |i, k| {
        b_dag.matmul(&block(i, k)).trace() / dim_b as f64
    });
    let back = a.kron(&b);
    if back.approx_eq(m, tol) {
        Some((a, b))
    } else {
        None
    }
}

/// Splits a 4×4 matrix known to be (numerically) a tensor product
/// `A ⊗ B` into 2×2 unitary factors.
///
/// Shorthand for [`split_tensor_product_dims`] with `dim_a = 2`.
///
/// # Example
///
/// ```
/// use geyser_circuit::Gate;
/// use geyser_synth::split_tensor_product;
/// let m = Gate::H.matrix().kron(&Gate::T.matrix());
/// let (a, b) = split_tensor_product(&m, 1e-10).expect("tensor product");
/// assert!(a.kron(&b).approx_eq(&m, 1e-10));
/// ```
pub fn split_tensor_product(m: &CMatrix, tol: f64) -> Option<(CMatrix, CMatrix)> {
    if m.rows() != 4 || m.cols() != 4 {
        return None;
    }
    split_tensor_product_dims(m, 2, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_circuit::Gate;

    #[test]
    fn splits_standard_gate_products() {
        for (ga, gb) in [
            (Gate::H, Gate::T),
            (Gate::X, Gate::Z),
            (Gate::RY(0.7), Gate::RZ(-1.2)),
            (Gate::S, Gate::H),
        ] {
            let m = ga.matrix().kron(&gb.matrix());
            let (a, b) = split_tensor_product(&m, 1e-10).expect("product splits");
            assert!(a.kron(&b).approx_eq(&m, 1e-10));
            assert!(a.is_unitary(1e-9));
            assert!(b.is_unitary(1e-9));
        }
    }

    #[test]
    fn preserves_global_phase() {
        let m = Gate::H
            .matrix()
            .kron(&Gate::T.matrix())
            .scale(Complex::cis(0.9));
        let (a, b) = split_tensor_product(&m, 1e-10).expect("phased product splits");
        assert!(a.kron(&b).approx_eq(&m, 1e-10));
    }

    #[test]
    fn handles_blocks_with_zeros() {
        // Z ⊗ X has zero off-diagonal A-blocks.
        let m = Gate::Z.matrix().kron(&Gate::X.matrix());
        let (a, b) = split_tensor_product(&m, 1e-10).expect("splits");
        assert!(a.kron(&b).approx_eq(&m, 1e-10));
    }

    #[test]
    fn rejects_entangling_unitaries() {
        assert!(split_tensor_product(&Gate::CX.matrix(), 1e-8).is_none());
        assert!(split_tensor_product(&Gate::CZ.matrix(), 1e-8).is_none());
    }

    #[test]
    fn rejects_wrong_dimensions() {
        assert!(split_tensor_product(&CMatrix::identity(2), 1e-8).is_none());
        assert!(split_tensor_product(&CMatrix::identity(8), 1e-8).is_none());
    }

    #[test]
    fn identity_splits_into_identities() {
        let (a, b) = split_tensor_product(&CMatrix::identity(4), 1e-10).unwrap();
        assert!(a.kron(&b).approx_eq(&CMatrix::identity(4), 1e-12));
    }

    #[test]
    fn splits_2x4_products() {
        // 1q ⊗ 2q-entangling products (the composition fast-path case).
        for (ga, m2) in [
            (Gate::T, Gate::CZ.matrix()),
            (Gate::H, Gate::CX.matrix()),
            (Gate::RY(0.4), Gate::CPhase(0.9).matrix()),
        ] {
            let m = ga.matrix().kron(&m2);
            let (a, b) = split_tensor_product_dims(&m, 2, 1e-9).expect("2x4 splits");
            assert_eq!(a.rows(), 2);
            assert_eq!(b.rows(), 4);
            assert!(a.kron(&b).approx_eq(&m, 1e-9));
        }
    }

    #[test]
    fn splits_4x2_products() {
        let m = Gate::CX.matrix().kron(&Gate::T.matrix());
        let (a, b) = split_tensor_product_dims(&m, 4, 1e-9).expect("4x2 splits");
        assert_eq!(a.rows(), 4);
        assert_eq!(b.rows(), 2);
        assert!(a.kron(&b).approx_eq(&m, 1e-9));
    }

    #[test]
    fn dims_variant_rejects_genuinely_tripartite_entanglement() {
        let ccz = Gate::CCZ.matrix();
        assert!(split_tensor_product_dims(&ccz, 2, 1e-8).is_none());
        assert!(split_tensor_product_dims(&ccz, 4, 1e-8).is_none());
    }

    #[test]
    fn dims_variant_rejects_bad_divisors() {
        assert!(split_tensor_product_dims(&CMatrix::identity(4), 3, 1e-8).is_none());
        assert!(split_tensor_product_dims(&CMatrix::identity(4), 0, 1e-8).is_none());
    }
}
