//! Makhlin local-equivalence invariants of two-qubit gates.
//!
//! Two two-qubit unitaries are *locally equivalent* — interchangeable
//! up to single-qubit gates — iff their Makhlin invariants
//! `(G₁, G₂)` coincide. The invariants are computed in the magic
//! basis: with `m = (M†UM)ᵀ(M†UM)` and `U` normalized to `SU(4)`,
//!
//! ```text
//! G₁ = tr²(m) / 16,      G₂ = (tr²(m) − tr(m²)) / 4.
//! ```
//!
//! Used to classify blocks by entangling power (e.g. all `CX`-class
//! gates share `(0, 1)`) and as a fast local-equivalence test in the
//! synthesis tests.

use geyser_num::{CMatrix, Complex};

/// The Makhlin invariant pair `(G₁, G₂)` of a 4×4 unitary
/// (`G₂` is always real for unitary input).
///
/// Returns `None` if `u` is not a 4×4 unitary.
///
/// # Example
///
/// ```
/// use geyser_circuit::Gate;
/// use geyser_synth::makhlin_invariants;
/// // CX and CZ are locally equivalent: identical invariants.
/// let a = makhlin_invariants(&Gate::CX.matrix()).unwrap();
/// let b = makhlin_invariants(&Gate::CZ.matrix()).unwrap();
/// assert!((a.0 - b.0).norm() < 1e-10);
/// assert!((a.1 - b.1).abs() < 1e-10);
/// ```
pub fn makhlin_invariants(u: &CMatrix) -> Option<(Complex, f64)> {
    if u.rows() != 4 || u.cols() != 4 || !u.is_unitary(1e-8) {
        return None;
    }
    // Magic basis (same convention as the KAK module).
    let s = 1.0 / f64::sqrt(2.0);
    let z = Complex::ZERO;
    let r = Complex::from_real(s);
    let i = Complex::new(0.0, s);
    let magic = CMatrix::from_rows(&[&[r, z, z, i], &[z, i, r, z], &[z, i, -r, z], &[r, z, z, -i]]);

    // Normalize to SU(4).
    let det = crate::kak::det4_public(u);
    let alpha = det.arg() / 4.0;
    let u_special = u.scale(Complex::cis(-alpha));

    let v = magic.dagger().matmul(&u_special).matmul(&magic);
    let m = v.transpose().matmul(&v);
    let tr = m.trace();
    let tr_m2 = m.matmul(&m).trace();
    let g1 = tr * tr / 16.0;
    let g2 = ((tr * tr - tr_m2) / 4.0).re;
    Some((g1, g2))
}

/// Returns `true` if two 4×4 unitaries are equal up to single-qubit
/// gates on either side (same Makhlin invariants).
///
/// Returns `false` when either input is not a 4×4 unitary.
///
/// # Example
///
/// ```
/// use geyser_circuit::Gate;
/// use geyser_synth::locally_equivalent;
/// assert!(locally_equivalent(&Gate::CX.matrix(), &Gate::CZ.matrix()));
/// assert!(!locally_equivalent(&Gate::CX.matrix(), &Gate::Swap.matrix()));
/// ```
pub fn locally_equivalent(u1: &CMatrix, u2: &CMatrix) -> bool {
    match (makhlin_invariants(u1), makhlin_invariants(u2)) {
        (Some((a1, a2)), Some((b1, b2))) => (a1 - b1).norm() < 1e-7 && (a2 - b2).abs() < 1e-7,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_circuit::{Circuit, Gate};
    use geyser_sim::circuit_unitary;

    #[test]
    fn identity_class_invariants() {
        let (g1, g2) = makhlin_invariants(&CMatrix::identity(4)).unwrap();
        assert!((g1 - Complex::ONE).norm() < 1e-10, "G1 = {g1}");
        assert!((g2 - 3.0).abs() < 1e-10, "G2 = {g2}");
        // Local gates share the identity's invariants.
        let local = Gate::H.matrix().kron(&Gate::T.matrix());
        assert!(locally_equivalent(&local, &CMatrix::identity(4)));
    }

    #[test]
    fn cnot_class_invariants() {
        let (g1, g2) = makhlin_invariants(&Gate::CX.matrix()).unwrap();
        assert!(g1.norm() < 1e-10, "G1 = {g1}");
        assert!((g2 - 1.0).abs() < 1e-10, "G2 = {g2}");
    }

    #[test]
    fn swap_class_invariants() {
        let (g1, g2) = makhlin_invariants(&Gate::Swap.matrix()).unwrap();
        assert!((g1 + Complex::ONE).norm() < 1e-10, "G1 = {g1}");
        assert!((g2 + 3.0).abs() < 1e-10, "G2 = {g2}");
    }

    #[test]
    fn invariance_under_local_dressing() {
        let core = Gate::CPhase(0.77).matrix();
        let mut c = Circuit::new(2);
        c.ry(0.4, 0).rz(1.2, 1);
        let left = circuit_unitary(&c);
        let mut d = Circuit::new(2);
        d.h(0).t(1).rx(0.9, 0);
        let right = circuit_unitary(&d);
        let dressed = left.matmul(&core).matmul(&right);
        assert!(locally_equivalent(&core, &dressed));
    }

    #[test]
    fn distinct_interaction_strengths_are_inequivalent() {
        let a = Gate::CPhase(0.5).matrix();
        let b = Gate::CPhase(1.0).matrix();
        assert!(!locally_equivalent(&a, &b));
        // But CP(θ) and CP(−θ) are the same class (two sign flips).
        let c = Gate::CPhase(-0.5).matrix();
        assert!(locally_equivalent(&a, &c));
    }

    #[test]
    fn global_phase_does_not_matter() {
        let u = Gate::CX.matrix();
        let phased = u.scale(Complex::cis(0.9));
        assert!(locally_equivalent(&u, &phased));
    }

    #[test]
    fn rejects_non_unitary() {
        let mut m = CMatrix::identity(4);
        m[(0, 0)] = Complex::from_real(3.0);
        assert!(makhlin_invariants(&m).is_none());
        assert!(!locally_equivalent(&m, &CMatrix::identity(4)));
    }
}
