//! Cartan (KAK) decomposition of 4×4 unitaries.
//!
//! Every `U ∈ U(4)` factors as
//! `U = e^{iα} (A₁⊗A₀) · exp(i(a·XX + b·YY + c·ZZ)) · (B₁⊗B₀)`.
//!
//! The algorithm works in the *magic basis* `M` (Makhlin), where
//! `SU(2)⊗SU(2)` becomes `SO(4)` and the canonical interaction becomes
//! diagonal:
//!
//! 1. strip the determinant phase,
//! 2. `V = M† U M`; `W = Vᵀ V` is a symmetric unitary,
//! 3. simultaneously diagonalize `Re W` and `Im W` (they commute) with
//!    a real orthogonal `Q`: `W = Q e^{2iδ} Qᵀ`,
//! 4. `T = Q e^{iδ} Qᵀ` is the symmetric square root; `O = V T⁻¹` is
//!    provably real orthogonal,
//! 5. map `O·Q` and `Qᵀ` back through `M` to local unitaries and read
//!    the interaction coefficients off `δ`.

use geyser_num::{simultaneous_diagonalize, CMatrix, Complex, RMatrix};

use crate::split_tensor_product;

/// Numerical tolerance for unitarity/reality checks.
const TOL: f64 = 1e-9;

/// The result of [`kak_decompose`]:
/// `U = e^{iα}·(A₁⊗A₀)·exp(i(a XX + b YY + c ZZ))·(B₁⊗B₀)`.
#[derive(Debug, Clone)]
pub struct KakDecomposition {
    /// Global phase α.
    pub global_phase: f64,
    /// Left local factor on the first (most significant) qubit.
    pub a1: CMatrix,
    /// Left local factor on the second qubit.
    pub a0: CMatrix,
    /// Interaction coefficients `(a, b, c)` of XX, YY, ZZ.
    pub interaction: (f64, f64, f64),
    /// Right local factor on the first qubit.
    pub b1: CMatrix,
    /// Right local factor on the second qubit.
    pub b0: CMatrix,
}

impl KakDecomposition {
    /// Reconstructs the canonical interaction unitary
    /// `exp(i(a XX + b YY + c ZZ))`.
    pub fn canonical_matrix(&self) -> CMatrix {
        canonical_matrix(self.interaction.0, self.interaction.1, self.interaction.2)
    }

    /// Reconstructs the full 4×4 unitary.
    pub fn to_matrix(&self) -> CMatrix {
        let left = self.a1.kron(&self.a0);
        let right = self.b1.kron(&self.b0);
        left.matmul(&self.canonical_matrix())
            .matmul(&right)
            .scale(Complex::cis(self.global_phase))
    }
}

/// `exp(i(a XX + b YY + c ZZ))` in closed form: the three terms
/// commute and each exponentiates to `cos·I + i·sin·P`.
pub(crate) fn canonical_matrix(a: f64, b: f64, c: f64) -> CMatrix {
    let xx = pauli_pair('X');
    let yy = pauli_pair('Y');
    let zz = pauli_pair('Z');
    let exp_term = |p: &CMatrix, t: f64| -> CMatrix {
        let id = CMatrix::identity(4).scale(Complex::from_real(t.cos()));
        &id + &p.scale(Complex::new(0.0, t.sin()))
    };
    exp_term(&xx, a)
        .matmul(&exp_term(&yy, b))
        .matmul(&exp_term(&zz, c))
}

fn pauli_pair(axis: char) -> CMatrix {
    let p = match axis {
        'X' => geyser_circuit::Gate::X.matrix(),
        'Y' => geyser_circuit::Gate::Y.matrix(),
        _ => geyser_circuit::Gate::Z.matrix(),
    };
    p.kron(&p)
}

/// The Makhlin magic basis (columns are phased Bell states).
fn magic_basis() -> CMatrix {
    let s = 1.0 / f64::sqrt(2.0);
    let z = Complex::ZERO;
    let r = Complex::from_real(s);
    let i = Complex::new(0.0, s);
    CMatrix::from_rows(&[&[r, z, z, i], &[z, i, r, z], &[z, i, -r, z], &[r, z, z, -i]])
}

/// Converts a real orthogonal matrix (as complex) to [`RMatrix`].
fn to_real(m: &CMatrix) -> Option<RMatrix> {
    let n = m.rows();
    let mut out = RMatrix::zeros(n);
    for r in 0..n {
        for c in 0..n {
            if m[(r, c)].im.abs() > 1e-6 {
                return None;
            }
            out[(r, c)] = m[(r, c)].re;
        }
    }
    Some(out)
}

fn to_complex(m: &RMatrix) -> CMatrix {
    CMatrix::from_fn(m.dim(), m.dim(), |r, c| Complex::from_real(m[(r, c)]))
}

/// Determinant of a 4×4 complex matrix by cofactor-free LU.
pub(crate) fn det4_public(m: &CMatrix) -> Complex {
    det4(m)
}

fn det4(m: &CMatrix) -> Complex {
    let n = m.rows();
    let mut a: Vec<Complex> = m.as_slice().to_vec();
    let mut det = Complex::ONE;
    for col in 0..n {
        let mut piv = col;
        for r in (col + 1)..n {
            if a[r * n + col].norm() > a[piv * n + col].norm() {
                piv = r;
            }
        }
        if a[piv * n + col].norm() < 1e-300 {
            return Complex::ZERO;
        }
        if piv != col {
            for c in 0..n {
                a.swap(col * n + c, piv * n + c);
            }
            det = -det;
        }
        det *= a[col * n + col];
        for r in (col + 1)..n {
            let factor = a[r * n + col] / a[col * n + col];
            for c in col..n {
                let sub = factor * a[col * n + c];
                a[r * n + c] -= sub;
            }
        }
    }
    det
}

/// Computes the KAK decomposition of a 4×4 unitary.
///
/// Returns `None` if `u` is not 4×4 or deviates from unitarity by more
/// than `1e-8`. Reconstruction accuracy of the returned factors is
/// ~1e-9 (verified by tests on random unitaries).
pub fn kak_decompose(u: &CMatrix) -> Option<KakDecomposition> {
    if u.rows() != 4 || u.cols() != 4 || !u.is_unitary(1e-8) {
        return None;
    }
    let m = magic_basis();
    let m_dag = m.dagger();

    // 1. Strip the determinant phase: det(e^{-iα}U) = 1.
    let det = det4(u);
    let alpha = det.arg() / 4.0;
    let u_special = u.scale(Complex::cis(-alpha));

    // 2. Move to the magic basis.
    let v = m_dag.matmul(&u_special).matmul(&m);
    let w = v.transpose().matmul(&v); // symmetric unitary

    // 3. Simultaneously diagonalize Re W and Im W.
    let wr = RMatrix::from_fn(4, |r, c| w[(r, c)].re);
    let wi = RMatrix::from_fn(4, |r, c| w[(r, c)].im);
    let q = simultaneous_diagonalize(&wr, &wi);
    let mut q = q;
    if q.det() < 0.0 {
        // Force Q ∈ SO(4) by flipping one column.
        for r in 0..4 {
            q[(r, 3)] = -q[(r, 3)];
        }
    }
    let qc = to_complex(&q);

    // Eigenphases of W: (QᵀWQ)_kk = e^{2iδ_k}.
    let wq = qc.transpose().matmul(&w).matmul(&qc);
    let mut delta: Vec<f64> = (0..4).map(|k| wq[(k, k)].arg() / 2.0).collect();

    // 4. Symmetric square root T = Q e^{iδ} Qᵀ and O = V T⁻¹.
    let t_inv = |delta: &[f64], qc: &CMatrix| -> CMatrix {
        let d = CMatrix::from_diagonal(
            &delta
                .iter()
                .map(|&dk| Complex::cis(-dk))
                .collect::<Vec<_>>(),
        );
        qc.matmul(&d).matmul(&qc.transpose())
    };
    let mut o = v.matmul(&t_inv(&delta, &qc));
    // det(O) = ±1; fold a −1 into δ₀ (adds π) to land in SO(4).
    if det4(&o).re < 0.0 {
        delta[0] += std::f64::consts::PI;
        o = v.matmul(&t_inv(&delta, &qc));
    }
    let o_real = to_real(&o)?;
    debug_assert!(
        {
            let otq = o_real.transpose().matmul(&o_real);
            (0..4).all(|i| (otq[(i, i)] - 1.0).abs() < 1e-6)
        },
        "O is not orthogonal"
    );

    // 5. Back to the computational basis.
    let left = m.matmul(&to_complex(&o_real.matmul(&q))).matmul(&m_dag);
    let right = m.matmul(&to_complex(&q.transpose())).matmul(&m_dag);

    // Interaction coefficients from δ: Σ δ_k P_k = g·I + a·XX + b·YY
    // + c·ZZ with P_k the magic-column projectors; solve by traces.
    let mut herm = CMatrix::zeros(4, 4);
    for (k, &dk) in delta.iter().enumerate() {
        // P_k = m_col_k · m_col_k†.
        for r in 0..4 {
            for c in 0..4 {
                herm[(r, c)] += m[(r, k)] * m[(c, k)].conj() * Complex::from_real(dk);
            }
        }
    }
    let coeff = |p: &CMatrix| -> f64 {
        let tr = p.matmul(&herm).trace();
        tr.re / 4.0
    };
    let a = coeff(&pauli_pair('X'));
    let b = coeff(&pauli_pair('Y'));
    let c = coeff(&pauli_pair('Z'));
    let g = herm.trace().re / 4.0; // global phase from the I component

    // Split the locals (each is in SU(2)⊗SU(2) up to phase).
    let (a1, a0) = split_tensor_product(&left, 1e-6)?;
    let (b1, b0) = split_tensor_product(&right, 1e-6)?;

    let result = KakDecomposition {
        global_phase: alpha + g,
        a1,
        a0,
        interaction: (a, b, c),
        b1,
        b0,
    };
    // Self-check: reconstruction must match the input (the canonical
    // matrix absorbs exp(i·g) differently, so verify and correct the
    // residual phase numerically).
    let back = result.to_matrix();
    let phase = best_phase_between(&back, u)?;
    let corrected = KakDecomposition {
        global_phase: result.global_phase + phase,
        ..result
    };
    let final_back = corrected.to_matrix();
    if final_back.approx_eq(u, 1e-6) {
        Some(corrected)
    } else {
        None
    }
}

/// Phase φ minimizing ‖e^{iφ}A − B‖ for unitaries equal up to phase.
fn best_phase_between(a: &CMatrix, b: &CMatrix) -> Option<f64> {
    let ip = geyser_num::hilbert_schmidt_inner(a, b);
    if ip.norm() < TOL {
        return None;
    }
    Some(ip.arg())
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_circuit::{Circuit, Gate};
    use geyser_num::hilbert_schmidt_distance;
    use geyser_sim::circuit_unitary;

    fn assert_kak_roundtrip(u: &CMatrix) {
        let kak = kak_decompose(u).expect("decomposition succeeds");
        let back = kak.to_matrix();
        let d = hilbert_schmidt_distance(&back, u);
        assert!(d < 1e-8, "HSD = {d}");
        // Exact reconstruction including the global phase.
        assert!(back.approx_eq(u, 1e-6), "phase mismatch");
        // Locals are unitary.
        assert!(kak.a0.is_unitary(1e-8));
        assert!(kak.a1.is_unitary(1e-8));
        assert!(kak.b0.is_unitary(1e-8));
        assert!(kak.b1.is_unitary(1e-8));
    }

    #[test]
    fn identity_has_zero_interaction() {
        let kak = kak_decompose(&CMatrix::identity(4)).unwrap();
        let (a, b, c) = kak.interaction;
        // Interaction strength must vanish modulo the π/2 lattice of
        // local equivalence.
        for t in [a, b, c] {
            let folded =
                (t / std::f64::consts::FRAC_PI_2).round() * std::f64::consts::FRAC_PI_2 - t;
            assert!(folded.abs() < 1e-8, "coefficient {t}");
        }
        assert_kak_roundtrip(&CMatrix::identity(4));
    }

    #[test]
    fn local_products_roundtrip() {
        let u = Gate::H.matrix().kron(&Gate::T.matrix());
        assert_kak_roundtrip(&u);
    }

    #[test]
    fn cz_and_cx_roundtrip() {
        assert_kak_roundtrip(&Gate::CZ.matrix());
        assert_kak_roundtrip(&Gate::CX.matrix());
        assert_kak_roundtrip(&Gate::Swap.matrix());
    }

    #[test]
    fn controlled_phase_family_roundtrips() {
        for theta in [0.3, 1.0, 2.2, -0.7] {
            assert_kak_roundtrip(&Gate::CPhase(theta).matrix());
        }
    }

    #[test]
    fn random_circuit_unitaries_roundtrip() {
        for seed in 0..8u64 {
            let mut c = Circuit::new(2);
            let angles = [0.3, 1.1, 2.7, 0.9, 1.9];
            for (i, &t) in angles.iter().enumerate() {
                let q = (seed as usize + i) % 2;
                c.ry(t + seed as f64 * 0.37, q);
                c.rz(t * 1.3, 1 - q);
                if i % 2 == 0 {
                    c.cx(q, 1 - q);
                } else {
                    c.cz(0, 1);
                }
            }
            assert_kak_roundtrip(&circuit_unitary(&c));
        }
    }

    #[test]
    fn canonical_matrix_is_unitary_and_symmetric_in_magic_phases() {
        let m = canonical_matrix(0.4, 0.9, -0.2);
        assert!(m.is_unitary(1e-12));
        // Commuting factors: order must not matter.
        let m2 = canonical_matrix(0.0, 0.9, 0.0).matmul(&canonical_matrix(0.4, 0.0, -0.2));
        assert!(m.approx_eq(&m2, 1e-12));
    }

    #[test]
    fn global_phase_preserved() {
        let u = Gate::CZ.matrix().scale(Complex::cis(1.234));
        assert_kak_roundtrip(&u);
    }

    #[test]
    fn non_unitary_rejected() {
        let mut m = CMatrix::identity(4);
        m[(0, 0)] = Complex::from_real(2.0);
        assert!(kak_decompose(&m).is_none());
        assert!(kak_decompose(&CMatrix::identity(8)).is_none());
    }

    #[test]
    fn interaction_of_cz_is_zz_class() {
        // CZ ~ exp(i π/4 ZZ) up to locals: at least one coefficient
        // must sit at ±π/4 (mod π/2) and the canonical matrix must be
        // entangling.
        let kak = kak_decompose(&Gate::CZ.matrix()).unwrap();
        let (a, b, c) = kak.interaction;
        let near_quarter = [a, b, c].iter().any(|&t| {
            let m = t.rem_euclid(std::f64::consts::FRAC_PI_2);
            (m - std::f64::consts::FRAC_PI_4).abs() < 1e-6
        });
        assert!(near_quarter, "interaction = ({a}, {b}, {c})");
    }
}
