//! Exact two-qubit unitary synthesis via the Cartan (KAK)
//! decomposition.
//!
//! The Geyser paper frames block composition as the *inverse* of gate
//! decomposition and cites Cartan's KAK decomposition (Tucci, the
//! paper's reference 39) as the classical tool for the forward
//! direction. This crate
//! implements that tool from scratch: any 4×4 unitary factors as
//!
//! ```text
//! U = e^{iα} · (A₁ ⊗ A₀) · exp(i(a·XX + b·YY + c·ZZ)) · (B₁ ⊗ B₀)
//! ```
//!
//! ([`kak_decompose`]) and materializes as a `{U3, CZ}` circuit with
//! at most three entangling factors ([`synthesize_two_qubit`]) — an
//! exact, deterministic complement to the annealing-based composer,
//! used by `geyser-compose` for blocks whose unitary only touches two
//! qubits.
//!
//! # Example
//!
//! ```
//! use geyser_circuit::Circuit;
//! use geyser_sim::circuit_unitary;
//! use geyser_synth::synthesize_two_qubit;
//! use geyser_num::hilbert_schmidt_distance;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1).t(1).cx(1, 0);
//! let u = circuit_unitary(&c);
//! let synth = synthesize_two_qubit(&u).expect("u is a 2-qubit unitary");
//! let d = hilbert_schmidt_distance(&circuit_unitary(&synth), &u);
//! assert!(d < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuits;
mod invariants;
mod kak;
mod tensor;

pub use circuits::{canonical_circuit, synthesize_two_qubit};
pub use invariants::{locally_equivalent, makhlin_invariants};
pub use kak::{kak_decompose, KakDecomposition};
pub use tensor::{split_tensor_product, split_tensor_product_dims};
