//! Property tests: KAK decomposition and synthesis over random
//! two-qubit unitaries.

use geyser_circuit::Circuit;
use geyser_num::hilbert_schmidt_distance;
use geyser_sim::circuit_unitary;
use geyser_synth::{kak_decompose, split_tensor_product, synthesize_two_qubit};
use proptest::prelude::*;

/// Strategy: a Haar-ish random 2-qubit unitary built from a random
/// circuit of rotations and entanglers.
fn random_unitary() -> impl Strategy<Value = geyser_num::CMatrix> {
    proptest::collection::vec(
        (
            0.0f64..std::f64::consts::TAU,
            0.0f64..std::f64::consts::TAU,
            0..2usize,
            proptest::bool::ANY,
        ),
        1..8,
    )
    .prop_map(|layers| {
        let mut c = Circuit::new(2);
        for (ry, rz, q, entangle) in layers {
            c.ry(ry, q);
            c.rz(rz, 1 - q);
            if entangle {
                c.cz(0, 1);
            }
        }
        circuit_unitary(&c)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn kak_reconstruction_is_exact(u in random_unitary()) {
        let kak = kak_decompose(&u).expect("random unitaries decompose");
        let back = kak.to_matrix();
        prop_assert!(back.approx_eq(&u, 1e-6), "reconstruction drifted");
        prop_assert!(kak.a0.is_unitary(1e-7));
        prop_assert!(kak.a1.is_unitary(1e-7));
        prop_assert!(kak.b0.is_unitary(1e-7));
        prop_assert!(kak.b1.is_unitary(1e-7));
    }

    #[test]
    fn synthesis_is_equivalent_and_bounded(u in random_unitary()) {
        let c = synthesize_two_qubit(&u).expect("synthesis succeeds");
        prop_assert!(c.is_native_basis());
        prop_assert!(c.gate_counts().cz <= 6);
        let d = hilbert_schmidt_distance(&circuit_unitary(&c), &u);
        prop_assert!(d < 1e-6, "HSD = {d}");
    }

    #[test]
    fn synthesis_fuses_single_qubit_runs(u in random_unitary()) {
        // Between any two CZ gates there can be at most one U3 per
        // qubit (the builder fuses runs).
        let c = synthesize_two_qubit(&u).expect("synthesis succeeds");
        let mut u3_since_cz = [0usize; 2];
        for op in c.iter() {
            if op.arity() == 2 {
                u3_since_cz = [0, 0];
            } else {
                let q = op.qubits()[0];
                u3_since_cz[q] += 1;
                prop_assert!(u3_since_cz[q] <= 1, "unfused U3 run on q{q}");
            }
        }
    }

    #[test]
    fn tensor_split_roundtrips(
        t1 in 0.0f64..std::f64::consts::PI,
        p1 in 0.0f64..std::f64::consts::TAU,
        l1 in 0.0f64..std::f64::consts::TAU,
        t2 in 0.0f64..std::f64::consts::PI,
        p2 in 0.0f64..std::f64::consts::TAU,
        l2 in 0.0f64..std::f64::consts::TAU,
    ) {
        let a = geyser_circuit::Gate::U3 { theta: t1, phi: p1, lambda: l1 }.matrix();
        let b = geyser_circuit::Gate::U3 { theta: t2, phi: p2, lambda: l2 }.matrix();
        let m = a.kron(&b);
        let (fa, fb) = split_tensor_product(&m, 1e-8).expect("products split");
        prop_assert!(fa.kron(&fb).approx_eq(&m, 1e-8));
    }
}
