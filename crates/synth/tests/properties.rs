//! Property tests: KAK decomposition and synthesis over random
//! two-qubit unitaries.
//!
//! Runs each property over a fixed set of seeds (proptest is not
//! available offline); failures reproduce exactly by seed.

use geyser_circuit::Circuit;
use geyser_num::hilbert_schmidt_distance;
use geyser_sim::circuit_unitary;
use geyser_synth::{kak_decompose, split_tensor_product, synthesize_two_qubit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 40;

fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(0x2545_f491))
}

/// A Haar-ish random 2-qubit unitary built from a random circuit of
/// rotations and entanglers.
fn random_unitary(rng: &mut StdRng) -> geyser_num::CMatrix {
    let layers = 1 + rng.gen_range(0..7usize);
    let mut c = Circuit::new(2);
    for _ in 0..layers {
        let ry = rng.gen_range(0.0..std::f64::consts::TAU);
        let rz = rng.gen_range(0.0..std::f64::consts::TAU);
        let q = rng.gen_range(0..2usize);
        c.ry(ry, q);
        c.rz(rz, 1 - q);
        if rng.gen_bool(0.5) {
            c.cz(0, 1);
        }
    }
    circuit_unitary(&c)
}

#[test]
fn kak_reconstruction_is_exact() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let u = random_unitary(&mut rng);
        let kak = kak_decompose(&u).expect("random unitaries decompose");
        let back = kak.to_matrix();
        assert!(
            back.approx_eq(&u, 1e-6),
            "seed {seed}: reconstruction drifted"
        );
        assert!(kak.a0.is_unitary(1e-7), "seed {seed}");
        assert!(kak.a1.is_unitary(1e-7), "seed {seed}");
        assert!(kak.b0.is_unitary(1e-7), "seed {seed}");
        assert!(kak.b1.is_unitary(1e-7), "seed {seed}");
    }
}

#[test]
fn synthesis_is_equivalent_and_bounded() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let u = random_unitary(&mut rng);
        let c = synthesize_two_qubit(&u).expect("synthesis succeeds");
        assert!(c.is_native_basis(), "seed {seed}");
        assert!(c.gate_counts().cz <= 6, "seed {seed}");
        let d = hilbert_schmidt_distance(&circuit_unitary(&c), &u);
        assert!(d < 1e-6, "seed {seed}: HSD = {d}");
    }
}

#[test]
fn synthesis_fuses_single_qubit_runs() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let u = random_unitary(&mut rng);
        // Between any two CZ gates there can be at most one U3 per
        // qubit (the builder fuses runs).
        let c = synthesize_two_qubit(&u).expect("synthesis succeeds");
        let mut u3_since_cz = [0usize; 2];
        for op in c.iter() {
            if op.arity() == 2 {
                u3_since_cz = [0, 0];
            } else {
                let q = op.qubits()[0];
                u3_since_cz[q] += 1;
                assert!(u3_since_cz[q] <= 1, "seed {seed}: unfused U3 run on q{q}");
            }
        }
    }
}

#[test]
fn tensor_split_roundtrips() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let a = geyser_circuit::Gate::U3 {
            theta: rng.gen_range(0.0..std::f64::consts::PI),
            phi: rng.gen_range(0.0..std::f64::consts::TAU),
            lambda: rng.gen_range(0.0..std::f64::consts::TAU),
        }
        .matrix();
        let b = geyser_circuit::Gate::U3 {
            theta: rng.gen_range(0.0..std::f64::consts::PI),
            phi: rng.gen_range(0.0..std::f64::consts::TAU),
            lambda: rng.gen_range(0.0..std::f64::consts::TAU),
        }
        .matrix();
        let m = a.kron(&b);
        let (fa, fb) = split_tensor_product(&m, 1e-8).expect("products split");
        assert!(fa.kron(&fb).approx_eq(&m, 1e-8), "seed {seed}");
    }
}
