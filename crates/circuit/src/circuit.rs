//! The circuit container and its accounting methods.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{critical_path_pulses, Gate, Operation};

/// Gate-count summary of a circuit, bucketed the way the paper reports
/// them (Fig. 14): single-qubit (U3-class), CZ, CCZ, and anything not
/// yet translated to the native basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GateCounts {
    /// Single-qubit gates (every 1q gate is one U3 pulse).
    pub u3: usize,
    /// Native two-qubit CZ gates.
    pub cz: usize,
    /// Native three-qubit CCZ gates.
    pub ccz: usize,
    /// Logical multi-qubit gates not yet mapped (CX, SWAP, CP, CCX).
    pub unmapped: usize,
}

impl GateCounts {
    /// Total number of gates counted.
    pub fn total(&self) -> usize {
        self.u3 + self.cz + self.ccz + self.unmapped
    }
}

/// An ordered sequence of quantum operations on `n` qubits.
///
/// `Circuit` is the IR exchanged between every pipeline stage. It
/// supports fluent construction, pulse-aware cost accounting, and
/// structural queries used by blocking and composition.
///
/// # Example
///
/// ```
/// use geyser_circuit::Circuit;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// assert_eq!(bell.len(), 2);
/// assert_eq!(bell.total_pulses(), 1 + 5);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<Operation>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// Number of qubits the circuit is declared over.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of operations.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the circuit has no operations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Borrows the operation list in program order.
    #[inline]
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Iterates over operations in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Operation> {
        self.ops.iter()
    }

    /// Appends an operation.
    ///
    /// # Panics
    ///
    /// Panics if any target qubit index is out of range.
    pub fn push(&mut self, op: Operation) -> &mut Self {
        for &q in op.qubits() {
            assert!(
                q < self.num_qubits,
                "qubit {q} out of range for {}-qubit circuit",
                self.num_qubits
            );
        }
        self.ops.push(op);
        self
    }

    /// Appends a gate on the given qubits.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch, duplicate qubits, or out-of-range
    /// indices.
    pub fn apply(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        self.push(Operation::new(gate, qubits.to_vec()))
    }

    /// Appends all operations of `other` (same qubit space).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses qubits out of range for this circuit.
    pub fn extend_from(&mut self, other: &Circuit) -> &mut Self {
        for op in other.iter() {
            self.push(op.clone());
        }
        self
    }

    // ---- fluent single-qubit builders ----

    /// Appends a Hadamard gate.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::H, &[q])
    }
    /// Appends a Pauli-X gate.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::X, &[q])
    }
    /// Appends a Pauli-Y gate.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Y, &[q])
    }
    /// Appends a Pauli-Z gate.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Z, &[q])
    }
    /// Appends an S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::S, &[q])
    }
    /// Appends an S† gate.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Sdg, &[q])
    }
    /// Appends a T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::T, &[q])
    }
    /// Appends a T† gate.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Tdg, &[q])
    }
    /// Appends an X-rotation.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.apply(Gate::RX(theta), &[q])
    }
    /// Appends a Y-rotation.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.apply(Gate::RY(theta), &[q])
    }
    /// Appends a Z-rotation.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.apply(Gate::RZ(theta), &[q])
    }
    /// Appends a phase gate diag(1, e^{iθ}).
    pub fn p(&mut self, theta: f64, q: usize) -> &mut Self {
        self.apply(Gate::Phase(theta), &[q])
    }
    /// Appends a general U3 rotation.
    pub fn u3(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.apply(Gate::U3 { theta, phi, lambda }, &[q])
    }

    // ---- fluent multi-qubit builders ----

    /// Appends a CZ gate.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.apply(Gate::CZ, &[a, b])
    }
    /// Appends a CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.apply(Gate::CX, &[c, t])
    }
    /// Appends a controlled-phase gate.
    pub fn cp(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.apply(Gate::CPhase(theta), &[a, b])
    }
    /// Appends a SWAP gate.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.apply(Gate::Swap, &[a, b])
    }
    /// Appends a CCZ gate.
    pub fn ccz(&mut self, a: usize, b: usize, c: usize) -> &mut Self {
        self.apply(Gate::CCZ, &[a, b, c])
    }
    /// Appends a Toffoli gate with controls `c1`, `c2` and target `t`.
    pub fn ccx(&mut self, c1: usize, c2: usize, t: usize) -> &mut Self {
        self.apply(Gate::CCX, &[c1, c2, t])
    }

    // ---- accounting ----

    /// Gate counts bucketed as the paper reports them (Fig. 14).
    pub fn gate_counts(&self) -> GateCounts {
        let mut counts = GateCounts::default();
        for op in &self.ops {
            match op.gate() {
                g if g.is_single_qubit() => counts.u3 += 1,
                Gate::CZ => counts.cz += 1,
                Gate::CCZ => counts.ccz += 1,
                _ => counts.unmapped += 1,
            }
        }
        counts
    }

    /// Total physical pulses across all operations (paper Fig. 12).
    pub fn total_pulses(&self) -> u64 {
        self.ops.iter().map(|op| op.pulses() as u64).sum()
    }

    /// Pulses on the critical path ignoring restriction zones
    /// (paper Fig. 13 reports the zone-aware variant; see
    /// `geyser-map`'s scheduler for that).
    pub fn depth_pulses(&self) -> u64 {
        critical_path_pulses(self)
    }

    /// Returns `true` if every operation is in the native neutral-atom
    /// basis `{U3, CZ, CCZ}`.
    pub fn is_native_basis(&self) -> bool {
        self.ops.iter().all(|op| op.gate().is_native())
    }

    /// The set of qubits actually touched by at least one operation,
    /// in ascending order.
    pub fn used_qubits(&self) -> Vec<usize> {
        let mut used = vec![false; self.num_qubits];
        for op in &self.ops {
            for &q in op.qubits() {
                used[q] = true;
            }
        }
        (0..self.num_qubits).filter(|&q| used[q]).collect()
    }

    /// Returns a copy with all qubit indices rewritten through `f`,
    /// declared over `new_num_qubits`.
    ///
    /// # Panics
    ///
    /// Panics if a remapped index falls outside the new range or the
    /// remapping collides qubits within one operation.
    pub fn remapped<F: FnMut(usize) -> usize>(&self, new_num_qubits: usize, mut f: F) -> Circuit {
        let mut out = Circuit::new(new_num_qubits);
        for op in &self.ops {
            out.push(op.remapped(&mut f));
        }
        out
    }

    /// Unweighted gate depth: the number of ASAP layers (every gate
    /// counted as one time step regardless of pulse cost). Compare
    /// with [`Circuit::depth_pulses`] for the pulse-weighted metric.
    ///
    /// # Example
    ///
    /// ```
    /// use geyser_circuit::Circuit;
    /// let mut c = Circuit::new(3);
    /// c.h(0).h(1).cz(0, 1).h(2);
    /// assert_eq!(c.gate_depth(), 2);
    /// ```
    pub fn gate_depth(&self) -> usize {
        crate::asap_layers(self).len()
    }

    /// Average operations per ASAP layer — a crude measure of the
    /// program's inherent gate-level parallelism (1.0 = fully serial).
    pub fn mean_parallelism(&self) -> f64 {
        let depth = self.gate_depth();
        if depth == 0 {
            0.0
        } else {
            self.len() as f64 / depth as f64
        }
    }

    /// The inverse circuit `C⁻¹`: operations reversed, each gate
    /// inverted. Running `C` then `C.inverted()` is the identity —
    /// the basis of mirror/Loschmidt-echo benchmarking.
    ///
    /// # Example
    ///
    /// ```
    /// use geyser_circuit::Circuit;
    /// let mut c = Circuit::new(2);
    /// c.h(0).cx(0, 1).t(1);
    /// let mirror = c.inverted();
    /// assert_eq!(mirror.len(), 3);
    /// assert_eq!(mirror.ops()[0].gate().name(), "tdg");
    /// ```
    pub fn inverted(&self) -> Circuit {
        let mut out = Circuit::new(self.num_qubits);
        for op in self.ops.iter().rev() {
            out.push(Operation::new(op.gate().inverse(), op.qubits().to_vec()));
        }
        out
    }

    /// Splits the circuit into per-qubit operation index lists: entry
    /// `q` holds the indices (into [`Circuit::ops`]) of operations
    /// touching qubit `q`, in program order. This is the "operations
    /// of qubits" view used by the blocking frontier (Algorithm 1).
    pub fn per_qubit_op_indices(&self) -> Vec<Vec<usize>> {
        let mut per = vec![Vec::new(); self.num_qubits];
        for (i, op) in self.ops.iter().enumerate() {
            for &q in op.qubits() {
                per[q].push(i);
            }
        }
        per
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit({} qubits, {} ops)", self.num_qubits, self.len())?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Operation;
    type IntoIter = std::slice::Iter<'a, Operation>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

impl Extend<Operation> for Circuit {
    fn extend<T: IntoIterator<Item = Operation>>(&mut self, iter: T) {
        for op in iter {
            self.push(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_ops() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccz(0, 1, 2).rz(0.5, 2);
        assert_eq!(c.len(), 4);
        assert_eq!(c.num_qubits(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn gate_counts_bucketing() {
        let mut c = Circuit::new(3);
        c.h(0).x(1).cz(0, 1).ccz(0, 1, 2).cx(1, 2).swap(0, 1);
        let counts = c.gate_counts();
        assert_eq!(counts.u3, 2);
        assert_eq!(counts.cz, 1);
        assert_eq!(counts.ccz, 1);
        assert_eq!(counts.unmapped, 2);
        assert_eq!(counts.total(), 6);
    }

    #[test]
    fn total_pulses_sums_gate_pulses() {
        let mut c = Circuit::new(3);
        c.u3(0.1, 0.2, 0.3, 0).cz(0, 1).ccz(0, 1, 2);
        assert_eq!(c.total_pulses(), 1 + 3 + 5);
    }

    #[test]
    fn native_basis_detection() {
        let mut native = Circuit::new(2);
        native.u3(0.1, 0.2, 0.3, 0).cz(0, 1);
        assert!(native.is_native_basis());
        let mut logical = Circuit::new(2);
        logical.h(0).cx(0, 1);
        assert!(!logical.is_native_basis());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(2);
        c.h(2);
    }

    #[test]
    fn used_qubits_skips_idle() {
        let mut c = Circuit::new(5);
        c.h(1).cz(1, 3);
        assert_eq!(c.used_qubits(), vec![1, 3]);
    }

    #[test]
    fn remap_shifts_indices() {
        let mut c = Circuit::new(2);
        c.h(0).cz(0, 1);
        let shifted = c.remapped(4, |q| q + 2);
        assert_eq!(shifted.num_qubits(), 4);
        assert_eq!(shifted.ops()[1].qubits(), &[2, 3]);
    }

    #[test]
    fn per_qubit_indices_in_program_order() {
        let mut c = Circuit::new(3);
        c.h(0).cz(0, 1).h(1).cz(1, 2);
        let per = c.per_qubit_op_indices();
        assert_eq!(per[0], vec![0, 1]);
        assert_eq!(per[1], vec![1, 2, 3]);
        assert_eq!(per[2], vec![3]);
    }

    #[test]
    fn extend_from_appends() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cz(0, 1);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn iterators_visit_program_order() {
        let mut c = Circuit::new(2);
        c.h(0).cz(0, 1);
        let names: Vec<&str> = c.iter().map(|op| op.gate().name()).collect();
        assert_eq!(names, vec!["h", "cz"]);
        let names2: Vec<&str> = (&c).into_iter().map(|op| op.gate().name()).collect();
        assert_eq!(names2, names);
    }

    #[test]
    fn gate_depth_and_parallelism() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3); // one layer
        c.cz(0, 1).cz(2, 3); // one layer
        assert_eq!(c.gate_depth(), 2);
        assert!((c.mean_parallelism() - 3.0).abs() < 1e-12);
        assert_eq!(Circuit::new(2).gate_depth(), 0);
        assert_eq!(Circuit::new(2).mean_parallelism(), 0.0);
    }

    #[test]
    fn core_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Circuit>();
        assert_send_sync::<crate::Gate>();
        assert_send_sync::<crate::Operation>();
        assert_send_sync::<GateCounts>();
    }

    #[test]
    fn inverted_reverses_and_inverts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(0.4, 1).ccz(0, 1, 2).s(2);
        let inv = c.inverted();
        assert_eq!(inv.len(), c.len());
        let names: Vec<&str> = inv.iter().map(|op| op.gate().name()).collect();
        assert_eq!(names, vec!["sdg", "ccz", "rz", "cx", "h"]);
        // The rz angle must be negated.
        assert_eq!(*inv.ops()[2].gate(), crate::Gate::RZ(-0.4));
    }

    #[test]
    fn empty_circuit_accounting() {
        let c = Circuit::new(4);
        assert_eq!(c.total_pulses(), 0);
        assert_eq!(c.depth_pulses(), 0);
        assert_eq!(c.gate_counts().total(), 0);
        assert!(c.is_native_basis());
        assert!(c.used_qubits().is_empty());
    }
}
