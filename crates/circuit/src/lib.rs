//! Quantum circuit intermediate representation with pulse-aware costing.
//!
//! This crate defines the circuit IR shared by every stage of the
//! Geyser pipeline:
//!
//! * [`Gate`] — the gate alphabet, spanning both the *logical* gates
//!   benchmark programs are written in (H, CX, RZ, …) and the
//!   *physical* basis natively executed by neutral-atom hardware
//!   (U3, CZ, CCZ — paper Sec. 2.2).
//! * [`Operation`] — a gate applied to specific qubit indices.
//! * [`Circuit`] — an ordered sequence of operations with builders,
//!   gate/pulse accounting, and critical-path analysis.
//!
//! # Pulse model
//!
//! Geyser's central metric is the number of physical light pulses, not
//! gates (paper Sec. 3.3): a U3 needs **1** Raman pulse, a CZ needs
//! **3** Rydberg pulses, and a CCZ needs **5** (paper Fig. 3). All
//! costing in this crate follows that model via [`Gate::pulses`].
//!
//! # Example
//!
//! ```
//! use geyser_circuit::Circuit;
//!
//! let mut c = Circuit::new(3);
//! c.h(0).cx(0, 1).ccz(0, 1, 2);
//! assert_eq!(c.len(), 3);
//! assert_eq!(c.num_qubits(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod dag;
mod draw;
mod gate;
mod op;
mod qasm;
mod qasm_parse;

pub use circuit::{Circuit, GateCounts};
pub use dag::{asap_layers, critical_path_pulses, DependencyDag};
pub use draw::draw;
pub use gate::{Gate, PULSES_CCZ, PULSES_CZ, PULSES_U3};
pub use op::Operation;
pub use qasm::to_qasm;
pub use qasm_parse::{from_qasm, ParseQasmError};
