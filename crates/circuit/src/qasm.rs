//! OpenQASM 2.0-style textual emission.
//!
//! Geyser's native CCZ gate has no OpenQASM 2.0 primitive, so it is
//! emitted as a `ccz` call with a defining `gate` declaration included
//! in the preamble. The output is intended for interchange with other
//! toolchains and for golden-file testing.

use std::fmt::Write as _;

use crate::{Circuit, Gate};

/// Serializes a circuit to OpenQASM 2.0-style text.
///
/// # Example
///
/// ```
/// use geyser_circuit::{to_qasm, Circuit};
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let qasm = to_qasm(&c);
/// assert!(qasm.contains("h q[0];"));
/// assert!(qasm.contains("cx q[0],q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    if circuit.iter().any(|op| matches!(op.gate(), Gate::CCZ)) {
        out.push_str("gate ccz a,b,c { h c; ccx a,b,c; h c; }\n");
    }
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    for op in circuit.iter() {
        let args: Vec<String> = op.qubits().iter().map(|q| format!("q[{q}]")).collect();
        let args = args.join(",");
        match *op.gate() {
            Gate::U3 { theta, phi, lambda } => {
                let _ = writeln!(out, "u3({theta},{phi},{lambda}) {args};");
            }
            Gate::RX(t) => {
                let _ = writeln!(out, "rx({t}) {args};");
            }
            Gate::RY(t) => {
                let _ = writeln!(out, "ry({t}) {args};");
            }
            Gate::RZ(t) => {
                let _ = writeln!(out, "rz({t}) {args};");
            }
            Gate::Phase(t) => {
                let _ = writeln!(out, "p({t}) {args};");
            }
            Gate::CPhase(t) => {
                let _ = writeln!(out, "cp({t}) {args};");
            }
            ref g => {
                let _ = writeln!(out, "{} {args};", g.name());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Circuit;

    #[test]
    fn header_and_register() {
        let c = Circuit::new(3);
        let q = to_qasm(&c);
        assert!(q.starts_with("OPENQASM 2.0;"));
        assert!(q.contains("qreg q[3];"));
    }

    #[test]
    fn parameterized_gates_serialize_angles() {
        let mut c = Circuit::new(1);
        c.u3(0.5, 1.0, 1.5, 0).rz(0.25, 0);
        let q = to_qasm(&c);
        assert!(q.contains("u3(0.5,1,1.5) q[0];"));
        assert!(q.contains("rz(0.25) q[0];"));
    }

    #[test]
    fn ccz_gets_definition_only_when_used() {
        let mut with = Circuit::new(3);
        with.ccz(0, 1, 2);
        assert!(to_qasm(&with).contains("gate ccz"));
        let without = Circuit::new(3);
        assert!(!to_qasm(&without).contains("gate ccz"));
    }

    #[test]
    fn multi_qubit_argument_order_preserved() {
        let mut c = Circuit::new(3);
        c.cx(2, 0).ccz(1, 0, 2);
        let q = to_qasm(&c);
        assert!(q.contains("cx q[2],q[0];"));
        assert!(q.contains("ccz q[1],q[0],q[2];"));
    }
}
