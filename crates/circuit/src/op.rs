//! A gate bound to specific qubit indices.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Gate;

/// A [`Gate`] applied to an ordered list of qubit indices.
///
/// The qubit order is significant for non-symmetric gates: for
/// [`Gate::CX`] the first qubit is the control; for [`Gate::CCX`] the
/// first two are controls.
///
/// # Example
///
/// ```
/// use geyser_circuit::{Gate, Operation};
/// let op = Operation::new(Gate::CX, vec![0, 2]);
/// assert_eq!(op.qubits(), &[0, 2]);
/// assert_eq!(op.pulses(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operation {
    gate: Gate,
    qubits: Vec<usize>,
}

impl Operation {
    /// Binds `gate` to `qubits`.
    ///
    /// # Panics
    ///
    /// Panics if the number of qubits does not match the gate arity or
    /// if the qubit list contains duplicates.
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Self {
        assert_eq!(
            qubits.len(),
            gate.arity(),
            "gate {gate} expects {} qubits, got {}",
            gate.arity(),
            qubits.len()
        );
        for (i, q) in qubits.iter().enumerate() {
            assert!(
                !qubits[..i].contains(q),
                "duplicate qubit {q} in operation {gate}"
            );
        }
        Operation { gate, qubits }
    }

    /// The gate being applied.
    #[inline]
    pub fn gate(&self) -> &Gate {
        &self.gate
    }

    /// The target qubit indices, in gate-argument order.
    #[inline]
    pub fn qubits(&self) -> &[usize] {
        &self.qubits
    }

    /// Number of qubits the operation touches.
    #[inline]
    pub fn arity(&self) -> usize {
        self.qubits.len()
    }

    /// Physical pulse cost (see [`Gate::pulses`]).
    #[inline]
    pub fn pulses(&self) -> u32 {
        self.gate.pulses()
    }

    /// Returns `true` if this operation shares any qubit with `other`.
    pub fn overlaps(&self, other: &Operation) -> bool {
        self.qubits.iter().any(|q| other.qubits.contains(q))
    }

    /// Returns `true` if the operation acts on the given qubit.
    #[inline]
    pub fn acts_on(&self, qubit: usize) -> bool {
        self.qubits.contains(&qubit)
    }

    /// Returns a copy with qubit indices rewritten through `f`.
    ///
    /// Used when embedding a block-local circuit back into the full
    /// device circuit, or when applying a layout permutation.
    ///
    /// # Panics
    ///
    /// Panics if the remapping introduces duplicate qubits.
    pub fn remapped<F: FnMut(usize) -> usize>(&self, mut f: F) -> Operation {
        Operation::new(self.gate, self.qubits.iter().map(|&q| f(q)).collect())
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ", self.gate)?;
        for (i, q) in self.qubits.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "q{q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let op = Operation::new(Gate::CCZ, vec![4, 1, 7]);
        assert_eq!(op.arity(), 3);
        assert_eq!(op.qubits(), &[4, 1, 7]);
        assert_eq!(op.pulses(), 5);
        assert_eq!(*op.gate(), Gate::CCZ);
    }

    #[test]
    #[should_panic(expected = "expects 2 qubits")]
    fn arity_mismatch_panics() {
        let _ = Operation::new(Gate::CZ, vec![0]);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn duplicate_qubits_panic() {
        let _ = Operation::new(Gate::CZ, vec![3, 3]);
    }

    #[test]
    fn overlap_detection() {
        let a = Operation::new(Gate::CZ, vec![0, 1]);
        let b = Operation::new(Gate::CZ, vec![1, 2]);
        let c = Operation::new(Gate::CZ, vec![3, 4]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.acts_on(0));
        assert!(!a.acts_on(2));
    }

    #[test]
    fn remap_rewrites_qubits() {
        let op = Operation::new(Gate::CX, vec![0, 1]);
        let shifted = op.remapped(|q| q + 10);
        assert_eq!(shifted.qubits(), &[10, 11]);
        assert_eq!(*shifted.gate(), Gate::CX);
    }

    #[test]
    fn display_format() {
        let op = Operation::new(Gate::CX, vec![2, 5]);
        assert_eq!(op.to_string(), "cx q2,q5");
    }
}
