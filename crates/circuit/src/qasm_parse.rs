//! OpenQASM 2.0-subset parsing — the inverse of [`crate::to_qasm`].
//!
//! Supports the gate set this crate emits plus the angle expressions
//! commonly found in benchmark files (`pi`, `pi/2`, `-3*pi/4`, plain
//! floats). `gate` definitions and `include` lines are skipped; the
//! emitted `ccz` definition is therefore consumed transparently.

use std::error::Error;
use std::fmt;

use crate::{Circuit, Gate};

/// Error from [`from_qasm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQasmError {
    line: usize,
    message: String,
}

impl ParseQasmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseQasmError {
            line,
            message: message.into(),
        }
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qasm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseQasmError {}

/// Parses an angle expression: `[-] (float | pi) [*float | /float]`
/// plus `float*pi[/float]` forms.
fn parse_angle(expr: &str, line: usize) -> Result<f64, ParseQasmError> {
    let s = expr.trim().replace(' ', "");
    let bad = |m: &str| ParseQasmError::new(line, format!("{m} in angle `{expr}`"));
    let (sign, s) = match s.strip_prefix('-') {
        Some(rest) => (-1.0, rest.to_string()),
        None => (1.0, s),
    };
    // Split on '/' first (division binds last in these expressions).
    let (num, den) = match s.split_once('/') {
        Some((n, d)) => (
            n.to_string(),
            d.parse::<f64>().map_err(|_| bad("bad divisor"))?,
        ),
        None => (s, 1.0),
    };
    // Numerator: product of factors separated by '*'.
    let mut value = 1.0f64;
    for factor in num.split('*') {
        if factor == "pi" {
            value *= std::f64::consts::PI;
        } else {
            value *= factor.parse::<f64>().map_err(|_| bad("bad factor"))?;
        }
    }
    Ok(sign * value / den)
}

/// Parses a qubit argument `q[i]`.
fn parse_qubit(arg: &str, line: usize) -> Result<usize, ParseQasmError> {
    let arg = arg.trim();
    let inner = arg
        .strip_prefix("q[")
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| ParseQasmError::new(line, format!("bad qubit `{arg}`")))?;
    inner
        .parse::<usize>()
        .map_err(|_| ParseQasmError::new(line, format!("bad qubit index `{arg}`")))
}

/// Parses an OpenQASM 2.0-subset program into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseQasmError`] on unknown gates, malformed arguments,
/// missing registers, or out-of-range qubits.
///
/// # Example
///
/// ```
/// use geyser_circuit::{from_qasm, to_qasm, Circuit};
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1).rz(0.25, 1);
/// let parsed = from_qasm(&to_qasm(&c)).expect("round-trips");
/// assert_eq!(parsed.ops(), c.ops());
/// ```
pub fn from_qasm(source: &str) -> Result<Circuit, ParseQasmError> {
    let mut circuit: Option<Circuit> = None;
    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let line = match raw.find("//") {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty()
            || line.starts_with("OPENQASM")
            || line.starts_with("include")
            || line.starts_with("gate ")
            || line.starts_with("barrier")
            || line.starts_with("creg")
            || line.starts_with("measure")
        {
            continue;
        }
        let stmt = line
            .strip_suffix(';')
            .ok_or_else(|| ParseQasmError::new(line_no, "missing semicolon"))?
            .trim();

        if let Some(rest) = stmt.strip_prefix("qreg") {
            let rest = rest.trim();
            let n = rest
                .strip_prefix("q[")
                .and_then(|s| s.strip_suffix(']'))
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| ParseQasmError::new(line_no, "bad qreg declaration"))?;
            circuit = Some(Circuit::new(n));
            continue;
        }

        let c = circuit
            .as_mut()
            .ok_or_else(|| ParseQasmError::new(line_no, "gate before qreg"))?;

        // Split `name(params) args` / `name args`.
        let (head, args) = match stmt.split_once(' ') {
            Some((h, a)) => (h.trim(), a.trim()),
            None => return Err(ParseQasmError::new(line_no, "missing gate arguments")),
        };
        let (name, params): (&str, Vec<f64>) = match head.split_once('(') {
            Some((n, p)) => {
                let p = p
                    .strip_suffix(')')
                    .ok_or_else(|| ParseQasmError::new(line_no, "unclosed parameter list"))?;
                let params = p
                    .split(',')
                    .map(|e| parse_angle(e, line_no))
                    .collect::<Result<Vec<f64>, _>>()?;
                (n, params)
            }
            None => (head, Vec::new()),
        };
        let qubits: Vec<usize> = args
            .split(',')
            .map(|a| parse_qubit(a, line_no))
            .collect::<Result<Vec<usize>, _>>()?;

        let param = |k: usize| -> Result<f64, ParseQasmError> {
            params
                .get(k)
                .copied()
                .ok_or_else(|| ParseQasmError::new(line_no, "missing parameter"))
        };
        let gate = match name {
            "u3" | "u" => Gate::U3 {
                theta: param(0)?,
                phi: param(1)?,
                lambda: param(2)?,
            },
            "h" => Gate::H,
            "x" => Gate::X,
            "y" => Gate::Y,
            "z" => Gate::Z,
            "s" => Gate::S,
            "sdg" => Gate::Sdg,
            "t" => Gate::T,
            "tdg" => Gate::Tdg,
            "id" => Gate::U3 {
                theta: 0.0,
                phi: 0.0,
                lambda: 0.0,
            },
            "rx" => Gate::RX(param(0)?),
            "ry" => Gate::RY(param(0)?),
            "rz" => Gate::RZ(param(0)?),
            "p" | "u1" => Gate::Phase(param(0)?),
            "cx" => Gate::CX,
            "cz" => Gate::CZ,
            "cp" | "cu1" => Gate::CPhase(param(0)?),
            "swap" => Gate::Swap,
            "ccx" => Gate::CCX,
            "ccz" => Gate::CCZ,
            other => {
                return Err(ParseQasmError::new(
                    line_no,
                    format!("unsupported gate `{other}`"),
                ))
            }
        };
        if gate.arity() != qubits.len() {
            return Err(ParseQasmError::new(
                line_no,
                format!(
                    "gate `{name}` expects {} qubits, got {}",
                    gate.arity(),
                    qubits.len()
                ),
            ));
        }
        for &q in &qubits {
            if q >= c.num_qubits() {
                return Err(ParseQasmError::new(
                    line_no,
                    format!("qubit {q} out of range"),
                ));
            }
        }
        c.apply(gate, &qubits);
    }
    circuit.ok_or_else(|| ParseQasmError::new(0, "no qreg declaration found"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_qasm;

    #[test]
    fn roundtrip_through_emitter() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .u3(0.1, -0.2, 0.3, 2)
            .rz(1.5, 1)
            .cp(0.7, 0, 2)
            .swap(1, 2)
            .ccz(0, 1, 2)
            .ccx(2, 1, 0);
        let parsed = from_qasm(&to_qasm(&c)).expect("round-trip parses");
        assert_eq!(parsed.num_qubits(), 3);
        assert_eq!(parsed.ops(), c.ops());
    }

    #[test]
    fn parses_pi_expressions() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nrz(pi) q[0];\nrz(pi/2) q[0];\nrz(-pi/4) q[0];\nrz(3*pi/2) q[0];\nrz(0.5) q[0];\n";
        let c = from_qasm(src).unwrap();
        let angles: Vec<f64> = c
            .iter()
            .map(|op| match op.gate() {
                Gate::RZ(t) => *t,
                _ => panic!(),
            })
            .collect();
        let pi = std::f64::consts::PI;
        let want = [pi, pi / 2.0, -pi / 4.0, 3.0 * pi / 2.0, 0.5];
        for (a, w) in angles.iter().zip(want) {
            assert!((a - w).abs() < 1e-12, "{a} vs {w}");
        }
    }

    #[test]
    fn skips_comments_and_declarations() {
        let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\ngate ccz a,b,c { h c; ccx a,b,c; h c; }\n// comment\nqreg q[2];\nh q[0]; // trailing\ncz q[0],q[1];\n";
        let c = from_qasm(src).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reports_unknown_gate_with_line() {
        let src = "qreg q[1];\nfancy q[0];\n";
        let err = from_qasm(src).unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("unsupported gate"));
    }

    #[test]
    fn reports_out_of_range_qubit() {
        let src = "qreg q[2];\nh q[5];\n";
        let err = from_qasm(src).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn reports_arity_mismatch() {
        let src = "qreg q[2];\ncx q[0];\n";
        let err = from_qasm(src).unwrap_err();
        assert!(err.to_string().contains("expects 2 qubits"));
    }

    #[test]
    fn rejects_gate_before_register() {
        let err = from_qasm("h q[0];\n").unwrap_err();
        assert!(err.to_string().contains("before qreg"));
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = from_qasm("qreg q[1];\nh q[0]\n").unwrap_err();
        assert!(err.to_string().contains("semicolon"));
    }

    #[test]
    fn measure_and_barrier_are_ignored() {
        let src = "qreg q[1];\ncreg c[1];\nh q[0];\nbarrier q;\nmeasure q[0] -> c[0];\n";
        let c = from_qasm(src).unwrap();
        assert_eq!(c.len(), 1);
    }
}
