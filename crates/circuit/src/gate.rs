//! The gate alphabet and its matrix/pulse semantics.

use std::fmt;

use geyser_num::{CMatrix, Complex};
use serde::{Deserialize, Serialize};

/// Pulses required for a single-qubit U3 gate (one Raman pulse).
pub const PULSES_U3: u32 = 1;
/// Pulses required for a CZ gate (three Rydberg pulses, paper Fig. 3a).
pub const PULSES_CZ: u32 = 3;
/// Pulses required for a CCZ gate (five Rydberg pulses, paper Fig. 3b).
pub const PULSES_CCZ: u32 = 5;

/// A quantum gate.
///
/// The alphabet covers two tiers:
///
/// * **Physical** gates natively executable on neutral-atom hardware:
///   [`Gate::U3`], [`Gate::CZ`], [`Gate::CCZ`]. Every compiled circuit
///   emitted by the Geyser pipeline uses only these.
/// * **Logical** gates used to express benchmark algorithms (H, X, RZ,
///   CX, SWAP, CCX, controlled-phase, …). The mapping stage translates
///   them into the physical basis.
///
/// Gate matrices follow the big-endian qubit convention: for an
/// operation on qubits `[a, b, c]`, qubit `a` indexes the most
/// significant bit of the local matrix.
///
/// # Example
///
/// ```
/// use geyser_circuit::Gate;
/// assert_eq!(Gate::CZ.arity(), 2);
/// assert_eq!(Gate::CZ.pulses(), 3);
/// assert!(Gate::CCZ.is_native());
/// assert!(!Gate::CX.is_native());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    // ---- physical (native neutral-atom) basis ----
    /// General single-qubit rotation `U3(θ, φ, λ)` (paper Sec. 2.1).
    U3 {
        /// Polar angle θ.
        theta: f64,
        /// First azimuthal angle φ.
        phi: f64,
        /// Second azimuthal angle λ.
        lambda: f64,
    },
    /// Controlled-Z, native two-qubit Rydberg gate.
    CZ,
    /// Doubly-controlled Z, native three-qubit Rydberg gate.
    CCZ,

    // ---- logical single-qubit gates ----
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S = diag(1, i).
    S,
    /// Inverse phase gate S†.
    Sdg,
    /// T gate = diag(1, e^{iπ/4}).
    T,
    /// Inverse T gate.
    Tdg,
    /// Rotation about X by the given angle.
    RX(f64),
    /// Rotation about Y by the given angle.
    RY(f64),
    /// Rotation about Z by the given angle.
    RZ(f64),
    /// Phase gate diag(1, e^{iθ}).
    Phase(f64),

    // ---- logical multi-qubit gates ----
    /// Controlled-X (CNOT); first qubit is the control.
    CX,
    /// Controlled phase diag(1, 1, 1, e^{iθ}).
    CPhase(f64),
    /// Qubit-state swap.
    Swap,
    /// Toffoli (CCX); first two qubits are controls.
    CCX,
}

impl Gate {
    /// Number of qubits the gate acts on.
    pub fn arity(&self) -> usize {
        match self {
            Gate::U3 { .. }
            | Gate::H
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::RX(_)
            | Gate::RY(_)
            | Gate::RZ(_)
            | Gate::Phase(_) => 1,
            Gate::CZ | Gate::CX | Gate::CPhase(_) | Gate::Swap => 2,
            Gate::CCZ | Gate::CCX => 3,
        }
    }

    /// Returns `true` if the gate is in the native neutral-atom basis
    /// `{U3, CZ, CCZ}` executed directly by light pulses.
    pub fn is_native(&self) -> bool {
        matches!(self, Gate::U3 { .. } | Gate::CZ | Gate::CCZ)
    }

    /// Returns `true` for any single-qubit gate.
    pub fn is_single_qubit(&self) -> bool {
        self.arity() == 1
    }

    /// Returns `true` if the gate's matrix is diagonal in the
    /// computational basis (useful for commutation analysis).
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::Z
                | Gate::S
                | Gate::Sdg
                | Gate::T
                | Gate::Tdg
                | Gate::RZ(_)
                | Gate::Phase(_)
                | Gate::CZ
                | Gate::CPhase(_)
                | Gate::CCZ
        )
    }

    /// Physical pulse cost of the gate (paper Fig. 3).
    ///
    /// Native gates report their direct pulse count (U3 = 1, CZ = 3,
    /// CCZ = 5). Any other single-qubit gate is one Raman pulse since
    /// it is a U3 instance. Logical multi-qubit gates report the pulse
    /// count of their canonical `{U3, CZ}` decomposition — the cost
    /// they would incur if executed without further optimization:
    ///
    /// * CX = H·CZ·H → 1 + 3 + 1 = 5
    /// * CPhase = 2 CX + 3 RZ → 13
    /// * SWAP = 3 CX → 15
    /// * CCX = (I⊗I⊗H)·CCZ·(I⊗I⊗H) → 7
    pub fn pulses(&self) -> u32 {
        match self {
            Gate::CZ => PULSES_CZ,
            Gate::CCZ => PULSES_CCZ,
            Gate::CX => 2 * PULSES_U3 + PULSES_CZ,
            Gate::CPhase(_) => 2 * (2 * PULSES_U3 + PULSES_CZ) + 3 * PULSES_U3,
            Gate::Swap => 3 * (2 * PULSES_U3 + PULSES_CZ),
            Gate::CCX => 2 * PULSES_U3 + PULSES_CCZ,
            _ => PULSES_U3, // every remaining gate is single-qubit
        }
    }

    /// The gate's unitary matrix in the big-endian local basis.
    ///
    /// # Example
    ///
    /// ```
    /// use geyser_circuit::Gate;
    /// let m = Gate::CZ.matrix();
    /// assert_eq!(m.rows(), 4);
    /// assert!(m.is_unitary(1e-12));
    /// ```
    pub fn matrix(&self) -> CMatrix {
        let one = Complex::ONE;
        let zero = Complex::ZERO;
        let i = Complex::I;
        match *self {
            Gate::U3 { theta, phi, lambda } => {
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                CMatrix::from_rows(&[
                    &[Complex::from_real(c), -(Complex::cis(lambda) * s)],
                    &[Complex::cis(phi) * s, Complex::cis(phi + lambda) * c],
                ])
            }
            Gate::H => {
                let s = Complex::from_real(1.0 / f64::sqrt(2.0));
                CMatrix::from_rows(&[&[s, s], &[s, -s]])
            }
            Gate::X => CMatrix::from_rows(&[&[zero, one], &[one, zero]]),
            Gate::Y => CMatrix::from_rows(&[&[zero, -i], &[i, zero]]),
            Gate::Z => CMatrix::from_diagonal(&[one, -one]),
            Gate::S => CMatrix::from_diagonal(&[one, i]),
            Gate::Sdg => CMatrix::from_diagonal(&[one, -i]),
            Gate::T => CMatrix::from_diagonal(&[one, Complex::cis(std::f64::consts::FRAC_PI_4)]),
            Gate::Tdg => CMatrix::from_diagonal(&[one, Complex::cis(-std::f64::consts::FRAC_PI_4)]),
            Gate::RX(t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                CMatrix::from_rows(&[
                    &[Complex::from_real(c), -i * s],
                    &[-i * s, Complex::from_real(c)],
                ])
            }
            Gate::RY(t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                CMatrix::from_rows(&[
                    &[Complex::from_real(c), Complex::from_real(-s)],
                    &[Complex::from_real(s), Complex::from_real(c)],
                ])
            }
            Gate::RZ(t) => CMatrix::from_diagonal(&[Complex::cis(-t / 2.0), Complex::cis(t / 2.0)]),
            Gate::Phase(t) => CMatrix::from_diagonal(&[one, Complex::cis(t)]),
            Gate::CZ => CMatrix::from_diagonal(&[one, one, one, -one]),
            Gate::CX => CMatrix::from_rows(&[
                &[one, zero, zero, zero],
                &[zero, one, zero, zero],
                &[zero, zero, zero, one],
                &[zero, zero, one, zero],
            ]),
            Gate::CPhase(t) => CMatrix::from_diagonal(&[one, one, one, Complex::cis(t)]),
            Gate::Swap => CMatrix::from_rows(&[
                &[one, zero, zero, zero],
                &[zero, zero, one, zero],
                &[zero, one, zero, zero],
                &[zero, zero, zero, one],
            ]),
            Gate::CCZ => {
                let mut d = vec![one; 8];
                d[7] = -one;
                CMatrix::from_diagonal(&d)
            }
            Gate::CCX => {
                let mut m = CMatrix::identity(8);
                m[(6, 6)] = zero;
                m[(7, 7)] = zero;
                m[(6, 7)] = one;
                m[(7, 6)] = one;
                m
            }
        }
    }

    /// The inverse gate `G⁻¹` (every gate here has an in-alphabet
    /// inverse: self-inverse gates return themselves, rotations negate
    /// their angle, S/T map to their daggers, and U3 inverts its ZYZ
    /// angles).
    ///
    /// # Example
    ///
    /// ```
    /// use geyser_circuit::Gate;
    /// assert_eq!(Gate::S.inverse(), Gate::Sdg);
    /// assert_eq!(Gate::RZ(0.5).inverse(), Gate::RZ(-0.5));
    /// assert_eq!(Gate::CZ.inverse(), Gate::CZ);
    /// ```
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::U3 { theta, phi, lambda } => Gate::U3 {
                theta: -theta,
                phi: -lambda,
                lambda: -phi,
            },
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::RX(t) => Gate::RX(-t),
            Gate::RY(t) => Gate::RY(-t),
            Gate::RZ(t) => Gate::RZ(-t),
            Gate::Phase(t) => Gate::Phase(-t),
            Gate::CPhase(t) => Gate::CPhase(-t),
            // Self-inverse gates.
            g => g,
        }
    }

    /// Short lowercase mnemonic used in textual output and QASM.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::U3 { .. } => "u3",
            Gate::CZ => "cz",
            Gate::CCZ => "ccz",
            Gate::H => "h",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::RX(_) => "rx",
            Gate::RY(_) => "ry",
            Gate::RZ(_) => "rz",
            Gate::Phase(_) => "p",
            Gate::CX => "cx",
            Gate::CPhase(_) => "cp",
            Gate::Swap => "swap",
            Gate::CCX => "ccx",
        }
    }

    /// Returns `true` if the gate is (numerically) an identity, i.e.
    /// its matrix equals the identity up to global phase within `tol`.
    pub fn is_identity(&self, tol: f64) -> bool {
        let m = self.matrix();
        let dim = m.rows();
        let phase = m[(0, 0)];
        if (phase.norm() - 1.0).abs() > tol {
            return false;
        }
        m.approx_eq(&CMatrix::identity(dim).scale(phase), tol)
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::U3 { theta, phi, lambda } => {
                write!(f, "u3({theta:.4},{phi:.4},{lambda:.4})")
            }
            Gate::RX(t) | Gate::RY(t) | Gate::RZ(t) | Gate::Phase(t) | Gate::CPhase(t) => {
                write!(f, "{}({t:.4})", self.name())
            }
            _ => write!(f, "{}", self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn every_gate_matrix_is_unitary() {
        let gates = [
            Gate::U3 {
                theta: 0.3,
                phi: 1.1,
                lambda: -0.2,
            },
            Gate::CZ,
            Gate::CCZ,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::RX(0.7),
            Gate::RY(1.3),
            Gate::RZ(2.2),
            Gate::Phase(0.9),
            Gate::CX,
            Gate::CPhase(0.4),
            Gate::Swap,
            Gate::CCX,
        ];
        for g in gates {
            let m = g.matrix();
            assert!(m.is_unitary(1e-12), "{g} matrix not unitary");
            assert_eq!(m.rows(), 1 << g.arity(), "{g} matrix dimension");
        }
    }

    #[test]
    fn u3_special_cases() {
        // H = U3(π/2, 0, π)
        let h = Gate::U3 {
            theta: FRAC_PI_2,
            phi: 0.0,
            lambda: PI,
        };
        assert!(h.matrix().approx_eq(&Gate::H.matrix(), 1e-12));
        // I = U3(0, 0, 0)
        let id = Gate::U3 {
            theta: 0.0,
            phi: 0.0,
            lambda: 0.0,
        };
        assert!(id.matrix().approx_eq(&CMatrix::identity(2), 1e-12));
        assert!(id.is_identity(1e-12));
        assert!(!h.is_identity(1e-6));
    }

    #[test]
    fn cx_equals_h_cz_h_on_target() {
        // CX = (I ⊗ H) CZ (I ⊗ H) — paper Sec. 2.1.
        let ih = CMatrix::identity(2).kron(&Gate::H.matrix());
        let want = ih.matmul(&Gate::CZ.matrix()).matmul(&ih);
        assert!(want.approx_eq(&Gate::CX.matrix(), 1e-12));
    }

    #[test]
    fn ccx_equals_ccz_conjugated_by_h() {
        let iih = CMatrix::identity(4).kron(&Gate::H.matrix());
        let want = iih.matmul(&Gate::CCZ.matrix()).matmul(&iih);
        assert!(want.approx_eq(&Gate::CCX.matrix(), 1e-12));
    }

    #[test]
    fn pulse_counts_match_paper() {
        assert_eq!(
            Gate::U3 {
                theta: 1.0,
                phi: 0.0,
                lambda: 0.0
            }
            .pulses(),
            1
        );
        assert_eq!(Gate::H.pulses(), 1);
        assert_eq!(Gate::CZ.pulses(), 3);
        assert_eq!(Gate::CCZ.pulses(), 5);
        assert_eq!(Gate::CX.pulses(), 5);
        assert_eq!(Gate::Swap.pulses(), 15);
        assert_eq!(Gate::CCX.pulses(), 7);
    }

    #[test]
    fn native_flags() {
        assert!(Gate::CZ.is_native());
        assert!(Gate::CCZ.is_native());
        assert!(!Gate::H.is_native());
        assert!(!Gate::CX.is_native());
        assert!(!Gate::Swap.is_native());
    }

    #[test]
    fn diagonal_classification() {
        assert!(Gate::CZ.is_diagonal());
        assert!(Gate::CCZ.is_diagonal());
        assert!(Gate::RZ(0.4).is_diagonal());
        assert!(Gate::T.is_diagonal());
        assert!(!Gate::H.is_diagonal());
        assert!(!Gate::CX.is_diagonal());
        assert!(!Gate::RX(0.1).is_diagonal());
        // Every gate flagged diagonal has an actually-diagonal matrix.
        for g in [
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::RZ(0.7),
            Gate::Phase(1.2),
            Gate::CZ,
            Gate::CPhase(0.5),
            Gate::CCZ,
        ] {
            let m = g.matrix();
            for r in 0..m.rows() {
                for c in 0..m.cols() {
                    if r != c {
                        assert_eq!(m[(r, c)], Complex::ZERO, "{g} not diagonal");
                    }
                }
            }
        }
    }

    #[test]
    fn swap_matrix_swaps_basis_states() {
        let m = Gate::Swap.matrix();
        // |01> (index 1) -> |10> (index 2)
        assert_eq!(m[(2, 1)], Complex::ONE);
        assert_eq!(m[(1, 2)], Complex::ONE);
    }

    #[test]
    fn rotation_gates_at_zero_are_identity() {
        for g in [
            Gate::RX(0.0),
            Gate::RY(0.0),
            Gate::RZ(0.0),
            Gate::Phase(0.0),
        ] {
            assert!(g.is_identity(1e-12), "{g} at angle 0");
        }
    }

    #[test]
    fn s_is_sqrt_z_and_t_is_sqrt_s() {
        let s2 = Gate::S.matrix().matmul(&Gate::S.matrix());
        assert!(s2.approx_eq(&Gate::Z.matrix(), 1e-12));
        let t2 = Gate::T.matrix().matmul(&Gate::T.matrix());
        assert!(t2.approx_eq(&Gate::S.matrix(), 1e-12));
        let sdg = Gate::S.matrix().matmul(&Gate::Sdg.matrix());
        assert!(sdg.approx_eq(&CMatrix::identity(2), 1e-12));
    }

    #[test]
    fn inverse_matrices_multiply_to_identity() {
        let gates = [
            Gate::U3 {
                theta: 0.7,
                phi: 1.9,
                lambda: -0.4,
            },
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::RX(0.9),
            Gate::RY(-1.1),
            Gate::RZ(2.3),
            Gate::Phase(0.6),
            Gate::CZ,
            Gate::CX,
            Gate::CPhase(1.4),
            Gate::Swap,
            Gate::CCZ,
            Gate::CCX,
        ];
        for g in gates {
            let prod = g.matrix().matmul(&g.inverse().matrix());
            let dim = prod.rows();
            assert!(
                prod.approx_eq(&CMatrix::identity(dim), 1e-11),
                "{g}·{}⁻¹ ≠ I",
                g
            );
        }
    }

    #[test]
    fn display_includes_parameters() {
        let g = Gate::RZ(1.5);
        assert_eq!(g.to_string(), "rz(1.5000)");
        assert_eq!(Gate::CZ.to_string(), "cz");
    }
}
