//! Dependency analysis: ASAP layering and pulse-weighted critical path.
//!
//! Two operations depend on each other iff they share a qubit; the
//! circuit's program order then induces a DAG. The paper's
//! "depth pulses" metric (Fig. 13, Table 1) is the longest path through
//! this DAG with each node weighted by its pulse cost. (The restriction-
//! zone-aware variant additionally serializes operations whose zones
//! overlap; that scheduler lives in `geyser-map` because it needs the
//! physical layout.)

use crate::Circuit;

/// Explicit dependency DAG over a circuit's operations.
///
/// Node `i` corresponds to `circuit.ops()[i]`. Edges point from an
/// operation to the next operation on each of its qubits.
///
/// # Example
///
/// ```
/// use geyser_circuit::{Circuit, DependencyDag};
/// let mut c = Circuit::new(2);
/// c.h(0).cz(0, 1).h(1);
/// let dag = DependencyDag::build(&c);
/// assert_eq!(dag.predecessors(1), &[0]);
/// assert_eq!(dag.successors(1), &[2]);
/// ```
#[derive(Debug, Clone)]
pub struct DependencyDag {
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
}

impl DependencyDag {
    /// Builds the dependency DAG for `circuit`.
    pub fn build(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        // Last operation index seen per qubit.
        let mut last: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
        for (i, op) in circuit.iter().enumerate() {
            for &q in op.qubits() {
                if let Some(p) = last[q] {
                    // Avoid duplicate edges when two ops share >1 qubit.
                    if !succs[p].contains(&i) {
                        succs[p].push(i);
                        preds[i].push(p);
                    }
                }
                last[q] = Some(i);
            }
        }
        DependencyDag { preds, succs }
    }

    /// Direct predecessors of operation `i`.
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Direct successors of operation `i`.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Returns `true` if the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }
}

/// Partitions operations into ASAP (as-soon-as-possible) layers:
/// operation `i` is placed in layer `1 + max(layer of predecessors)`.
///
/// Operations within one layer act on disjoint qubits and could execute
/// concurrently on hardware with no restriction-zone conflicts.
///
/// # Example
///
/// ```
/// use geyser_circuit::{asap_layers, Circuit};
/// let mut c = Circuit::new(3);
/// c.h(0).h(1).cz(0, 1).h(2);
/// let layers = asap_layers(&c);
/// assert_eq!(layers[0], vec![0, 1, 3]); // h q0, h q1, h q2 concurrent
/// assert_eq!(layers[1], vec![2]);       // cz waits for both h gates
/// ```
pub fn asap_layers(circuit: &Circuit) -> Vec<Vec<usize>> {
    let mut layer_of = vec![0usize; circuit.len()];
    let mut qubit_layer = vec![0usize; circuit.num_qubits()];
    let mut max_layer = 0;
    for (i, op) in circuit.iter().enumerate() {
        let l = op
            .qubits()
            .iter()
            .map(|&q| qubit_layer[q])
            .max()
            .unwrap_or(0);
        layer_of[i] = l;
        for &q in op.qubits() {
            qubit_layer[q] = l + 1;
        }
        max_layer = max_layer.max(l);
    }
    let mut layers = vec![Vec::new(); if circuit.is_empty() { 0 } else { max_layer + 1 }];
    for (i, &l) in layer_of.iter().enumerate() {
        layers[l].push(i);
    }
    layers
}

/// Pulse-weighted critical path length (paper's "depth pulses").
///
/// Each operation occupies its qubits for [`crate::Operation::pulses`]
/// time units; the returned value is the earliest time at which all
/// qubits are free after executing the whole circuit.
pub fn critical_path_pulses(circuit: &Circuit) -> u64 {
    let mut qubit_free_at = vec![0u64; circuit.num_qubits()];
    let mut makespan = 0u64;
    for op in circuit.iter() {
        let start = op
            .qubits()
            .iter()
            .map(|&q| qubit_free_at[q])
            .max()
            .unwrap_or(0);
        let end = start + op.pulses() as u64;
        for &q in op.qubits() {
            qubit_free_at[q] = end;
        }
        makespan = makespan.max(end);
    }
    makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Circuit;

    #[test]
    fn dag_edges_follow_shared_qubits() {
        let mut c = Circuit::new(3);
        c.h(0).cz(0, 1).cz(1, 2).h(0);
        let dag = DependencyDag::build(&c);
        assert_eq!(dag.len(), 4);
        assert!(dag.predecessors(0).is_empty());
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.predecessors(2), &[1]);
        assert_eq!(dag.predecessors(3), &[1]);
        assert_eq!(dag.successors(1), &[2, 3]);
    }

    #[test]
    fn dag_deduplicates_multi_qubit_edges() {
        let mut c = Circuit::new(2);
        c.cz(0, 1).cz(0, 1);
        let dag = DependencyDag::build(&c);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.successors(0), &[1]);
    }

    #[test]
    fn layers_of_parallel_gates() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3);
        let layers = asap_layers(&c);
        assert_eq!(layers.len(), 1);
        assert_eq!(layers[0].len(), 4);
    }

    #[test]
    fn layers_of_serial_chain() {
        let mut c = Circuit::new(1);
        c.h(0).x(0).z(0);
        let layers = asap_layers(&c);
        assert_eq!(layers.len(), 3);
        for (i, l) in layers.iter().enumerate() {
            assert_eq!(l, &vec![i]);
        }
    }

    #[test]
    fn empty_circuit_has_no_layers() {
        assert!(asap_layers(&Circuit::new(3)).is_empty());
        assert_eq!(critical_path_pulses(&Circuit::new(3)), 0);
    }

    #[test]
    fn critical_path_weights_by_pulses() {
        // q0: H (1 pulse) then CZ (3) => 4
        // q1: CZ (3) then CCZ? no — keep simple two-qubit case.
        let mut c = Circuit::new(2);
        c.h(0).cz(0, 1).h(1);
        // h0 ends at 1; cz spans [1,4); h1 spans [4,5).
        assert_eq!(critical_path_pulses(&c), 5);
    }

    #[test]
    fn parallel_branches_take_max() {
        let mut c = Circuit::new(4);
        // Branch A: 3 single-qubit pulses on q0.
        c.h(0).h(0).h(0);
        // Branch B: one CZ = 3 pulses on q2,q3.
        c.cz(2, 3);
        assert_eq!(critical_path_pulses(&c), 3);
        // Total pulses is additive though.
        assert_eq!(c.total_pulses(), 6);
    }

    #[test]
    fn ccz_weighs_five() {
        let mut c = Circuit::new(3);
        c.ccz(0, 1, 2);
        assert_eq!(critical_path_pulses(&c), 5);
    }

    #[test]
    fn depth_pulses_never_exceeds_total() {
        let mut c = Circuit::new(3);
        c.h(0).cz(0, 1).ccz(0, 1, 2).h(2).cz(1, 2);
        assert!(c.depth_pulses() <= c.total_pulses());
    }
}
