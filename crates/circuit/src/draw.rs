//! ASCII circuit diagrams.
//!
//! Renders a circuit as one text row per qubit with gates placed in
//! their ASAP layers — the standard wire-diagram view, for examples,
//! debugging, and documentation.

use crate::{asap_layers, Circuit, Gate};

/// Width of one diagram column in characters.
const CELL: usize = 5;

/// Short cell label for a gate (≤ 3 chars to fit the column).
fn gate_label(g: &Gate) -> String {
    match g {
        Gate::U3 { .. } => "U3".to_string(),
        Gate::RX(_) => "RX".to_string(),
        Gate::RY(_) => "RY".to_string(),
        Gate::RZ(_) => "RZ".to_string(),
        Gate::Phase(_) => "P".to_string(),
        Gate::CPhase(_) => "CP".to_string(),
        other => other.name().to_uppercase(),
    }
}

/// Renders a wire diagram of the circuit.
///
/// Single-qubit gates show as boxed labels, multi-qubit gates as
/// labels on the first qubit with `#` connectors on the partners;
/// empty stretches are wire (`─`).
///
/// # Example
///
/// ```
/// use geyser_circuit::{draw, Circuit};
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let art = draw(&c);
/// assert!(art.contains("[H ]") || art.contains("[H]"));
/// assert!(art.lines().count() == 2);
/// ```
pub fn draw(circuit: &Circuit) -> String {
    let n = circuit.num_qubits();
    let layers = asap_layers(circuit);
    let cols = layers.len();
    // grid[q][layer] = cell text (without padding).
    let mut grid: Vec<Vec<String>> = vec![vec![String::new(); cols]; n];
    for (l, layer) in layers.iter().enumerate() {
        for &op_idx in layer {
            let op = &circuit.ops()[op_idx];
            let label = gate_label(op.gate());
            for (pos, &q) in op.qubits().iter().enumerate() {
                grid[q][l] = if pos == 0 {
                    format!("[{label}]")
                } else {
                    "[#]".to_string()
                };
            }
        }
    }
    let mut out = String::new();
    for (q, row) in grid.iter().enumerate() {
        out.push_str(&format!("q{q:<2}"));
        for cell in row {
            if cell.is_empty() {
                out.push_str(&"─".repeat(CELL));
            } else {
                let pad = CELL.saturating_sub(cell.chars().count());
                let left = pad / 2;
                out.push_str(&"─".repeat(left));
                out.push_str(cell);
                out.push_str(&"─".repeat(pad - left));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_row_per_qubit() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccz(0, 1, 2);
        let art = draw(&c);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains("[CX]"));
        assert!(art.contains("[CCZ]"));
        assert!(art.contains("[#]"));
    }

    #[test]
    fn layers_align_into_columns() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cz(0, 1);
        let art = draw(&c);
        let lines: Vec<&str> = art.lines().collect();
        // Both rows have identical display width (2 layers).
        assert_eq!(lines[0].chars().count(), lines[1].chars().count(), "{art}");
    }

    #[test]
    fn empty_circuit_draws_bare_wires() {
        let art = draw(&Circuit::new(2));
        assert_eq!(art.lines().count(), 2);
        assert!(art.starts_with("q0"));
    }

    #[test]
    fn parameterized_gates_use_short_labels() {
        let mut c = Circuit::new(1);
        c.rz(0.4, 0).u3(0.1, 0.2, 0.3, 0).p(0.9, 0);
        let art = draw(&c);
        assert!(art.contains("[RZ]"));
        assert!(art.contains("[U3]"));
        assert!(art.contains("[P]"));
    }
}
