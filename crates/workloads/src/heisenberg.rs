//! Trotterized Heisenberg spin-chain evolution (paper ref. [6], the
//! ArQTiC materials-simulation workload).

use geyser_circuit::Circuit;

/// Builds a first-order Trotterization of the 1D Heisenberg XXX chain
/// `H = J Σ_i (XᵢXᵢ₊₁ + YᵢYᵢ₊₁ + ZᵢZᵢ₊₁) + h Σ_i Zᵢ`
/// for `steps` Trotter steps of size `dt`.
///
/// Each bond term `exp(−iθ PP)` uses the standard two-CX construction
/// with basis-change rotations (θ = 2·J·dt):
///
/// * `RXX(θ)`: `H⊗H · CX · RZ(θ) · CX · H⊗H`
/// * `RYY(θ)`: same with `RX(±π/2)` basis changes
/// * `RZZ(θ)`: `CX · RZ(θ) · CX`
///
/// The paper's 16-qubit entry (Table 1: 15 614 U3 / 3 339 CZ) matches
/// roughly `steps = 37`; smaller step counts keep test runtimes sane
/// and preserve the circuit's structural character.
///
/// # Panics
///
/// Panics if `n < 2` or `steps == 0`.
///
/// # Example
///
/// ```
/// use geyser_workloads::heisenberg;
/// let c = heisenberg(16, 4, 0.1);
/// assert_eq!(c.num_qubits(), 16);
/// ```
pub fn heisenberg(n: usize, steps: usize, dt: f64) -> Circuit {
    assert!(n >= 2, "spin chain needs at least two sites");
    assert!(steps > 0, "need at least one Trotter step");
    let j = 1.0; // exchange coupling
    let h_field = 0.5; // transverse field strength
    let theta = 2.0 * j * dt;
    let mut c = Circuit::new(n);

    // Initial Néel state |0101…⟩: the standard quench experiment.
    for q in (1..n).step_by(2) {
        c.x(q);
    }

    for _ in 0..steps {
        for i in 0..n - 1 {
            let (a, b) = (i, i + 1);
            // RXX
            c.h(a).h(b);
            c.cx(a, b);
            c.rz(theta, b);
            c.cx(a, b);
            c.h(a).h(b);
            // RYY
            c.rx(std::f64::consts::FRAC_PI_2, a)
                .rx(std::f64::consts::FRAC_PI_2, b);
            c.cx(a, b);
            c.rz(theta, b);
            c.cx(a, b);
            c.rx(-std::f64::consts::FRAC_PI_2, a)
                .rx(-std::f64::consts::FRAC_PI_2, b);
            // RZZ
            c.cx(a, b);
            c.rz(theta, b);
            c.cx(a, b);
        }
        // Field term.
        for q in 0..n {
            c.rz(2.0 * h_field * dt, q);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_num::{hilbert_schmidt_distance, CMatrix, Complex};
    use geyser_sim::{circuit_unitary, ideal_distribution};

    #[test]
    fn gate_budget_per_step() {
        let n = 16;
        let steps = 4;
        let c = heisenberg(n, steps, 0.1);
        // 6 CX per bond per step.
        let two_q = c.iter().filter(|op| op.arity() == 2).count();
        assert_eq!(two_q, 6 * (n - 1) * steps);
    }

    #[test]
    fn paper_scale_matches_table1_ballpark() {
        // Table 1: 3 339 CZ on 16 qubits ≈ 37 steps × 90 CX.
        let c = heisenberg(16, 37, 0.1);
        let two_q = c.iter().filter(|op| op.arity() == 2).count();
        assert!((3000..3800).contains(&two_q), "2q = {two_q}");
    }

    #[test]
    fn trotter_step_matches_exact_evolution_for_two_sites() {
        // For n = 2 a single bond term is exact (no Trotter error in
        // the bond part); compare against the matrix exponential of
        // the XX+YY+ZZ interaction computed via its known spectrum.
        let dt = 0.2;
        let c = heisenberg(2, 1, dt);
        // Strip the Néel preparation (first X) for the comparison.
        let mut evo = Circuit::new(2);
        for op in c.iter().skip(1) {
            evo.push(op.clone());
        }
        let u = circuit_unitary(&evo);

        // Exact: exp(-i·J·dt·(XX+YY+ZZ)) · exp(-i·h·dt·(Z⊗I + I⊗Z)).
        // Heisenberg bond eigenbasis: triplet (+1), singlet (−3).
        let theta = dt; // J = 1
        let e_t = Complex::cis(-theta);
        let e_s = Complex::cis(3.0 * theta);
        // In the basis |00>,|01>,|10>,|11>.
        let mut bond = CMatrix::zeros(4, 4);
        bond[(0, 0)] = e_t;
        bond[(3, 3)] = e_t;
        let plus = (e_t + e_s).scale(0.5);
        let minus = (e_t - e_s).scale(0.5);
        bond[(1, 1)] = plus;
        bond[(2, 2)] = plus;
        bond[(1, 2)] = minus;
        bond[(2, 1)] = minus;
        let hdt = 0.5 * dt;
        let field = CMatrix::from_diagonal(&[
            Complex::cis(-2.0 * hdt),
            Complex::ONE,
            Complex::ONE,
            Complex::cis(2.0 * hdt),
        ]);
        let exact = field.matmul(&bond);
        let d = hilbert_schmidt_distance(&u, &exact);
        assert!(d < 1e-9, "HSD = {d}");
    }

    #[test]
    fn magnetization_dynamics_leave_neel_state() {
        let c = heisenberg(4, 3, 0.3);
        let dist = ideal_distribution(&c);
        // Néel state is |0101⟩ = index 5; evolution should spread it.
        assert!(dist[5] < 0.999);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn conserves_total_z_magnetization_sector() {
        // The XXX chain commutes with total Sz: starting from |0101⟩
        // (two excitations), all support stays in half-filling states.
        let c = heisenberg(4, 2, 0.4);
        let dist = ideal_distribution(&c);
        for (state, &p) in dist.iter().enumerate() {
            if p > 1e-9 {
                assert_eq!(
                    (state as u32).count_ones(),
                    2,
                    "state {state:04b} leaked out of the Sz sector (p = {p})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one Trotter step")]
    fn zero_steps_panics() {
        let _ = heisenberg(4, 0, 0.1);
    }
}
