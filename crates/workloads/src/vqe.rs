//! Hardware-efficient VQE ansatz (paper ref. [28]).

use geyser_circuit::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a hardware-efficient variational ansatz: `layers`
/// repetitions of per-qubit `RY·RZ` rotations followed by a linear CZ
/// entangling chain, closed by a final rotation layer — the standard
/// VQE trial-state family. Angles are seeded-random (a trained VQE
/// would supply converged values; for compilation benchmarks only the
/// circuit structure matters).
///
/// The paper's 4-qubit VQE entry (Table 1: 235 U3 / 74 CZ) corresponds
/// to roughly `layers = 24` on 4 qubits.
///
/// Deterministic for a fixed `(n, layers, seed)`.
///
/// # Panics
///
/// Panics if `n < 2` or `layers == 0`.
///
/// # Example
///
/// ```
/// use geyser_workloads::vqe;
/// let c = vqe(4, 24, 7);
/// assert_eq!(c.num_qubits(), 4);
/// ```
pub fn vqe(n: usize, layers: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "VQE ansatz needs at least two qubits");
    assert!(layers > 0, "VQE ansatz needs at least one layer");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    let rotate = |c: &mut Circuit, rng: &mut StdRng| {
        for q in 0..n {
            c.ry(rng.gen::<f64>() * std::f64::consts::TAU, q);
            c.rz(rng.gen::<f64>() * std::f64::consts::TAU, q);
        }
    };
    for _ in 0..layers {
        rotate(&mut c, &mut rng);
        for q in 0..n - 1 {
            c.cz(q, q + 1);
        }
    }
    rotate(&mut c, &mut rng);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_sim::ideal_distribution;

    #[test]
    fn gate_counts_scale_with_layers() {
        let n = 4;
        let layers = 24;
        let c = vqe(n, layers, 0);
        let counts = c.gate_counts();
        assert_eq!(counts.u3, 2 * n * (layers + 1)); // RY+RZ per layer+final
        assert_eq!(counts.cz, (n - 1) * layers);
    }

    #[test]
    fn paper_scale_instance_matches_table1_ballpark() {
        // Table 1: VQE(4) has 235 U3 and 74 CZ ≈ 24 layers.
        let c = vqe(4, 24, 0);
        let counts = c.gate_counts();
        assert!((150..320).contains(&counts.u3), "u3 = {}", counts.u3);
        assert!((60..90).contains(&counts.cz), "cz = {}", counts.cz);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(vqe(4, 3, 5).ops(), vqe(4, 3, 5).ops());
        assert_ne!(vqe(4, 3, 5).ops(), vqe(4, 3, 6).ops());
    }

    #[test]
    fn output_spreads_over_many_states() {
        let dist = ideal_distribution(&vqe(4, 4, 2));
        let support = dist.iter().filter(|&&p| p > 1e-6).count();
        assert!(support > 4, "ansatz should entangle: support {support}");
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_panics() {
        let _ = vqe(4, 0, 0);
    }
}
