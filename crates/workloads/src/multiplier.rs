//! Fourier-basis multiply-accumulate circuit (paper ref. [16]).
//!
//! Computes `p ← a·b mod 2^{n_p}` by rotating the product register in
//! the Fourier basis with doubly-controlled phases — the standard
//! compact quantum multiplier: QFT(p), then for every addend-bit pair
//! `(a_i, b_j)` a controlled-controlled phase of `2π·2^{i+j}/2^{n_p}`,
//! then inverse QFT(p).

use geyser_circuit::Circuit;

use crate::qft::{apply_inverse_qft_ops, apply_qft_ops};

/// Register split `(n_a, n_b, n_p)` for an `m`-qubit multiplier.
fn split(m: usize) -> (usize, usize, usize) {
    assert!(m >= 4, "multiplier needs at least 4 qubits");
    // Keep the product register about half the machine, operands
    // splitting the rest (matches the compact benchmark circuits).
    let np = m.div_ceil(2);
    let na = (m - np) / 2;
    let nb = m - np - na;
    (na.max(1), nb.max(1), m - na.max(1) - nb.max(1))
}

/// Builds the multiplier with operand values preloaded via X gates.
///
/// Qubit layout: `a` bits, then `b` bits, then the product register.
///
/// # Panics
///
/// Panics if `num_qubits < 4` or an operand exceeds its register.
///
/// # Example
///
/// ```
/// use geyser_workloads::multiplier_with_inputs;
/// let c = multiplier_with_inputs(5, 1, 1);
/// assert_eq!(c.num_qubits(), 5);
/// ```
pub fn multiplier_with_inputs(num_qubits: usize, a: u64, b: u64) -> Circuit {
    let (na, nb, np) = split(num_qubits);
    assert!(a < (1 << na), "operand a out of range for {na} bits");
    assert!(b < (1 << nb), "operand b out of range for {nb} bits");

    let mut c = Circuit::new(num_qubits);
    let a_q = |i: usize| i; // a_i (little-endian bit i)
    let b_q = |j: usize| na + j;
    // Product register qubits, little-endian: p_k.
    let p_base = na + nb;

    for i in 0..na {
        if (a >> i) & 1 == 1 {
            c.x(a_q(i));
        }
    }
    for j in 0..nb {
        if (b >> j) & 1 == 1 {
            c.x(b_q(j));
        }
    }

    let p_qubits: Vec<usize> = (0..np).map(|k| p_base + k).collect();
    apply_qft_ops(&mut c, &p_qubits);

    // Doubly-controlled phase rotations: p gains a·b in Fourier space.
    // Controlled-controlled P(θ) built from CP and CX:
    //   CCP(θ) = CP(θ/2)(b,t) · CX(a,b) · CP(−θ/2)(b,t) · CX(a,b) · CP(θ/2)(a,t)
    for i in 0..na {
        for j in 0..nb {
            let weight = i + j; // contributes 2^{i+j}
            for (k, &pt) in p_qubits.iter().enumerate() {
                // After the swap-free QFT, register qubit k carries the
                // phase 2π·p/2^{np−k}; adding a·b means adding
                // 2π·2^{i+j}/2^{np−k} — skip full rotations.
                let denom = np - k;
                if weight >= denom {
                    continue; // multiple of 2π
                }
                let theta = std::f64::consts::TAU * (1 << weight) as f64 / (1u64 << denom) as f64;
                let (ctrl_a, ctrl_b) = (a_q(i), b_q(j));
                c.cp(theta / 2.0, ctrl_b, pt);
                c.cx(ctrl_a, ctrl_b);
                c.cp(-theta / 2.0, ctrl_b, pt);
                c.cx(ctrl_a, ctrl_b);
                c.cp(theta / 2.0, ctrl_a, pt);
            }
        }
    }

    apply_inverse_qft_ops(&mut c, &p_qubits);
    c
}

/// Default benchmark multiplier with operands exercising every
/// partial product (`a = all-ones`, `b = all-ones`).
///
/// # Panics
///
/// Panics if `num_qubits < 4`.
pub fn multiplier(num_qubits: usize) -> Circuit {
    let (na, nb, _) = split(num_qubits);
    multiplier_with_inputs(num_qubits, (1 << na) - 1, (1 << nb) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_sim::ideal_distribution;

    fn run_multiplier(m: usize, a: u64, b: u64) -> u64 {
        let c = multiplier_with_inputs(m, a, b);
        let dist = ideal_distribution(&c);
        let state = dist
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.total_cmp(y.1))
            .unwrap()
            .0;
        assert!(
            dist[state] > 0.99,
            "output not classical: p = {}",
            dist[state]
        );
        let n = c.num_qubits();
        let (na, nb, np) = super::split(m);
        let bit = |q: usize| ((state >> (n - 1 - q)) & 1) as u64;
        let mut p = 0u64;
        for k in 0..np {
            // Fourier register is big-endian over [p_base..]: qubit
            // p_base+k is Fourier bit k; after inverse QFT the value's
            // bit (np-1-k) sits on qubit p_base+k.
            p |= bit(na + nb + k) << (np - 1 - k);
        }
        p
    }

    #[test]
    fn small_products() {
        // 5 qubits: split (1, 1, 3): 1-bit × 1-bit into 3-bit product.
        assert_eq!(run_multiplier(5, 1, 1), 1);
        assert_eq!(run_multiplier(5, 1, 0), 0);
        assert_eq!(run_multiplier(5, 0, 1), 0);
    }

    #[test]
    fn multi_bit_products() {
        // 8 qubits: split (2, 2, 4).
        assert_eq!(run_multiplier(8, 2, 3), 6);
        assert_eq!(run_multiplier(8, 3, 3), 9);
        assert_eq!(run_multiplier(8, 2, 2), 4);
    }

    #[test]
    fn ten_qubit_benchmark_product() {
        // 10 qubits: split (2, 3, 5): 3 × 7 = 21.
        assert_eq!(run_multiplier(10, 3, 7), 21);
    }

    #[test]
    fn default_sizes() {
        for m in [5, 10] {
            let c = multiplier(m);
            assert_eq!(c.num_qubits(), m);
            assert!(c.len() > 10);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_operand_panics() {
        let _ = multiplier_with_inputs(5, 2, 0);
    }
}
