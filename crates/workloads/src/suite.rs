//! The Table-1 benchmark registry.

use geyser_circuit::Circuit;

use crate::{adder, advantage, heisenberg, multiplier, qaoa, qft_readout, vqe};

/// One row of the paper's benchmark table: a named, sized workload
/// with a deterministic generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Row identifier, e.g. `"qft-5"`.
    pub name: &'static str,
    /// Algorithm family, e.g. `"QFT"`.
    pub family: &'static str,
    /// Logical qubit count.
    pub num_qubits: usize,
}

impl WorkloadSpec {
    /// Generates the workload circuit.
    ///
    /// # Panics
    ///
    /// Panics only on internal registry inconsistency.
    pub fn build(&self) -> Circuit {
        build_named(self.name)
    }
}

/// The ten benchmark configurations of the paper's Table 1, in the
/// paper's order.
///
/// # Example
///
/// ```
/// use geyser_workloads::suite;
/// let rows = suite();
/// assert_eq!(rows.len(), 10);
/// assert_eq!(rows[0].name, "adder-4");
/// assert_eq!(rows[9].num_qubits, 16);
/// ```
pub fn suite() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "adder-4",
            family: "Adder",
            num_qubits: 4,
        },
        WorkloadSpec {
            name: "vqe-4",
            family: "VQE",
            num_qubits: 4,
        },
        WorkloadSpec {
            name: "qaoa-5",
            family: "QAOA",
            num_qubits: 5,
        },
        WorkloadSpec {
            name: "qft-5",
            family: "QFT",
            num_qubits: 5,
        },
        WorkloadSpec {
            name: "multiplier-5",
            family: "Multiplier",
            num_qubits: 5,
        },
        WorkloadSpec {
            name: "adder-9",
            family: "Adder",
            num_qubits: 9,
        },
        WorkloadSpec {
            name: "advantage-9",
            family: "Advantage",
            num_qubits: 9,
        },
        WorkloadSpec {
            name: "qft-10",
            family: "QFT",
            num_qubits: 10,
        },
        WorkloadSpec {
            name: "multiplier-10",
            family: "Multiplier",
            num_qubits: 10,
        },
        WorkloadSpec {
            name: "heisenberg-16",
            family: "Heisenberg",
            num_qubits: 16,
        },
    ]
}

/// Builds a suite workload by name.
///
/// # Panics
///
/// Panics if the name is not one of the [`suite`] rows.
fn build_named(name: &str) -> Circuit {
    match name {
        "adder-4" => adder(4),
        "vqe-4" => vqe(4, 24, 4),
        "qaoa-5" => qaoa(5, 3, 5),
        "qft-5" => qft_readout(5, 0b10110),
        "multiplier-5" => multiplier(5),
        "adder-9" => adder(9),
        "advantage-9" => advantage(9, 8, 9),
        "qft-10" => qft_readout(10, 0b1011001101),
        "multiplier-10" => multiplier(10),
        // The paper's Heisenberg-16 runs ~37 Trotter steps; the suite
        // default uses 8 to keep full-pipeline runs tractable. Figure
        // binaries expose a --steps override for the paper scale.
        "heisenberg-16" => heisenberg(16, 8, 0.1),
        other => panic!("unknown workload {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_build_with_declared_qubit_counts() {
        for spec in suite() {
            let c = spec.build();
            assert_eq!(c.num_qubits(), spec.num_qubits, "{}", spec.name);
            assert!(!c.is_empty(), "{} generated empty circuit", spec.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let rows = suite();
        let mut names: Vec<&str> = rows.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), rows.len());
    }

    #[test]
    fn qubit_counts_match_table1() {
        let got: Vec<usize> = suite().iter().map(|r| r.num_qubits).collect();
        assert_eq!(got, vec![4, 4, 5, 5, 5, 9, 9, 10, 10, 16]);
    }

    #[test]
    fn generators_only_emit_small_arity_gates() {
        for spec in suite() {
            let c = spec.build();
            assert!(
                c.iter().all(|op| op.arity() <= 3),
                "{} emits >3-qubit gates",
                spec.name
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_name_panics() {
        let _ = build_named("does-not-exist");
    }
}
