//! Benchmark circuit generators for the Geyser evaluation.
//!
//! The paper's benchmark suite (Table 1) covers seven algorithm
//! families spanning a wide range of circuit characteristics:
//!
//! | Family | Source | Qubits in paper |
//! |---|---|---|
//! | Adder | Cuccaro ripple-carry addition | 4, 9 |
//! | VQE | hardware-efficient variational ansatz | 4 |
//! | QAOA | MaxCut alternating-operator ansatz | 5 |
//! | QFT | quantum Fourier transform | 5, 10 |
//! | Multiplier | Fourier-basis multiply-accumulate | 5, 10 |
//! | Advantage | supremacy-style random circuit | 9 |
//! | Heisenberg | Trotterized spin-chain evolution | 16 |
//!
//! All generators are deterministic given their seed and emit logical
//! circuits (1-, 2-, and 3-qubit gates); the mapping stage lowers and
//! routes them. [`suite`] reproduces the paper's ten Table-1 rows.
//!
//! # Example
//!
//! ```
//! use geyser_workloads::qft;
//! let c = qft(5);
//! assert_eq!(c.num_qubits(), 5);
//! assert!(!c.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adder;
mod advantage;
mod extensions;
mod heisenberg;
mod multiplier;
mod qaoa;
mod qft;
mod suite;
mod vqe;

pub use adder::{adder, adder_with_inputs};
pub use advantage::advantage;
pub use extensions::{bernstein_vazirani, ghz, grover, w_state};
pub use heisenberg::heisenberg;
pub use multiplier::{multiplier, multiplier_with_inputs};
pub use qaoa::{qaoa, qaoa_fixed};
pub use qft::{inverse_qft, qft, qft_readout, qft_with_input};
pub use suite::{suite, WorkloadSpec};
pub use vqe::vqe;
