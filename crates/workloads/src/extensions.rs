//! Extension workloads beyond the paper's Table 1 — standard NISQ
//! kernels used by the examples and as additional compiler stressors.

use geyser_circuit::Circuit;

/// GHZ state preparation: `(|0…0⟩ + |1…1⟩)/√2`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use geyser_workloads::ghz;
/// let c = ghz(4);
/// assert_eq!(c.len(), 4); // one H + three CX
/// ```
pub fn ghz(n: usize) -> Circuit {
    assert!(n > 0, "GHZ needs at least one qubit");
    let mut c = Circuit::new(n);
    c.h(0);
    for i in 1..n {
        c.cx(i - 1, i);
    }
    c
}

/// Controlled-RY built from the CX + RY identity.
fn cry(c: &mut Circuit, theta: f64, ctrl: usize, target: usize) {
    c.ry(theta / 2.0, target);
    c.cx(ctrl, target);
    c.ry(-theta / 2.0, target);
    c.cx(ctrl, target);
}

/// W-state preparation: the equal superposition of all single-
/// excitation basis states `Σᵢ |0…1ᵢ…0⟩ / √n` via the standard linear
/// chain of controlled rotations.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use geyser_workloads::w_state;
/// let c = w_state(3);
/// assert_eq!(c.num_qubits(), 3);
/// ```
pub fn w_state(n: usize) -> Circuit {
    assert!(n > 0, "W state needs at least one qubit");
    let mut c = Circuit::new(n);
    c.x(0);
    for i in 0..n.saturating_sub(1) {
        let remaining = (n - i) as f64;
        let theta = 2.0 * (1.0 / remaining).sqrt().acos();
        cry(&mut c, theta, i, i + 1);
        c.cx(i + 1, i);
    }
    c
}

/// Bernstein–Vazirani: recovers an `n`-bit secret with one oracle
/// query. Register layout: `n` data qubits then one ancilla; the
/// measured data register equals `secret` with certainty.
///
/// # Panics
///
/// Panics if `n == 0` or `secret >= 2^n`.
///
/// # Example
///
/// ```
/// use geyser_workloads::bernstein_vazirani;
/// let c = bernstein_vazirani(4, 0b1011);
/// assert_eq!(c.num_qubits(), 5);
/// ```
pub fn bernstein_vazirani(n: usize, secret: u64) -> Circuit {
    assert!(n > 0, "BV needs at least one data qubit");
    assert!(secret < (1u64 << n), "secret out of range");
    let mut c = Circuit::new(n + 1);
    let ancilla = n;
    // Ancilla in |−⟩.
    c.x(ancilla);
    c.h(ancilla);
    for q in 0..n {
        c.h(q);
    }
    // Oracle: f(x) = s·x — one CX per set secret bit (data qubit q
    // holds secret bit n-1-q under the big-endian readout).
    for q in 0..n {
        if (secret >> (n - 1 - q)) & 1 == 1 {
            c.cx(q, ancilla);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// Grover search on 2 or 3 qubits for a single marked basis state,
/// using the native CZ/CCZ as the phase oracle.
///
/// `iterations` defaults to the optimal `⌊π/4·√N⌋` when `None`.
///
/// # Panics
///
/// Panics if `n ∉ {2, 3}` or `marked >= 2^n`.
///
/// # Example
///
/// ```
/// use geyser_workloads::grover;
/// let c = grover(3, 0b101, None);
/// assert_eq!(c.num_qubits(), 3);
/// ```
pub fn grover(n: usize, marked: u64, iterations: Option<usize>) -> Circuit {
    assert!(n == 2 || n == 3, "grover implemented for 2 or 3 qubits");
    assert!(marked < (1u64 << n), "marked state out of range");
    let dim = 1u64 << n;
    let iters = iterations
        .unwrap_or_else(|| (std::f64::consts::FRAC_PI_4 * (dim as f64).sqrt()).floor() as usize)
        .max(1);

    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    // Phase flip of |pattern⟩: X-conjugate the all-ones controlled-Z.
    let phase_flip = |c: &mut Circuit, pattern: u64| {
        for q in 0..n {
            if (pattern >> (n - 1 - q)) & 1 == 0 {
                c.x(q);
            }
        }
        if n == 2 {
            c.cz(0, 1);
        } else {
            c.ccz(0, 1, 2);
        }
        for q in 0..n {
            if (pattern >> (n - 1 - q)) & 1 == 0 {
                c.x(q);
            }
        }
    };
    for _ in 0..iters {
        // Oracle.
        phase_flip(&mut c, marked);
        // Diffusion: H wall, phase flip of |0…0⟩, H wall.
        for q in 0..n {
            c.h(q);
        }
        phase_flip(&mut c, 0);
        for q in 0..n {
            c.h(q);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_sim::ideal_distribution;

    #[test]
    fn ghz_distribution_is_two_peaked() {
        let dist = ideal_distribution(&ghz(4));
        assert!((dist[0] - 0.5).abs() < 1e-12);
        assert!((dist[15] - 0.5).abs() < 1e-12);
        assert!(dist[1..15].iter().all(|&p| p < 1e-12));
    }

    #[test]
    fn w_state_is_uniform_over_single_excitations() {
        for n in 2..=5 {
            let dist = ideal_distribution(&w_state(n));
            for (state, &p) in dist.iter().enumerate() {
                let ones = (state as u32).count_ones();
                if ones == 1 {
                    assert!(
                        (p - 1.0 / n as f64).abs() < 1e-10,
                        "n={n} state={state:b} p={p}"
                    );
                } else {
                    assert!(p < 1e-10, "n={n} state={state:b} leaked p={p}");
                }
            }
        }
    }

    #[test]
    fn bernstein_vazirani_recovers_secret() {
        for secret in [0b000u64, 0b101, 0b111, 0b010] {
            let n = 3;
            let c = bernstein_vazirani(n, secret);
            let dist = ideal_distribution(&c);
            // Data register (first n qubits) must read `secret`; the
            // ancilla (last qubit) stays in |−⟩ = uniform over 0/1.
            let mut data_mass = 0.0;
            for (state, &p) in dist.iter().enumerate() {
                let data = (state >> 1) as u64;
                if data == secret {
                    data_mass += p;
                }
            }
            assert!(data_mass > 0.999, "secret {secret:b}: mass {data_mass}");
        }
    }

    #[test]
    fn grover_amplifies_marked_state() {
        for (n, marked) in [(2usize, 0b10u64), (3, 0b101), (3, 0b000)] {
            let c = grover(n, marked, None);
            let dist = ideal_distribution(&c);
            let p = dist[marked as usize];
            // 2 qubits: exact after 1 iteration; 3 qubits: ~94.5%
            // after 2 iterations.
            assert!(p > 0.9, "n={n} marked={marked:b}: p = {p}");
        }
    }

    #[test]
    fn grover_respects_iteration_override() {
        let one = grover(3, 0b111, Some(1));
        let two = grover(3, 0b111, Some(2));
        assert!(two.len() > one.len());
        let p1 = ideal_distribution(&one)[7];
        let p2 = ideal_distribution(&two)[7];
        assert!(p2 > p1, "more iterations should amplify ({p1} → {p2})");
    }

    #[test]
    #[should_panic(expected = "secret out of range")]
    fn bv_rejects_oversized_secret() {
        let _ = bernstein_vazirani(2, 4);
    }

    #[test]
    #[should_panic(expected = "2 or 3 qubits")]
    fn grover_rejects_large_n() {
        let _ = grover(4, 0, None);
    }
}
