//! Quantum Fourier transform (paper ref. [30]).

use geyser_circuit::Circuit;

/// Appends the swap-free QFT gate sequence on the given qubit list
/// (`qubits[0]` = most significant value bit). After these gates,
/// register qubit `k` carries the phase `2π·x / 2^{n−k}` of input
/// value `x`.
pub(crate) fn apply_qft_ops(c: &mut Circuit, qubits: &[usize]) {
    let n = qubits.len();
    for i in 0..n {
        c.h(qubits[i]);
        for j in (i + 1)..n {
            let theta = std::f64::consts::PI / (1u64 << (j - i)) as f64;
            c.cp(theta, qubits[j], qubits[i]);
        }
    }
}

/// Appends the exact inverse of [`apply_qft_ops`].
pub(crate) fn apply_inverse_qft_ops(c: &mut Circuit, qubits: &[usize]) {
    let n = qubits.len();
    for i in (0..n).rev() {
        for j in ((i + 1)..n).rev() {
            let theta = -std::f64::consts::PI / (1u64 << (j - i)) as f64;
            c.cp(theta, qubits[j], qubits[i]);
        }
        c.h(qubits[i]);
    }
}

/// Builds the full `n`-qubit QFT including the final bit-reversal
/// SWAP network (the standard benchmark form).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use geyser_workloads::qft;
/// let c = qft(5);
/// assert_eq!(c.num_qubits(), 5);
/// ```
pub fn qft(n: usize) -> Circuit {
    assert!(n > 0, "QFT needs at least one qubit");
    let mut c = Circuit::new(n);
    let qubits: Vec<usize> = (0..n).collect();
    apply_qft_ops(&mut c, &qubits);
    for i in 0..n / 2 {
        c.swap(i, n - 1 - i);
    }
    c
}

/// Builds the inverse of [`qft`].
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn inverse_qft(n: usize) -> Circuit {
    assert!(n > 0, "QFT needs at least one qubit");
    let mut c = Circuit::new(n);
    for i in 0..n / 2 {
        c.swap(i, n - 1 - i);
    }
    let qubits: Vec<usize> = (0..n).collect();
    apply_inverse_qft_ops(&mut c, &qubits);
    c
}

/// The QFT *readout* benchmark: prepares the Fourier phase state of
/// `value` with one Hadamard + phase rotation per qubit, then applies
/// the inverse QFT, so the ideal output is the sharp basis state
/// `|value⟩`.
///
/// This is the form a compilation benchmark needs: a bare QFT's ideal
/// output is uniform in magnitude, which stochastic Pauli noise leaves
/// (nearly) uniform — its TVD is blind to errors. The readout form's
/// peaked output makes every lost pulse visible, while costing the
/// same O(n²) controlled-phase cascade as the forward transform.
///
/// # Panics
///
/// Panics if `n == 0` or `value >= 2^n`.
///
/// # Example
///
/// ```
/// use geyser_sim::ideal_distribution;
/// use geyser_workloads::qft_readout;
/// let dist = ideal_distribution(&qft_readout(4, 11));
/// assert!((dist[11] - 1.0).abs() < 1e-9);
/// ```
pub fn qft_readout(n: usize, value: u64) -> Circuit {
    assert!(n > 0, "QFT needs at least one qubit");
    assert!(value < (1u64 << n), "input value out of range");
    let mut c = Circuit::new(n);
    // Phase state matching the swap-free QFT convention: register
    // qubit k carries phase 2π·value/2^{n−k}.
    for k in 0..n {
        c.h(k);
        let denom = (1u64 << (n - k)) as f64;
        c.p(std::f64::consts::TAU * value as f64 / denom, k);
    }
    let qubits: Vec<usize> = (0..n).collect();
    apply_inverse_qft_ops(&mut c, &qubits);
    c
}

/// QFT applied to a non-trivial computational basis input: X gates
/// prepare `|value⟩`, then the QFT runs (the textbook forward
/// transform; see [`qft_readout`] for the noise-sensitive benchmark
/// form).
///
/// # Panics
///
/// Panics if `n == 0` or `value >= 2^n`.
pub fn qft_with_input(n: usize, value: u64) -> Circuit {
    assert!(n > 0, "QFT needs at least one qubit");
    assert!(value < (1u64 << n), "input value out of range");
    let mut c = Circuit::new(n);
    for q in 0..n {
        // qubits[0] is the MSB.
        if (value >> (n - 1 - q)) & 1 == 1 {
            c.x(q);
        }
    }
    let qubits: Vec<usize> = (0..n).collect();
    apply_qft_ops(&mut c, &qubits);
    for i in 0..n / 2 {
        c.swap(i, n - 1 - i);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_num::{hilbert_schmidt_distance, CMatrix, Complex};
    use geyser_sim::{circuit_unitary, ideal_distribution, total_variation_distance};

    /// The textbook QFT matrix: `F[j,k] = ω^{jk}/√N`.
    fn dft_matrix(n: usize) -> CMatrix {
        let dim = 1usize << n;
        let norm = 1.0 / (dim as f64).sqrt();
        CMatrix::from_fn(dim, dim, |j, k| {
            Complex::from_polar(
                norm,
                std::f64::consts::TAU * (j as f64) * (k as f64) / dim as f64,
            )
        })
    }

    #[test]
    fn qft_matches_dft_matrix() {
        for n in 1..=4 {
            let u = circuit_unitary(&qft(n));
            let d = hilbert_schmidt_distance(&u, &dft_matrix(n));
            assert!(d < 1e-10, "n = {n}, HSD = {d}");
        }
    }

    #[test]
    fn inverse_qft_inverts_qft() {
        for n in 1..=4 {
            let mut c = qft(n);
            c.extend_from(&inverse_qft(n));
            let u = circuit_unitary(&c);
            let d = hilbert_schmidt_distance(&u, &CMatrix::identity(1 << n));
            assert!(d < 1e-10, "n = {n}, HSD = {d}");
        }
    }

    #[test]
    fn qft_of_zero_is_uniform() {
        let dist = ideal_distribution(&qft(3));
        let uniform = vec![1.0 / 8.0; 8];
        assert!(total_variation_distance(&dist, &uniform) < 1e-10);
    }

    #[test]
    fn qft_output_amplitudes_are_uniform_for_any_basis_input() {
        let dist = ideal_distribution(&qft_with_input(3, 5));
        for &p in &dist {
            assert!((p - 0.125).abs() < 1e-10);
        }
    }

    #[test]
    fn roundtrip_recovers_basis_state() {
        // QFT then IQFT on |v⟩ returns |v⟩.
        let n = 4;
        let v = 11u64;
        let mut c = qft_with_input(n, v);
        c.extend_from(&inverse_qft(n));
        let dist = ideal_distribution(&c);
        assert!((dist[v as usize] - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_input_value_panics() {
        let _ = qft_with_input(2, 4);
    }

    #[test]
    fn readout_recovers_encoded_value() {
        for n in 2..=5 {
            for value in [0u64, 1, (1 << n) - 1, (1 << n) / 2] {
                let dist = ideal_distribution(&qft_readout(n, value));
                assert!(
                    (dist[value as usize] - 1.0).abs() < 1e-9,
                    "n={n} v={value}: p = {}",
                    dist[value as usize]
                );
            }
        }
    }

    #[test]
    fn readout_gate_budget_matches_forward_qft_scale() {
        // Same O(n²) controlled-phase cascade as the forward QFT.
        let readout = qft_readout(5, 21);
        let forward = qft(5);
        let r2 = readout.iter().filter(|op| op.arity() == 2).count();
        let f2 = forward.iter().filter(|op| op.arity() == 2).count();
        assert!(r2 <= f2, "readout 2q count {r2} > forward {f2}");
        assert!(r2 >= f2 / 2);
    }
}
