//! Quantum-advantage-style random circuit (paper ref. [3]).

use geyser_circuit::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a supremacy-experiment-style random circuit: `cycles`
/// rounds, each applying a random single-qubit gate from
/// {√X, √Y, √W} to every qubit followed by a staggered pattern of CZ
/// gates on a linearized qubit chain (patterns rotate per cycle so
/// every pair of neighbours interacts).
///
/// These circuits have *short* entangling structure — the paper notes
/// the 9-qubit Advantage benchmark cannot form long blocks, making it
/// the case where Geyser degenerates to OptiMap (Sec. 5).
///
/// Deterministic for a fixed `(n, cycles, seed)`.
///
/// # Panics
///
/// Panics if `n < 2` or `cycles == 0`.
///
/// # Example
///
/// ```
/// use geyser_workloads::advantage;
/// let c = advantage(9, 8, 1);
/// assert_eq!(c.num_qubits(), 9);
/// ```
pub fn advantage(n: usize, cycles: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "advantage circuit needs at least two qubits");
    assert!(cycles > 0, "advantage circuit needs at least one cycle");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    let half = std::f64::consts::FRAC_PI_2;
    for cycle in 0..cycles {
        for q in 0..n {
            match rng.gen_range(0..3u8) {
                0 => {
                    c.rx(half, q); // √X
                }
                1 => {
                    c.ry(half, q); // √Y
                }
                _ => {
                    // √W: rotation about (X+Y)/√2 by π/2 =
                    // U3(π/2, -π/4·… ) — expressed via RZ conjugation.
                    c.rz(-std::f64::consts::FRAC_PI_4, q);
                    c.rx(half, q);
                    c.rz(std::f64::consts::FRAC_PI_4, q);
                }
            }
        }
        // Staggered CZ pattern: even or odd chain pairs.
        let offset = cycle % 2;
        let mut q = offset;
        while q + 1 < n {
            c.cz(q, q + 1);
            q += 2;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_sim::ideal_distribution;

    #[test]
    fn structure_per_cycle() {
        let c = advantage(9, 8, 0);
        let counts = c.gate_counts();
        // Each cycle touches every qubit with ≥1 one-qubit gate.
        assert!(counts.u3 >= 9 * 8);
        // Staggered pairs: 4 CZs per even cycle, 4 per odd on 9 qubits.
        assert_eq!(counts.cz, 8 * 4);
    }

    #[test]
    fn output_distribution_approaches_porter_thomas_spread() {
        // A random circuit should spread probability widely.
        let dist = ideal_distribution(&advantage(6, 10, 3));
        let support = dist.iter().filter(|&&p| p > 1e-6).count();
        assert!(support > 32, "support = {support}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(advantage(5, 4, 9).ops(), advantage(5, 4, 9).ops());
        assert_ne!(advantage(5, 4, 9).ops(), advantage(5, 4, 10).ops());
    }

    #[test]
    fn alternating_cycles_cover_all_neighbors() {
        let c = advantage(4, 2, 0);
        let mut pairs = std::collections::BTreeSet::new();
        for op in c.iter().filter(|op| op.arity() == 2) {
            let mut q: Vec<usize> = op.qubits().to_vec();
            q.sort_unstable();
            pairs.insert((q[0], q[1]));
        }
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(2, 3)));
        assert!(pairs.contains(&(1, 2)));
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_cycles_panics() {
        let _ = advantage(4, 0, 0);
    }
}
