//! QAOA MaxCut ansatz (paper ref. [12]).

use geyser_circuit::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a `p`-layer QAOA MaxCut circuit on a seeded random graph.
///
/// Structure: Hadamard wall, then `p` alternations of the cost
/// unitary (one `CX·RZ(2γ)·CX` phase-separator per edge) and the
/// mixer (`RX(2β)` on every qubit). Edge set: a ring plus random
/// chords at ~50% density, giving the dense-but-sparse interaction
/// pattern typical of MaxCut instances.
///
/// Deterministic for a fixed `(n, p, seed)`.
///
/// # Panics
///
/// Panics if `n < 2` or `p == 0`.
///
/// # Example
///
/// ```
/// use geyser_workloads::qaoa;
/// let c = qaoa(5, 3, 42);
/// assert_eq!(c.num_qubits(), 5);
/// ```
pub fn qaoa(n: usize, p: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "QAOA needs at least two qubits");
    assert!(p > 0, "QAOA needs at least one layer");
    let mut rng = StdRng::seed_from_u64(seed);

    // Ring + random chords.
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    if n == 2 {
        edges.truncate(1);
    }
    for a in 0..n {
        for b in (a + 2)..n {
            if (a, b) != (0, n - 1) && rng.gen::<f64>() < 0.5 {
                edges.push((a, b));
            }
        }
    }

    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for _layer in 0..p {
        let gamma: f64 = rng.gen::<f64>() * std::f64::consts::PI;
        let beta: f64 = rng.gen::<f64>() * std::f64::consts::FRAC_PI_2;
        for &(a, b) in &edges {
            c.cx(a, b);
            c.rz(2.0 * gamma, b);
            c.cx(a, b);
        }
        for q in 0..n {
            c.rx(2.0 * beta, q);
        }
    }
    c
}

/// Fixed-angle variant of [`qaoa`]: every layer applies the *same*
/// `(γ, β)` pair, so the circuit is a literal `p`-fold repetition of
/// one cost-plus-mixer layer.
///
/// This is the canonical structured workload for composition reuse:
/// blocking a deep fixed-angle instance yields many blocks with equal
/// unitaries (one per repeated layer and triangle), exactly the
/// repetition the reuse index exploits. Real QAOA schedules from
/// transfer-learned or concentration-of-parameters settings share this
/// shape.
///
/// The graph (ring + random chords) and the angle pair are drawn from
/// `seed`, so the circuit stays deterministic for a fixed
/// `(n, p, seed)`.
///
/// # Panics
///
/// Panics if `n < 2` or `p == 0`.
pub fn qaoa_fixed(n: usize, p: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "QAOA needs at least two qubits");
    assert!(p > 0, "QAOA needs at least one layer");
    let mut rng = StdRng::seed_from_u64(seed);

    // Ring + random chords (same ensemble as `qaoa`).
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    if n == 2 {
        edges.truncate(1);
    }
    for a in 0..n {
        for b in (a + 2)..n {
            if (a, b) != (0, n - 1) && rng.gen::<f64>() < 0.5 {
                edges.push((a, b));
            }
        }
    }
    let gamma: f64 = rng.gen::<f64>() * std::f64::consts::PI;
    let beta: f64 = rng.gen::<f64>() * std::f64::consts::FRAC_PI_2;

    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for _layer in 0..p {
        for &(a, b) in &edges {
            c.cx(a, b);
            c.rz(2.0 * gamma, b);
            c.cx(a, b);
        }
        for q in 0..n {
            c.rx(2.0 * beta, q);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_sim::ideal_distribution;

    #[test]
    fn structure_counts() {
        let n = 5;
        let p = 3;
        let c = qaoa(n, p, 1);
        // Hadamard wall + p mixers.
        let one_q = c.iter().filter(|op| op.arity() == 1).count();
        assert!(one_q >= n + p * n);
        // Each edge term contributes exactly two CX per layer.
        let two_q = c.iter().filter(|op| op.arity() == 2).count();
        assert_eq!(two_q % (2 * p), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(qaoa(5, 2, 7).ops(), qaoa(5, 2, 7).ops());
        assert_ne!(qaoa(5, 2, 7).ops(), qaoa(5, 2, 8).ops());
    }

    #[test]
    fn output_is_normalized_and_nontrivial() {
        let dist = ideal_distribution(&qaoa(4, 2, 3));
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The ansatz must not leave the state in |0000⟩.
        assert!(dist[0] < 0.9);
    }

    #[test]
    fn two_qubit_instance() {
        let c = qaoa(2, 1, 0);
        assert_eq!(c.num_qubits(), 2);
        assert!(c.iter().any(|op| op.arity() == 2));
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_panics() {
        let _ = qaoa(4, 0, 0);
    }
}
