//! Cuccaro ripple-carry adder (quant-ph/0410184, paper ref. [9]).

use geyser_circuit::Circuit;

/// Number of addend bits hosted by an `m`-qubit adder register.
///
/// Register layout: `cin, a₀, b₀, a₁, b₁, …` plus a trailing `cout`
/// when `m` is even. Odd `m` gives a modular adder without carry-out.
fn bits_for(m: usize) -> (usize, bool) {
    assert!(m >= 4, "adder needs at least 4 qubits");
    if m.is_multiple_of(2) {
        ((m - 2) / 2, true)
    } else {
        ((m - 1) / 2, false)
    }
}

/// Builds a Cuccaro ripple-carry adder on `num_qubits` total qubits
/// with addends preloaded via X gates: computes `b ← a + b (+ cout)`.
///
/// Qubit layout is `cin, a₀, b₀, a₁, b₁, …[, cout]` — 4 qubits give
/// the paper's 1-bit adder, 9 qubits the 4-bit modular adder.
///
/// # Panics
///
/// Panics if `num_qubits < 4` or an input exceeds the addend width.
///
/// # Example
///
/// ```
/// use geyser_workloads::adder_with_inputs;
/// let c = adder_with_inputs(4, 1, 1); // 1 + 1 on the 1-bit adder
/// assert_eq!(c.num_qubits(), 4);
/// ```
pub fn adder_with_inputs(num_qubits: usize, a: u64, b: u64) -> Circuit {
    let (bits, has_cout) = bits_for(num_qubits);
    assert!(a < (1 << bits), "input a out of range for {bits}-bit adder");
    assert!(b < (1 << bits), "input b out of range for {bits}-bit adder");

    let mut c = Circuit::new(num_qubits);
    let a_q = |i: usize| 1 + 2 * i; // a_i qubit index
    let b_q = |i: usize| 2 + 2 * i; // b_i qubit index
    let cin = 0usize;
    let cout = num_qubits - 1;

    // Input preparation.
    for i in 0..bits {
        if (a >> i) & 1 == 1 {
            c.x(a_q(i));
        }
        if (b >> i) & 1 == 1 {
            c.x(b_q(i));
        }
    }

    // MAJ(c, b, a): computes the majority into a.
    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cx(z, y);
        c.cx(z, x);
        c.ccx(x, y, z);
    };
    // UMA(c, b, a): un-majority and add.
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.ccx(x, y, z);
        c.cx(z, x);
        c.cx(x, y);
    };

    // Forward MAJ chain.
    maj(&mut c, cin, b_q(0), a_q(0));
    for i in 1..bits {
        maj(&mut c, a_q(i - 1), b_q(i), a_q(i));
    }
    // Carry out.
    if has_cout {
        c.cx(a_q(bits - 1), cout);
    }
    // Backward UMA chain.
    for i in (1..bits).rev() {
        uma(&mut c, a_q(i - 1), b_q(i), a_q(i));
    }
    uma(&mut c, cin, b_q(0), a_q(0));
    c
}

/// The default benchmark adder: inputs chosen to exercise the full
/// carry chain (`a = all-ones`, `b = 1`).
///
/// # Panics
///
/// Panics if `num_qubits < 4`.
pub fn adder(num_qubits: usize) -> Circuit {
    let (bits, _) = bits_for(num_qubits);
    adder_with_inputs(num_qubits, (1 << bits) - 1, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_sim::ideal_distribution;

    /// Decodes the output state: returns (sum bits from b register,
    /// cout bit) of the most probable basis state.
    fn run_adder(m: usize, a: u64, b: u64) -> (u64, u64) {
        let c = adder_with_inputs(m, a, b);
        let dist = ideal_distribution(&c);
        let state = dist
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.total_cmp(y.1))
            .unwrap()
            .0;
        // Classical circuit: the top state should have probability 1.
        assert!(dist[state] > 0.999, "output not classical");
        let n = c.num_qubits();
        let bit = |q: usize| ((state >> (n - 1 - q)) & 1) as u64;
        let (bits, has_cout) = super::bits_for(m);
        let mut sum = 0u64;
        for i in 0..bits {
            sum |= bit(2 + 2 * i) << i;
        }
        let cout = if has_cout { bit(n - 1) } else { 0 };
        (sum, cout)
    }

    #[test]
    fn one_bit_adder_truth_table() {
        // 4 qubits: 1-bit adder with carry out.
        assert_eq!(run_adder(4, 0, 0), (0, 0));
        assert_eq!(run_adder(4, 1, 0), (1, 0));
        assert_eq!(run_adder(4, 0, 1), (1, 0));
        assert_eq!(run_adder(4, 1, 1), (0, 1)); // 1+1 = 10₂
    }

    #[test]
    fn two_bit_modular_adder() {
        // 5 qubits: 2-bit adder, no carry out (mod 4).
        assert_eq!(run_adder(5, 1, 2), (3, 0));
        assert_eq!(run_adder(5, 3, 3), (2, 0)); // 6 mod 4
        assert_eq!(run_adder(5, 2, 2), (0, 0)); // 4 mod 4
    }

    #[test]
    fn four_bit_adder_with_carry_chain() {
        // 9 qubits: 4-bit modular adder.
        assert_eq!(run_adder(9, 15, 1), (0, 0)); // full ripple, mod 16
        assert_eq!(run_adder(9, 5, 9), (14, 0));
        // 10 qubits: 4-bit adder with cout.
        assert_eq!(run_adder(10, 15, 1), (0, 1));
        assert_eq!(run_adder(10, 7, 8), (15, 0));
    }

    #[test]
    fn default_adder_sizes() {
        for m in [4, 5, 9] {
            let c = adder(m);
            assert_eq!(c.num_qubits(), m);
            assert!(c.iter().any(|op| op.arity() == 3), "has Toffolis");
        }
    }

    #[test]
    #[should_panic(expected = "at least 4 qubits")]
    fn too_small_panics() {
        let _ = adder(3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_input_panics() {
        let _ = adder_with_inputs(4, 2, 0);
    }
}
