//! Cooperative cancellation for iterative searches.
//!
//! A [`CancelToken`] is the prompt counterpart of [`crate::Deadline`]:
//! where a deadline bounds a search by wall clock, a token lets an
//! external supervisor stop it *now* — the annealing chain loop, the
//! Adam descent loop, and (higher up the stack) every compilation pass
//! and per-block composition attempt poll the token between
//! iterations, so cancellation is observed within one inner-loop step
//! rather than at the next wall-clock expiry.
//!
//! Tokens are cheap shared handles: cloning shares the flag, and
//! [`CancelToken::none`] carries no allocation at all, so the
//! uncancellable default costs nothing on the hot path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, cooperative cancellation flag.
///
/// `CancelToken::none()` can never fire and is the default everywhere;
/// [`CancelToken::new`] creates a live token whose clones all observe
/// the same [`CancelToken::cancel`] call.
///
/// # Example
///
/// ```
/// use geyser_optimize::CancelToken;
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// assert!(!CancelToken::none().is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Option<Arc<AtomicBool>>,
}

impl CancelToken {
    /// A token that can never be cancelled (no allocation).
    pub fn none() -> Self {
        CancelToken { flag: None }
    }

    /// A live token; clones share the same flag.
    pub fn new() -> Self {
        CancelToken {
            flag: Some(Arc::new(AtomicBool::new(false))),
        }
    }

    /// Fires the token: every clone observes cancellation from now on.
    /// Calling it on a [`CancelToken::none`] token is a no-op.
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Whether the token has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.as_ref().is_some_and(|f| f.load(Ordering::SeqCst))
    }

    /// Whether this token can ever fire (i.e. it is not the `none`
    /// token).
    pub fn is_cancellable(&self) -> bool {
        self.flag.is_some()
    }
}

/// Tokens compare equal when they share the same flag (or are both
/// uncancellable) — enough for config-struct `PartialEq` derives.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        match (&self.flag, &other.flag) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_token_never_fires() {
        let t = CancelToken::none();
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(!t.is_cancellable());
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
        assert!(t.is_cancellable());
    }

    #[test]
    fn cancellation_is_visible_across_threads() {
        let t = CancelToken::new();
        let seen = std::thread::scope(|scope| {
            let observer = t.clone();
            let handle = scope.spawn(move || {
                while !observer.is_cancelled() {
                    std::thread::yield_now();
                }
                true
            });
            t.cancel();
            handle.join().unwrap()
        });
        assert!(seen);
    }

    #[test]
    fn equality_follows_the_shared_flag() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
        assert_eq!(CancelToken::none(), CancelToken::none());
        assert_ne!(a, CancelToken::none());
    }
}
