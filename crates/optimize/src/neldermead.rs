//! Bounded Nelder–Mead simplex minimization.

use crate::{Bounds, OptimizeResult};

/// Configuration for [`nelder_mead`].
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMeadConfig {
    /// Maximum objective evaluations.
    pub max_evaluations: usize,
    /// Convergence tolerance on the simplex's objective spread.
    pub f_tol: f64,
    /// Convergence tolerance on the simplex's coordinate spread.
    pub x_tol: f64,
    /// Relative size of the initial simplex (fraction of each
    /// dimension's bound width).
    pub initial_step: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        NelderMeadConfig {
            max_evaluations: 10_000,
            f_tol: 1e-12,
            x_tol: 1e-10,
            initial_step: 0.05,
        }
    }
}

/// Minimizes `f` with the Nelder–Mead simplex method starting from
/// `x0`, clamping every trial point into `bounds`.
///
/// Uses the standard coefficients (reflection 1, expansion 2,
/// contraction ½, shrink ½).
///
/// # Panics
///
/// Panics if `x0.len() != bounds.dim()`.
///
/// # Example
///
/// ```
/// use geyser_optimize::{nelder_mead, Bounds, NelderMeadConfig};
/// let bounds = Bounds::uniform(2, -5.0, 5.0);
/// let f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2);
/// let res = nelder_mead(&f, &bounds, &[0.0, 0.0], &NelderMeadConfig::default());
/// assert!(res.fx < 1e-9);
/// ```
pub fn nelder_mead<F: Fn(&[f64]) -> f64>(
    f: &F,
    bounds: &Bounds,
    x0: &[f64],
    cfg: &NelderMeadConfig,
) -> OptimizeResult {
    let dim = bounds.dim();
    assert_eq!(x0.len(), dim, "starting point dimension mismatch");

    let mut evaluations = 0usize;
    let eval = |x: &mut Vec<f64>, evals: &mut usize| -> f64 {
        bounds.clamp(x);
        *evals += 1;
        f(x)
    };

    // Build the initial simplex: x0 plus one perturbed vertex per dim.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(dim + 1);
    let mut base = x0.to_vec();
    let f0 = eval(&mut base, &mut evaluations);
    simplex.push((base.clone(), f0));
    for i in 0..dim {
        let mut v = base.clone();
        let step = (bounds.width(i) * cfg.initial_step).max(1e-8);
        // Step away from the nearer bound to keep the vertex distinct.
        if v[i] + step <= bounds.hi(i) {
            v[i] += step;
        } else {
            v[i] -= step;
        }
        let fv = eval(&mut v, &mut evaluations);
        simplex.push((v, fv));
    }

    while evaluations < cfg.max_evaluations {
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let f_best = simplex[0].1;
        let f_worst = simplex[dim].1;

        // Convergence tests.
        let f_spread = (f_worst - f_best).abs();
        let x_spread = (0..dim)
            .map(|i| {
                simplex
                    .iter()
                    .map(|(v, _)| (v[i] - simplex[0].0[i]).abs())
                    .fold(0.0, f64::max)
            })
            .fold(0.0, f64::max);
        if f_spread <= cfg.f_tol && x_spread <= cfg.x_tol {
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; dim];
        for (v, _) in &simplex[..dim] {
            for i in 0..dim {
                centroid[i] += v[i];
            }
        }
        for c in &mut centroid {
            *c /= dim as f64;
        }

        let lerp = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
            a.iter().zip(b).map(|(x, y)| x + t * (y - x)).collect()
        };

        // Reflection.
        let worst = simplex[dim].0.clone();
        let mut reflected = lerp(&centroid, &worst, -1.0);
        let f_ref = eval(&mut reflected, &mut evaluations);

        if f_ref < simplex[0].1 {
            // Expansion.
            let mut expanded = lerp(&centroid, &worst, -2.0);
            let f_exp = eval(&mut expanded, &mut evaluations);
            simplex[dim] = if f_exp < f_ref {
                (expanded, f_exp)
            } else {
                (reflected, f_ref)
            };
        } else if f_ref < simplex[dim - 1].1 {
            simplex[dim] = (reflected, f_ref);
        } else {
            // Contraction (outside if the reflection helped, else inside).
            let t = if f_ref < simplex[dim].1 { -0.5 } else { 0.5 };
            let mut contracted = lerp(&centroid, &worst, t);
            let f_con = eval(&mut contracted, &mut evaluations);
            let threshold = simplex[dim].1.min(f_ref);
            if f_con < threshold {
                simplex[dim] = (contracted, f_con);
            } else {
                // Shrink toward the best vertex.
                let best = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let mut shrunk = lerp(&best, &entry.0, 0.5);
                    let fs = eval(&mut shrunk, &mut evaluations);
                    *entry = (shrunk, fs);
                }
            }
        }
    }

    simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
    let (x, fx) = simplex.swap_remove(0);
    OptimizeResult {
        x,
        fx,
        evaluations,
        accepted: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let bounds = Bounds::uniform(3, -10.0, 10.0);
        let f = |x: &[f64]| x.iter().map(|v| (v - 3.0).powi(2)).sum::<f64>();
        let res = nelder_mead(&f, &bounds, &[0.0; 3], &NelderMeadConfig::default());
        assert!(res.fx < 1e-9, "fx = {}", res.fx);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let bounds = Bounds::uniform(2, -2.0, 2.0);
        let f = |x: &[f64]| 100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2);
        let cfg = NelderMeadConfig {
            max_evaluations: 20_000,
            ..NelderMeadConfig::default()
        };
        let res = nelder_mead(&f, &bounds, &[-1.0, 1.0], &cfg);
        assert!(res.fx < 1e-8, "fx = {}", res.fx);
        assert!((res.x[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn stays_within_bounds() {
        let bounds = Bounds::uniform(2, 0.0, 1.0);
        // Unconstrained minimum at (-3, -3), outside the box.
        let f = |x: &[f64]| (x[0] + 3.0).powi(2) + (x[1] + 3.0).powi(2);
        let res = nelder_mead(&f, &bounds, &[0.5, 0.5], &NelderMeadConfig::default());
        assert!(bounds.contains(&res.x));
        assert!((res.x[0]).abs() < 1e-6);
        assert!((res.x[1]).abs() < 1e-6);
    }

    #[test]
    fn respects_evaluation_budget() {
        let bounds = Bounds::uniform(5, -1.0, 1.0);
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let cfg = NelderMeadConfig {
            max_evaluations: 50,
            ..NelderMeadConfig::default()
        };
        let res = nelder_mead(&f, &bounds, &[0.9; 5], &cfg);
        // Budget plus at most one in-flight shrink loop of dim evals.
        assert!(res.evaluations <= 56, "evals = {}", res.evaluations);
    }

    #[test]
    fn starting_at_optimum_converges_immediately() {
        let bounds = Bounds::uniform(2, -1.0, 1.0);
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let res = nelder_mead(&f, &bounds, &[0.0, 0.0], &NelderMeadConfig::default());
        assert!(res.fx < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_start_dimension_panics() {
        let bounds = Bounds::uniform(2, 0.0, 1.0);
        let f = |x: &[f64]| x[0];
        let _ = nelder_mead(&f, &bounds, &[0.5], &NelderMeadConfig::default());
    }
}
