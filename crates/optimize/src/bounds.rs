//! Box constraints for the optimizers.

/// Per-dimension box constraints `lo[i] ≤ x[i] ≤ hi[i]`.
///
/// # Example
///
/// ```
/// use geyser_optimize::Bounds;
/// let b = Bounds::uniform(2, 0.0, std::f64::consts::TAU);
/// assert_eq!(b.dim(), 2);
/// assert!(b.contains(&[1.0, 6.0]));
/// assert!(!b.contains(&[-0.1, 1.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Bounds {
    /// Creates bounds from per-dimension `(lo, hi)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if empty, if any `lo > hi`, or on non-finite values.
    pub fn new(pairs: &[(f64, f64)]) -> Self {
        assert!(!pairs.is_empty(), "bounds must have at least one dimension");
        for &(lo, hi) in pairs {
            assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
            assert!(lo <= hi, "lower bound {lo} exceeds upper bound {hi}");
        }
        Bounds {
            lo: pairs.iter().map(|p| p.0).collect(),
            hi: pairs.iter().map(|p| p.1).collect(),
        }
    }

    /// Creates `dim` identical `(lo, hi)` bounds.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Bounds::new`].
    pub fn uniform(dim: usize, lo: f64, hi: f64) -> Self {
        Self::new(&vec![(lo, hi); dim])
    }

    /// Number of dimensions.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower bound of dimension `i`.
    #[inline]
    pub fn lo(&self, i: usize) -> f64 {
        self.lo[i]
    }

    /// Upper bound of dimension `i`.
    #[inline]
    pub fn hi(&self, i: usize) -> f64 {
        self.hi[i]
    }

    /// Width of dimension `i`.
    #[inline]
    pub fn width(&self, i: usize) -> f64 {
        self.hi[i] - self.lo[i]
    }

    /// Returns `true` if `x` lies within the box.
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.dim()
            && x.iter()
                .enumerate()
                .all(|(i, &v)| v >= self.lo[i] && v <= self.hi[i])
    }

    /// Clamps `x` into the box in place.
    pub fn clamp(&self, x: &mut [f64]) {
        for (i, v) in x.iter_mut().enumerate() {
            *v = v.clamp(self.lo[i], self.hi[i]);
        }
    }

    /// Wraps `x` into the box by reflecting out-of-range coordinates
    /// back inside (periodic fold) — preserves search diversity better
    /// than clamping for annealing steps on angle parameters.
    pub fn wrap(&self, x: &mut [f64]) {
        for (i, v) in x.iter_mut().enumerate() {
            let w = self.width(i);
            if w == 0.0 {
                *v = self.lo[i];
                continue;
            }
            if *v < self.lo[i] || *v > self.hi[i] {
                // Map into [0, 2w) then reflect.
                let mut t = (*v - self.lo[i]).rem_euclid(2.0 * w);
                if t > w {
                    t = 2.0 * w - t;
                }
                *v = self.lo[i] + t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let b = Bounds::new(&[(0.0, 1.0), (-2.0, 2.0)]);
        assert_eq!(b.dim(), 2);
        assert_eq!(b.lo(1), -2.0);
        assert_eq!(b.hi(0), 1.0);
        assert_eq!(b.width(1), 4.0);
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn inverted_bounds_panic() {
        let _ = Bounds::new(&[(1.0, 0.0)]);
    }

    #[test]
    fn clamp_projects_into_box() {
        let b = Bounds::uniform(3, 0.0, 1.0);
        let mut x = [-0.5, 0.5, 1.5];
        b.clamp(&mut x);
        assert_eq!(x, [0.0, 0.5, 1.0]);
    }

    #[test]
    fn wrap_reflects_into_box() {
        let b = Bounds::uniform(1, 0.0, 1.0);
        let mut x = [1.25];
        b.wrap(&mut x);
        assert!((x[0] - 0.75).abs() < 1e-12);
        let mut y = [-0.25];
        b.wrap(&mut y);
        assert!((y[0] - 0.25).abs() < 1e-12);
        let mut z = [0.5];
        b.wrap(&mut z);
        assert_eq!(z[0], 0.5);
    }

    #[test]
    fn wrap_handles_degenerate_dimension() {
        let b = Bounds::new(&[(2.0, 2.0)]);
        let mut x = [5.0];
        b.wrap(&mut x);
        assert_eq!(x[0], 2.0);
    }

    #[test]
    fn contains_checks_dimension() {
        let b = Bounds::uniform(2, 0.0, 1.0);
        assert!(!b.contains(&[0.5]));
        assert!(b.contains(&[0.5, 0.5]));
    }
}
