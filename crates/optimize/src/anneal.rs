//! Generalized (dual) simulated annealing.
//!
//! Structure mirrors SciPy's `dual_annealing` (Xiang et al.): a
//! generalized-simulated-annealing global phase using Tsallis
//! statistics — a distorted-Cauchy *visiting distribution* controlled
//! by `qv` and a generalized Metropolis *acceptance rule* controlled
//! by `qa` — combined with restarts when the temperature collapses and
//! a Nelder–Mead local polish (the "dual" part).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::special::ln_gamma;
use crate::{nelder_mead, Bounds, CancelToken, Deadline, NelderMeadConfig, OptimizeResult};

/// Configuration for [`dual_annealing`].
///
/// Defaults follow SciPy: `initial_temp = 5230`, `qv = 2.62`,
/// `qa = -5.0`, `restart_temp_ratio = 2e-5`.
#[derive(Debug, Clone, PartialEq)]
pub struct DualAnnealingConfig {
    /// Maximum outer iterations (temperature steps).
    pub max_iters: usize,
    /// Hard cap on objective evaluations.
    pub max_evaluations: usize,
    /// Initial visiting temperature.
    pub initial_temp: f64,
    /// Restart the schedule when `T < initial_temp · ratio`.
    pub restart_temp_ratio: f64,
    /// Tsallis visiting parameter `qv ∈ (1, 3)`.
    pub qv: f64,
    /// Tsallis acceptance parameter `qa < 1` (more negative = greedier).
    pub qa: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Run a Nelder–Mead polish from the best point at the end.
    pub polish: bool,
    /// Optional warm-start point: the first iterate starts here
    /// (clamped into bounds) instead of at a random point. Restarts
    /// after temperature collapse still draw random points, so a bad
    /// hint only costs the first chain. Length must match the bounds
    /// dimension or the hint is ignored.
    pub x0: Option<Vec<f64>>,
    /// Stop early once the objective falls at or below this value.
    pub target: Option<f64>,
    /// Wall-clock budget: the outer loop stops (returning the best
    /// iterate so far) once this deadline expires.
    pub deadline: Deadline,
    /// Cooperative cancellation: polled every chain move, so a
    /// supervisor's cancel is observed within one inner iteration.
    pub cancel: CancelToken,
}

impl Default for DualAnnealingConfig {
    fn default() -> Self {
        DualAnnealingConfig {
            max_iters: 1000,
            max_evaluations: 200_000,
            initial_temp: 5230.0,
            restart_temp_ratio: 2e-5,
            qv: 2.62,
            qa: -5.0,
            seed: 0,
            polish: true,
            x0: None,
            target: None,
            deadline: Deadline::none(),
            cancel: CancelToken::none(),
        }
    }
}

impl DualAnnealingConfig {
    /// Returns a copy with the given RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the given iteration budget.
    pub fn with_max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Returns a copy warm-started from the given point.
    pub fn with_x0(mut self, x0: Vec<f64>) -> Self {
        self.x0 = Some(x0);
        self
    }

    /// Returns a copy with an early-stop target objective value.
    pub fn with_target(mut self, target: f64) -> Self {
        self.target = Some(target);
        self
    }

    /// Returns a copy bounded by the given wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Returns a copy observing the given cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

/// Tail cap on visiting-distribution steps (as in SciPy).
const TAIL_LIMIT: f64 = 1e8;

struct VisitingDistribution {
    qv: f64,
    sigmax_factor: f64,
}

impl VisitingDistribution {
    fn new(qv: f64) -> Self {
        // Precompute the temperature-independent part of σ_x.
        let factor2 = ((4.0 - qv) * (qv - 1.0).ln()).exp();
        let factor3 = ((2.0 - qv) * std::f64::consts::LN_2 / (qv - 1.0)).exp();
        let factor4_base = std::f64::consts::PI.sqrt() * factor2 / (factor3 * (3.0 - qv));
        let factor5 = 1.0 / (qv - 1.0) - 0.5;
        let d1 = 2.0 - factor5;
        let factor6 = std::f64::consts::PI * (1.0 - factor5)
            / (std::f64::consts::PI * (1.0 - factor5)).sin()
            / ln_gamma(d1).exp();
        // σ_x = exp(-(qv-1)·ln(factor6/factor4)/(3-qv)) with
        // factor4 = factor4_base · tv^{1/(qv-1)}; the tv part is applied
        // per call.
        VisitingDistribution {
            qv,
            sigmax_factor: factor6 / factor4_base,
        }
    }

    /// Draws one heavy-tailed visiting step at visiting temperature `tv`.
    fn sample(&self, tv: f64, rng: &mut StdRng) -> f64 {
        let qv = self.qv;
        let factor1 = (tv.ln() / (qv - 1.0)).exp();
        let sigmax = (-(qv - 1.0) * (self.sigmax_factor / factor1).ln() / (3.0 - qv)).exp();
        let x = sigmax * gaussian(rng);
        let y = gaussian(rng);
        let den = ((qv - 1.0) * y.abs().ln() / (3.0 - qv)).exp();
        let visit = x / den;
        visit.clamp(-TAIL_LIMIT, TAIL_LIMIT)
    }
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Minimizes `f` over `bounds` with generalized simulated annealing
/// plus a Nelder–Mead polish.
///
/// Deterministic for a fixed configuration (seeded RNG).
///
/// # Panics
///
/// Panics if `qv ∉ (1, 3)`, `qa ≥ 1`, or the iteration budget is zero.
///
/// # Example
///
/// ```
/// use geyser_optimize::{dual_annealing, Bounds, DualAnnealingConfig};
/// let bounds = Bounds::uniform(2, -2.0, 2.0);
/// let rosenbrock = |x: &[f64]| {
///     100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2)
/// };
/// let res = dual_annealing(&rosenbrock, &bounds, &DualAnnealingConfig::default().with_seed(3));
/// assert!(res.fx < 1e-5);
/// ```
pub fn dual_annealing<F: Fn(&[f64]) -> f64>(
    f: &F,
    bounds: &Bounds,
    cfg: &DualAnnealingConfig,
) -> OptimizeResult {
    assert!(cfg.qv > 1.0 && cfg.qv < 3.0, "qv must be in (1, 3)");
    assert!(cfg.qa < 1.0, "qa must be < 1");
    assert!(cfg.max_iters > 0, "iteration budget must be positive");

    let dim = bounds.dim();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let visit = VisitingDistribution::new(cfg.qv);

    let random_point = |rng: &mut StdRng| -> Vec<f64> {
        (0..dim)
            .map(|i| bounds.lo(i) + rng.gen::<f64>() * bounds.width(i))
            .collect()
    };

    let mut evaluations = 0usize;
    let mut accepted = 0usize;
    let eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        f(x)
    };

    let mut current = match &cfg.x0 {
        // Warm start: begin at the caller's hint (clamped into
        // bounds) instead of a random point. The RNG is untouched, so
        // the rest of the schedule matches a cold run step for step.
        Some(hint) if hint.len() == dim && hint.iter().all(|v| v.is_finite()) => hint
            .iter()
            .enumerate()
            .map(|(i, &v)| v.clamp(bounds.lo(i), bounds.hi(i)))
            .collect(),
        _ => random_point(&mut rng),
    };
    let mut current_f = eval(&current, &mut evaluations);
    let mut best = current.clone();
    let mut best_f = current_f;

    // Temperature schedule constant: T(t) = T0·(2^{qv-1}−1)/((1+t)^{qv-1}−1).
    let t1 = (2.0f64.powf(cfg.qv - 1.0)) - 1.0;
    let mut step = 0usize;

    'outer: for _iter in 0..cfg.max_iters {
        if cfg.deadline.expired() || cfg.cancel.is_cancelled() {
            break 'outer;
        }
        step += 1;
        let tv = cfg.initial_temp * t1 / (((1 + step) as f64).powf(cfg.qv - 1.0) - 1.0);

        // Restart the schedule when the temperature has collapsed.
        if tv < cfg.initial_temp * cfg.restart_temp_ratio {
            step = 1;
            current = random_point(&mut rng);
            current_f = eval(&current, &mut evaluations);
            continue;
        }

        // One annealing "chain": dim full-vector moves then dim
        // single-coordinate moves (as in SciPy's strategy chain).
        for j in 0..(2 * dim) {
            // Cancellation must interrupt even a single long chain:
            // poll per move, not only per temperature step.
            if cfg.cancel.is_cancelled() {
                break 'outer;
            }
            let mut candidate = current.clone();
            if j < dim {
                for (i, slot) in candidate.iter_mut().enumerate() {
                    *slot += visit.sample(tv, &mut rng) * bounds.width(i).max(1e-12);
                }
            } else {
                let i = j - dim;
                candidate[i] += visit.sample(tv, &mut rng) * bounds.width(i).max(1e-12);
            }
            bounds.wrap(&mut candidate);
            let cand_f = eval(&candidate, &mut evaluations);

            let accept = if cand_f <= current_f {
                true
            } else {
                // Generalized Metropolis acceptance (Tsallis, qa < 1):
                // p = [1 − (1−qa)·ΔE/T_a]^{1/(1−qa)} when positive.
                let t_accept = tv / (step as f64);
                let base = 1.0 - (1.0 - cfg.qa) * (cand_f - current_f) / t_accept.max(1e-300);
                if base <= 0.0 {
                    false
                } else {
                    let p = (base.ln() / (1.0 - cfg.qa)).exp();
                    rng.gen::<f64>() < p
                }
            };
            if accept {
                accepted += 1;
                current = candidate;
                current_f = cand_f;
                if current_f < best_f {
                    best = current.clone();
                    best_f = current_f;
                    if let Some(t) = cfg.target {
                        if best_f <= t {
                            break 'outer;
                        }
                    }
                }
            }
            if evaluations >= cfg.max_evaluations {
                break 'outer;
            }
        }
    }

    // Local polish (the "dual" phase). Skipped on an expired deadline
    // or a cancelled run: the caller asked for whatever was bought.
    if cfg.polish && !cfg.deadline.expired() && !cfg.cancel.is_cancelled() {
        let nm_cfg = NelderMeadConfig {
            max_evaluations: (cfg.max_evaluations.saturating_sub(evaluations)).min(400 * dim),
            ..NelderMeadConfig::default()
        };
        let polished = nelder_mead(f, bounds, &best, &nm_cfg);
        evaluations += polished.evaluations;
        if polished.fx < best_f {
            best = polished.x;
            best_f = polished.fx;
        }
    }

    OptimizeResult {
        x: best,
        fx: best_f,
        evaluations,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    fn rastrigin(x: &[f64]) -> f64 {
        10.0 * x.len() as f64
            + x.iter()
                .map(|v| v * v - 10.0 * (std::f64::consts::TAU * v).cos())
                .sum::<f64>()
    }

    #[test]
    fn minimizes_sphere() {
        let bounds = Bounds::uniform(4, -5.0, 5.0);
        let res = dual_annealing(
            &sphere,
            &bounds,
            &DualAnnealingConfig::default().with_seed(1),
        );
        assert!(res.fx < 1e-8, "fx = {}", res.fx);
    }

    #[test]
    fn warm_start_seeds_the_first_iterate() {
        // A tiny budget from a good hint must land at least as well
        // as the same budget from a random start, and a hint at the
        // optimum keeps best_f at the optimum even with no polish.
        let bounds = Bounds::uniform(6, -5.0, 5.0);
        let base = DualAnnealingConfig {
            max_iters: 3,
            polish: false,
            ..DualAnnealingConfig::default()
        }
        .with_seed(9);
        let cold = dual_annealing(&rastrigin, &bounds, &base);
        let warm = dual_annealing(&rastrigin, &bounds, &base.clone().with_x0(vec![0.0; 6]));
        assert!(warm.fx <= cold.fx, "warm {} vs cold {}", warm.fx, cold.fx);
        assert!(warm.fx < 1e-9, "warm start lost the optimum: {}", warm.fx);
    }

    #[test]
    fn warm_start_hint_is_clamped_and_bad_hints_ignored() {
        let bounds = Bounds::uniform(2, -1.0, 1.0);
        let cfg = DualAnnealingConfig {
            max_iters: 2,
            polish: false,
            ..DualAnnealingConfig::default()
        };
        // Out-of-bounds hint clamps instead of escaping the box.
        let res = dual_annealing(&sphere, &bounds, &cfg.clone().with_x0(vec![9.0, -9.0]));
        assert!(res.fx <= 2.0 + 1e-12);
        // Wrong-dimension and non-finite hints fall back to the cold
        // path — identical to no hint at all.
        let cold = dual_annealing(&sphere, &bounds, &cfg);
        let wrong_dim = dual_annealing(&sphere, &bounds, &cfg.clone().with_x0(vec![0.0; 5]));
        let nan = dual_annealing(&sphere, &bounds, &cfg.clone().with_x0(vec![f64::NAN, 0.0]));
        assert_eq!(cold.x, wrong_dim.x);
        assert_eq!(cold.x, nan.x);
    }

    #[test]
    fn minimizes_shifted_sphere() {
        let bounds = Bounds::uniform(3, -4.0, 6.0);
        let f = |x: &[f64]| x.iter().map(|v| (v - 2.5).powi(2)).sum::<f64>();
        let res = dual_annealing(&f, &bounds, &DualAnnealingConfig::default().with_seed(2));
        assert!(res.fx < 1e-8);
        for v in &res.x {
            assert!((v - 2.5).abs() < 1e-3);
        }
    }

    #[test]
    fn escapes_rastrigin_local_minima() {
        let bounds = Bounds::uniform(2, -5.12, 5.12);
        let res = dual_annealing(
            &rastrigin,
            &bounds,
            &DualAnnealingConfig::default().with_seed(5),
        );
        assert!(res.fx < 1e-5, "fx = {}", res.fx);
    }

    #[test]
    fn respects_bounds() {
        let bounds = Bounds::uniform(3, 1.0, 2.0);
        // Minimum of the sphere outside the box: optimizer must stay in.
        let res = dual_annealing(
            &sphere,
            &bounds,
            &DualAnnealingConfig::default().with_seed(4),
        );
        assert!(bounds.contains(&res.x), "x = {:?}", res.x);
        assert!((res.fx - 3.0).abs() < 1e-6); // (1,1,1) is optimal
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let bounds = Bounds::uniform(2, -1.0, 1.0);
        let cfg = DualAnnealingConfig::default()
            .with_seed(11)
            .with_max_iters(50);
        let a = dual_annealing(&sphere, &bounds, &cfg);
        let b = dual_annealing(&sphere, &bounds, &cfg);
        assert_eq!(a.x, b.x);
        assert_eq!(a.fx, b.fx);
    }

    #[test]
    fn early_stop_at_target() {
        let bounds = Bounds::uniform(2, -5.0, 5.0);
        let cfg = DualAnnealingConfig::default().with_seed(6).with_target(1.0);
        let res = dual_annealing(&sphere, &bounds, &cfg);
        assert!(res.fx <= 1.0);
        // Should have stopped long before the evaluation cap.
        assert!(res.evaluations < 100_000);
    }

    #[test]
    fn evaluation_budget_respected() {
        let bounds = Bounds::uniform(2, -5.0, 5.0);
        let cfg = DualAnnealingConfig {
            max_evaluations: 500,
            polish: false,
            seed: 8,
            ..DualAnnealingConfig::default()
        };
        let res = dual_annealing(&sphere, &bounds, &cfg);
        assert!(res.evaluations <= 501);
    }

    #[test]
    fn expired_deadline_returns_best_so_far_quickly() {
        let bounds = Bounds::uniform(8, -5.0, 5.0);
        let cfg = DualAnnealingConfig::default()
            .with_seed(9)
            .with_deadline(Deadline::already_expired());
        let res = dual_annealing(&rastrigin, &bounds, &cfg);
        // One initial evaluation, no chain moves, no polish.
        assert_eq!(res.evaluations, 1);
        assert!(res.fx.is_finite());
        assert!(bounds.contains(&res.x));
    }

    #[test]
    fn pre_cancelled_token_returns_best_so_far_quickly() {
        let bounds = Bounds::uniform(8, -5.0, 5.0);
        let token = CancelToken::new();
        token.cancel();
        let cfg = DualAnnealingConfig::default()
            .with_seed(9)
            .with_cancel(token);
        let res = dual_annealing(&rastrigin, &bounds, &cfg);
        // One initial evaluation, no chain moves, no polish.
        assert_eq!(res.evaluations, 1);
        assert!(res.fx.is_finite());
        assert!(bounds.contains(&res.x));
    }

    #[test]
    fn cancellation_is_observed_within_one_chain_move() {
        // The objective itself fires the token after 100 evaluations:
        // the annealer must stop within one further chain move (which
        // costs exactly one evaluation).
        let dim = 4usize;
        let bounds = Bounds::uniform(dim, -5.0, 5.0);
        let token = CancelToken::new();
        let evals = std::sync::atomic::AtomicUsize::new(0);
        let f = |x: &[f64]| {
            if evals.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1 >= 100 {
                token.cancel();
            }
            sphere(x)
        };
        let cfg = DualAnnealingConfig::default()
            .with_seed(3)
            .with_cancel(token.clone());
        let res = dual_annealing(&f, &bounds, &cfg);
        assert!(token.is_cancelled());
        assert!(
            res.evaluations <= 101,
            "cancel observed late: {} evaluations",
            res.evaluations
        );
    }

    #[test]
    #[should_panic(expected = "qv must be in (1, 3)")]
    fn invalid_qv_panics() {
        let cfg = DualAnnealingConfig {
            qv: 3.5,
            ..DualAnnealingConfig::default()
        };
        let _ = dual_annealing(&sphere, &Bounds::uniform(1, 0.0, 1.0), &cfg);
    }
}
