//! Special functions needed by the generalized-annealing visiting
//! distribution.

/// Natural log of the gamma function via the Lanczos approximation
/// (g = 7, 9 coefficients). Accurate to ~1e-13 for positive arguments,
/// with the reflection formula handling `x < 0.5`.
///
/// # Panics
///
/// Panics if `x` is a non-positive integer (poles of Γ).
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(
        !(x <= 0.0 && x.fract() == 0.0),
        "ln_gamma pole at non-positive integer {x}"
    );
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let s = (std::f64::consts::PI * x).sin();
        return std::f64::consts::PI.ln() - s.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_factorials() {
        // Γ(n) = (n-1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let got = ln_gamma((n + 1) as f64);
            assert!((got - f.ln()).abs() < 1e-11, "Γ({}) mismatch", n + 1);
        }
    }

    #[test]
    fn half_integer_values() {
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
        // Γ(3/2) = √π/2
        let want = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - want).abs() < 1e-12);
    }

    #[test]
    fn recurrence_holds() {
        // ln Γ(x+1) = ln Γ(x) + ln x
        for &x in &[0.7, 1.3, 2.9, 7.5, 15.2] {
            assert!((ln_gamma(x + 1.0) - ln_gamma(x) - x.ln()).abs() < 1e-10);
        }
    }

    #[test]
    fn reflection_branch() {
        // Γ(0.25)·Γ(0.75) = π / sin(π/4) = π√2
        let lhs = ln_gamma(0.25) + ln_gamma(0.75);
        let rhs = (std::f64::consts::PI * std::f64::consts::SQRT_2).ln();
        assert!((lhs - rhs).abs() < 1e-11);
    }

    #[test]
    #[should_panic(expected = "pole")]
    fn pole_panics() {
        let _ = ln_gamma(0.0);
    }
}
