//! Wall-clock budgets for iterative searches.
//!
//! A [`Deadline`] is a *started* budget: an optional expiry instant
//! that every annealing/descent loop (and, higher up the stack, every
//! compilation pass and per-block composition attempt) polls between
//! iterations. Unlike an iteration cap it bounds real time, which is
//! what an evaluation harness actually cares about when a stochastic
//! search refuses to converge.

use std::time::{Duration, Instant};

/// An optional wall-clock expiry shared across a pipeline run.
///
/// `Deadline::none()` never expires; [`Deadline::already_expired`]
/// is expired from birth (used by fault injection to force the
/// timeout-degradation paths without waiting).
///
/// # Example
///
/// ```
/// use geyser_optimize::Deadline;
/// assert!(!Deadline::none().expired());
/// assert!(Deadline::already_expired().expired());
/// assert!(!Deadline::after_ms(60_000).expired());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    expires: Option<Instant>,
    forced: bool,
}

impl Deadline {
    /// A deadline that never expires.
    pub fn none() -> Self {
        Deadline {
            expires: None,
            forced: false,
        }
    }

    /// A deadline `ms` milliseconds from now.
    pub fn after_ms(ms: u64) -> Self {
        Self::after(Duration::from_millis(ms))
    }

    /// A deadline `d` from now. Durations no run could ever reach
    /// saturate to "never expires" — whether `Instant + d` overflows
    /// `checked_add` is platform-dependent, so the cutoff is explicit
    /// rather than left to the representation.
    pub fn after(d: Duration) -> Self {
        const PRACTICALLY_UNBOUNDED: Duration = Duration::from_secs(100 * 365 * 24 * 60 * 60);
        let expires = if d >= PRACTICALLY_UNBOUNDED {
            None
        } else {
            Instant::now().checked_add(d)
        };
        Deadline {
            expires,
            forced: false,
        }
    }

    /// A deadline that is expired from birth (fault injection /
    /// forced-timeout testing).
    pub fn already_expired() -> Self {
        Deadline {
            expires: None,
            forced: true,
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.forced || self.expires.is_some_and(|t| Instant::now() >= t)
    }

    /// Milliseconds until expiry: `None` for an unlimited deadline,
    /// `Some(0)` once expired.
    pub fn remaining_ms(&self) -> Option<u64> {
        if self.forced {
            return Some(0);
        }
        self.expires
            .map(|t| t.saturating_duration_since(Instant::now()).as_millis() as u64)
    }

    /// Whether this deadline can ever expire.
    pub fn is_bounded(&self) -> bool {
        self.forced || self.expires.is_some()
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert_eq!(d.remaining_ms(), None);
        assert!(!d.is_bounded());
    }

    #[test]
    fn forced_deadline_is_expired_with_zero_remaining() {
        let d = Deadline::already_expired();
        assert!(d.expired());
        assert_eq!(d.remaining_ms(), Some(0));
        assert!(d.is_bounded());
    }

    #[test]
    fn distant_deadline_not_expired() {
        let d = Deadline::after_ms(120_000);
        assert!(!d.expired());
        assert!(d.remaining_ms().unwrap() > 100_000);
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let d = Deadline::after_ms(0);
        assert!(d.expired());
        assert_eq!(d.remaining_ms(), Some(0));
    }

    #[test]
    fn overflowing_deadline_saturates_to_unbounded() {
        // A deadline of `u64::MAX` ms saturates to "never expires"
        // instead of wrapping into the past (or depending on whether
        // the platform's `Instant` representation happens to overflow).
        let d = Deadline::after_ms(u64::MAX);
        assert!(!d.expired());
        assert_eq!(d.remaining_ms(), None);
        assert!(!d.is_bounded());
    }

    #[test]
    fn remaining_ms_saturates_at_zero_after_expiry() {
        let d = Deadline::after_ms(1);
        std::thread::sleep(Duration::from_millis(5));
        // Past expiry the remaining time clamps to zero, never
        // underflows.
        assert!(d.expired());
        assert_eq!(d.remaining_ms(), Some(0));
    }
}
