//! Bounded Adam gradient descent with central finite differences.
//!
//! Unitary-synthesis objectives (Hilbert–Schmidt distances of smooth
//! gate parameterizations) are infinitely differentiable, which makes
//! first-order descent with numerical gradients the most reliable
//! local refiner — it is used here to polish dual-annealing iterates
//! and as a multi-start local searcher in its own right.

use crate::{Bounds, CancelToken, Deadline, OptimizeResult};

/// Configuration for [`adam`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdamConfig {
    /// Maximum descent iterations.
    pub max_iters: usize,
    /// Base learning rate.
    pub learning_rate: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Finite-difference step for the gradient estimate.
    pub fd_step: f64,
    /// Stop once the objective falls at or below this value.
    pub target: Option<f64>,
    /// When the objective improves by less than this over a
    /// 25-iteration window, the learning rate is halved; the run stops
    /// once the rate falls below `learning_rate / 1024`.
    pub stall_tol: f64,
    /// Wall-clock budget: descent stops (returning the best iterate so
    /// far) once this deadline expires.
    pub deadline: Deadline,
    /// Cooperative cancellation: polled every descent iteration.
    pub cancel: CancelToken,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            max_iters: 300,
            learning_rate: 0.08,
            beta1: 0.9,
            beta2: 0.999,
            fd_step: 1e-5,
            target: None,
            stall_tol: 1e-12,
            deadline: Deadline::none(),
            cancel: CancelToken::none(),
        }
    }
}

impl AdamConfig {
    /// Returns a copy with an early-stop target.
    pub fn with_target(mut self, target: f64) -> Self {
        self.target = Some(target);
        self
    }

    /// Returns a copy bounded by the given wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Returns a copy observing the given cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

/// Minimizes `f` from `x0` with Adam on central-difference gradients,
/// clamping iterates into `bounds`.
///
/// # Panics
///
/// Panics if `x0.len() != bounds.dim()`.
///
/// # Example
///
/// ```
/// use geyser_optimize::{adam, AdamConfig, Bounds};
/// let bounds = Bounds::uniform(2, -5.0, 5.0);
/// let f = |x: &[f64]| (x[0] - 2.0).powi(2) + (x[1] + 1.0).powi(2);
/// let res = adam(&f, &bounds, &[0.0, 0.0], &AdamConfig::default());
/// assert!(res.fx < 1e-8);
/// ```
pub fn adam<F: Fn(&[f64]) -> f64>(
    f: &F,
    bounds: &Bounds,
    x0: &[f64],
    cfg: &AdamConfig,
) -> OptimizeResult {
    let dim = bounds.dim();
    assert_eq!(x0.len(), dim, "starting point dimension mismatch");
    let mut x = x0.to_vec();
    bounds.clamp(&mut x);

    let mut evaluations = 0usize;
    let eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        f(x)
    };

    let mut fx = eval(&x, &mut evaluations);
    let mut best_x = x.clone();
    let mut best_f = fx;

    let mut m = vec![0.0; dim];
    let mut v = vec![0.0; dim];
    let mut window_best = fx;
    let mut lr = cfg.learning_rate;

    for t in 1..=cfg.max_iters {
        if cfg.deadline.expired() || cfg.cancel.is_cancelled() {
            break;
        }
        // Central-difference gradient.
        let mut grad = vec![0.0; dim];
        for i in 0..dim {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp[i] = (xp[i] + cfg.fd_step).min(bounds.hi(i));
            xm[i] = (xm[i] - cfg.fd_step).max(bounds.lo(i));
            let h = xp[i] - xm[i];
            if h > 0.0 {
                grad[i] = (eval(&xp, &mut evaluations) - eval(&xm, &mut evaluations)) / h;
            }
        }
        // Adam update.
        for i in 0..dim {
            m[i] = cfg.beta1 * m[i] + (1.0 - cfg.beta1) * grad[i];
            v[i] = cfg.beta2 * v[i] + (1.0 - cfg.beta2) * grad[i] * grad[i];
            let m_hat = m[i] / (1.0 - cfg.beta1.powi(t as i32));
            let v_hat = v[i] / (1.0 - cfg.beta2.powi(t as i32));
            x[i] -= lr * m_hat / (v_hat.sqrt() + 1e-12);
        }
        bounds.clamp(&mut x);
        fx = eval(&x, &mut evaluations);
        if fx < best_f {
            best_f = fx;
            best_x = x.clone();
        }
        if let Some(target) = cfg.target {
            if best_f <= target {
                break;
            }
        }
        if t % 25 == 0 {
            if window_best - best_f < cfg.stall_tol {
                // Plateaued at this step size: anneal the rate and
                // restart descent from the best point seen.
                lr *= 0.5;
                if lr < cfg.learning_rate / 1024.0 {
                    break;
                }
                x = best_x.clone();
                m.fill(0.0);
                v.fill(0.0);
            }
            window_best = best_f;
        }
    }

    OptimizeResult {
        x: best_x,
        fx: best_f,
        evaluations,
        accepted: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let bounds = Bounds::uniform(4, -10.0, 10.0);
        let f = |x: &[f64]| x.iter().map(|v| (v - 1.5).powi(2)).sum::<f64>();
        let cfg = AdamConfig {
            max_iters: 800,
            ..AdamConfig::default()
        };
        let res = adam(&f, &bounds, &[5.0; 4], &cfg);
        assert!(res.fx < 1e-6, "fx = {}", res.fx);
    }

    #[test]
    fn respects_bounds() {
        let bounds = Bounds::uniform(2, 0.0, 1.0);
        let f = |x: &[f64]| (x[0] + 2.0).powi(2) + (x[1] + 2.0).powi(2);
        let res = adam(&f, &bounds, &[0.5, 0.5], &AdamConfig::default());
        assert!(bounds.contains(&res.x));
        assert!(res.x[0] < 1e-6 && res.x[1] < 1e-6);
    }

    #[test]
    fn early_stop_at_target() {
        let bounds = Bounds::uniform(2, -5.0, 5.0);
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let cfg = AdamConfig::default().with_target(0.5);
        let res = adam(&f, &bounds, &[3.0, -3.0], &cfg);
        assert!(res.fx <= 0.5);
        assert!(res.evaluations < 3000);
    }

    #[test]
    fn handles_rosenbrock_valley() {
        let bounds = Bounds::uniform(2, -2.0, 2.0);
        let f = |x: &[f64]| 100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2);
        let cfg = AdamConfig {
            max_iters: 4000,
            learning_rate: 0.02,
            ..AdamConfig::default()
        };
        let res = adam(&f, &bounds, &[-1.0, 1.0], &cfg);
        assert!(res.fx < 1e-3, "fx = {}", res.fx);
    }

    #[test]
    fn pre_cancelled_token_stops_after_initial_evaluation() {
        let bounds = Bounds::uniform(3, -5.0, 5.0);
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let token = crate::CancelToken::new();
        token.cancel();
        let cfg = AdamConfig::default().with_cancel(token);
        let res = adam(&f, &bounds, &[3.0, 2.0, 1.0], &cfg);
        assert_eq!(res.evaluations, 1);
        assert!(res.fx.is_finite());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_panics() {
        let bounds = Bounds::uniform(2, 0.0, 1.0);
        let f = |x: &[f64]| x[0];
        let _ = adam(&f, &bounds, &[0.5], &AdamConfig::default());
    }
}
