//! Derivative-free global optimization over bounded parameter spaces.
//!
//! Geyser's block composition (paper Sec. 3.4) minimizes the
//! Hilbert–Schmidt distance between an original block unitary and a
//! parameterized ansatz using SciPy's *dual annealing* optimizer. This
//! crate re-implements that optimizer from scratch:
//!
//! * [`dual_annealing`] — generalized simulated annealing (Tsallis
//!   statistics: distorted-Cauchy visiting distribution and
//!   generalized acceptance) with periodic reannealing and a
//!   Nelder–Mead local-search polish, mirroring the structure of
//!   Xiang et al.'s dual annealing.
//! * [`nelder_mead`] — bounded Nelder–Mead simplex search, used both
//!   as the polish phase and standalone.
//!
//! # Example
//!
//! ```
//! use geyser_optimize::{dual_annealing, Bounds, DualAnnealingConfig};
//!
//! // Minimize a shifted sphere function.
//! let bounds = Bounds::uniform(3, -5.0, 5.0);
//! let f = |x: &[f64]| x.iter().map(|v| (v - 1.0).powi(2)).sum::<f64>();
//! let res = dual_annealing(&f, &bounds, &DualAnnealingConfig::default().with_seed(7));
//! assert!(res.fx < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anneal;
mod bounds;
mod cancel;
mod deadline;
mod gradient;
mod neldermead;
mod special;

pub use anneal::{dual_annealing, DualAnnealingConfig};
pub use bounds::Bounds;
pub use cancel::CancelToken;
pub use deadline::Deadline;
pub use gradient::{adam, AdamConfig};
pub use neldermead::{nelder_mead, NelderMeadConfig};

/// Outcome of an optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeResult {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at [`OptimizeResult::x`].
    pub fx: f64,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
    /// Accepted Metropolis moves ([`dual_annealing`] only; optimizers
    /// without an acceptance step report 0).
    pub accepted: usize,
}
