//! Property-based tests for block fingerprints.
//!
//! Runs each property over a fixed set of seeds (proptest is not
//! available offline); failures reproduce exactly by seed.

use geyser_num::{CMatrix, Complex, ZyzDecomposition};
use geyser_reuse::BlockFingerprint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(0x7f4a_7c15))
}

/// A random single-qubit unitary via ZYZ angles plus global phase.
fn unitary2(rng: &mut StdRng) -> CMatrix {
    ZyzDecomposition {
        alpha: rng.gen_range(0.0..std::f64::consts::TAU),
        theta: rng.gen_range(0.0..std::f64::consts::PI),
        phi: rng.gen_range(0.0..std::f64::consts::TAU),
        lambda: rng.gen_range(0.0..std::f64::consts::TAU),
    }
    .to_matrix()
}

/// The entangling core `CPhase(θ) = diag(1, 1, 1, e^{iθ})`.
fn cphase(theta: f64) -> CMatrix {
    CMatrix::from_diagonal(&[
        Complex::ONE,
        Complex::ONE,
        Complex::ONE,
        Complex::cis(theta),
    ])
}

/// `core` dressed with fresh random single-qubit unitaries on both
/// sides: `(A ⊗ B) · core · (C ⊗ D)`.
fn dressed(core: &CMatrix, rng: &mut StdRng) -> CMatrix {
    let pre = unitary2(rng).kron(&unitary2(rng));
    let post = unitary2(rng).kron(&unitary2(rng));
    pre.matmul(core).matmul(&post)
}

/// Two 4×4 unitaries that differ only by single-qubit dressings are
/// locally equivalent, so they must share a fingerprint — that is the
/// equivalence class KAK resynthesis collapses, and exactly what the
/// reuse index keys on.
#[test]
fn locally_equivalent_two_qubit_blocks_fingerprint_equal() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let theta = rng.gen_range(0.1..std::f64::consts::PI);
        let core = cphase(theta);
        let u = dressed(&core, &mut rng);
        let v = dressed(&core, &mut rng);

        let fu = BlockFingerprint::of(&u).expect("unitary fingerprints");
        let fv = BlockFingerprint::of(&v).expect("unitary fingerprints");
        assert!(
            matches!(fu, BlockFingerprint::TwoQubit { .. }),
            "seed {seed}: 4x4 input must take the Makhlin path, got {fu:?}"
        );
        assert_eq!(
            fu, fv,
            "seed {seed}: local dressings changed the fingerprint"
        );
    }
}

/// Cores an ε-sized rotation apart are *not* locally equivalent, so
/// their fingerprints must differ no matter how they are dressed — a
/// collision here would hand a replay candidate to the wrong block
/// (the ε re-verification gate would still catch it, but only by
/// wasting the replay).
#[test]
fn epsilon_distinct_cores_fingerprint_differently() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed ^ 0x00dd_ba11);
        let theta = rng.gen_range(0.1..std::f64::consts::PI - 0.1);
        // 0.01 rad is an order of magnitude above the composer's ε
        // and four above the fingerprint bucket width.
        let u = dressed(&cphase(theta), &mut rng);
        let v = dressed(&cphase(theta + 0.01), &mut rng);

        let fu = BlockFingerprint::of(&u).expect("unitary fingerprints");
        let fv = BlockFingerprint::of(&v).expect("unitary fingerprints");
        assert_ne!(
            fu, fv,
            "seed {seed}: ε-distinct cores collided at θ={theta}"
        );
    }
}

/// The coarse (warm-start) fingerprint still separates ε-distinct
/// cores: its buckets are 16× wider, which is still three orders of
/// magnitude tighter than a 0.01 rad core shift.
#[test]
fn coarse_fingerprint_still_separates_epsilon_distinct_cores() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed ^ 0xc0a5_e000);
        let theta = rng.gen_range(0.1..std::f64::consts::PI - 0.1);
        let u = dressed(&cphase(theta), &mut rng);
        let v = dressed(&cphase(theta + 0.01), &mut rng);
        assert_ne!(
            BlockFingerprint::coarse(&u).expect("unitary fingerprints"),
            BlockFingerprint::coarse(&v).expect("unitary fingerprints"),
            "seed {seed}"
        );
    }
}
