//! Block-equivalence fingerprinting and composition reuse.
//!
//! Geyser's dominant cost is dual-annealing every three-qubit block
//! independently, yet structured workloads (QAOA, VQE, Trotterized
//! Heisenberg) repeat the same layer structure dozens of times. This
//! crate recognizes that two blocks — within one job or across jobs —
//! need the *same* composition, and replays or warm-starts the cached
//! answer instead of annealing from scratch:
//!
//! * [`fingerprint`] — canonical block fingerprints: the quantized
//!   Makhlin invariant pair for two-qubit unitaries (a true
//!   local-equivalence class) and a phase-fixed, tolerance-bucketed
//!   canonical-form digest for three-qubit blocks (an exact-replay
//!   key up to global phase).
//! * [`index`] — the in-process [`ReuseSession`] the composer
//!   consults before annealing: an exact hit replays the cached
//!   ansatz parameters after an ε re-verification through the shared
//!   oracle, a near-miss (coarse-fingerprint) hit warm-starts the
//!   annealer from the cached parameters with a reduced budget.
//! * [`persist`] — the cross-job reuse store: per-entry digest-keyed
//!   `reuse-*.json` files on the crash-safe `GEYSREC1` record layer
//!   (atomic writes, corrupt-entry quarantine, stale-digest
//!   filtering), so a process pool amortizes compositions across
//!   tenants the way single-flight dedup amortizes identical jobs.
//!
//! Every key binds the fingerprint to the hardware digest and a
//! composition-config hash: a reuse entry never crosses machines or
//! annealer configurations. Replayed compositions are *always*
//! re-verified against the block's own unitary before acceptance —
//! reuse is an optimization, never a correctness assumption.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fingerprint;
pub mod index;
pub mod persist;

pub use fingerprint::{
    canonical_digest, quantize, BlockFingerprint, COARSE_TOL_FACTOR, FINGERPRINT_TOL,
};
pub use index::{reuse_config_hash, ReuseEntry, ReuseKey, ReuseOutcome, ReuseSession, ReuseStats};
pub use persist::{
    is_reuse_entry, load_reuse_dir, parse_reuse_record, reuse_entry_path, save_reuse_dir,
    LoadedReuse, ReuseRecord, REUSE_FILE_PREFIX, REUSE_VERSION,
};
