//! The in-process reuse index the composer consults before annealing.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::fingerprint::BlockFingerprint;
use geyser_store::fnv1a_bytes;

/// Hashes the composition-config fields a reuse entry depends on.
///
/// Mirrors the checkpoint binding: ε, layer cap, annealing budget,
/// restarts, and retry attempts — everything that shapes the annealed
/// parameters. Seed, thread count, and deadline are deliberately
/// excluded: reuse across seeds is the whole point, and threads /
/// deadlines don't change what a converged solution looks like.
pub fn reuse_config_hash(
    epsilon: f64,
    max_layers: usize,
    anneal_iters: usize,
    restarts: usize,
    retry_attempts: usize,
) -> u64 {
    let text = format!(
        "reuse-cfg|eps={epsilon:?}|layers={max_layers}|iters={anneal_iters}|restarts={restarts}|retries={retry_attempts}"
    );
    fnv1a_bytes(text.as_bytes())
}

/// A fully-qualified reuse lookup key: the block fingerprint bound to
/// the hardware digest and composition-config hash, so an entry never
/// crosses machines or annealer configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReuseKey {
    /// Canonical block fingerprint.
    pub fingerprint: BlockFingerprint,
    /// `HardwareSpec::digest()` of the machine compiled for.
    pub hardware_digest: u64,
    /// [`reuse_config_hash`] of the composition configuration.
    pub config_hash: u64,
}

impl ReuseKey {
    /// Content digest of the key — the persistent store's file name.
    pub fn digest(&self) -> u64 {
        let (a, b, c) = self.fingerprint.components();
        let mut bytes = Vec::with_capacity(48);
        bytes.extend_from_slice(self.fingerprint.kind_label().as_bytes());
        for v in [a, b, c] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        bytes.extend_from_slice(&self.hardware_digest.to_le_bytes());
        bytes.extend_from_slice(&self.config_hash.to_le_bytes());
        fnv1a_bytes(&bytes)
    }
}

/// What the original composition of a fingerprint concluded.
///
/// Negative outcomes are cached too: a block whose annealing never
/// converged, failed final ε re-verification, or was never cheaper
/// than its source pulses will fail the same way for every equal
/// unitary, so replaying the fallback skips the most expensive kind
/// of annealing — the kind that burns the whole budget and converges
/// to nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseOutcome {
    /// Annealing found an accepted, cheaper composition.
    Composed,
    /// Every candidate ansatz was at least as expensive as the
    /// source block; no annealing needed.
    NotCheaper,
    /// A candidate met ε inside the optimizer but failed the final
    /// re-verification.
    EpsilonRejected,
    /// No candidate met ε within the annealing budget across all
    /// retries. Cached so an equal block skips the most expensive
    /// search of all — the one that burns the full budget (including
    /// backoff retries) and produces nothing. Replaying the failure
    /// trades a slim chance of a differently-seeded success for the
    /// whole budget back; the fallback pulses are always correct.
    NonConvergent,
}

impl ReuseOutcome {
    /// Stable serialization label.
    pub fn label(&self) -> &'static str {
        match self {
            ReuseOutcome::Composed => "composed",
            ReuseOutcome::NotCheaper => "not-cheaper",
            ReuseOutcome::EpsilonRejected => "epsilon-rejected",
            ReuseOutcome::NonConvergent => "non-convergent",
        }
    }

    /// Parses a serialization label.
    pub fn from_label(label: &str) -> Option<ReuseOutcome> {
        match label {
            "composed" => Some(ReuseOutcome::Composed),
            "not-cheaper" => Some(ReuseOutcome::NotCheaper),
            "epsilon-rejected" => Some(ReuseOutcome::EpsilonRejected),
            "non-convergent" => Some(ReuseOutcome::NonConvergent),
            _ => None,
        }
    }
}

/// One cached composition result.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseEntry {
    /// What the original composition concluded.
    pub outcome: ReuseOutcome,
    /// Annealed ansatz parameters ([`ReuseOutcome::Composed`] only;
    /// empty otherwise).
    pub params: Vec<f64>,
    /// Ansatz layer count the parameters belong to.
    pub layers: usize,
    /// Hilbert-Schmidt distance the original verification measured.
    pub hsd: f64,
    /// Annealer objective evaluations the original composition spent
    /// — the cost a replay saves.
    pub evaluations: u64,
}

/// Reuse accounting for one compile, reported on `CompileReport` and
/// mirrored to telemetry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseStats {
    /// Blocks that were fingerprinted for reuse (triangle blocks not
    /// restored from a checkpoint).
    pub blocks_fingerprinted: u64,
    /// Blocks resolved by replaying a cached entry (in-process or
    /// from the persistent store), annealing skipped.
    pub exact_hits: u64,
    /// Replays rejected by the ε re-verification gate; the block fell
    /// through to a fresh annealing run.
    pub exact_hits_rejected: u64,
    /// Blocks whose annealer was warm-started from a near-miss
    /// (coarse-fingerprint) entry with a reduced iteration budget.
    pub warm_starts: u64,
    /// Annealer objective evaluations saved by exact hits (the sum of
    /// the replayed entries' original costs).
    pub evals_saved: u64,
    /// Fresh composition outcomes published into the session index.
    pub entries_published: u64,
    /// Entries loaded from the persistent store.
    pub store_entries_loaded: u64,
    /// Store entries skipped because their hardware/config digests
    /// belong to another configuration.
    pub store_entries_stale: u64,
    /// New entries written back to the persistent store.
    pub store_entries_saved: u64,
    /// Replays accepted *without* ε re-verification. Always zero
    /// unless the `reuse-skip-verify` chaos fault is injected; the
    /// reused-composition invariant trips on any nonzero value.
    pub unverified_replays: u64,
}

impl ReuseStats {
    /// Folds another run's counters into this one.
    pub fn absorb(&mut self, other: &ReuseStats) {
        self.blocks_fingerprinted += other.blocks_fingerprinted;
        self.exact_hits += other.exact_hits;
        self.exact_hits_rejected += other.exact_hits_rejected;
        self.warm_starts += other.warm_starts;
        self.evals_saved += other.evals_saved;
        self.entries_published += other.entries_published;
        self.store_entries_loaded += other.store_entries_loaded;
        self.store_entries_stale += other.store_entries_stale;
        self.store_entries_saved += other.store_entries_saved;
        self.unverified_replays += other.unverified_replays;
    }
}

/// The per-compile reuse session: exact and coarse indexes, fault
/// switches, and accounting.
///
/// The composer drives it in two serial phases around the parallel
/// block waves — fingerprint + plan before composing, publish after —
/// so sessions never need internal locking and results stay
/// deterministic across thread counts.
#[derive(Debug, Clone)]
pub struct ReuseSession {
    hardware_digest: u64,
    config_hash: u64,
    warm_start: bool,
    skip_verify: bool,
    exact: HashMap<ReuseKey, ReuseEntry>,
    coarse: HashMap<ReuseKey, (Vec<f64>, usize)>,
    /// Keys published this run, in block order, with the coarse
    /// fingerprint needed to persist them.
    dirty: Vec<(ReuseKey, Option<BlockFingerprint>)>,
    /// Reuse accounting for this session.
    pub stats: ReuseStats,
}

impl ReuseSession {
    /// An empty session bound to a machine + composition config.
    pub fn new(hardware_digest: u64, config_hash: u64) -> Self {
        ReuseSession {
            hardware_digest,
            config_hash,
            warm_start: false,
            skip_verify: false,
            exact: HashMap::new(),
            coarse: HashMap::new(),
            dirty: Vec::new(),
            stats: ReuseStats::default(),
        }
    }

    /// Enables near-miss annealer warm-starts.
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// CHAOS ONLY: disables the ε re-verification gate on replays so
    /// a poisoned store entry escapes into the output (and must be
    /// caught by the end-to-end oracle / chaos invariant).
    pub fn with_skip_verify_fault(mut self, on: bool) -> Self {
        self.skip_verify = on;
        self
    }

    /// Whether near-miss warm-starts are enabled.
    pub fn warm_start(&self) -> bool {
        self.warm_start
    }

    /// Whether the `reuse-skip-verify` fault is active.
    pub fn skip_verify(&self) -> bool {
        self.skip_verify
    }

    /// Hardware digest this session is bound to.
    pub fn hardware_digest(&self) -> u64 {
        self.hardware_digest
    }

    /// Composition-config hash this session is bound to.
    pub fn config_hash(&self) -> u64 {
        self.config_hash
    }

    /// Qualifies a fingerprint with this session's binding.
    pub fn key(&self, fingerprint: BlockFingerprint) -> ReuseKey {
        ReuseKey {
            fingerprint,
            hardware_digest: self.hardware_digest,
            config_hash: self.config_hash,
        }
    }

    /// Exact-index lookup.
    pub fn lookup(&self, fingerprint: BlockFingerprint) -> Option<&ReuseEntry> {
        self.exact.get(&self.key(fingerprint))
    }

    /// Coarse-index lookup: cached parameters + layer count for a
    /// near-miss warm start.
    pub fn lookup_coarse(&self, coarse: BlockFingerprint) -> Option<(&[f64], usize)> {
        self.coarse
            .get(&self.key(coarse))
            .map(|(p, l)| (p.as_slice(), *l))
    }

    /// Number of exact entries currently indexed.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// Whether the exact index is empty.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }

    /// Records a fresh composition outcome under `fingerprint` and
    /// marks it for persistence. Composed entries also feed the
    /// coarse (warm-start) index.
    pub fn publish(
        &mut self,
        fingerprint: BlockFingerprint,
        coarse: Option<BlockFingerprint>,
        entry: ReuseEntry,
    ) {
        let key = self.key(fingerprint);
        if self.exact.contains_key(&key) {
            return;
        }
        if entry.outcome == ReuseOutcome::Composed {
            if let Some(cf) = coarse {
                self.coarse
                    .entry(self.key(cf))
                    .or_insert_with(|| (entry.params.clone(), entry.layers));
            }
        }
        self.exact.insert(key, entry);
        self.dirty.push((key, coarse));
        self.stats.entries_published += 1;
    }

    /// Inserts an entry loaded from the persistent store (not marked
    /// dirty — it is already on disk).
    pub fn insert_loaded(
        &mut self,
        key: ReuseKey,
        coarse: Option<BlockFingerprint>,
        entry: ReuseEntry,
    ) {
        if key.hardware_digest != self.hardware_digest || key.config_hash != self.config_hash {
            self.stats.store_entries_stale += 1;
            return;
        }
        if entry.outcome == ReuseOutcome::Composed {
            if let Some(cf) = coarse {
                self.coarse
                    .entry(self.key(cf))
                    .or_insert_with(|| (entry.params.clone(), entry.layers));
            }
        }
        self.exact.entry(key).or_insert(entry);
        self.stats.store_entries_loaded += 1;
    }

    /// Keys published this run (in block order) with their coarse
    /// fingerprints — the persistence work list.
    pub fn dirty(&self) -> &[(ReuseKey, Option<BlockFingerprint>)] {
        &self.dirty
    }

    /// Fetches an entry by fully-qualified key.
    pub fn get(&self, key: &ReuseKey) -> Option<&ReuseEntry> {
        self.exact.get(key)
    }

    /// CHAOS ONLY: deterministically corrupts the parameters of every
    /// indexed composed entry, simulating a stale or bit-rotted store
    /// whose frames still verify. The ε re-verification gate must
    /// reject every poisoned replay.
    pub fn poison_entries(&mut self) {
        for entry in self.exact.values_mut() {
            if entry.outcome == ReuseOutcome::Composed {
                for (i, p) in entry.params.iter_mut().enumerate() {
                    *p += 1.0 + 0.37 * (i % 5) as f64;
                }
            }
        }
        for (params, _) in self.coarse.values_mut() {
            for (i, p) in params.iter_mut().enumerate() {
                *p += 1.0 + 0.37 * (i % 5) as f64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(digest: u64) -> BlockFingerprint {
        BlockFingerprint::Canonical { dim: 8, digest }
    }

    fn entry(outcome: ReuseOutcome) -> ReuseEntry {
        ReuseEntry {
            outcome,
            params: vec![0.1, 0.2, 0.3],
            layers: 1,
            hsd: 1e-5,
            evaluations: 1234,
        }
    }

    #[test]
    fn publish_then_lookup_roundtrips() {
        let mut s = ReuseSession::new(7, 9);
        assert!(s.lookup(fp(1)).is_none());
        s.publish(fp(1), Some(fp(100)), entry(ReuseOutcome::Composed));
        assert_eq!(s.lookup(fp(1)).unwrap().evaluations, 1234);
        assert!(s.lookup_coarse(fp(100)).is_some());
        assert_eq!(s.dirty().len(), 1);
        assert_eq!(s.stats.entries_published, 1);
    }

    #[test]
    fn stale_loaded_entries_are_counted_not_indexed() {
        let mut s = ReuseSession::new(7, 9);
        let foreign = ReuseKey {
            fingerprint: fp(1),
            hardware_digest: 8,
            config_hash: 9,
        };
        s.insert_loaded(foreign, None, entry(ReuseOutcome::Composed));
        assert!(s.is_empty());
        assert_eq!(s.stats.store_entries_stale, 1);
        let native = ReuseKey {
            fingerprint: fp(1),
            hardware_digest: 7,
            config_hash: 9,
        };
        s.insert_loaded(native, None, entry(ReuseOutcome::Composed));
        assert_eq!(s.len(), 1);
        assert_eq!(s.stats.store_entries_loaded, 1);
    }

    #[test]
    fn negative_outcomes_do_not_feed_coarse_index() {
        let mut s = ReuseSession::new(0, 0);
        s.publish(fp(2), Some(fp(200)), entry(ReuseOutcome::EpsilonRejected));
        assert!(s.lookup(fp(2)).is_some());
        assert!(s.lookup_coarse(fp(200)).is_none());
    }

    #[test]
    fn poison_changes_composed_params() {
        let mut s = ReuseSession::new(0, 0);
        s.publish(fp(3), None, entry(ReuseOutcome::Composed));
        let before = s.lookup(fp(3)).unwrap().params.clone();
        s.poison_entries();
        assert_ne!(s.lookup(fp(3)).unwrap().params, before);
    }

    #[test]
    fn key_digest_separates_bindings() {
        let a = ReuseKey {
            fingerprint: fp(1),
            hardware_digest: 1,
            config_hash: 2,
        };
        let mut b = a;
        b.hardware_digest = 3;
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn config_hash_ignores_seed_like_fields() {
        // Same knobs → same hash; any knob change → different hash.
        let h = reuse_config_hash(1e-3, 3, 220, 3, 1);
        assert_eq!(h, reuse_config_hash(1e-3, 3, 220, 3, 1));
        assert_ne!(h, reuse_config_hash(1e-3, 2, 220, 3, 1));
        assert_ne!(h, reuse_config_hash(1e-4, 3, 220, 3, 1));
    }
}
