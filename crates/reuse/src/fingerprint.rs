//! Canonical block fingerprints.
//!
//! A fingerprint answers "have we composed this block before?" with a
//! hashable key. Two regimes:
//!
//! * **Two-qubit unitaries** quantize the Makhlin invariant pair
//!   `(G₁, G₂)` — two gates share a fingerprint iff they are locally
//!   equivalent (interchangeable up to single-qubit dressings), which
//!   is exactly the class KAK resynthesis collapses.
//! * **Larger unitaries** (the composer's 8×8 three-qubit blocks)
//!   have no small invariant set, so the fingerprint is a
//!   *phase-fixed canonical-form digest*: the global phase is fixed
//!   by rotating the largest-magnitude entry onto the positive real
//!   axis, every entry is bucketed at the quantization tolerance, and
//!   the bucket grid is FNV-hashed. Equal digests mean equal
//!   unitaries up to global phase and sub-tolerance error — an
//!   exact-replay key, deliberately stricter than local equivalence,
//!   because cached ansatz parameters reproduce the *specific*
//!   unitary they were annealed against.
//!
//! The quantization tolerance ([`FINGERPRINT_TOL`]) sits three orders
//! of magnitude below the composer's ε, so a fingerprint collision
//! can never smuggle an ε-distinct unitary past the re-verification
//! gate — and the gate runs anyway. The coarse variant
//! ([`BlockFingerprint::coarse`], [`COARSE_TOL_FACTOR`]× wider
//! buckets) keys the near-miss index used for annealer warm-starts.

use geyser_num::{CMatrix, Complex};
use geyser_store::fnv1a_bytes;
use geyser_synth::makhlin_invariants;

/// Quantization tolerance for exact fingerprints. Three orders of
/// magnitude below the default composition ε (1e-3): bucket-boundary
/// splits are possible (two nearly-equal unitaries missing each
/// other — safe, just a lost hit) but bucket collisions across an ε
/// gap are not.
pub const FINGERPRINT_TOL: f64 = 1e-6;

/// Bucket-width multiplier for the coarse (near-miss) fingerprint.
pub const COARSE_TOL_FACTOR: f64 = 16.0;

/// Snaps a value to its tolerance bucket.
///
/// Non-finite inputs fold into a sentinel bucket so a NaN-poisoned
/// matrix can never alias a real fingerprint.
pub fn quantize(x: f64, tol: f64) -> i64 {
    if !x.is_finite() {
        return i64::MAX;
    }
    let b = (x / tol).round();
    if b >= i64::MAX as f64 {
        i64::MAX - 1
    } else if b <= i64::MIN as f64 {
        i64::MIN + 1
    } else {
        b as i64
    }
}

/// A canonical, hashable block-equivalence key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockFingerprint {
    /// Quantized Makhlin invariants `(Re G₁, Im G₁, G₂)` of a 4×4
    /// unitary: equal variants ⇔ locally equivalent gates.
    TwoQubit {
        /// Bucketed `Re G₁`.
        g1_re: i64,
        /// Bucketed `Im G₁`.
        g1_im: i64,
        /// Bucketed `G₂`.
        g2: i64,
    },
    /// Phase-fixed canonical-form digest of a `dim×dim` unitary:
    /// equal variants ⇔ equal unitaries up to global phase (within
    /// the bucket tolerance).
    Canonical {
        /// Matrix dimension (8 for three-qubit blocks).
        dim: u8,
        /// FNV-1a hash of the phase-fixed bucket grid.
        digest: u64,
    },
}

impl BlockFingerprint {
    /// Fingerprints a unitary at the standard tolerance: Makhlin
    /// invariants for 4×4 inputs, canonical digest otherwise.
    ///
    /// Returns `None` for non-square, non-unitary, or non-finite
    /// matrices.
    pub fn of(u: &CMatrix) -> Option<BlockFingerprint> {
        Self::with_tol(u, FINGERPRINT_TOL)
    }

    /// Fingerprints at [`COARSE_TOL_FACTOR`]× wider buckets — the
    /// near-miss key for annealer warm-starts.
    pub fn coarse(u: &CMatrix) -> Option<BlockFingerprint> {
        Self::with_tol(u, FINGERPRINT_TOL * COARSE_TOL_FACTOR)
    }

    /// Fingerprints at an explicit bucket tolerance.
    pub fn with_tol(u: &CMatrix, tol: f64) -> Option<BlockFingerprint> {
        if !u.is_square() || !u.is_finite() {
            return None;
        }
        if u.rows() == 4 {
            let (g1, g2) = makhlin_invariants(u)?;
            return Some(BlockFingerprint::TwoQubit {
                g1_re: quantize(g1.re, tol),
                g1_im: quantize(g1.im, tol),
                g2: quantize(g2, tol),
            });
        }
        let digest = canonical_digest(u, tol)?;
        Some(BlockFingerprint::Canonical {
            dim: u.rows().min(u8::MAX as usize) as u8,
            digest,
        })
    }

    /// Stable label for serialization and diagnostics.
    pub fn kind_label(&self) -> &'static str {
        match self {
            BlockFingerprint::TwoQubit { .. } => "two-qubit",
            BlockFingerprint::Canonical { .. } => "canonical",
        }
    }

    /// The three integer components, in serialization order.
    pub fn components(&self) -> (i64, i64, i64) {
        match *self {
            BlockFingerprint::TwoQubit { g1_re, g1_im, g2 } => (g1_re, g1_im, g2),
            BlockFingerprint::Canonical { dim, digest } => (dim as i64, digest as i64, 0),
        }
    }

    /// Rebuilds a fingerprint from its serialized kind + components.
    pub fn from_parts(kind: &str, a: i64, b: i64, c: i64) -> Option<BlockFingerprint> {
        match kind {
            "two-qubit" => Some(BlockFingerprint::TwoQubit {
                g1_re: a,
                g1_im: b,
                g2: c,
            }),
            "canonical" => Some(BlockFingerprint::Canonical {
                dim: u8::try_from(a).ok()?,
                digest: b as u64,
            }),
            _ => None,
        }
    }
}

/// Phase-fixed, tolerance-bucketed digest of a unitary.
///
/// The global phase is fixed by rotating the first largest-magnitude
/// entry onto the positive real axis; each entry's real and imaginary
/// parts are then bucketed at `tol` and the grid FNV-hashed together
/// with the dimension. Returns `None` for empty or non-finite input.
pub fn canonical_digest(u: &CMatrix, tol: f64) -> Option<u64> {
    if !u.is_finite() || u.rows() == 0 {
        return None;
    }
    let mut pivot = Complex::ZERO;
    let mut pivot_norm = 0.0f64;
    for &x in u.as_slice() {
        let n = x.norm_sqr();
        if n > pivot_norm {
            pivot_norm = n;
            pivot = x;
        }
    }
    if pivot_norm <= 1e-24 {
        return None;
    }
    // Rotate the pivot onto the positive real axis: v = u · e^{-iθ}.
    let rot = Complex::cis(-pivot.arg());
    let mut bytes = Vec::with_capacity(16 + u.as_slice().len() * 16);
    bytes.extend_from_slice(&(u.rows() as u64).to_le_bytes());
    bytes.extend_from_slice(&(u.cols() as u64).to_le_bytes());
    for &x in u.as_slice() {
        let y = x * rot;
        bytes.extend_from_slice(&quantize(y.re, tol).to_le_bytes());
        bytes.extend_from_slice(&quantize(y.im, tol).to_le_bytes());
    }
    Some(fnv1a_bytes(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_buckets_and_sentinels() {
        assert_eq!(quantize(0.0, 1e-6), 0);
        assert_eq!(quantize(1.0, 1e-6), 1_000_000);
        assert_eq!(quantize(2.4e-6, 1e-6), 2);
        assert_eq!(quantize(f64::NAN, 1e-6), i64::MAX);
        assert_eq!(quantize(f64::INFINITY, 1e-6), i64::MAX);
        assert_eq!(quantize(1e300, 1e-6), i64::MAX - 1);
        assert_eq!(quantize(-1e300, 1e-6), i64::MIN + 1);
    }

    #[test]
    fn canonical_digest_is_global_phase_invariant() {
        let u = CMatrix::identity(8);
        let v = u.scale(Complex::cis(1.234));
        let a = canonical_digest(&u, FINGERPRINT_TOL).unwrap();
        let b = canonical_digest(&v, FINGERPRINT_TOL).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn canonical_digest_separates_distinct_unitaries() {
        let u = CMatrix::identity(8);
        let mut diag = vec![Complex::ONE; 8];
        diag[7] = Complex::cis(0.5);
        let v = CMatrix::from_diagonal(&diag);
        assert_ne!(
            canonical_digest(&u, FINGERPRINT_TOL).unwrap(),
            canonical_digest(&v, FINGERPRINT_TOL).unwrap()
        );
    }

    #[test]
    fn fingerprint_roundtrips_through_parts() {
        let fps = [
            BlockFingerprint::TwoQubit {
                g1_re: -3,
                g1_im: 7,
                g2: 1_000_000,
            },
            BlockFingerprint::Canonical {
                dim: 8,
                digest: u64::MAX - 17,
            },
        ];
        for fp in fps {
            let (a, b, c) = fp.components();
            assert_eq!(
                BlockFingerprint::from_parts(fp.kind_label(), a, b, c),
                Some(fp)
            );
        }
        assert_eq!(BlockFingerprint::from_parts("nope", 0, 0, 0), None);
    }

    #[test]
    fn rejects_garbage_input() {
        let nan = CMatrix::from_fn(8, 8, |_, _| Complex::new(f64::NAN, 0.0));
        assert!(BlockFingerprint::of(&nan).is_none());
        let zero = CMatrix::zeros(8, 8);
        assert!(BlockFingerprint::of(&zero).is_none());
    }
}
